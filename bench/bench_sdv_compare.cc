// §5.1 SDV comparison, both phases:
//
//   Phase 1 (sample bugs): "SDV found the 8 sample bugs in 12 minutes, while
//   DDT found all of them in 4 minutes." Shape to reproduce: both tools find
//   8/8; DDT is faster.
//
//   Phase 2 (injected synthetic bugs): deadlock, out-of-order spinlock
//   release, extra release of a non-acquired spinlock, forgotten unreleased
//   spinlock, kernel call at the wrong IRQ level. "SDV did not find the
//   first 3 bugs, it found the last 2, and produced 1 false positive. DDT
//   found all 5 bugs and no false positives in less than a third of the
//   time that SDV ran."
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "src/baselines/sdv.h"
#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/vm/assembler.h"

namespace {

struct DdtOutcome {
  size_t matched = 0;
  size_t expected = 0;
  size_t false_positives = 0;
  double wall_ms = 0;
};

DdtOutcome RunDdt(bool synthetic) {
  ddt::DdtConfig config;
  config.engine.max_instructions = 3'000'000;
  config.engine.max_states = 1024;
  ddt::Ddt ddt_run(config);
  ddt::Result<ddt::DdtResult> result =
      ddt_run.TestDriver(ddt::SdvSampleImage(synthetic), ddt::SdvSamplePci());
  DdtOutcome outcome;
  if (!result.ok()) {
    return outcome;
  }
  const ddt::DdtResult& r = result.value();
  outcome.wall_ms = r.stats.wall_ms;
  std::vector<ddt::ExpectedBug> expected = ddt::SdvSampleExpected(synthetic);
  outcome.expected = expected.size();
  std::set<size_t> used;
  for (const ddt::ExpectedBug& want : expected) {
    for (size_t i = 0; i < r.bugs.size(); ++i) {
      if (used.count(i) == 0 && r.bugs[i].type == want.type &&
          r.bugs[i].title.find(want.keyword) != std::string::npos) {
        used.insert(i);
        ++outcome.matched;
        break;
      }
    }
  }
  outcome.false_positives = r.bugs.size() - used.size();
  return outcome;
}

}  // namespace

int main() {
  using ddt::Assemble;
  using ddt::SdvResult;

  std::printf("SDV vs DDT comparison (Section 5.1)\n\n");

  // ---------------- Phase 1: the 8 sample bugs ----------------
  ddt::AssembledDriver base = Assemble(ddt::SdvSampleSource(false)).take();
  SdvResult sdv_base = ddt::RunSdvAnalysis(base.image, base.functions);
  DdtOutcome ddt_base = RunDdt(false);

  std::printf("Phase 1 — sample driver (8 seeded rule-violation bugs):\n");
  std::printf("  SDV: %zu findings, %llu paths enumerated, %llu abstract steps, %.0f ms\n",
              sdv_base.findings.size(),
              static_cast<unsigned long long>(sdv_base.paths_explored),
              static_cast<unsigned long long>(sdv_base.abstract_steps), sdv_base.wall_ms);
  std::printf("  DDT: %zu/%zu bugs, %zu false positives, %.0f ms\n\n", ddt_base.matched,
              ddt_base.expected, ddt_base.false_positives, ddt_base.wall_ms);

  bool phase1_ok = sdv_base.findings.size() == 8 && ddt_base.matched == 8 &&
                   ddt_base.false_positives == 0;

  // ---------------- Phase 2: the 5 injected synthetic bugs ----------------
  ddt::AssembledDriver synth = Assemble(ddt::SdvSampleSource(true)).take();
  SdvResult sdv_synth = ddt::RunSdvAnalysis(synth.image, synth.functions);
  DdtOutcome ddt_synth = RunDdt(true);

  // SDV's synthetic-phase score: findings beyond the 8 sample ones.
  std::map<std::string, int> rules;
  for (const ddt::SdvFinding& finding : sdv_synth.findings) {
    rules[finding.rule] += 1;
  }
  int sdv_synthetic_found = (rules["lock-held-at-return"] - 2)   // the injected forgotten release
                            + (rules["alloc-above-dispatch"] - 1);  // the injected wrong-IRQL call
  int sdv_false_positives = rules["release-unacquired"] - 1;     // the guarded-acquire FP

  std::printf("Phase 2 — 5 injected synthetic bugs (deadlock, out-of-order release,\n");
  std::printf("          extra release, forgotten release, wrong-IRQL call):\n");
  std::printf("  SDV: %d/5 found (misses deadlock, out-of-order, extra release), "
              "%d false positive(s), %.0f ms\n",
              sdv_synthetic_found, sdv_false_positives, sdv_synth.wall_ms);
  std::printf("  DDT: %zu/13 bugs (8 sample + 5 synthetic), %zu false positives, %.0f ms\n\n",
              ddt_synth.matched, ddt_synth.false_positives, ddt_synth.wall_ms);

  bool phase2_ok = sdv_synthetic_found == 2 && sdv_false_positives == 1 &&
                   ddt_synth.matched == 13 && ddt_synth.false_positives == 0;

  double speedup = ddt_synth.wall_ms > 0 ? sdv_synth.wall_ms / ddt_synth.wall_ms : 0;
  std::printf("timing: DDT/SDV wall-clock ratio on the synthetic driver: %.2fx "
              "(paper: DDT ran in under a third of SDV's time)\n",
              speedup);

  bool timing_ok = ddt_synth.wall_ms * 3 < sdv_synth.wall_ms;
  bool ok = phase1_ok && phase2_ok && timing_ok;
  std::printf("\n%s\n",
              ok ? "SDV COMPARISON SHAPE: REPRODUCED (SDV 8/8 sample + 2/5 synthetic + 1 FP; "
                   "DDT 13/13 + 0 FP)"
                 : "SDV COMPARISON SHAPE: FAILED");
  return ok ? 0 : 1;
}
