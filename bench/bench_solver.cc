// Supporting microbenchmarks for the constraint-solving stack (the paper's
// §6.1 notes that "solving path constraints at each branch is CPU-intensive"
// and that any solver improvement directly improves DDT — these benchmarks
// quantify where the cycles go in our KLEE/STP analogue).
#include <benchmark/benchmark.h>

#include "src/expr/expr.h"
#include "src/solver/solver.h"
#include "src/support/rng.h"

namespace {

using ddt::Assignment;
using ddt::ExprContext;
using ddt::ExprRef;
using ddt::Rng;
using ddt::Solver;

// Typical branch query: bounded variable compared against a constant.
void BM_BranchQuery(benchmark::State& state) {
  for (auto _ : state) {
    ExprContext ctx;
    Solver solver(&ctx);
    ExprRef x = ctx.Var(32, "x");
    std::vector<ExprRef> constraints = {ctx.Ult(x, ctx.Const(100, 32))};
    benchmark::DoNotOptimize(solver.MayBeTrue(constraints, ctx.Eq(x, ctx.Const(55, 32))));
  }
}
BENCHMARK(BM_BranchQuery);

// The same query answered by the cache on repeat.
void BM_BranchQueryCached(benchmark::State& state) {
  ExprContext ctx;
  Solver solver(&ctx);
  ExprRef x = ctx.Var(32, "x");
  std::vector<ExprRef> constraints = {ctx.Ult(x, ctx.Const(100, 32))};
  ExprRef cond = ctx.Eq(x, ctx.Const(55, 32));
  benchmark::DoNotOptimize(solver.MayBeTrue(constraints, cond));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.MayBeTrue(constraints, cond));
  }
}
BENCHMARK(BM_BranchQueryCached);

// Interval fast path: tautologies decided without SAT.
void BM_QuickDecide(benchmark::State& state) {
  ExprContext ctx;
  Solver solver(&ctx);
  ExprRef x = ctx.Var(8, "x");
  ExprRef cond = ctx.Ult(ctx.ZExt(x, 32), ctx.Const(0x1000, 32));
  std::vector<ExprRef> constraints;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.MayBeTrue(constraints, cond));
  }
}
BENCHMARK(BM_QuickDecide);

// Bit-blasting cost by operation: multiply is the expensive gate network.
void BM_SolveMultiply(benchmark::State& state) {
  uint8_t width = static_cast<uint8_t>(state.range(0));
  for (auto _ : state) {
    ExprContext ctx;
    Solver solver(&ctx);
    ExprRef x = ctx.Var(width, "x");
    // x * 7 == 91: unique odd-multiplier inversion.
    std::vector<ExprRef> constraints = {
        ctx.Eq(ctx.Mul(x, ctx.Const(7, width)), ctx.Const(91, width))};
    Assignment model;
    benchmark::DoNotOptimize(solver.IsSatisfiable(constraints, nullptr, &model));
  }
}
BENCHMARK(BM_SolveMultiply)->Arg(8)->Arg(16)->Arg(32);

void BM_SolveDivision(benchmark::State& state) {
  for (auto _ : state) {
    ExprContext ctx;
    Solver solver(&ctx);
    ExprRef x = ctx.Var(16, "x");
    std::vector<ExprRef> constraints = {
        ctx.Eq(ctx.UDiv(x, ctx.Const(10, 16)), ctx.Const(7, 16)),
        ctx.Eq(ctx.URem(x, ctx.Const(10, 16)), ctx.Const(3, 16))};
    Assignment model;
    benchmark::DoNotOptimize(solver.IsSatisfiable(constraints, nullptr, &model));
  }
}
BENCHMARK(BM_SolveDivision);

// Constraint-set slicing: query about one variable among many unrelated ones.
void BM_SlicedQuery(benchmark::State& state) {
  int unrelated = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExprContext ctx;
    Solver solver(&ctx);
    std::vector<ExprRef> constraints;
    for (int i = 0; i < unrelated; ++i) {
      ExprRef y = ctx.Var(32, "y");
      constraints.push_back(ctx.Ult(y, ctx.Const(1000 + i, 32)));
    }
    ExprRef x = ctx.Var(8, "x");
    constraints.push_back(ctx.Ult(x, ctx.Const(5, 8)));
    benchmark::DoNotOptimize(solver.MayBeTrue(constraints, ctx.Eq(x, ctx.Const(3, 8))));
  }
}
BENCHMARK(BM_SlicedQuery)->Arg(4)->Arg(32)->Arg(128);

// Model generation for bug reports: solve a conjunctive path of depth N.
void BM_GetInitialValues(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExprContext ctx;
    Solver solver(&ctx);
    Rng rng(7);
    std::vector<ExprRef> constraints;
    ExprRef acc = ctx.Var(32, "x0");
    for (int i = 0; i < depth; ++i) {
      ExprRef next = ctx.Var(32, "x");
      constraints.push_back(ctx.Ult(acc, ctx.Add(next, ctx.Const(rng.NextBelow(50) + 1, 32))));
      acc = next;
    }
    Assignment model;
    benchmark::DoNotOptimize(solver.GetInitialValues(constraints, &model));
  }
}
BENCHMARK(BM_GetInitialValues)->Arg(4)->Arg(16);

// Expression interning throughput (the hash-consing hot path).
void BM_ExprConstruction(benchmark::State& state) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.Add(x, ctx.Const(i++ & 0xFF, 32)));
  }
}
BENCHMARK(BM_ExprConstruction);

}  // namespace

BENCHMARK_MAIN();
