// Figures 2 and 3: basic-block coverage over time.
//
// Reproduces both plots for the same representative drivers the paper used
// (RTL8029, Intel Pro/100, Intel AC97): Figure 2 is *relative* coverage
// (fraction of the driver's basic blocks), Figure 3 is *absolute* covered
// block counts. Time is reported both as wall-clock milliseconds and as
// executed guest instructions (the deterministic "virtual time" axis).
//
// The expected shape (§5.2): a step pattern — each newly exercised entry
// point triggers a burst of fresh blocks, followed by a flat period while
// additional paths re-cover the same blocks — and curves that flatten once
// no new entry points remain.
//
// Usage: bench_coverage [--searcher=coverage-greedy|dfs|bfs|random]
// The searcher flag doubles as the state-selection ablation.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/coverage_report.h"
#include "src/core/ddt.h"
#include "src/drivers/asm_lib.h"
#include "src/drivers/corpus.h"
#include "src/vm/assembler.h"

namespace {

ddt::SearchStrategy ParseStrategy(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--searcher=", 11) == 0) {
      std::string name = argv[i] + 11;
      if (name == "dfs") {
        return ddt::SearchStrategy::kDfs;
      }
      if (name == "bfs") {
        return ddt::SearchStrategy::kBfs;
      }
      if (name == "random") {
        return ddt::SearchStrategy::kRandom;
      }
    }
  }
  return ddt::SearchStrategy::kCoverageGreedy;
}

}  // namespace

int main(int argc, char** argv) {
  ddt::SearchStrategy strategy = ParseStrategy(argc, argv);
  std::printf("Figures 2 & 3: coverage over time (searcher: %s)\n\n",
              ddt::SearchStrategyName(strategy));

  const char* drivers[] = {"rtl8029", "pro100", "ac97"};
  bool ok = true;

  for (const char* name : drivers) {
    const ddt::CorpusDriver& driver = ddt::CorpusDriverByName(name);
    ddt::DdtConfig config;
    config.engine.max_instructions = 2'500'000;
    config.engine.max_wall_ms = 120'000;
    config.engine.max_states = 768;
    config.engine.strategy = strategy;
    ddt::Ddt ddt_run(config);
    ddt::Result<ddt::DdtResult> result = ddt_run.TestDriver(driver.image, driver.pci);
    if (!result.ok()) {
      std::printf("LOAD FAILURE: %s\n", result.status().message().c_str());
      return 1;
    }
    const ddt::DdtResult& r = result.value();

    std::printf("--- %s: %zu total basic blocks, final coverage %zu (%.1f%%), %.0f ms ---\n",
                driver.pretty_name.c_str(), r.total_blocks, r.covered_blocks,
                100.0 * static_cast<double>(r.covered_blocks) /
                    static_cast<double>(r.total_blocks),
                r.stats.wall_ms);
    std::printf("%14s %12s %10s %12s\n", "instructions", "wall_ms", "blocks", "relative");
    // Print a decimated series (every sample would be thousands of lines).
    const std::vector<ddt::CoverageSample>& samples = r.coverage_samples;
    size_t stride = samples.size() > 40 ? samples.size() / 40 : 1;
    for (size_t i = 0; i < samples.size(); i += stride) {
      const ddt::CoverageSample& s = samples[i];
      std::printf("%14llu %12.1f %10zu %11.1f%%\n",
                  static_cast<unsigned long long>(s.instructions), s.wall_ms, s.covered_blocks,
                  100.0 * static_cast<double>(s.covered_blocks) /
                      static_cast<double>(r.total_blocks));
    }
    if (!samples.empty() && samples.back().covered_blocks != r.covered_blocks) {
      const ddt::CoverageSample& s = samples.back();
      std::printf("%14llu %12.1f %10zu %11.1f%%\n",
                  static_cast<unsigned long long>(s.instructions), s.wall_ms, s.covered_blocks,
                  100.0 * static_cast<double>(s.covered_blocks) /
                      static_cast<double>(r.total_blocks));
    }

    // Per-function attribution: how broadly exploration spread.
    {
      std::map<uint32_t, std::string> symbols;
      for (const auto& [sym_name, addr] : driver.assembled.symbols) {
        symbols[addr] = sym_name;
      }
      ddt::CoverageReport fn_report =
          ddt::BuildCoverageReport(ddt_run.engine().cfg(),
                                   ddt_run.engine().covered_block_leaders(),
                                   driver.assembled.functions, &symbols);
      size_t touched = 0;
      for (const ddt::FunctionCoverage& fn : fn_report.functions) {
        touched += fn.covered > 0 ? 1 : 0;
      }
      std::printf("functions touched: %zu / %zu\n", touched, fn_report.functions.size());
    }

    // Shape checks: the curve is non-trivial, monotone (by construction) and
    // flattens: the last 10% of the run discovers <30% of the blocks.
    if (samples.size() < 10) {
      std::printf("!! too few samples\n");
      ok = false;
    } else {
      uint64_t total_insns = samples.back().instructions;
      size_t at_90 = 0;
      for (const ddt::CoverageSample& s : samples) {
        if (s.instructions <= total_insns * 9 / 10) {
          at_90 = s.covered_blocks;
        }
      }
      double tail_fraction =
          static_cast<double>(r.covered_blocks - at_90) / static_cast<double>(r.covered_blocks);
      std::printf("flattening: %.1f%% of blocks discovered in the last 10%% of the run\n",
                  100.0 * tail_fraction);
      ok &= tail_fraction < 0.3;
    }
    std::printf("\n");
  }

  // Searcher ablation (design choice #2 in DESIGN.md; §4.3): the paper's
  // coverage-greedy heuristic "avoids states that are stuck, for instance,
  // in polling loops (typical of device drivers)". The ablation driver polls
  // a device-ready register — every poll iteration forks on the symbolic
  // read, so a naive searcher can spend the whole budget inside the loop
  // while the post-initialization code (a large diagnostic surface) starves.
  std::string polling_source = R"(
    .driver "polling"
    .entry driver_entry
    .code
    .func driver_entry
      la r0, entry_table
      kcall MosRegisterDriver
      ret
    .func ep_init
      push {r4, lr}
      movi r0, 0
      kcall MosMapIoSpace
      mov r4, r0
    wait_ready:
      ld32 r1, [r4+0]          ; device status (symbolic: forks every poll)
      andi r1, r1, 1
      bnz r1, device_ready
      br wait_ready            ; not ready: poll again
    device_ready:
      movi r0, 0
      pop {r4, lr}
      ret
    .func ep_diag
      push lr
      call poll_diag_dispatch
      pop lr
      ret
  )";
  polling_source += ddt::GenerateDiagDispatch("poll_diag", 48);
  polling_source += ddt::GenerateFillerFunctions("poll_diag", 48, 0x9011, 2, 4);
  polling_source += "\n  .data\n";
  polling_source += ddt::EntryTable("ep_init", "", "", "", "", "", "", "ep_diag");
  ddt::DriverImage polling_image = ddt::Assemble(polling_source).value().image;
  ddt::PciDescriptor polling_pci;
  polling_pci.vendor_id = 0x9011;
  polling_pci.device_id = 1;
  polling_pci.bars.push_back(ddt::PciBar{0x100});

  std::printf("searcher ablation (polling-loop driver, 120k-instruction budget):\n");
  std::printf("%-18s %10s %10s\n", "strategy", "covered", "blocks%");
  size_t greedy_covered = 0;
  size_t dfs_covered = 0;
  for (ddt::SearchStrategy s :
       {ddt::SearchStrategy::kCoverageGreedy, ddt::SearchStrategy::kDfs,
        ddt::SearchStrategy::kBfs, ddt::SearchStrategy::kRandom}) {
    ddt::DdtConfig config;
    config.engine.max_instructions = 120000;
    // Lift the engine's own anti-dive safeguards (fork-depth and state caps
    // would otherwise bail naive searchers out of the loop) so the ablation
    // isolates the state-selection policy itself.
    config.engine.max_states = 100000;
    config.engine.max_fork_depth = 1 << 20;
    config.engine.strategy = s;
    ddt::Ddt ddt_run(config);
    ddt::Result<ddt::DdtResult> result = ddt_run.TestDriver(polling_image, polling_pci);
    if (result.ok()) {
      const ddt::DdtResult& r = result.value();
      std::printf("%-18s %10zu %9.1f%%\n", ddt::SearchStrategyName(s), r.covered_blocks,
                  100.0 * static_cast<double>(r.covered_blocks) /
                      static_cast<double>(r.total_blocks));
      if (s == ddt::SearchStrategy::kCoverageGreedy) {
        greedy_covered = r.covered_blocks;
      }
      if (s == ddt::SearchStrategy::kDfs) {
        dfs_covered = r.covered_blocks;
      }
    }
  }
  ok &= greedy_covered > dfs_covered;  // the heuristic escapes the loop
  std::printf("\n%s\n", ok ? "FIGURES 2/3 SHAPE: REPRODUCED (stepped growth, flattening curves)"
                           : "FIGURES 2/3 SHAPE: FAILED");
  return ok ? 0 : 1;
}
