// Table 1: "Characteristics of Windows drivers used to evaluate DDT."
//
// Prints the same columns for the corpus drivers (binary file size, code
// segment size, number of functions, number of imported kernel functions,
// source availability) and verifies that the paper's relative orderings
// hold. Absolute sizes are smaller — these are synthetic drivers for a
// synthetic ISA — but who-is-bigger-than-whom is preserved column by column.
#include <cstdio>
#include <string>
#include <vector>

#include "src/drivers/corpus.h"

int main() {
  using ddt::Corpus;
  using ddt::CorpusDriver;

  std::printf("Table 1: characteristics of the corpus drivers\n");
  std::printf("(paper's ordering per column in parentheses; ours must match)\n\n");
  std::printf("%-22s %12s %14s %11s %10s %8s\n", "Tested Driver", "Binary (B)", "Code seg (B)",
              "Functions", "Imports", "Source?");
  std::printf("%s\n", std::string(82, '-').c_str());
  for (const CorpusDriver& driver : Corpus()) {
    std::printf("%-22s %12zu %14zu %11zu %10zu %8s\n", driver.pretty_name.c_str(),
                driver.image.BinaryFileSize(), driver.image.CodeSegmentSize(),
                driver.assembled.functions.size(), driver.image.imports.size(),
                driver.name == "pro100" ? "Yes" : "No");
  }

  auto by_name = [](const char* name) -> const CorpusDriver& {
    return ddt::CorpusDriverByName(name);
  };
  struct OrderCheck {
    const char* column;
    std::vector<const char*> order;
  };
  std::vector<OrderCheck> checks = {
      {"binary size", {"pro1000", "pro100", "ac97", "audiopci", "pcnet", "rtl8029"}},
      {"functions", {"pro1000", "audiopci", "ac97", "pro100", "pcnet", "rtl8029"}},
      {"imports", {"pro1000", "pro100", "audiopci", "pcnet", "rtl8029", "ac97"}},
  };
  bool all_ok = true;
  for (const OrderCheck& check : checks) {
    bool ok = true;
    for (size_t i = 0; i + 1 < check.order.size(); ++i) {
      size_t a;
      size_t b;
      if (std::string(check.column) == "binary size") {
        a = by_name(check.order[i]).image.BinaryFileSize();
        b = by_name(check.order[i + 1]).image.BinaryFileSize();
      } else if (std::string(check.column) == "functions") {
        a = by_name(check.order[i]).assembled.functions.size();
        b = by_name(check.order[i + 1]).assembled.functions.size();
      } else {
        a = by_name(check.order[i]).image.imports.size();
        b = by_name(check.order[i + 1]).image.imports.size();
      }
      ok &= a > b;
    }
    std::printf("\nordering check [%s]: %s", check.column, ok ? "MATCHES Table 1" : "MISMATCH");
    all_ok &= ok;
  }
  std::printf("\n\n%s\n", all_ok ? "TABLE 1 SHAPE: REPRODUCED" : "TABLE 1 SHAPE: FAILED");
  return all_ok ? 0 : 1;
}
