// §5.2 memory behavior + the chained copy-on-write design ablation (§4.1.3).
//
// The paper's justification for chained COW is that forking must be cheap
// ("instead of copying the entire state upon an execution fork, DDT creates
// an empty memory object containing a pointer to the parent object").
// google-benchmark timings compare chained-COW forking against the eager
// full-copy alternative at several written-set sizes, and a whole-engine run
// compares end-to-end exploration cost and bytes copied under both modes.
#include <benchmark/benchmark.h>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/vm/guest_memory.h"

namespace {

// Forking cost as a function of how much the parent has written.
void BM_ForkChainedCow(benchmark::State& state) {
  size_t writes = static_cast<size_t>(state.range(0));
  ddt::MemStats stats;
  ddt::GuestMemory mem;
  mem.set_stats(&stats);
  for (size_t i = 0; i < writes; ++i) {
    mem.WriteByte(static_cast<uint32_t>(i * 7), ddt::MemByte::Concrete(static_cast<uint8_t>(i)));
  }
  for (auto _ : state) {
    ddt::GuestMemory child = mem.Fork();
    benchmark::DoNotOptimize(child.ReadByte(0));
  }
  state.counters["bytes_copied_per_fork"] =
      static_cast<double>(stats.bytes_copied) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ForkChainedCow)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ForkEagerCopy(benchmark::State& state) {
  size_t writes = static_cast<size_t>(state.range(0));
  ddt::MemStats stats;
  ddt::GuestMemory mem;
  mem.set_stats(&stats);
  mem.set_eager_fork(true);
  for (size_t i = 0; i < writes; ++i) {
    mem.WriteByte(static_cast<uint32_t>(i * 7), ddt::MemByte::Concrete(static_cast<uint8_t>(i)));
  }
  for (auto _ : state) {
    ddt::GuestMemory child = mem.Fork();
    benchmark::DoNotOptimize(child.ReadByte(0));
  }
  state.counters["bytes_copied_per_fork"] =
      static_cast<double>(stats.bytes_copied) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ForkEagerCopy)->Arg(256)->Arg(4096)->Arg(65536);

// Deep chains: the read path that motivates the leaf read cache.
void BM_ReadThroughDeepChain(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  ddt::GuestMemory mem;
  mem.WriteByte(42, ddt::MemByte::Concrete(7));
  std::vector<ddt::GuestMemory> generations;
  for (int i = 0; i < depth; ++i) {
    generations.push_back(mem.Fork());
    mem = std::move(generations.back());
    mem.WriteByte(static_cast<uint32_t>(1000 + i), ddt::MemByte::Concrete(1));
  }
  uint32_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.ReadByte(42 + (addr++ % 1)));
  }
}
BENCHMARK(BM_ReadThroughDeepChain)->Arg(8)->Arg(32)->Arg(64);

// End-to-end: a whole DDT run on rtl8029 under both forking disciplines.
void BM_EngineRun(benchmark::State& state, bool eager) {
  const ddt::CorpusDriver& driver = ddt::CorpusDriverByName("rtl8029");
  uint64_t bytes_copied = 0;
  uint64_t forks = 0;
  for (auto _ : state) {
    ddt::DdtConfig config;
    config.engine.max_instructions = 400000;
    config.engine.max_states = 256;
    config.engine.eager_cow = eager;
    ddt::Ddt ddt_run(config);
    ddt::Result<ddt::DdtResult> result = ddt_run.TestDriver(driver.image, driver.pci);
    if (result.ok()) {
      bytes_copied += result.value().mem_stats.bytes_copied;
      forks += result.value().mem_stats.forks;
    }
  }
  state.counters["mem_bytes_copied"] =
      static_cast<double>(bytes_copied) / static_cast<double>(state.iterations());
  state.counters["memory_forks"] =
      static_cast<double>(forks) / static_cast<double>(state.iterations());
}
void BM_EngineRunChained(benchmark::State& state) { BM_EngineRun(state, false); }
void BM_EngineRunEager(benchmark::State& state) { BM_EngineRun(state, true); }
BENCHMARK(BM_EngineRunChained)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_EngineRunEager)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

BENCHMARK_MAIN();
