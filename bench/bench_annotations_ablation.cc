// §5.1 annotations ablation: "we re-tested these drivers with all
// annotations turned off. We managed to reproduce all the race condition
// bugs ... We also found the hardware-related bugs ... However, removing the
// annotations resulted in decreased code coverage, so we did not find the
// memory leaks and the segmentation faults."
//
// Reruns the whole corpus twice (standard annotations vs none) and reports,
// per seeded bug, whether each mode found it, plus the coverage drop.
#include <cstdio>
#include <set>
#include <string>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"

namespace {

ddt::DdtConfig BenchConfig(bool annotations) {
  ddt::DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_wall_ms = 120'000;
  config.engine.max_states = 512;
  config.use_standard_annotations = annotations;
  return config;
}

bool Found(const ddt::DdtResult& result, const ddt::ExpectedBug& want,
           std::set<size_t>* used) {
  for (size_t i = 0; i < result.bugs.size(); ++i) {
    if (used->count(i) == 0 && result.bugs[i].type == want.type &&
        result.bugs[i].title.find(want.keyword) != std::string::npos) {
      used->insert(i);
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  std::printf("Annotations ablation (Section 5.1)\n\n");
  std::printf("%-12s %-55s %6s %8s %10s\n", "driver", "bug", "with", "without", "ann-needed");
  std::printf("%s\n", std::string(96, '-').c_str());

  bool ok = true;
  size_t with_total = 0;
  size_t without_total = 0;
  double cov_with = 0;
  double cov_without = 0;

  for (const ddt::CorpusDriver& driver : ddt::Corpus()) {
    ddt::Ddt with_run(BenchConfig(true));
    ddt::DdtResult with = with_run.TestDriver(driver.image, driver.pci).take();
    ddt::Ddt without_run(BenchConfig(false));
    ddt::DdtResult without = without_run.TestDriver(driver.image, driver.pci).take();

    cov_with += with.total_blocks == 0
                    ? 0
                    : static_cast<double>(with.covered_blocks) /
                          static_cast<double>(with.total_blocks);
    cov_without += without.total_blocks == 0
                       ? 0
                       : static_cast<double>(without.covered_blocks) /
                             static_cast<double>(without.total_blocks);

    std::set<size_t> used_with;
    std::set<size_t> used_without;
    for (const ddt::ExpectedBug& want : driver.expected) {
      bool found_with = Found(with, want, &used_with);
      bool found_without = Found(without, want, &used_without);
      with_total += found_with ? 1 : 0;
      without_total += found_without ? 1 : 0;
      std::printf("%-12s %-55.55s %6s %8s %10s\n", driver.name.c_str(),
                  want.description.c_str(), found_with ? "yes" : "NO",
                  found_without ? "yes" : "no", want.needs_annotations ? "yes" : "no");
      // Shape assertions: everything is found WITH annotations; the
      // annotation-independent bugs (races, interrupt bugs) survive the
      // ablation; the annotation-dependent ones (leaks, segfaults driven by
      // registry values / allocation failures / symbolic request arguments)
      // are missed without them.
      ok &= found_with;
      if (!want.needs_annotations) {
        ok &= found_without;
      } else {
        ok &= !found_without;
      }
    }
  }

  std::printf("%s\n", std::string(96, '-').c_str());
  std::printf("\nbugs found:     with annotations %zu/14, without %zu/14\n", with_total,
              without_total);
  std::printf("mean coverage:  with annotations %.1f%%, without %.1f%%\n",
              100.0 * cov_with / 6.0, 100.0 * cov_without / 6.0);
  std::printf("\n%s\n", ok ? "ANNOTATIONS ABLATION SHAPE: REPRODUCED (races + hardware bugs "
                             "survive; leaks and segfaults need annotations)"
                           : "ANNOTATIONS ABLATION SHAPE: FAILED");
  return ok ? 0 : 1;
}
