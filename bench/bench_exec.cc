// Execution-performance benchmark for the translation cache and the parallel
// fault-campaign scheduler.
//
//   part 1: interpreter throughput (instructions/sec), block cache off vs on,
//           on a synthetic concrete tight loop (fetch-dominated) and on the
//           RTL8029 corpus driver (realistic mix), with bug-set parity checked;
//   part 2: fault-campaign wall time at 1/2/4 worker threads over the same
//           plan set, with merged-bug parity checked across thread counts;
//   part 3: campaign-supervisor overhead — the same campaign with the
//           checkpoint journal on, which must stay near the unjournaled wall
//           time (crash-safe resume is supposed to be free until it's needed);
//   part 4: observability overhead — the interpreter run and the campaign with
//           every obs sink wired (tracer recording, metrics, per-pass profile)
//           vs the runtime kill switch, gated at <= 5% because the probes stay
//           off the per-instruction path;
//   part 5: shared solver cache — cold persist vs warm start from disk, gated
//           on a real wall-time win with verdicts and report unchanged;
//   part 6: fleet overhead — the same campaign through the multi-process
//           coordinator with a single worker vs in-process threads=1. Process
//           isolation costs a fork, a warm-up, heartbeats, and pipe framing
//           per pass; that tax must stay <= 10% and the deterministic report
//           byte-identical.
//   part 7: superblock tier-2 execution — uncached interpretation vs the
//           block-cached interpreter vs superblock threaded code, on the
//           tight loop and on a concrete diag-heavy RTL8029 workload
//           (scripted device, no symbolic data: the all-concrete shape tier 2
//           is built for). Gated at >= 3x tier-2 over uncached on rtl8029,
//           with bug parity across all three tiers re-checked under the full
//           default checker set.
//   part 8: fuzz concrete-executor throughput — solver-derived seeds replayed
//           down the pure concrete fast path (src/fuzz/executor.h: guided
//           mode, no solver) with tier 2 on vs the uncached interpreter,
//           against the per-pass rate of the symbolic exploration that derived
//           them. The concolic loop only pays off if a concrete exec is far
//           cheaper than a symbolic pass; gated at >= 10x execs/sec over
//           symbolic passes/sec.
//   part 9: path-explosion control — the fault_farm and solver_farm campaigns
//           with every pathctl control off vs on (diamond state merging +
//           coverage-starved back-edge kills, src/engine/pathctl.h). The
//           controls must find the identical bug set per bench while creating
//           >= 30% fewer states in aggregate and making strictly fewer SAT
//           calls: merging collapses solver_farm's 2^6 branch-diamond leaves.
//           fault_farm is the no-harm leg: its error-path spins are ended by
//           the loop checker's 100k-step heuristic before the back-edge kill
//           threshold is reachable, so controls-on must leave its states,
//           instructions, and bugs untouched.
//
// Emits a machine-readable JSON summary (default: BENCH_exec.json in the
// current directory; override with argv[1]).
#include <cstdlib>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/fleet/fleet.h"
#include "src/fuzz/executor.h"
#include "src/fuzz/input.h"
#include "src/hw/device.h"
#include "src/kernel/api.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace_events.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"
#include "src/vm/assembler.h"

namespace {

using namespace ddt;

PciDescriptor LoopPci() {
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  return pci;
}

// Concrete counted loop, 5 instructions per iteration, no kernel calls or
// symbolic data inside: per-step fetch cost dominates, which is exactly what
// the cache removes.
DriverImage TightLoopImage() {
  static const char* kSource = R"(
  .driver "tight_loop"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r1, 0
    movi r2, 120000
  loop:
    addi r1, r1, 1
    xor r3, r1, r2
    add r4, r1, r3
    subi r2, r2, 1
    bnz r2, loop
    movi r0, 0
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  Result<AssembledDriver> assembled = Assemble(kSource);
  if (!assembled.ok()) {
    std::fprintf(stderr, "tight_loop assembly failed: %s\n", assembled.error().c_str());
    std::exit(1);
  }
  return assembled.value().image;
}

struct InterpRun {
  double ips = 0;
  uint64_t instructions = 0;
  std::vector<std::string> bug_rows;
};

InterpRun RunInterp(const DriverImage& image, const PciDescriptor& pci, bool cache,
                    bool checkers, uint64_t max_instructions, int reps,
                    bool with_obs = false) {
  InterpRun best;
  for (int rep = 0; rep < reps; ++rep) {
    obs::MetricsRegistry metrics;
    obs::PassProfile profile;
    DdtConfig config;
    config.engine.max_instructions = max_instructions;
    config.engine.max_wall_ms = 3'600'000;  // never hit: cutoffs are instruction-determined
    config.engine.enable_block_cache = cache;
    config.use_default_checkers = checkers;
    if (with_obs) {
      config.engine.metrics = &metrics;
      config.engine.profile = &profile;
    }
    Ddt ddt(config);
    Result<DdtResult> r = ddt.TestDriver(image, pci);
    if (!r.ok()) {
      std::fprintf(stderr, "run failed: %s\n", r.status().message().c_str());
      std::exit(1);
    }
    const DdtResult& result = r.value();
    double ips = result.stats.wall_ms > 0
                     ? static_cast<double>(result.stats.instructions) /
                           (result.stats.wall_ms / 1000.0)
                     : 0;
    if (ips > best.ips) {
      best.ips = ips;
      best.instructions = result.stats.instructions;
    }
    if (rep == 0) {
      for (const Bug& bug : result.bugs) {
        best.bug_rows.push_back(bug.Row());
      }
    }
  }
  return best;
}

// Campaign workload: a driver with 12 independent allocation fault sites in
// init, each of whose failure paths runs a long concrete retry/backoff loop
// before reporting failure. Every generated fault plan therefore costs real
// engine time (unlike corpus drivers, where an injected init failure usually
// kills the pass within microseconds) — exactly the shape where the parallel
// scheduler pays off. The happy path allocates and returns quickly, keeping
// the (inherently sequential) baseline pass cheap.
DriverImage FaultFarmImage() {
  std::string allocs;
  for (int i = 0; i < 12; ++i) {
    allocs +=
        "    movi r0, 64\n"
        "    kcall MosAllocatePool\n"
        "    bz r0, fail\n";
  }
  std::string source = R"(
  .driver "fault_farm"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
)" + allocs + R"(
    movi r0, 0
    ret
  fail:
    movi r1, 300000
  spin:
    subi r1, r1, 1
    bnz r1, spin
    movi r0, 1
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  Result<AssembledDriver> assembled = Assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "fault_farm assembly failed: %s\n", assembled.error().c_str());
    std::exit(1);
  }
  return assembled.value().image;
}

// Shared-cache workload: the interesting work happens *before* the fault
// sites. Init reads four device registers (symbolic), masks each to 14 bits,
// and branches on a squared-and-masked product — bit-blasting 32-bit
// multiplies is exactly the query shape where SAT time dominates. Only then
// come six allocation fault sites, so every generated fault plan re-executes
// the identical symbolic prefix and re-asks the identical queries: a cold
// campaign solves each canonical query once (later passes hit the in-memory
// shared cache), and a warm-started campaign solves none of them.
DriverImage SolverFarmImage() {
  // Each round branches on (C_i * x_i^2) & 0xFFFFF == D_i for a fresh device
  // read x_i: a quadratic-preimage query the SAT core has to genuinely search
  // (32-bit multiplies under a 20-bit mask). The rounds use distinct
  // constants, so they are distinct canonical queries; but each round's
  // condition touches only its own variable, so constraint slicing gives
  // every pass, every path, the *same* canonical query per round — the exact
  // shape the shared cache converts from solved-per-pass to solved-once.
  static const unsigned kMults[6] = {77, 131, 197, 241, 311, 389};
  static const unsigned kTargets[6] = {0x1234, 0x35A7, 0x77E1, 0x2B6D, 0x5C3F, 0x6E15};
  std::string rounds;
  for (int i = 0; i < 6; ++i) {
    rounds += StrFormat(
        "    ld32 r1, [r5+%d]\n"
        "    andi r1, r1, 0xFFFFF\n"
        "    muli r2, r1, %u\n"
        "    mul r2, r2, r1\n"
        "    andi r3, r2, 0xFFFFF\n"
        "    subi r3, r3, %u\n"
        "    bz r3, round%d_hit\n"
        "    addi r6, r6, 1\n"
        "  round%d_hit:\n",
        i * 4, kMults[i], kTargets[i], i, i);
  }
  std::string allocs;
  for (int i = 0; i < 6; ++i) {
    allocs +=
        "    movi r0, 64\n"
        "    kcall MosAllocatePool\n"
        "    bz r0, alloc_failed\n";
  }
  std::string source = R"(
  .driver "solver_farm"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r6, 0
    movi r0, 0
    kcall MosMapIoSpace
    bz r0, map_failed
    addi r5, r0, 0
)" + rounds + allocs + R"(
    movi r0, 0
    ret
  map_failed:
    movi r0, 0xC000009A
    ret
  alloc_failed:
    movi r0, 0xC0000017
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  Result<AssembledDriver> assembled = Assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "solver_farm assembly failed: %s\n", assembled.error().c_str());
    std::exit(1);
  }
  return assembled.value().image;
}

struct CampaignRun {
  double wall_ms = 0;
  double passes_sum_ms = 0;
  size_t plans = 0;
  std::vector<std::string> bug_rows;
};

CampaignRun RunCampaign(const DriverImage& image, const PciDescriptor& pci, uint32_t threads,
                        const std::string& journal_path = std::string(),
                        bool with_obs = false) {
  FaultCampaignConfig config;
  config.journal_path = journal_path;
  config.collect_metrics = with_obs;
  config.collect_profile = with_obs;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 3'600'000;
  // Error-path exploration comes from the campaign's deterministic plans;
  // the alloc-failure annotation would redundantly fork the same paths in
  // every pass including the baseline.
  config.base.use_standard_annotations = false;
  config.max_passes = 16;
  config.max_occurrences_per_class = 8;
  config.escalation_rounds = 1;
  config.threads = threads;
  Result<FaultCampaignResult> r = RunFaultCampaign(config, image, pci);
  if (!r.ok()) {
    std::fprintf(stderr, "campaign (threads=%u) failed: %s\n", threads,
                 r.status().message().c_str());
    std::exit(1);
  }
  CampaignRun out;
  out.wall_ms = r.value().campaign_wall_ms;
  out.passes_sum_ms = r.value().total_wall_ms;
  out.plans = r.value().passes.size() - 1;  // minus baseline
  for (const Bug& bug : r.value().bugs) {
    out.bug_rows.push_back(bug.Row());
  }
  return out;
}

// The fault_farm campaign once more, in-process (threads=1) or through the
// fleet coordinator with `workers` worker processes — identical schedule, so
// the wall-time ratio is pure process-isolation tax and the deterministic
// reports must match byte for byte.
struct FleetRun {
  double wall_ms = 0;
  std::string deterministic_report;
};

FleetRun RunFleetBench(const DriverImage& image, const PciDescriptor& pci, uint32_t workers) {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 3'600'000;
  config.base.use_standard_annotations = false;
  config.max_passes = 16;
  config.max_occurrences_per_class = 8;
  config.escalation_rounds = 1;
  config.threads = 1;
  Result<FaultCampaignResult> r = [&]() {
    if (workers == 0) {
      return RunFaultCampaign(config, image, pci);
    }
    char shard_template[] = "/tmp/ddt_bench_fleet.XXXXXX";
    char* shard_dir = ::mkdtemp(shard_template);
    if (shard_dir == nullptr) {
      return Result<FaultCampaignResult>(Status::Error("mkdtemp failed"));
    }
    fleet::FleetCampaignConfig fc;
    fc.workers = workers;
    fc.shard_dir = shard_dir;
    return fleet::RunFleetCampaign(config, image, pci, fc);
  }();
  if (!r.ok()) {
    std::fprintf(stderr, "fleet bench campaign (workers=%u) failed: %s\n", workers,
                 r.status().message().c_str());
    std::exit(1);
  }
  FleetRun out;
  out.wall_ms = r.value().campaign_wall_ms;
  out.deterministic_report = r.value().FormatReport("fault_farm", /*include_volatile=*/false);
  return out;
}

// One shared-cache campaign over the solver_farm driver. `path` empty = cache
// off; non-empty = cache on with on-disk persistence at that path (a fresh
// path is a cold run, an existing file a warm start).
struct CacheCampaignRun {
  double wall_ms = 0;
  std::string deterministic_report;
  std::vector<std::string> bug_rows;
  SolverStats solver;
  uint64_t loaded_entries = 0;
  uint64_t saved_entries = 0;
};

CacheCampaignRun RunCacheCampaign(const DriverImage& image, const PciDescriptor& pci,
                                  const std::string& path) {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 3'600'000;
  config.base.use_standard_annotations = false;
  config.max_passes = 8;
  config.escalation_rounds = 0;
  config.threads = 1;  // isolate cache effect from scheduler effects
  config.shared_cache = !path.empty();
  config.shared_cache_path = path;
  Result<FaultCampaignResult> r = RunFaultCampaign(config, image, pci);
  if (!r.ok()) {
    std::fprintf(stderr, "shared-cache campaign failed: %s\n", r.status().message().c_str());
    std::exit(1);
  }
  CacheCampaignRun out;
  out.wall_ms = r.value().campaign_wall_ms;
  out.deterministic_report = r.value().FormatReport("solver_farm", /*include_volatile=*/false);
  for (const Bug& bug : r.value().bugs) {
    out.bug_rows.push_back(bug.Row());
  }
  out.solver = r.value().total_solver_stats;
  out.loaded_entries = r.value().shared_cache_loaded_entries;
  out.saved_entries = r.value().shared_cache_saved_entries;
  return out;
}

// One campaign with the path-explosion controls off or on, everything else
// identical (threads=1 isolates the control effect from scheduler effects;
// superblocks stay off so the tier-1 merge point is the one exercised).
struct PathCtlRun {
  double wall_ms = 0;
  uint64_t states_created = 0;
  uint64_t states_merged = 0;
  uint64_t loop_kills = 0;
  uint64_t edge_kills = 0;
  uint64_t sat_calls = 0;
  uint64_t instructions = 0;
  std::vector<std::string> bug_rows;
};

PathCtlRun RunPathCtlCampaign(const DriverImage& image, const PciDescriptor& pci,
                              bool controls_on) {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 3'600'000;
  config.base.use_standard_annotations = false;
  config.max_passes = 16;
  config.max_occurrences_per_class = 8;
  config.escalation_rounds = 1;
  config.threads = 1;
  config.base.engine.pathctl.enabled = controls_on;
  Result<FaultCampaignResult> r = RunFaultCampaign(config, image, pci);
  if (!r.ok()) {
    std::fprintf(stderr, "pathctl campaign (controls %s) failed: %s\n",
                 controls_on ? "on" : "off", r.status().message().c_str());
    std::exit(1);
  }
  PathCtlRun out;
  out.wall_ms = r.value().campaign_wall_ms;
  out.states_created = r.value().total_stats.states_created;
  out.states_merged = r.value().total_stats.states_merged;
  out.loop_kills = r.value().total_stats.loop_kills;
  out.edge_kills = r.value().total_stats.edge_kills;
  out.instructions = r.value().total_stats.instructions;
  out.sat_calls = r.value().total_solver_stats.sat_calls;
  for (const Bug& bug : r.value().bugs) {
    out.bug_rows.push_back(bug.Row());
  }
  // Merging reorders within-pass discovery; the gate is set identity.
  std::sort(out.bug_rows.begin(), out.bug_rows.end());
  return out;
}

// Diag-heavy concrete workload for the tier comparison: ep_diag walks a
// binary dispatch tree into filler branch diamonds — pure static ALU/branch
// work (~34 instructions per step) with no MMIO inside the hot region, so
// tier 2 gets to retire the bulk of it from threaded code while each step
// still crosses a real entry/exit boundary (side exit at `ret`).
std::vector<WorkloadStep> DiagWorkload(int reps) {
  std::vector<WorkloadStep> steps;
  WorkloadStep init;
  init.slot = kEpInitialize;
  steps.push_back(init);
  for (int i = 0; i < reps; ++i) {
    WorkloadStep step;
    step.slot = kEpDiag;
    step.plan = WorkloadStep::ArgPlan::kDiagCode;
    step.param = static_cast<uint32_t>(i % 18);
    step.only_if_init_ok = true;
    steps.push_back(step);
  }
  WorkloadStep halt;
  halt.slot = kEpHalt;
  halt.only_if_init_ok = true;
  steps.push_back(halt);
  return steps;
}

struct TierRun {
  double ips = 0;
  uint64_t instructions = 0;
  uint64_t sb_compiled = 0;
  uint64_t sb_entries = 0;
  uint64_t sb_chains = 0;
  uint64_t sb_side_exits = 0;
  uint64_t sb_retired = 0;
  std::vector<std::string> bug_rows;
};

// One fully concrete run at execution tier 0 (uncached interpreter), 1
// (block-cached interpreter), or 2 (superblock threaded code): scripted
// device, fixed seed, no symbolic interrupts — every tier executes the exact
// same instruction stream, so ips ratios are pure execution-engine cost.
TierRun RunTier(const DriverImage& image, const PciDescriptor& pci, int tier,
                const std::vector<WorkloadStep>* workload, bool checkers, int reps) {
  TierRun best;
  for (int rep = 0; rep < reps; ++rep) {
    DdtConfig config;
    config.engine.max_instructions = 8'000'000;
    config.engine.max_wall_ms = 3'600'000;
    config.engine.enable_block_cache = tier >= 1;
    config.engine.superblocks = tier >= 2;
    config.engine.enable_symbolic_interrupts = false;
    config.engine.seed = 7;
    config.use_standard_annotations = false;
    config.use_default_checkers = checkers;
    if (workload != nullptr) {
      config.workload = *workload;
    }
    Ddt ddt(config);
    ddt.SetDevice(std::make_unique<ScriptedDevice>(std::vector<uint32_t>{}, 42));
    Result<DdtResult> r = ddt.TestDriver(image, pci);
    if (!r.ok()) {
      std::fprintf(stderr, "tier %d run failed: %s\n", tier, r.status().message().c_str());
      std::exit(1);
    }
    const DdtResult& result = r.value();
    double ips = result.stats.wall_ms > 0
                     ? static_cast<double>(result.stats.instructions) /
                           (result.stats.wall_ms / 1000.0)
                     : 0;
    if (ips > best.ips) {
      best.ips = ips;
      best.instructions = result.stats.instructions;
      best.sb_compiled = result.stats.superblocks_compiled;
      best.sb_entries = result.stats.superblock_entries;
      best.sb_chains = result.stats.superblock_chains;
      best.sb_side_exits = result.stats.superblock_side_exits;
      best.sb_retired = result.stats.superblock_instructions;
    }
    if (rep == 0) {
      for (const Bug& bug : result.bugs) {
        best.bug_rows.push_back(bug.Row());
      }
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_exec.json";

  // --- part 1: interpreter throughput --------------------------------------
  std::printf("=== interpreter throughput (block cache off vs on) ===\n");
  DriverImage loop_image = TightLoopImage();
  InterpRun loop_off = RunInterp(loop_image, LoopPci(), /*cache=*/false,
                                 /*checkers=*/false, 2'000'000, 3);
  InterpRun loop_on = RunInterp(loop_image, LoopPci(), /*cache=*/true,
                                /*checkers=*/false, 2'000'000, 3);
  double loop_speedup = loop_off.ips > 0 ? loop_on.ips / loop_off.ips : 0;
  std::printf("tight_loop: %.0f -> %.0f insns/sec (%.2fx), %llu insns\n", loop_off.ips,
              loop_on.ips, loop_speedup,
              static_cast<unsigned long long>(loop_on.instructions));

  const CorpusDriver& rtl = CorpusDriverByName("rtl8029");
  InterpRun rtl_off =
      RunInterp(rtl.image, rtl.pci, /*cache=*/false, /*checkers=*/true, 60000, 3);
  InterpRun rtl_on =
      RunInterp(rtl.image, rtl.pci, /*cache=*/true, /*checkers=*/true, 60000, 3);
  double rtl_speedup = rtl_off.ips > 0 ? rtl_on.ips / rtl_off.ips : 0;
  bool interp_bugs_identical =
      loop_off.bug_rows == loop_on.bug_rows && rtl_off.bug_rows == rtl_on.bug_rows;
  std::printf("rtl8029:    %.0f -> %.0f insns/sec (%.2fx), bugs identical: %s\n", rtl_off.ips,
              rtl_on.ips, rtl_speedup, interp_bugs_identical ? "yes" : "NO");

  // --- part 2: campaign scaling --------------------------------------------
  std::printf("\n=== fault-campaign wall time vs worker threads ===\n");
  DriverImage farm_image = FaultFarmImage();
  PciDescriptor farm_pci = LoopPci();
  std::vector<uint32_t> thread_counts = {1, 2, 4};
  std::vector<CampaignRun> runs;
  for (uint32_t threads : thread_counts) {
    runs.push_back(RunCampaign(farm_image, farm_pci, threads));
    std::printf("threads=%u: %.1f ms wall (passes sum %.1f ms) over %zu plans\n", threads,
                runs.back().wall_ms, runs.back().passes_sum_ms, runs.back().plans);
  }
  bool campaign_bugs_identical = true;
  for (const CampaignRun& run : runs) {
    campaign_bugs_identical &= run.bug_rows == runs[0].bug_rows;
  }
  double campaign_speedup = runs.back().wall_ms > 0 ? runs[0].wall_ms / runs.back().wall_ms : 0;
  // Scheduler concurrency: how much pass work the 4-worker run overlapped
  // (sum of per-pass wall over elapsed wall). Equals the wall-time speedup on
  // a machine with enough cores; on fewer cores it still shows the scheduler
  // kept workers busy while time-slicing.
  double concurrency =
      runs.back().wall_ms > 0 ? runs.back().passes_sum_ms / runs.back().wall_ms : 0;
  size_t hardware_threads = ThreadPool::HardwareThreads();
  std::printf("speedup 4 workers over 1: %.2fx (host has %zu hardware thread%s), "
              "overlap at 4 workers: %.2fx, bugs identical: %s\n",
              campaign_speedup, hardware_threads, hardware_threads == 1 ? "" : "s",
              concurrency, campaign_bugs_identical ? "yes" : "NO");

  // --- part 3: supervisor overhead ------------------------------------------
  // The checkpoint journal costs one serialize+fwrite+fflush per completed
  // pass; crash-safe resume must be near-free when nothing crashes. Compare a
  // journaled run against the identical unjournaled run (threads=4, from
  // part 2).
  std::printf("\n=== campaign supervisor overhead (checkpoint journal) ===\n");
  const char* journal_path = "/tmp/ddt_bench_campaign.jsonl";
  CampaignRun journaled = RunCampaign(farm_image, farm_pci, 4, journal_path);
  std::remove(journal_path);
  double journal_overhead =
      runs.back().wall_ms > 0 ? journaled.wall_ms / runs.back().wall_ms : 0;
  bool journal_bugs_identical = journaled.bug_rows == runs[0].bug_rows;
  std::printf("unjournaled: %.1f ms, journaled: %.1f ms (%.2fx), bugs identical: %s\n",
              runs.back().wall_ms, journaled.wall_ms, journal_overhead,
              journal_bugs_identical ? "yes" : "NO");

  // --- part 4: observability overhead ---------------------------------------
  // Everything on (tracer recording, metrics registry wired, per-pass phase
  // profile) against the runtime kill switch (null sinks, tracer disabled).
  // The probes sit at coarse boundaries only — a SAT query, a block decode, a
  // pass, a journal flush — so both the interpreter and the campaign must stay
  // within 5%. Best-of-3 on both sides squeezes out scheduler noise.
  std::printf("\n=== observability overhead (tracing + metrics vs kill-switched) ===\n");
  InterpRun rtl_plain = RunInterp(rtl.image, rtl.pci, /*cache=*/true, /*checkers=*/true, 60000, 3);
  obs::Tracer::Get().Enable();
  InterpRun rtl_obs = RunInterp(rtl.image, rtl.pci, /*cache=*/true, /*checkers=*/true, 60000, 3,
                                /*with_obs=*/true);
  obs::Tracer::Get().Disable();
  double interp_obs_overhead = rtl_obs.ips > 0 ? rtl_plain.ips / rtl_obs.ips : 0;
  std::printf("rtl8029 interp: %.0f insns/sec kill-switched, %.0f traced (%.3fx overhead)\n",
              rtl_plain.ips, rtl_obs.ips, interp_obs_overhead);

  CampaignRun camp_plain;
  camp_plain.wall_ms = 0;
  for (int rep = 0; rep < 3; ++rep) {
    CampaignRun run = RunCampaign(farm_image, farm_pci, 4);
    if (camp_plain.wall_ms == 0 || run.wall_ms < camp_plain.wall_ms) {
      camp_plain = run;
    }
  }
  obs::Tracer::Get().Enable();
  CampaignRun camp_obs;
  camp_obs.wall_ms = 0;
  for (int rep = 0; rep < 3; ++rep) {
    CampaignRun run = RunCampaign(farm_image, farm_pci, 4, std::string(), /*with_obs=*/true);
    if (camp_obs.wall_ms == 0 || run.wall_ms < camp_obs.wall_ms) {
      camp_obs = run;
    }
  }
  obs::Tracer::Get().Disable();
  double campaign_obs_overhead = camp_plain.wall_ms > 0 ? camp_obs.wall_ms / camp_plain.wall_ms : 0;
  bool obs_bugs_identical =
      rtl_plain.bug_rows == rtl_obs.bug_rows && camp_plain.bug_rows == camp_obs.bug_rows;
  std::printf("fault_farm campaign: %.1f ms kill-switched, %.1f ms traced (%.3fx overhead), "
              "bugs identical: %s\n",
              camp_plain.wall_ms, camp_obs.wall_ms, campaign_obs_overhead,
              obs_bugs_identical ? "yes" : "NO");

  // --- part 5: shared solver cache warm start -------------------------------
  // Cold: cache enabled against a fresh file — every canonical query is
  // solved exactly once (later passes already hit the in-memory store), then
  // persisted. Warm: the same campaign again — it loads the file and answers
  // the SAT work from disk. The deterministic report must be byte-identical
  // off/cold/warm (the cache changes speed, never verdicts), and the warm
  // start must be >= 1.2x. Best-of-3 per temperature squeezes timer noise.
  std::printf("\n=== shared solver cache (cold vs warm start) ===\n");
  DriverImage solver_farm = SolverFarmImage();
  PciDescriptor solver_pci = LoopPci();
  const char* cache_path = "/tmp/ddt_bench_shared_cache.bin";
  CacheCampaignRun cache_off = RunCacheCampaign(solver_farm, solver_pci, std::string());
  CacheCampaignRun cold;
  for (int rep = 0; rep < 3; ++rep) {
    std::remove(cache_path);
    CacheCampaignRun run = RunCacheCampaign(solver_farm, solver_pci, cache_path);
    if (cold.wall_ms == 0 || run.wall_ms < cold.wall_ms) {
      cold = run;
    }
  }
  CacheCampaignRun warm;
  for (int rep = 0; rep < 3; ++rep) {
    CacheCampaignRun run = RunCacheCampaign(solver_farm, solver_pci, cache_path);
    if (warm.wall_ms == 0 || run.wall_ms < warm.wall_ms) {
      warm = run;
    }
  }
  std::remove(cache_path);
  double warm_speedup = warm.wall_ms > 0 ? cold.wall_ms / warm.wall_ms : 0;
  bool cache_bugs_identical =
      cold.bug_rows == cache_off.bug_rows && warm.bug_rows == cache_off.bug_rows;
  bool cache_reports_identical =
      cold.deterministic_report == cache_off.deterministic_report &&
      warm.deterministic_report == cache_off.deterministic_report;
  std::printf("cold: %.1f ms (%llu SAT calls, %llu stores, %llu saved to disk)\n", cold.wall_ms,
              static_cast<unsigned long long>(cold.solver.sat_calls),
              static_cast<unsigned long long>(cold.solver.shared_cache_stores),
              static_cast<unsigned long long>(cold.saved_entries));
  std::printf("warm: %.1f ms (%llu SAT calls, %llu hits + %llu fastpath, %llu loaded from disk)\n",
              warm.wall_ms, static_cast<unsigned long long>(warm.solver.sat_calls),
              static_cast<unsigned long long>(warm.solver.shared_cache_hits),
              static_cast<unsigned long long>(warm.solver.shared_cache_fastpath_hits),
              static_cast<unsigned long long>(warm.loaded_entries));
  std::printf("warm-start speedup: %.2fx, bugs identical: %s, deterministic report identical: %s\n",
              warm_speedup, cache_bugs_identical ? "yes" : "NO",
              cache_reports_identical ? "yes" : "NO");

  // --- part 6: fleet overhead ------------------------------------------------
  // One worker process against in-process threads=1 over the identical
  // schedule: the difference is the whole cost of crash isolation — fork,
  // worker warm-up, heartbeat thread, pipe framing, shard journaling, and the
  // plan-order merge on the coordinator. Best-of-3 each side.
  std::printf("\n=== fleet overhead (1 worker process vs in-process) ===\n");
  FleetRun fleet_inproc;
  FleetRun fleet_one;
  for (int rep = 0; rep < 3; ++rep) {
    FleetRun ip = RunFleetBench(farm_image, farm_pci, 0);
    if (fleet_inproc.wall_ms == 0 || ip.wall_ms < fleet_inproc.wall_ms) {
      fleet_inproc = ip;
    }
    FleetRun fl = RunFleetBench(farm_image, farm_pci, 1);
    if (fleet_one.wall_ms == 0 || fl.wall_ms < fleet_one.wall_ms) {
      fleet_one = fl;
    }
  }
  double fleet_overhead =
      fleet_inproc.wall_ms > 0 ? fleet_one.wall_ms / fleet_inproc.wall_ms : 0;
  bool fleet_report_identical =
      fleet_one.deterministic_report == fleet_inproc.deterministic_report;
  std::printf("in-process: %.1f ms, fleet workers=1: %.1f ms (%.3fx), "
              "deterministic report identical: %s\n",
              fleet_inproc.wall_ms, fleet_one.wall_ms, fleet_overhead,
              fleet_report_identical ? "yes" : "NO");

  // --- part 7: superblock tier-2 execution -----------------------------------
  // Three execution tiers over the identical concrete instruction stream:
  // uncached interpretation, block-cached interpretation, superblock threaded
  // code. Timed with checkers off (pure engine cost, like the part 1 tight
  // loop); bug parity re-checked separately under the full default checker
  // set, where all three tiers must report the identical bug rows.
  std::printf("\n=== superblock tier-2 execution (uncached vs cached vs superblocks) ===\n");
  TierRun sb_loop_t0 = RunTier(loop_image, LoopPci(), 0, nullptr, /*checkers=*/false, 3);
  TierRun sb_loop_t1 = RunTier(loop_image, LoopPci(), 1, nullptr, /*checkers=*/false, 3);
  TierRun sb_loop_t2 = RunTier(loop_image, LoopPci(), 2, nullptr, /*checkers=*/false, 3);
  double sb_loop_speedup = sb_loop_t0.ips > 0 ? sb_loop_t2.ips / sb_loop_t0.ips : 0;
  std::printf("tight_loop: %.0f / %.0f / %.0f insns/sec (tier2 %.2fx over uncached, "
              "%llu of %llu insns retired by tier 2)\n",
              sb_loop_t0.ips, sb_loop_t1.ips, sb_loop_t2.ips, sb_loop_speedup,
              static_cast<unsigned long long>(sb_loop_t2.sb_retired),
              static_cast<unsigned long long>(sb_loop_t2.instructions));

  std::vector<WorkloadStep> diag_workload = DiagWorkload(16000);
  TierRun sb_rtl_t0 = RunTier(rtl.image, rtl.pci, 0, &diag_workload, /*checkers=*/false, 3);
  TierRun sb_rtl_t1 = RunTier(rtl.image, rtl.pci, 1, &diag_workload, /*checkers=*/false, 3);
  TierRun sb_rtl_t2 = RunTier(rtl.image, rtl.pci, 2, &diag_workload, /*checkers=*/false, 3);
  double sb_rtl_speedup = sb_rtl_t0.ips > 0 ? sb_rtl_t2.ips / sb_rtl_t0.ips : 0;
  std::printf("rtl8029 diag: %.0f / %.0f / %.0f insns/sec (tier2 %.2fx over uncached)\n",
              sb_rtl_t0.ips, sb_rtl_t1.ips, sb_rtl_t2.ips, sb_rtl_speedup);
  std::printf("rtl8029 tier 2: %llu compiled, %llu entries, %llu chains, %llu side exits, "
              "%llu of %llu insns retired\n",
              static_cast<unsigned long long>(sb_rtl_t2.sb_compiled),
              static_cast<unsigned long long>(sb_rtl_t2.sb_entries),
              static_cast<unsigned long long>(sb_rtl_t2.sb_chains),
              static_cast<unsigned long long>(sb_rtl_t2.sb_side_exits),
              static_cast<unsigned long long>(sb_rtl_t2.sb_retired),
              static_cast<unsigned long long>(sb_rtl_t2.instructions));

  std::vector<WorkloadStep> parity_workload = DiagWorkload(500);
  TierRun parity_t0 = RunTier(rtl.image, rtl.pci, 0, &parity_workload, /*checkers=*/true, 1);
  TierRun parity_t1 = RunTier(rtl.image, rtl.pci, 1, &parity_workload, /*checkers=*/true, 1);
  TierRun parity_t2 = RunTier(rtl.image, rtl.pci, 2, &parity_workload, /*checkers=*/true, 1);
  bool superblock_bugs_identical = parity_t1.bug_rows == parity_t0.bug_rows &&
                                   parity_t2.bug_rows == parity_t0.bug_rows &&
                                   parity_t2.instructions == parity_t0.instructions;
  std::printf("checker parity: %zu bug rows per tier, identical: %s\n",
              parity_t0.bug_rows.size(), superblock_bugs_identical ? "yes" : "NO");

  // --- part 8: fuzz concrete-executor throughput -----------------------------
  // One symbolic pass over rtl8029 derives solver-backed path seeds; those
  // seeds then replay through the fuzz concrete executor (guided mode, solver
  // never invoked, all checkers live). The concolic loop's economics rest on
  // the concrete exec rate dwarfing the symbolic pass rate — that ratio is
  // the gate.
  std::printf("\n=== fuzz concrete executor (symbolic pass vs concrete replay) ===\n");
  FaultCampaignConfig fuzz_campaign;
  fuzz_campaign.base.engine.max_instructions = 2'000'000;
  fuzz_campaign.base.engine.max_wall_ms = 3'600'000;

  DdtConfig fuzz_seed_config = fuzz_campaign.base;
  fuzz_seed_config.engine.max_path_seeds = 8;
  double fuzz_sym_pass_ms = 0;
  std::vector<fuzz::FuzzInput> fuzz_seeds;
  {
    Ddt seed_ddt(fuzz_seed_config);
    Result<DdtResult> run = seed_ddt.TestDriver(rtl.image, rtl.pci);
    if (!run.ok()) {
      std::fprintf(stderr, "fuzz seed pass failed: %s\n", run.status().message().c_str());
      return 1;
    }
    fuzz_sym_pass_ms = run.value().stats.wall_ms;
    const std::vector<PathSeed>& path_seeds = run.value().path_seeds;
    for (size_t i = 0; i < path_seeds.size(); ++i) {
      fuzz_seeds.push_back(fuzz::FromPathSeed(path_seeds[i], fuzz_seed_config.engine.fault_plan,
                                              StrFormat("seed#%zu", i)));
    }
  }
  if (fuzz_seeds.empty()) {
    std::fprintf(stderr, "fuzz seed pass derived no seeds\n");
    return 1;
  }

  auto time_fuzz_execs = [&](const FaultCampaignConfig& cfg, int reps) {
    fuzz::FuzzExecutor executor(cfg, rtl.image, rtl.pci);
    double best = 0;
    for (int rep = 0; rep < reps; ++rep) {
      auto start = std::chrono::steady_clock::now();
      for (const fuzz::FuzzInput& seed : fuzz_seeds) {
        fuzz::FuzzExecResult r = executor.Execute(seed);
        if (!r.ok) {
          std::fprintf(stderr, "fuzz exec of %s failed: %s\n", seed.label.c_str(),
                       r.failure.c_str());
          std::exit(1);
        }
      }
      double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                            start)
                      .count();
      double eps = ms > 0 ? static_cast<double>(fuzz_seeds.size()) / (ms / 1000.0) : 0;
      best = std::max(best, eps);
    }
    return best;
  };
  FaultCampaignConfig fuzz_interp_cfg = fuzz_campaign;
  fuzz_interp_cfg.base.engine.enable_block_cache = false;
  FaultCampaignConfig fuzz_tier2_cfg = fuzz_campaign;
  fuzz_tier2_cfg.base.engine.superblocks = true;
  double fuzz_interp_eps = time_fuzz_execs(fuzz_interp_cfg, 3);
  double fuzz_tier2_eps = time_fuzz_execs(fuzz_tier2_cfg, 3);
  double fuzz_sym_rate = fuzz_sym_pass_ms > 0 ? 1000.0 / fuzz_sym_pass_ms : 0;
  double fuzz_speedup = fuzz_sym_rate > 0 ? fuzz_tier2_eps / fuzz_sym_rate : 0;
  std::printf("symbolic seed pass: %.1f ms (%.2f passes/sec, %zu seeds derived)\n",
              fuzz_sym_pass_ms, fuzz_sym_rate, fuzz_seeds.size());
  std::printf("concrete replay: %.0f execs/sec interpreter, %.0f execs/sec tier 2 "
              "(%.1fx over per-pass symbolic rate)\n",
              fuzz_interp_eps, fuzz_tier2_eps, fuzz_speedup);

  // --- part 9: path-explosion control ----------------------------------------
  // Controls off vs on over both campaign shapes. solver_farm's six branch
  // diamonds make merging the dominant effect (64 leaves collapse to a
  // handful of states, and every state that never exists never queries the
  // solver). fault_farm is the no-harm control: its error-path spins die to
  // the loop checker's 100k-step heuristic at ~50k iterations, below the
  // 131072 back-edge kill threshold — so pathctl must pass through without
  // perturbing a campaign it cannot help. (The killer's own win shows up on
  // loops the frame-step heuristic is blind to; pathctl_test covers that.)
  std::printf("\n=== path-explosion control (pathctl off vs on) ===\n");
  PathCtlRun pc_farm_off = RunPathCtlCampaign(farm_image, farm_pci, false);
  PathCtlRun pc_farm_on = RunPathCtlCampaign(farm_image, farm_pci, true);
  PathCtlRun pc_solver_off = RunPathCtlCampaign(solver_farm, solver_pci, false);
  PathCtlRun pc_solver_on = RunPathCtlCampaign(solver_farm, solver_pci, true);
  bool pathctl_bugs_identical = pc_farm_on.bug_rows == pc_farm_off.bug_rows &&
                                pc_solver_on.bug_rows == pc_solver_off.bug_rows;
  uint64_t pc_states_off = pc_farm_off.states_created + pc_solver_off.states_created;
  uint64_t pc_states_on = pc_farm_on.states_created + pc_solver_on.states_created;
  uint64_t pc_sat_off = pc_farm_off.sat_calls + pc_solver_off.sat_calls;
  uint64_t pc_sat_on = pc_farm_on.sat_calls + pc_solver_on.sat_calls;
  double pc_states_reduction =
      pc_states_off > 0
          ? 1.0 - static_cast<double>(pc_states_on) / static_cast<double>(pc_states_off)
          : 0;
  std::printf("fault_farm:  %llu -> %llu states, %llu -> %llu insns, %llu loop kills\n",
              static_cast<unsigned long long>(pc_farm_off.states_created),
              static_cast<unsigned long long>(pc_farm_on.states_created),
              static_cast<unsigned long long>(pc_farm_off.instructions),
              static_cast<unsigned long long>(pc_farm_on.instructions),
              static_cast<unsigned long long>(pc_farm_on.loop_kills));
  std::printf("solver_farm: %llu -> %llu states, %llu -> %llu SAT calls, %llu merges\n",
              static_cast<unsigned long long>(pc_solver_off.states_created),
              static_cast<unsigned long long>(pc_solver_on.states_created),
              static_cast<unsigned long long>(pc_solver_off.sat_calls),
              static_cast<unsigned long long>(pc_solver_on.sat_calls),
              static_cast<unsigned long long>(pc_solver_on.states_merged));
  std::printf("aggregate: %.1f%% fewer states, %llu -> %llu SAT calls, bugs identical: %s\n",
              100.0 * pc_states_reduction, static_cast<unsigned long long>(pc_sat_off),
              static_cast<unsigned long long>(pc_sat_on),
              pathctl_bugs_identical ? "yes" : "NO");

  // --- JSON summary ---------------------------------------------------------
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"interp\": {\n");
  std::fprintf(f,
               "    \"tight_loop\": {\"uncached_ips\": %.0f, \"cached_ips\": %.0f, "
               "\"speedup\": %.3f},\n",
               loop_off.ips, loop_on.ips, loop_speedup);
  std::fprintf(f,
               "    \"rtl8029\": {\"uncached_ips\": %.0f, \"cached_ips\": %.0f, "
               "\"speedup\": %.3f},\n",
               rtl_off.ips, rtl_on.ips, rtl_speedup);
  std::fprintf(f, "    \"bugs_identical\": %s\n", interp_bugs_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"campaign\": {\n");
  std::fprintf(f, "    \"driver\": \"fault_farm\",\n");
  std::fprintf(f, "    \"plans\": %zu,\n", runs[0].plans);
  std::fprintf(f, "    \"runs\": [");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f, "%s{\"threads\": %u, \"wall_ms\": %.1f}", i == 0 ? "" : ", ",
                 thread_counts[i], runs[i].wall_ms);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "    \"hardware_threads\": %zu,\n", hardware_threads);
  std::fprintf(f, "    \"speedup_4_over_1\": %.3f,\n", campaign_speedup);
  std::fprintf(f, "    \"overlap_at_4_workers\": %.3f,\n", concurrency);
  std::fprintf(f, "    \"bugs_identical\": %s\n", campaign_bugs_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"supervisor\": {\n");
  std::fprintf(f, "    \"unjournaled_wall_ms\": %.1f,\n", runs.back().wall_ms);
  std::fprintf(f, "    \"journaled_wall_ms\": %.1f,\n", journaled.wall_ms);
  std::fprintf(f, "    \"journal_overhead\": %.3f,\n", journal_overhead);
  std::fprintf(f, "    \"bugs_identical\": %s\n", journal_bugs_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"observability\": {\n");
  std::fprintf(f,
               "    \"interp\": {\"killswitched_ips\": %.0f, \"traced_ips\": %.0f, "
               "\"overhead\": %.3f},\n",
               rtl_plain.ips, rtl_obs.ips, interp_obs_overhead);
  std::fprintf(f,
               "    \"campaign\": {\"killswitched_wall_ms\": %.1f, \"traced_wall_ms\": %.1f, "
               "\"overhead\": %.3f},\n",
               camp_plain.wall_ms, camp_obs.wall_ms, campaign_obs_overhead);
  std::fprintf(f, "    \"bugs_identical\": %s\n", obs_bugs_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"shared_cache\": {\n");
  std::fprintf(f, "    \"driver\": \"solver_farm\",\n");
  std::fprintf(f, "    \"cold_wall_ms\": %.1f,\n", cold.wall_ms);
  std::fprintf(f, "    \"warm_wall_ms\": %.1f,\n", warm.wall_ms);
  std::fprintf(f, "    \"warm_speedup\": %.3f,\n", warm_speedup);
  std::fprintf(f,
               "    \"cold\": {\"sat_calls\": %llu, \"hits\": %llu, \"fastpath_hits\": %llu, "
               "\"misses\": %llu, \"stores\": %llu, \"saved_entries\": %llu},\n",
               static_cast<unsigned long long>(cold.solver.sat_calls),
               static_cast<unsigned long long>(cold.solver.shared_cache_hits),
               static_cast<unsigned long long>(cold.solver.shared_cache_fastpath_hits),
               static_cast<unsigned long long>(cold.solver.shared_cache_misses),
               static_cast<unsigned long long>(cold.solver.shared_cache_stores),
               static_cast<unsigned long long>(cold.saved_entries));
  std::fprintf(f,
               "    \"warm\": {\"sat_calls\": %llu, \"hits\": %llu, \"fastpath_hits\": %llu, "
               "\"misses\": %llu, \"loaded_entries\": %llu},\n",
               static_cast<unsigned long long>(warm.solver.sat_calls),
               static_cast<unsigned long long>(warm.solver.shared_cache_hits),
               static_cast<unsigned long long>(warm.solver.shared_cache_fastpath_hits),
               static_cast<unsigned long long>(warm.solver.shared_cache_misses),
               static_cast<unsigned long long>(warm.loaded_entries));
  std::fprintf(f, "    \"bugs_identical\": %s,\n", cache_bugs_identical ? "true" : "false");
  std::fprintf(f, "    \"deterministic_report_identical\": %s\n",
               cache_reports_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet\": {\n");
  std::fprintf(f, "    \"driver\": \"fault_farm\",\n");
  std::fprintf(f, "    \"inprocess_wall_ms\": %.1f,\n", fleet_inproc.wall_ms);
  std::fprintf(f, "    \"one_worker_wall_ms\": %.1f,\n", fleet_one.wall_ms);
  std::fprintf(f, "    \"overhead\": %.3f,\n", fleet_overhead);
  std::fprintf(f, "    \"deterministic_report_identical\": %s\n",
               fleet_report_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"superblock\": {\n");
  std::fprintf(f,
               "    \"tight_loop\": {\"uncached_ips\": %.0f, \"tier1_ips\": %.0f, "
               "\"tier2_ips\": %.0f, \"tier2_speedup\": %.3f},\n",
               sb_loop_t0.ips, sb_loop_t1.ips, sb_loop_t2.ips, sb_loop_speedup);
  std::fprintf(f,
               "    \"rtl8029_diag\": {\"uncached_ips\": %.0f, \"tier1_ips\": %.0f, "
               "\"tier2_ips\": %.0f, \"tier2_speedup\": %.3f},\n",
               sb_rtl_t0.ips, sb_rtl_t1.ips, sb_rtl_t2.ips, sb_rtl_speedup);
  std::fprintf(f,
               "    \"rtl8029_tier2\": {\"compiled\": %llu, \"entries\": %llu, "
               "\"chains\": %llu, \"side_exits\": %llu, \"retired\": %llu, "
               "\"instructions\": %llu},\n",
               static_cast<unsigned long long>(sb_rtl_t2.sb_compiled),
               static_cast<unsigned long long>(sb_rtl_t2.sb_entries),
               static_cast<unsigned long long>(sb_rtl_t2.sb_chains),
               static_cast<unsigned long long>(sb_rtl_t2.sb_side_exits),
               static_cast<unsigned long long>(sb_rtl_t2.sb_retired),
               static_cast<unsigned long long>(sb_rtl_t2.instructions));
  std::fprintf(f, "    \"bugs_identical\": %s\n", superblock_bugs_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fuzz\": {\n");
  std::fprintf(f, "    \"driver\": \"rtl8029\",\n");
  std::fprintf(f, "    \"seeds\": %zu,\n", fuzz_seeds.size());
  std::fprintf(f, "    \"symbolic_pass_ms\": %.1f,\n", fuzz_sym_pass_ms);
  std::fprintf(f, "    \"symbolic_passes_per_sec\": %.3f,\n", fuzz_sym_rate);
  std::fprintf(f, "    \"interp_execs_per_sec\": %.1f,\n", fuzz_interp_eps);
  std::fprintf(f, "    \"tier2_execs_per_sec\": %.1f,\n", fuzz_tier2_eps);
  std::fprintf(f, "    \"speedup_vs_symbolic\": %.3f\n", fuzz_speedup);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"pathctl\": {\n");
  std::fprintf(f,
               "    \"fault_farm\": {\"off\": {\"states_created\": %llu, \"sat_calls\": %llu, "
               "\"instructions\": %llu}, \"on\": {\"states_created\": %llu, \"sat_calls\": "
               "%llu, \"instructions\": %llu, \"states_merged\": %llu, \"loop_kills\": %llu, "
               "\"edge_kills\": %llu}},\n",
               static_cast<unsigned long long>(pc_farm_off.states_created),
               static_cast<unsigned long long>(pc_farm_off.sat_calls),
               static_cast<unsigned long long>(pc_farm_off.instructions),
               static_cast<unsigned long long>(pc_farm_on.states_created),
               static_cast<unsigned long long>(pc_farm_on.sat_calls),
               static_cast<unsigned long long>(pc_farm_on.instructions),
               static_cast<unsigned long long>(pc_farm_on.states_merged),
               static_cast<unsigned long long>(pc_farm_on.loop_kills),
               static_cast<unsigned long long>(pc_farm_on.edge_kills));
  std::fprintf(f,
               "    \"solver_farm\": {\"off\": {\"states_created\": %llu, \"sat_calls\": %llu, "
               "\"instructions\": %llu}, \"on\": {\"states_created\": %llu, \"sat_calls\": "
               "%llu, \"instructions\": %llu, \"states_merged\": %llu, \"loop_kills\": %llu, "
               "\"edge_kills\": %llu}},\n",
               static_cast<unsigned long long>(pc_solver_off.states_created),
               static_cast<unsigned long long>(pc_solver_off.sat_calls),
               static_cast<unsigned long long>(pc_solver_off.instructions),
               static_cast<unsigned long long>(pc_solver_on.states_created),
               static_cast<unsigned long long>(pc_solver_on.sat_calls),
               static_cast<unsigned long long>(pc_solver_on.instructions),
               static_cast<unsigned long long>(pc_solver_on.states_merged),
               static_cast<unsigned long long>(pc_solver_on.loop_kills),
               static_cast<unsigned long long>(pc_solver_on.edge_kills));
  std::fprintf(f, "    \"states_reduction\": %.3f,\n", pc_states_reduction);
  std::fprintf(f, "    \"bugs_identical\": %s\n", pathctl_bugs_identical ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path);

  // On a multi-core host the parallel campaign must beat sequential outright.
  // On a single hardware thread no scheduler can produce wall-time speedup,
  // so the bar becomes: workers genuinely overlapped the pass work and the
  // scheduling overhead stayed bounded.
  bool campaign_ok =
      hardware_threads >= 2
          ? campaign_speedup >= 1.5
          : concurrency >= 1.5 && runs.back().wall_ms <= runs[0].wall_ms * 1.6;
  // Checkpointing every pass must stay near-free (one flushed write per
  // pass); 1.3x leaves room for timer noise on loaded CI hosts.
  bool supervisor_ok = journal_bugs_identical && journal_overhead <= 1.3;
  // The observability acceptance bar: full tracing within 5% of the kill
  // switch on both shapes, and no effect on the bug sets.
  bool obs_ok = obs_bugs_identical && interp_obs_overhead <= 1.05 &&
                campaign_obs_overhead <= 1.05;
  // Warm start must genuinely load the disk cache, answer queries from it
  // (fewer SAT calls than cold), cut wall time by >= 1.2x, and change neither
  // the bug set nor a byte of the deterministic report.
  bool shared_cache_ok = warm_speedup >= 1.2 && cache_bugs_identical &&
                         cache_reports_identical && warm.loaded_entries > 0 &&
                         warm.solver.sat_calls < cold.solver.sat_calls;
  // Crash isolation may cost a fork and a pipe per pass, never real compute:
  // one worker process must stay within 10% of in-process and change nothing
  // in the deterministic report.
  bool fleet_ok = fleet_report_identical && fleet_overhead <= 1.10;
  // Tier 2 must be a real execution-engine win on the realistic shape, not
  // just the synthetic loop: >= 3x over uncached interpretation on the
  // concrete rtl8029 diag workload, with the tier actually engaged (regions
  // compiled, entered, and chained) and zero effect on what any tier reports
  // under the full checker set.
  bool superblock_ok = sb_rtl_speedup >= 3.0 && superblock_bugs_identical &&
                       sb_rtl_t2.sb_compiled > 0 && sb_rtl_t2.sb_entries > 0 &&
                       sb_rtl_t2.sb_chains > 0 && sb_rtl_t2.sb_retired > 0 &&
                       sb_loop_t2.sb_retired > 0;
  // A concrete replay skips forking, constraint collection, and every solver
  // query; it must run at >= 10x the rate of the symbolic passes that seed it,
  // or the mutation loop would be better spent on more symbolic passes.
  bool fuzz_ok = fuzz_tier2_eps >= 10.0 * fuzz_sym_rate && fuzz_tier2_eps > 0;
  // Suppressing redundant paths only counts if it changes no verdicts: the
  // controls must preserve each bench's exact bug set while cutting aggregate
  // state creation by >= 30% and SAT calls strictly, with merging demonstrably
  // engaged on solver_farm and fault_farm not made any worse.
  bool pathctl_ok = pathctl_bugs_identical && pc_states_on * 10 <= pc_states_off * 7 &&
                    pc_sat_on < pc_sat_off && pc_solver_on.states_merged > 0 &&
                    pc_farm_on.instructions <= pc_farm_off.instructions;
  bool pass = loop_speedup >= 2.0 && interp_bugs_identical && campaign_bugs_identical &&
              runs[0].plans >= 8 && campaign_ok && supervisor_ok && obs_ok && shared_cache_ok &&
              fleet_ok && superblock_ok && fuzz_ok && pathctl_ok;
  std::printf("BENCH_exec: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
