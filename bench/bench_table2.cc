// Table 2: "Summary of previously unknown bugs discovered by DDT."
//
// Runs full DDT on each corpus driver and prints the driver / bug-type /
// description rows. Verifies the headline result: all 14 seeded bugs (the
// same classes and counts as the paper's Table 2) are found, with zero
// unexpected warnings — "we encountered no false positives during testing".
// Also runs the Driver Verifier stress baseline on the same corpus to
// reproduce the §5.1 observation that concrete stress testing finds none of
// them (while DDT "finds multiple bugs in one run").
#include <cstdio>
#include <set>
#include <string>

#include "src/baselines/driver_verifier.h"
#include "src/core/ddt.h"
#include "src/drivers/corpus.h"

namespace {

ddt::DdtConfig BenchConfig() {
  ddt::DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_wall_ms = 120'000;
  config.engine.max_states = 512;
  return config;
}

}  // namespace

int main() {
  using ddt::Bug;
  using ddt::CorpusDriver;
  using ddt::ExpectedBug;

  std::printf("Table 2: bugs discovered by DDT in the corpus drivers\n\n");
  std::printf("%-18s | %-18s | %s\n", "Tested Driver", "Bug Type", "Description");
  std::printf("%s\n", std::string(100, '-').c_str());

  size_t total_found = 0;
  size_t total_expected = 0;
  size_t false_positives = 0;
  size_t stress_found = 0;
  double ddt_ms = 0;
  double stress_ms = 0;

  for (const CorpusDriver& driver : ddt::Corpus()) {
    ddt::Ddt ddt_run(BenchConfig());
    ddt::Result<ddt::DdtResult> result = ddt_run.TestDriver(driver.image, driver.pci);
    if (!result.ok()) {
      std::printf("LOAD FAILURE for %s: %s\n", driver.name.c_str(),
                  result.status().message().c_str());
      return 1;
    }
    const ddt::DdtResult& r = result.value();
    ddt_ms += r.stats.wall_ms;

    // Pair found bugs with the seeded ground truth.
    std::set<size_t> used;
    for (const ExpectedBug& want : driver.expected) {
      ++total_expected;
      for (size_t i = 0; i < r.bugs.size(); ++i) {
        if (used.count(i) == 0 && r.bugs[i].type == want.type &&
            r.bugs[i].title.find(want.keyword) != std::string::npos) {
          used.insert(i);
          ++total_found;
          std::printf("%-18s | %-18s | %s\n", driver.pretty_name.c_str(),
                      ddt::BugTypeName(want.type), want.description.c_str());
          break;
        }
      }
    }
    for (size_t i = 0; i < r.bugs.size(); ++i) {
      if (used.count(i) == 0) {
        ++false_positives;
        std::printf("%-18s | %-18s | UNEXPECTED: %s\n", driver.pretty_name.c_str(),
                    ddt::BugTypeName(r.bugs[i].type), r.bugs[i].title.c_str());
      }
    }

    // Stress baseline on the same driver.
    ddt::StressConfig stress;
    stress.iterations = 10;
    ddt::StressResult stress_result =
        ddt::RunDriverVerifierStress(driver.image, driver.pci, stress);
    stress_found += stress_result.bugs.size();
    stress_ms += stress_result.wall_ms;
  }

  std::printf("%s\n", std::string(100, '-').c_str());
  std::printf("\nDDT:             %zu / %zu seeded bugs found, %zu false positives, %.0f ms\n",
              total_found, total_expected, false_positives, ddt_ms);
  std::printf("Driver Verifier: %zu / %zu seeded bugs found (concrete stress, 10 iterations "
              "per driver, %.0f ms)\n",
              stress_found, total_expected, stress_ms);
  bool ok = total_found == total_expected && false_positives == 0 &&
            stress_found < total_expected / 2;
  std::printf("\n%s\n", ok ? "TABLE 2 SHAPE: REPRODUCED (14/14 bugs, 0 false positives, "
                             "stress testing finds almost none)"
                           : "TABLE 2 SHAPE: FAILED");
  return ok ? 0 : 1;
}
