// Quickstart: test a (buggy) binary driver with DDT in ~40 lines.
//
// This example writes a tiny driver in DVM32 assembly, assembles it to an
// opaque binary image (after this point DDT only ever sees bytes), loads it
// behind a fake PCI device, and runs the full pipeline: selective symbolic
// execution, fully symbolic hardware, annotation-driven fault injection, the
// default checker set, and bug reporting with solver-derived concrete
// inputs.
//
// The driver has one classic defect: it trusts a device register as an
// array index. Expect one memory-corruption report whose inputs include the
// offending hardware read.
#include <cstdio>

#include "src/core/ddt.h"
#include "src/vm/assembler.h"

int main() {
  const char* driver_source = R"(
    .driver "quickstart"
    .entry driver_entry
    .code
    .func driver_entry
      la r0, entry_table
      kcall MosRegisterDriver
      ret

    .func ep_init
      movi r0, 0
      kcall MosMapIoSpace      ; r0 = BAR0 registers
      ld32 r1, [r0+8]          ; device-provided queue index
      la r2, queue_table
      shli r3, r1, 2
      add r2, r2, r3
      st32 [r2+0], r1          ; BUG: index never bounds-checked
      movi r0, 0
      ret

    .data
    entry_table:
      .word ep_init
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
    queue_table:
      .space 32                ; 8 entries
  )";

  // 1. Assemble to an opaque binary image (a DDF file in memory).
  ddt::Result<ddt::AssembledDriver> assembled = ddt::Assemble(driver_source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", assembled.error().c_str());
    return 1;
  }

  // 2. Describe the fake PCI device (the "empty shell" of the paper's §4.2).
  ddt::PciDescriptor pci;
  pci.vendor_id = 0x1234;
  pci.device_id = 0x5678;
  pci.bars.push_back(ddt::PciBar{0x100});

  // 3. Run DDT.
  ddt::DdtConfig config;
  config.engine.max_instructions = 200000;
  ddt::Ddt ddt(config);
  ddt::Result<ddt::DdtResult> result = ddt.TestDriver(assembled.value().image, pci);
  if (!result.ok()) {
    std::fprintf(stderr, "load failed: %s\n", result.status().message().c_str());
    return 1;
  }

  // 4. Read the report.
  const ddt::DdtResult& report = result.value();
  std::printf("%s\n", report.FormatReport("quickstart").c_str());
  for (const ddt::Bug& bug : report.bugs) {
    std::printf("%s\n", bug.Format(/*trace_lines=*/16).c_str());
  }
  return report.bugs.empty() ? 1 : 0;  // we expect DDT to find the bug
}
