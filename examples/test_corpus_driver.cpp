// Test one of the evaluation corpus drivers end to end and print the full
// DDT report — the closest thing to the paper's §2 user experience ("DDT
// takes as input a binary device driver and outputs a report of found bugs,
// along with execution traces for each bug").
//
// Usage: test_corpus_driver [driver-name]
//   driver-name: rtl8029 (default), pcnet, pro1000, pro100, audiopci, ac97
#include <cstdio>
#include <map>
#include <cstring>
#include <string>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "rtl8029";

  const ddt::CorpusDriver* driver = nullptr;
  for (const ddt::CorpusDriver& candidate : ddt::Corpus()) {
    if (candidate.name == name) {
      driver = &candidate;
    }
  }
  if (driver == nullptr) {
    std::fprintf(stderr, "unknown driver '%s'; corpus drivers are:\n", name.c_str());
    for (const ddt::CorpusDriver& candidate : ddt::Corpus()) {
      std::fprintf(stderr, "  %-10s (%s)\n", candidate.name.c_str(),
                   candidate.pretty_name.c_str());
    }
    return 1;
  }

  std::printf("Testing '%s' (%s): binary %zu bytes, %zu imports, device %04x:%04x\n\n",
              driver->name.c_str(), driver->pretty_name.c_str(),
              driver->image.BinaryFileSize(), driver->image.imports.size(),
              driver->pci.vendor_id, driver->pci.device_id);

  ddt::DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;
  ddt::Ddt ddt(config);
  ddt::Result<ddt::DdtResult> result = ddt.TestDriver(driver->image, driver->pci);
  if (!result.ok()) {
    std::fprintf(stderr, "load failed: %s\n", result.status().message().c_str());
    return 1;
  }
  const ddt::DdtResult& report = result.value();
  std::printf("%s\n", report.FormatReport(driver->name).c_str());
  // Symbolized traces: the corpus keeps its assembler symbol tables around,
  // which is the paper's "map execution paths back to source" story.
  std::map<uint32_t, std::string> symbols;
  for (const auto& [sym_name, addr] : driver->assembled.symbols) {
    symbols[addr] = sym_name;
  }
  ddt::TraceSymbolizer symbolizer(symbols);
  for (const ddt::Bug& bug : report.bugs) {
    std::printf("%s\n", bug.Format(/*trace_lines=*/20, &symbolizer).c_str());
  }
  std::printf("(the corpus seeds %zu bugs in this driver)\n", driver->expected.size());
  return 0;
}
