// Find a bug, then replay it (§3.5): "DDT produces a replayable trace of the
// execution that led to the bug, providing the consumer irrefutable evidence
// of the problem."
//
// The example finds the RTL8029 interrupt-before-timer-init race, then
// re-executes the driver fully concretely: same solved device/registry
// inputs, the interrupt delivered at exactly the recorded boundary crossing,
// no symbolic execution anywhere — and checks the same BSOD fires again.
//
// Usage: replay_bug [driver-name]
#include <cstdio>
#include <string>

#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "rtl8029";
  const ddt::CorpusDriver& driver = ddt::CorpusDriverByName(name);

  ddt::DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;

  std::printf("=== phase 1: hunt ===\n");
  ddt::Ddt ddt(config);
  ddt::Result<ddt::DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  if (!result.ok()) {
    std::fprintf(stderr, "load failed: %s\n", result.status().message().c_str());
    return 1;
  }
  if (result.value().bugs.empty()) {
    std::printf("no bugs found; nothing to replay\n");
    return 1;
  }

  int failures = 0;
  for (const ddt::Bug& bug : result.value().bugs) {
    std::printf("\nfound: %s\n", bug.Row().c_str());
    if (!bug.inputs.empty()) {
      std::printf("  solved inputs: %zu, interrupt schedule entries: %zu, "
                  "forced call outcomes: %zu\n",
                  bug.inputs.size(), bug.interrupt_schedule.size(), bug.alternatives.size());
    }
    std::printf("=== phase 2: replay (fully concrete, guided by the evidence) ===\n");
    ddt::ReplayResult replay = ddt::ReplayBug(driver.image, driver.pci, bug, config);
    std::printf("  %s: %s\n", replay.reproduced ? "REPRODUCED" : "NOT REPRODUCED",
                replay.detail.c_str());
    failures += replay.reproduced ? 0 : 1;
  }

  std::printf("\n%d of %zu bugs replayed successfully\n",
              static_cast<int>(result.value().bugs.size()) - failures,
              result.value().bugs.size());
  return failures == 0 ? 0 : 1;
}
