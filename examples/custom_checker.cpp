// Writing a custom dynamic checker (§3.1: "DDT provides a default set of
// checkers, and this set can be extended with an arbitrary number of other
// checkers for both safety and liveness properties").
//
// This example adds a driver-API *usage policy* checker: MosStallExecution
// must never be called for more than 50 microseconds (long busy-waits starve
// the system — a real Windows Driver Verifier rule). The checker watches the
// kernel event stream; the stall duration is the concretized first argument.
//
// It also demonstrates per-state checker data: the checker counts kernel
// calls per entry-point invocation and flags entry points that make
// suspiciously many (a liveness smell).
#include <cstdio>
#include <memory>

#include "src/core/ddt.h"
#include "src/engine/execution_state.h"
#include "src/support/strings.h"
#include "src/vm/assembler.h"

namespace {

struct StallCheckerState : public ddt::CheckerState {
  uint64_t kcalls_in_entry = 0;

  std::unique_ptr<ddt::CheckerState> Clone() const override {
    return std::make_unique<StallCheckerState>(*this);
  }
};

class StallPolicyChecker : public ddt::Checker {
 public:
  std::string name() const override { return "stall-policy"; }

  std::unique_ptr<ddt::CheckerState> MakeState() const override {
    return std::make_unique<StallCheckerState>();
  }

  void OnKernelEvent(ddt::ExecutionState& st, const ddt::KernelEvent& event,
                     ddt::CheckerHost& host) override {
    auto& my = *static_cast<StallCheckerState*>(st.checker_state.at("stall-policy").get());
    switch (event.kind) {
      case ddt::KernelEvent::Kind::kEntryEnter:
        my.kcalls_in_entry = 0;
        break;
      case ddt::KernelEvent::Kind::kApiEnter: {
        ++my.kcalls_in_entry;
        if (event.text == "MosStallExecution") {
          // The stall microseconds are the (already concretized) first arg —
          // grab it from r0 at the call boundary.
          ddt::Value arg = st.Reg(0);
          if (arg.IsConcrete() && arg.concrete() > 50) {
            host.ReportBug(st, ddt::BugType::kApiMisuse,
                           ddt::StrFormat("MosStallExecution(%u us) exceeds the 50 us busy-wait "
                                          "policy",
                                          arg.concrete()),
                           "long busy-waits at raised IRQL starve the system");
          }
        }
        break;
      }
      default:
        break;
    }
  }
};

}  // namespace

int main() {
  // A driver that busy-waits for a whole millisecond during initialization.
  const char* source = R"(
    .driver "stally"
    .entry driver_entry
    .code
    .func driver_entry
      la r0, entry_table
      kcall MosRegisterDriver
      ret
    .func ep_init
      movi r0, 1000           ; 1000 us stall -- way over policy
      kcall MosStallExecution
      movi r0, 0
      ret
    .data
    entry_table:
      .word ep_init
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
  )";
  ddt::Result<ddt::AssembledDriver> assembled = ddt::Assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", assembled.error().c_str());
    return 1;
  }
  ddt::PciDescriptor pci;
  pci.vendor_id = 0x0001;
  pci.device_id = 0x0001;
  pci.bars.push_back(ddt::PciBar{0x100});

  ddt::DdtConfig config;
  config.engine.max_instructions = 100000;
  ddt::Ddt ddt(config);
  ddt.AddChecker(std::make_unique<StallPolicyChecker>());
  ddt::Result<ddt::DdtResult> result = ddt.TestDriver(assembled.value().image, pci);
  if (!result.ok()) {
    std::fprintf(stderr, "load failed: %s\n", result.status().message().c_str());
    return 1;
  }
  std::printf("%s\n", result.value().FormatReport("stally").c_str());
  for (const ddt::Bug& bug : result.value().bugs) {
    std::printf("%s\n", bug.Format(8).c_str());
  }
  return result.value().bugs.empty() ? 1 : 0;
}
