// Fault-injection campaign (§3.4): systematically fail kernel-API calls to
// reach the error-handling paths a plain run never executes.
//
// This example runs a campaign over the RTL8029 corpus driver. The baseline
// pass finds the Table-2 bugs; the campaign then generates one FaultPlan per
// observed fault-eligible call site (allocation, MosMapIoSpace, registry
// read, device-not-present) and re-runs the engine under each. The RTL8029
// analogue hides a *latent* cleanup bug on its MosMapIoSpace failure path —
// unreachable in plain runs because BAR0 always maps — which only the
// campaign's map-io-space#0 plan exposes. The merged report shows which plan
// found each bug, and every fault-found bug replays with its exact failure
// schedule.
//
// Supervisor flags (CI uses these to prove kill-and-resume determinism):
//   --journal=PATH     checkpoint each completed pass to PATH
//   --resume           resume from a (possibly interrupted) journal at PATH
//   --report-out=PATH  write the deterministic report (no wall times, thread
//                      counts, or resume counters) to PATH for diffing
//   --threads=N        scheduler threads (default: one per hardware thread)
//   --shared-cache=PATH  share solver verdicts across passes through a
//                      process-wide canonical query cache persisted at PATH:
//                      the first run is cold, reruns warm-start from disk and
//                      skip already-solved SAT work (the deterministic report
//                      is byte-identical either way — CI diffs it)
//   --superblocks=0|1  tier-2 execution: compile hot decoded blocks into
//                      chained superblocks of threaded ops (src/vm/
//                      superblock.h). Off by default; the deterministic
//                      report is byte-identical on or off — CI diffs it
//   --superblock-hot-threshold=N  block-entry count before a region compiles
//
// Path-explosion control flags (src/engine/pathctl.h; see DESIGN.md §7i):
//   --pathctl=0|1      enable the path-explosion controls: diamond state
//                      merging at reconvergence points plus coverage-starved
//                      back-edge kills. Off by default; with it off the
//                      deterministic report is byte-identical to before —
//                      CI diffs it. The fork profiler itself is always on
//   --kill-edge=FROM:TO  declarative EdgeKiller rule (PCs, hex ok): any state
//                      traversing the FROM->TO edge terminates, with a
//                      per-rule kill counter in the volatile report.
//                      Repeatable; effective only with --pathctl=1
//   --searcher=NAME    state-selection policy: coverage-greedy (default),
//                      dfs, bfs, random, or coverage-starved (states whose
//                      next block is already covered are deprioritized;
//                      RNG-free, so selection is a pure function of state
//                      and coverage)
//
// Hardware fault plane flags (src/hw; see DESIGN.md §7g):
//   --hw-faults=0|1    append device-level fault plans to the schedule —
//                      surprise removal (reads float all-ones, writes drop,
//                      one PnP halt delivery), sticky MMIO error state,
//                      interrupt storms/droughts, dropped doorbell writes —
//                      one deterministic single-point plan per sampled site
//   --dma-checker=0|1  Checkbochs-style DMA checker: every address the driver
//                      programs into a device DMA register is validated
//                      against live kernel allocation/mapping state, and a
//                      free of device-owned memory is flagged
//
// Observability flags (src/obs; see docs/OBSERVABILITY.md):
//   --trace-out=PATH   record structured trace events during the campaign and
//                      export them as Chrome trace-event JSON — open PATH in
//                      chrome://tracing or https://ui.perfetto.dev
//   --metrics-out=PATH write the merged campaign metrics snapshot as JSON
//
// Fleet flags (src/fleet; crash-isolated multi-process campaign):
//   --workers=N        run the campaign across N worker *processes* (this
//                      binary re-executed in --fleet-worker mode). A worker
//                      killed mid-pass costs only its in-flight lease; the
//                      deterministic report stays byte-identical to --workers=0
//   --fleet-kill-lease=K  crash harness: SIGKILL the worker holding the Kth
//                      lease, forcing salvage + reassignment (CI uses this to
//                      prove the report survives worker death unchanged)
//   --fleet-worker     internal: run as a fleet worker (spawned by the
//                      coordinator, speaks the wire protocol on fds 3/4)
//
// Concolic fuzz loop flags (src/fuzz; see DESIGN.md §7h):
//   --fuzz=0|1         after the campaign, run the hybrid concolic fuzz loop:
//                      derive solver-backed seeds from a symbolic pass,
//                      mutate them deterministically, replay mutants down the
//                      concrete fast path with every checker live, keep
//                      coverage-novel inputs, and promote the best back to
//                      symbolic exploration as concretization hints. The
//                      report grows a "--- fuzz ---" section; with --fuzz=0
//                      the report is byte-identical to before
//   --fuzz-seed=N      mutation-universe seed (default 0xF0221); corpus files
//                      are bound to it
//   --fuzz-batches=N   mutation batches after the seed batch (default 4)
//   --fuzz-execs=N     concrete executions per batch (default 32)
//   --fuzz-corpus=PATH persist the corpus (CRC-sealed, torn-tail tolerant);
//                      with --resume, completed batches load from it and only
//                      missing batches execute
//                      (--workers also shards fuzz execs across forked
//                      processes; the report is identical at any count)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/bug_io.h"
#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"
#include "src/fleet/fleet.h"
#include "src/fuzz/fuzz.h"
#include "src/obs/trace_events.h"
#include "src/support/strings.h"

namespace {

// One config for the coordinator, the in-process path, and every exec-mode
// worker: the schedule-determining knobs are compiled in, so the worker's
// HELLO fingerprint matches the coordinator's by construction.
ddt::FaultCampaignConfig MakeCampaignConfig() {
  ddt::FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 120'000;
  config.max_passes = 16;
  config.max_occurrences_per_class = 4;
  config.escalation_rounds = 1;
  return config;
}

bool ParseUintFlag(const std::string& arg, const char* name, uint64_t* out) {
  size_t len = std::strlen(name);
  if (arg.rfind(name, 0) != 0) {
    return false;
  }
  int64_t parsed = 0;
  if (!ddt::ParseInt(arg.substr(len), &parsed) || parsed < 0) {
    std::fprintf(stderr, "bad value: %s\n", arg.c_str());
    std::exit(2);
  }
  *out = static_cast<uint64_t>(parsed);
  return true;
}

int RunAsFleetWorker(int argc, char** argv) {
  const ddt::CorpusDriver& driver = ddt::CorpusDriverByName("rtl8029");
  ddt::FaultCampaignConfig config = MakeCampaignConfig();
  ddt::fleet::FleetWorkerOptions options;
  uint64_t v = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--fleet-worker") {
      continue;
    } else if (ParseUintFlag(arg, "--fleet-slot=", &v)) {
      options.slot = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "--fleet-gen=", &v)) {
      options.generation = v;
    } else if (ParseUintFlag(arg, "--fleet-heartbeat-ms=", &v)) {
      options.heartbeat_interval_ms = static_cast<uint32_t>(v);
    } else if (arg.rfind("--fleet-shard-dir=", 0) == 0) {
      options.shard_dir = arg.substr(std::strlen("--fleet-shard-dir="));
    } else if (arg.rfind("--shared-cache=", 0) == 0) {
      config.shared_cache_path = arg.substr(std::strlen("--shared-cache="));
    } else if (ParseUintFlag(arg, "--superblocks=", &v)) {
      config.base.engine.superblocks = v != 0;
    } else if (ParseUintFlag(arg, "--superblock-hot-threshold=", &v)) {
      config.base.engine.superblock_hot_threshold = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "--hw-faults=", &v)) {
      config.hw_faults = v != 0;
    } else if (ParseUintFlag(arg, "--dma-checker=", &v)) {
      config.base.dma_checker = v != 0;
    } else if (ParseUintFlag(arg, "--pathctl=", &v)) {
      config.base.engine.pathctl.enabled = v != 0;
    } else if (arg.rfind("--kill-edge=", 0) == 0) {
      ddt::EdgeKillRule rule;
      if (!ddt::ParseEdgeKillRule(arg.substr(std::strlen("--kill-edge=")), &rule)) {
        std::fprintf(stderr, "fleet worker: bad --kill-edge value: %s\n", arg.c_str());
        return 2;
      }
      config.base.engine.pathctl.kill_edges.push_back(rule);
    } else if (arg.rfind("--searcher=", 0) == 0) {
      if (!ddt::ParseSearchStrategy(arg.substr(std::strlen("--searcher=")),
                                    &config.base.engine.strategy)) {
        std::fprintf(stderr, "fleet worker: unknown --searcher value: %s\n", arg.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "fleet worker: unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  return ddt::fleet::RunFleetWorker(config, driver.image, driver.pci, options);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--fleet-worker") {
      return RunAsFleetWorker(argc, argv);
    }
  }

  std::string journal_path;
  std::string report_out;
  std::string trace_out;
  std::string metrics_out;
  std::string shared_cache_path;
  bool resume = false;
  bool hw_faults = false;
  bool dma_checker = false;
  bool superblocks = false;
  uint32_t superblock_hot_threshold = 0;  // 0 = keep the engine default
  uint32_t threads = 0;
  uint32_t workers = 0;
  int64_t kill_lease = -1;
  bool fuzz = false;
  bool pathctl = false;
  std::vector<std::string> kill_edge_args;  // raw, re-forwarded to workers
  std::vector<ddt::EdgeKillRule> kill_edges;
  std::string searcher;
  ddt::fuzz::FuzzConfig fuzz_knobs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    uint64_t v = 0;
    if (arg.rfind("--journal=", 0) == 0) {
      journal_path = arg.substr(std::strlen("--journal="));
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg.rfind("--report-out=", 0) == 0) {
      report_out = arg.substr(std::strlen("--report-out="));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--shared-cache=", 0) == 0) {
      shared_cache_path = arg.substr(std::strlen("--shared-cache="));
    } else if (ParseUintFlag(arg, "--superblocks=", &v)) {
      superblocks = v != 0;
    } else if (ParseUintFlag(arg, "--superblock-hot-threshold=", &v)) {
      superblock_hot_threshold = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "--hw-faults=", &v)) {
      hw_faults = v != 0;
    } else if (ParseUintFlag(arg, "--dma-checker=", &v)) {
      dma_checker = v != 0;
    } else if (ParseUintFlag(arg, "--threads=", &v)) {
      threads = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "--workers=", &v)) {
      workers = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "--fleet-kill-lease=", &v)) {
      kill_lease = static_cast<int64_t>(v);
    } else if (ParseUintFlag(arg, "--fuzz=", &v)) {
      fuzz = v != 0;
    } else if (ParseUintFlag(arg, "--fuzz-seed=", &v)) {
      fuzz_knobs.seed = v;
    } else if (ParseUintFlag(arg, "--fuzz-batches=", &v)) {
      fuzz_knobs.batches = static_cast<uint32_t>(v);
    } else if (ParseUintFlag(arg, "--fuzz-execs=", &v)) {
      fuzz_knobs.execs_per_batch = static_cast<uint32_t>(v);
    } else if (arg.rfind("--fuzz-corpus=", 0) == 0) {
      fuzz_knobs.corpus_path = arg.substr(std::strlen("--fuzz-corpus="));
    } else if (ParseUintFlag(arg, "--pathctl=", &v)) {
      pathctl = v != 0;
    } else if (arg.rfind("--kill-edge=", 0) == 0) {
      std::string spec = arg.substr(std::strlen("--kill-edge="));
      ddt::EdgeKillRule rule;
      if (!ddt::ParseEdgeKillRule(spec, &rule)) {
        std::fprintf(stderr, "bad --kill-edge value (want FROM:TO): %s\n", arg.c_str());
        return 2;
      }
      kill_edge_args.push_back(spec);
      kill_edges.push_back(rule);
    } else if (arg.rfind("--searcher=", 0) == 0) {
      searcher = arg.substr(std::strlen("--searcher="));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const ddt::CorpusDriver& driver = ddt::CorpusDriverByName("rtl8029");

  ddt::FaultCampaignConfig config = MakeCampaignConfig();
  config.threads = threads;
  config.journal_path = journal_path;
  config.resume = resume;
  config.shared_cache_path = shared_cache_path;
  config.base.engine.superblocks = superblocks;
  if (superblock_hot_threshold != 0) {
    config.base.engine.superblock_hot_threshold = superblock_hot_threshold;
  }
  config.hw_faults = hw_faults;
  config.base.dma_checker = dma_checker;
  config.base.engine.pathctl.enabled = pathctl;
  config.base.engine.pathctl.kill_edges = kill_edges;
  if (!searcher.empty() &&
      !ddt::ParseSearchStrategy(searcher, &config.base.engine.strategy)) {
    std::fprintf(stderr,
                 "unknown --searcher value: %s (want coverage-greedy, dfs, bfs, "
                 "random, or coverage-starved)\n",
                 searcher.c_str());
    return 2;
  }
  config.collect_metrics = !metrics_out.empty();

  if (!trace_out.empty()) {
    ddt::obs::Tracer::Get().Enable();
  }

  auto run_campaign_fn = [&]() {
    if (workers == 0) {
      return ddt::RunFaultCampaign(config, driver.image, driver.pci);
    }
    ddt::fleet::FleetCampaignConfig fleet;
    fleet.workers = workers;
    fleet.kill_lease_number = kill_lease;
    char shard_template[] = "/tmp/ddt_fleet.XXXXXX";
    char* shard_dir = ::mkdtemp(shard_template);
    if (shard_dir == nullptr) {
      return ddt::Result<ddt::FaultCampaignResult>(
          ddt::Status::Error("cannot create fleet shard directory"));
    }
    fleet.shard_dir = shard_dir;
    // Re-execute this binary as the worker. /proc/self/exe survives PATH
    // lookups and cwd changes; argv[0] is the portable fallback.
    fleet.worker_exec = ::access("/proc/self/exe", X_OK) == 0 ? "/proc/self/exe" : argv[0];
    if (!shared_cache_path.empty()) {
      fleet.worker_args.push_back("--shared-cache=" + shared_cache_path);
    }
    // Exec-mode workers rebuild the campaign config from MakeCampaignConfig(),
    // so tier-2 knobs must cross the process boundary explicitly.
    if (superblocks) {
      fleet.worker_args.push_back("--superblocks=1");
    }
    if (superblock_hot_threshold != 0) {
      fleet.worker_args.push_back("--superblock-hot-threshold=" +
                                  std::to_string(superblock_hot_threshold));
    }
    // Both enter the campaign fingerprint; a worker missing them would be
    // rejected at HELLO.
    if (hw_faults) {
      fleet.worker_args.push_back("--hw-faults=1");
    }
    if (dma_checker) {
      fleet.worker_args.push_back("--dma-checker=1");
    }
    // Pathctl knobs and the search policy enter the fingerprint as well.
    if (pathctl) {
      fleet.worker_args.push_back("--pathctl=1");
    }
    for (const std::string& spec : kill_edge_args) {
      fleet.worker_args.push_back("--kill-edge=" + spec);
    }
    if (!searcher.empty()) {
      fleet.worker_args.push_back("--searcher=" + searcher);
    }
    return ddt::fleet::RunFleetCampaign(config, driver.image, driver.pci, fleet);
  };

  // With --fuzz the campaign runs as phase 1 of the concolic loop (through the
  // same in-process/fleet path) and the reports grow a fuzz section; without
  // it this is the pre-fuzz binary, byte for byte.
  ddt::FaultCampaignResult campaign_result;
  ddt::fuzz::FuzzCampaignResult fuzz_result;
  bool fuzz_ran = false;
  if (fuzz) {
    ddt::fuzz::FuzzCampaignConfig fuzz_config;
    fuzz_config.campaign = config;
    fuzz_config.fuzz = fuzz_knobs;
    fuzz_config.fuzz.resume = resume;
    fuzz_config.fuzz.workers = workers;
    fuzz_config.run_campaign = run_campaign_fn;
    ddt::Result<ddt::fuzz::FuzzCampaignResult> fuzzed =
        ddt::fuzz::RunFuzzCampaign(fuzz_config, driver.image, driver.pci);
    if (!fuzzed.ok()) {
      std::fprintf(stderr, "fuzz campaign failed: %s\n", fuzzed.status().message().c_str());
      return 1;
    }
    fuzz_result = fuzzed.take();
    fuzz_ran = true;
  } else {
    ddt::Result<ddt::FaultCampaignResult> campaign = run_campaign_fn();
    if (!campaign.ok()) {
      std::fprintf(stderr, "campaign failed: %s\n", campaign.status().message().c_str());
      return 1;
    }
    campaign_result = campaign.take();
  }
  const ddt::FaultCampaignResult& result = fuzz_ran ? fuzz_result.campaign : campaign_result;
  std::string report_full = fuzz_ran ? fuzz_result.FormatReport(driver.name)
                                     : result.FormatReport(driver.name);
  std::printf("%s\n", report_full.c_str());

  if (!result.profile.empty()) {
    std::printf("%s", result.profile.FormatTopPasses(5).c_str());
  }

  if (!trace_out.empty()) {
    ddt::obs::Tracer::Get().Disable();
    std::string error;
    if (!ddt::obs::Tracer::Get().ExportChromeJson(trace_out, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("trace: %zu events written to %s (dropped %llu)\n",
                ddt::obs::Tracer::Get().Collect().size(), trace_out.c_str(),
                static_cast<unsigned long long>(ddt::obs::Tracer::Get().DroppedEvents()));
  }
  if (!metrics_out.empty()) {
    std::FILE* out = std::fopen(metrics_out.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::string json = result.metrics.ToJson();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
  }

  if (!report_out.empty()) {
    std::FILE* out = std::fopen(report_out.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", report_out.c_str());
      return 1;
    }
    std::string deterministic =
        fuzz_ran ? fuzz_result.FormatReport(driver.name, /*include_volatile=*/false)
                 : result.FormatReport(driver.name, /*include_volatile=*/false);
    std::fwrite(deterministic.data(), 1, deterministic.size(), out);
    std::fclose(out);
  }

  // Replay every bug a fault plan exposed: the recorded plan re-applies and
  // the deterministic occurrence counters reproduce the failure schedule.
  // Round-trip through the evidence-file format first, so the replayed bugs
  // carry only what survives serialization (find on one machine, replay on
  // another — the recorded fault plan must cross the process boundary too).
  const char* evidence_path = "/tmp/ddt_fault_campaign.report";
  std::vector<ddt::Bug> evidence_bugs = result.bugs;
  size_t campaign_bug_count = evidence_bugs.size();
  if (fuzz_ran) {
    evidence_bugs.insert(evidence_bugs.end(), fuzz_result.fuzz_bugs.begin(),
                         fuzz_result.fuzz_bugs.end());
  }
  ddt::Status saved = ddt::SaveBugsFile(evidence_path, evidence_bugs);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.message().c_str());
    return 1;
  }
  ddt::Result<std::vector<ddt::Bug>> loaded = ddt::LoadBugsFile(evidence_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().message().c_str());
    return 1;
  }

  int replayed = 0;
  for (size_t i = 0; i < loaded.value().size(); ++i) {
    const ddt::Bug& bug = loaded.value()[i];
    bool is_fuzz_bug = i >= campaign_bug_count;
    // Campaign bugs replay only when a fault plan exposed them; fuzz bugs
    // always replay (the guided inputs patched into the evidence file are the
    // reproducer), under the checker set the fuzz executor ran with.
    if (!is_fuzz_bug && bug.fault_plan.empty()) {
      continue;
    }
    ddt::DdtConfig replay_config = config.base;
    if (is_fuzz_bug) {
      replay_config.dma_checker = true;
    }
    ddt::ReplayResult replay = ddt::ReplayBug(driver.image, driver.pci, bug, replay_config);
    std::printf("replay%s [%s] under plan %s: %s\n", is_fuzz_bug ? " (fuzz)" : "",
                bug.title.c_str(), bug.fault_plan.ToString().c_str(),
                replay.reproduced ? "reproduced" : replay.detail.c_str());
    if (replay.reproduced) {
      ++replayed;
    }
  }
  return replayed > 0 ? 0 : 1;  // we expect at least the latent map-failure bug
}
