// Fault-injection campaign (§3.4): systematically fail kernel-API calls to
// reach the error-handling paths a plain run never executes.
//
// This example runs a campaign over the RTL8029 corpus driver. The baseline
// pass finds the Table-2 bugs; the campaign then generates one FaultPlan per
// observed fault-eligible call site (allocation, MosMapIoSpace, registry
// read, device-not-present) and re-runs the engine under each. The RTL8029
// analogue hides a *latent* cleanup bug on its MosMapIoSpace failure path —
// unreachable in plain runs because BAR0 always maps — which only the
// campaign's map-io-space#0 plan exposes. The merged report shows which plan
// found each bug, and every fault-found bug replays with its exact failure
// schedule.
//
// Supervisor flags (CI uses these to prove kill-and-resume determinism):
//   --journal=PATH     checkpoint each completed pass to PATH
//   --resume           resume from a (possibly interrupted) journal at PATH
//   --report-out=PATH  write the deterministic report (no wall times, thread
//                      counts, or resume counters) to PATH for diffing
//   --threads=N        scheduler threads (default: one per hardware thread)
//   --shared-cache=PATH  share solver verdicts across passes through a
//                      process-wide canonical query cache persisted at PATH:
//                      the first run is cold, reruns warm-start from disk and
//                      skip already-solved SAT work (the deterministic report
//                      is byte-identical either way — CI diffs it)
//
// Observability flags (src/obs; see docs/OBSERVABILITY.md):
//   --trace-out=PATH   record structured trace events during the campaign and
//                      export them as Chrome trace-event JSON — open PATH in
//                      chrome://tracing or https://ui.perfetto.dev
//   --metrics-out=PATH write the merged campaign metrics snapshot as JSON
#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/bug_io.h"
#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"
#include "src/obs/trace_events.h"
#include "src/support/strings.h"

int main(int argc, char** argv) {
  std::string journal_path;
  std::string report_out;
  std::string trace_out;
  std::string metrics_out;
  std::string shared_cache_path;
  bool resume = false;
  uint32_t threads = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--journal=", 0) == 0) {
      journal_path = arg.substr(std::strlen("--journal="));
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg.rfind("--report-out=", 0) == 0) {
      report_out = arg.substr(std::strlen("--report-out="));
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--shared-cache=", 0) == 0) {
      shared_cache_path = arg.substr(std::strlen("--shared-cache="));
    } else if (arg.rfind("--threads=", 0) == 0) {
      int64_t parsed = 0;
      if (!ddt::ParseInt(arg.substr(std::strlen("--threads=")), &parsed) || parsed < 0) {
        std::fprintf(stderr, "bad --threads value: %s\n", arg.c_str());
        return 2;
      }
      threads = static_cast<uint32_t>(parsed);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const ddt::CorpusDriver& driver = ddt::CorpusDriverByName("rtl8029");

  ddt::FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 120'000;
  config.max_passes = 16;
  config.max_occurrences_per_class = 4;
  config.escalation_rounds = 1;
  config.threads = threads;
  config.journal_path = journal_path;
  config.resume = resume;
  config.shared_cache_path = shared_cache_path;
  config.collect_metrics = !metrics_out.empty();

  if (!trace_out.empty()) {
    ddt::obs::Tracer::Get().Enable();
  }

  ddt::Result<ddt::FaultCampaignResult> campaign =
      ddt::RunFaultCampaign(config, driver.image, driver.pci);
  if (!campaign.ok()) {
    std::fprintf(stderr, "campaign failed: %s\n", campaign.status().message().c_str());
    return 1;
  }
  const ddt::FaultCampaignResult& result = campaign.value();
  std::printf("%s\n", result.FormatReport(driver.name).c_str());

  if (!result.profile.empty()) {
    std::printf("%s", result.profile.FormatTopPasses(5).c_str());
  }

  if (!trace_out.empty()) {
    ddt::obs::Tracer::Get().Disable();
    std::string error;
    if (!ddt::obs::Tracer::Get().ExportChromeJson(trace_out, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("trace: %zu events written to %s (dropped %llu)\n",
                ddt::obs::Tracer::Get().Collect().size(), trace_out.c_str(),
                static_cast<unsigned long long>(ddt::obs::Tracer::Get().DroppedEvents()));
  }
  if (!metrics_out.empty()) {
    std::FILE* out = std::fopen(metrics_out.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::string json = result.metrics.ToJson();
    std::fwrite(json.data(), 1, json.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
  }

  if (!report_out.empty()) {
    std::FILE* out = std::fopen(report_out.c_str(), "wb");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", report_out.c_str());
      return 1;
    }
    std::string deterministic = result.FormatReport(driver.name, /*include_volatile=*/false);
    std::fwrite(deterministic.data(), 1, deterministic.size(), out);
    std::fclose(out);
  }

  // Replay every bug a fault plan exposed: the recorded plan re-applies and
  // the deterministic occurrence counters reproduce the failure schedule.
  // Round-trip through the evidence-file format first, so the replayed bugs
  // carry only what survives serialization (find on one machine, replay on
  // another — the recorded fault plan must cross the process boundary too).
  const char* evidence_path = "/tmp/ddt_fault_campaign.report";
  ddt::Status saved = ddt::SaveBugsFile(evidence_path, result.bugs);
  if (!saved.ok()) {
    std::fprintf(stderr, "save failed: %s\n", saved.message().c_str());
    return 1;
  }
  ddt::Result<std::vector<ddt::Bug>> loaded = ddt::LoadBugsFile(evidence_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.status().message().c_str());
    return 1;
  }

  int replayed = 0;
  for (const ddt::Bug& bug : loaded.value()) {
    if (bug.fault_plan.empty()) {
      continue;
    }
    ddt::ReplayResult replay = ddt::ReplayBug(driver.image, driver.pci, bug, config.base);
    std::printf("replay [%s] under plan %s: %s\n", bug.title.c_str(),
                bug.fault_plan.ToString().c_str(),
                replay.reproduced ? "reproduced" : replay.detail.c_str());
    if (replay.reproduced) {
      ++replayed;
    }
  }
  return replayed > 0 ? 0 : 1;  // we expect at least the latent map-failure bug
}
