// ddt_cli — the command-line front door, approximating the paper's vision of
// a "Test Now" button for driver binaries.
//
//   ddt_cli corpus <dir>                 write the corpus drivers as .ddf files
//   ddt_cli assemble <in.s> <out.ddf>    assemble DVM32 source to a binary
//   ddt_cli disasm <in.ddf>              disassemble a driver binary
//   ddt_cli test <in.ddf> [report]       test a binary; optionally save the
//                                        bug report (replayable evidence)
//   ddt_cli replay <in.ddf> <report>     replay every bug in a saved report
//
// Observability flags for `test` (src/obs; see docs/OBSERVABILITY.md):
//   --trace-out=PATH    export the run's trace events as Chrome trace-event
//                       JSON (chrome://tracing / ui.perfetto.dev)
//   --metrics-out=PATH  write the run's metrics snapshot as JSON
//   --superblocks=0|1   tier-2 execution: compile hot blocks into chained
//                       superblocks of threaded ops (identical bug reports,
//                       faster concrete execution; DESIGN.md §7f)
//
// The test/replay pair demonstrates the §3.5 workflow end to end across
// process boundaries: find bugs on one machine, ship <report>, reproduce on
// another.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/bug_io.h"
#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_events.h"
#include "src/vm/assembler.h"
#include "src/vm/disasm.h"
#include "src/vm/layout.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ddt_cli corpus <dir>\n"
               "  ddt_cli assemble <in.s> <out.ddf>\n"
               "  ddt_cli disasm <in.ddf>\n"
               "  ddt_cli test [--trace-out=PATH] [--metrics-out=PATH] [--superblocks=0|1]\n"
               "               <in.ddf> [report-out]\n"
               "  ddt_cli replay <in.ddf> <report>\n");
  return 2;
}

ddt::PciDescriptor GenericPci() {
  ddt::PciDescriptor pci;
  pci.vendor_id = 0xDD7;
  pci.device_id = 0x0001;
  pci.bars.push_back(ddt::PciBar{0x1000});
  pci.pretty_name = "generic test shell";
  return pci;
}

// Uses the corpus descriptor when the binary matches a corpus driver name
// (vendor/device IDs matter for realism), a generic shell otherwise.
ddt::PciDescriptor DescriptorFor(const ddt::DriverImage& image) {
  for (const ddt::CorpusDriver& driver : ddt::Corpus()) {
    if (driver.name == image.name) {
      return driver.pci;
    }
  }
  return GenericPci();
}

int CmdCorpus(const std::string& dir) {
  for (const ddt::CorpusDriver& driver : ddt::Corpus()) {
    std::string path = dir + "/" + driver.name + ".ddf";
    ddt::Status status = driver.image.SaveFile(path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes, %zu imports)\n", path.c_str(),
                driver.image.BinaryFileSize(), driver.image.imports.size());
  }
  // Like the paper's corpus, exactly one driver ships with source (the DDK
  // sample): write its assembly too.
  std::string source_path = dir + "/pro100.s";
  std::ofstream source(source_path);
  source << ddt::Pro100Source();
  std::printf("wrote %s (source available for the DDK driver)\n", source_path.c_str());
  return 0;
}

int CmdAssemble(const std::string& in_path, const std::string& out_path) {
  std::ifstream in(in_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
    return 1;
  }
  std::ostringstream source;
  source << in.rdbuf();
  ddt::Result<ddt::AssembledDriver> assembled = ddt::Assemble(source.str());
  if (!assembled.ok()) {
    std::fprintf(stderr, "assembly failed: %s\n", assembled.error().c_str());
    return 1;
  }
  ddt::Status status = assembled.value().image.SaveFile(out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.message().c_str());
    return 1;
  }
  std::printf("wrote %s: %zu bytes of code, %zu of data, %zu imports, %zu functions\n",
              out_path.c_str(), assembled.value().image.code.size(),
              assembled.value().image.data.size(), assembled.value().image.imports.size(),
              assembled.value().functions.size());
  return 0;
}

int CmdDisasm(const std::string& path) {
  ddt::Result<ddt::DriverImage> image = ddt::DriverImage::LoadFile(path);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.error().c_str());
    return 1;
  }
  const ddt::DriverImage& img = image.value();
  std::printf("driver '%s': entry +0x%x, %zu bytes code, %zu data + %u bss\n", img.name.c_str(),
              img.entry_offset, img.code.size(), img.data.size(), img.bss_size);
  std::printf("imports (%zu):\n", img.imports.size());
  for (size_t i = 0; i < img.imports.size(); ++i) {
    std::printf("  #%zu %s\n", i, img.imports[i].c_str());
  }
  std::printf("%s",
              ddt::DisassembleSegment(img.code.data(), img.code.size(), ddt::kDriverImageBase)
                  .c_str());
  return 0;
}

int CmdTest(const std::string& path, const std::string& report_path,
            const std::string& trace_out, const std::string& metrics_out,
            bool superblocks) {
  ddt::Result<ddt::DriverImage> image = ddt::DriverImage::LoadFile(path);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.error().c_str());
    return 1;
  }
  ddt::DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;
  config.engine.superblocks = superblocks;
  ddt::obs::MetricsRegistry metrics;
  if (!metrics_out.empty()) {
    config.engine.metrics = &metrics;
  }
  if (!trace_out.empty()) {
    ddt::obs::Tracer::Get().Enable();
  }
  ddt::Ddt ddt(config);
  ddt::Result<ddt::DdtResult> result = ddt.TestDriver(image.value(), DescriptorFor(image.value()));
  if (!result.ok()) {
    std::fprintf(stderr, "load failed: %s\n", result.status().message().c_str());
    return 1;
  }
  std::printf("%s", result.value().FormatReport(image.value().name).c_str());
  for (const ddt::Bug& bug : result.value().bugs) {
    std::printf("\n%s", bug.Format(12).c_str());
  }
  if (!trace_out.empty()) {
    ddt::obs::Tracer::Get().Disable();
    std::string error;
    if (!ddt::obs::Tracer::Get().ExportChromeJson(trace_out, &error)) {
      std::fprintf(stderr, "trace export failed: %s\n", error.c_str());
      return 1;
    }
    std::printf("\nwrote trace to %s\n", trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    out << metrics.Snapshot().ToJson() << "\n";
    std::printf("wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!report_path.empty()) {
    ddt::Status status = ddt::SaveBugsFile(report_path, result.value().bugs);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      return 1;
    }
    std::printf("\nsaved replayable report to %s\n", report_path.c_str());
  }
  return 0;
}

int CmdReplay(const std::string& image_path, const std::string& report_path) {
  ddt::Result<ddt::DriverImage> image = ddt::DriverImage::LoadFile(image_path);
  if (!image.ok()) {
    std::fprintf(stderr, "%s\n", image.error().c_str());
    return 1;
  }
  ddt::Result<std::vector<ddt::Bug>> bugs = ddt::LoadBugsFile(report_path);
  if (!bugs.ok()) {
    std::fprintf(stderr, "%s\n", bugs.error().c_str());
    return 1;
  }
  ddt::DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  int failures = 0;
  for (const ddt::Bug& bug : bugs.value()) {
    ddt::ReplayResult replay =
        ddt::ReplayBug(image.value(), DescriptorFor(image.value()), bug, config);
    std::printf("%-14s %s\n", replay.reproduced ? "REPRODUCED" : "NOT-REPRODUCED",
                bug.Row().c_str());
    failures += replay.reproduced ? 0 : 1;
  }
  std::printf("%zu bug(s), %d failed to reproduce\n", bugs.value().size(), failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  // Split observability/engine flags from positional arguments.
  std::string trace_out;
  std::string metrics_out;
  bool superblocks = false;
  bool saw_engine_flag = false;
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = arg.substr(std::strlen("--trace-out="));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::strlen("--metrics-out="));
    } else if (arg.rfind("--superblocks=", 0) == 0) {
      superblocks = arg.substr(std::strlen("--superblocks=")) != "0";
      saw_engine_flag = true;
    } else {
      args.push_back(std::move(arg));
    }
  }
  if ((!trace_out.empty() || !metrics_out.empty() || saw_engine_flag) && command != "test") {
    std::fprintf(stderr, "--trace-out/--metrics-out/--superblocks only apply to `test`\n");
    return Usage();
  }
  if (command == "corpus" && args.size() == 1) {
    return CmdCorpus(args[0]);
  }
  if (command == "assemble" && args.size() == 2) {
    return CmdAssemble(args[0], args[1]);
  }
  if (command == "disasm" && args.size() == 1) {
    return CmdDisasm(args[0]);
  }
  if (command == "test" && (args.size() == 1 || args.size() == 2)) {
    return CmdTest(args[0], args.size() == 2 ? args[1] : "", trace_out, metrics_out,
                   superblocks);
  }
  if (command == "replay" && args.size() == 2) {
    return CmdReplay(args[0], args[1]);
  }
  return Usage();
}
