// Automated bug analysis (§3.6): turn raw DDT bug reports into user-readable
// root-cause classifications — "driver crashes in low-memory situations",
// "bug manifests only under a specific interrupt interleaving" — and, given
// the device's register specification, decide whether each bug can occur at
// all with correctly functioning hardware.
//
// Usage: analyze_bugs [driver-name]
#include <cstdio>
#include <string>

#include "src/core/analysis.h"
#include "src/core/ddt.h"
#include "src/drivers/corpus.h"

int main(int argc, char** argv) {
  std::string name = argc > 1 ? argv[1] : "rtl8029";
  const ddt::CorpusDriver& driver = ddt::CorpusDriverByName(name);

  ddt::DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;
  ddt::Ddt ddt(config);
  ddt::Result<ddt::DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  if (!result.ok()) {
    std::fprintf(stderr, "load failed: %s\n", result.status().message().c_str());
    return 1;
  }

  // A (synthetic) vendor datasheet for this NIC: the interrupt status
  // register returns a small bitmask, the ID register a bounded value.
  ddt::DeviceSpec spec;
  spec.registers[0x0] = ddt::RegisterSpec{0, 0xFF, 0xFF};    // status bits
  spec.registers[0x4] = ddt::RegisterSpec{0, 15, 0xF};       // queue index
  spec.registers[0x8] = ddt::RegisterSpec{0, 0xFFFF, 0xFFFF};

  std::printf("Analyzed %zu bug(s) in '%s':\n\n", result.value().bugs.size(), name.c_str());
  for (const ddt::Bug& bug : result.value().bugs) {
    std::printf("%s\n", bug.Row().c_str());
    ddt::BugAnalysis analysis = ddt::AnalyzeBug(bug, &spec);
    std::printf("%s\n", analysis.Format().c_str());
  }
  return result.value().bugs.empty() ? 1 : 0;
}
