// Fleet end-to-end: the multi-process campaign's deterministic report must be
// byte-identical to the in-process scheduler's — at any worker count, through
// SIGKILLed workers (salvage + lease reassignment), duplicate RESULT frames,
// worker recycling, and resume — and a worker whose HELLO fingerprint does
// not match is rejected (operator error), never quarantined (pass error).
// Plus wire-protocol units: framing round-trip, incremental decode, CRC and
// truncation detection.
#include "src/fleet/fleet.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <string>
#include <vector>

#include "src/drivers/corpus.h"
#include "src/fleet/wire.h"
#include "src/support/strings.h"

namespace ddt {
namespace fleet {
namespace {

// --- Wire protocol units ---------------------------------------------------

TEST(FleetWireTest, BodyCodecsRoundTrip) {
  HelloBody hello{0xDEADBEEFCAFEF00Dull, 4242};
  HelloBody hello2;
  ASSERT_TRUE(DecodeHello(EncodeHello(hello), &hello2));
  EXPECT_EQ(hello2.fingerprint, hello.fingerprint);
  EXPECT_EQ(hello2.pid, hello.pid);

  LeaseBody lease;
  lease.index = 7;
  lease.plan.label = "alloc#1 + map-io-space#0";
  lease.plan.points = {FaultPoint{FaultClass::kAllocation, 1},
                       FaultPoint{FaultClass::kMapIoSpace, 0}};
  lease.plan.hw_points = {HwFaultPoint{HwFaultKind::kSurpriseRemoval, 12},
                          HwFaultPoint{HwFaultKind::kIrqStorm, 3}};
  LeaseBody lease2;
  ASSERT_TRUE(DecodeLease(EncodeLease(lease), &lease2));
  EXPECT_EQ(lease2.index, 7u);
  EXPECT_EQ(lease2.plan.label, lease.plan.label);
  ASSERT_EQ(lease2.plan.points.size(), 2u);
  EXPECT_TRUE(lease2.plan.points[0] == lease.plan.points[0]);
  EXPECT_TRUE(lease2.plan.points[1] == lease.plan.points[1]);
  ASSERT_EQ(lease2.plan.hw_points.size(), 2u);
  EXPECT_TRUE(lease2.plan.hw_points[0] == lease.plan.hw_points[0]);
  EXPECT_TRUE(lease2.plan.hw_points[1] == lease.plan.hw_points[1]);

  uint64_t seq = 0;
  ASSERT_TRUE(DecodeHeartbeat(EncodeHeartbeat(99), &seq));
  EXPECT_EQ(seq, 99u);

  ByeBody bye{kByeRejected, "campaign fingerprint mismatch"};
  ByeBody bye2;
  ASSERT_TRUE(DecodeBye(EncodeBye(bye), &bye2));
  EXPECT_EQ(bye2.code, kByeRejected);
  EXPECT_EQ(bye2.detail, bye.detail);

  // Truncated bodies must decode to false, not garbage.
  std::string enc = EncodeLease(lease);
  EXPECT_FALSE(DecodeLease(std::string_view(enc).substr(0, enc.size() - 1), &lease2));
}

TEST(FleetWireTest, DecoderHandlesSplitFramesAndDetectsCorruption) {
  std::string stream = EncodeFrame(FrameType::kHeartbeat, EncodeHeartbeat(1)) +
                       EncodeFrame(FrameType::kBye, EncodeBye(ByeBody{0, "done"}));
  // Feed one byte at a time: frames must pop exactly when complete.
  FrameDecoder decoder;
  std::vector<Frame> frames;
  Frame frame;
  for (char c : stream) {
    decoder.Feed(&c, 1);
    while (decoder.Pop(&frame) == FrameDecoder::Next::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kHeartbeat);
  EXPECT_EQ(frames[1].type, FrameType::kBye);

  // A flipped payload byte fails the CRC and poisons the decoder.
  std::string bad = stream;
  bad[10] ^= 0x01;
  FrameDecoder corrupt;
  corrupt.Feed(bad.data(), bad.size());
  EXPECT_EQ(corrupt.Pop(&frame), FrameDecoder::Next::kCorrupt);
  EXPECT_EQ(corrupt.Pop(&frame), FrameDecoder::Next::kCorrupt);

  // An absurd length prefix is corruption, not a huge allocation.
  std::string huge(8, '\xFF');
  FrameDecoder hostile;
  hostile.Feed(huge.data(), huge.size());
  EXPECT_EQ(hostile.Pop(&frame), FrameDecoder::Next::kCorrupt);
}

// --- End-to-end fleet campaigns -------------------------------------------

// Small but real campaign over the rtl8029 corpus driver: 1 baseline + up to
// 7 plans, including the map-io-space#0 single that exposes the driver's
// latent map-failure cleanup bug.
FaultCampaignConfig TestConfig() {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 120'000;
  config.max_passes = 8;
  config.max_occurrences_per_class = 2;
  config.escalation_rounds = 1;
  config.threads = 1;
  return config;
}

std::string ShardDir(const std::string& name) {
  std::string dir = testing::TempDir() + "fleet_" + name;
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

FleetCampaignConfig TestFleet(const std::string& name, uint32_t workers) {
  FleetCampaignConfig fleet;
  fleet.workers = workers;
  fleet.shard_dir = ShardDir(name);
  fleet.heartbeat_interval_ms = 50;
  return fleet;
}

// The in-process scheduler's deterministic report — the byte-identity oracle
// every fleet variant is diffed against. Computed once.
const std::string& ReferenceReport() {
  static const std::string* report = [] {
    const CorpusDriver& driver = CorpusDriverByName("rtl8029");
    Result<FaultCampaignResult> r = RunFaultCampaign(TestConfig(), driver.image, driver.pci);
    EXPECT_TRUE(r.ok()) << r.status().message();
    return new std::string(
        r.value().FormatReport(driver.name, /*include_volatile=*/false));
  }();
  return *report;
}

TEST(FleetCampaignTest, ByteIdenticalReportAtAnyWorkerCount) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  for (uint32_t workers : {1u, 3u}) {
    Result<FaultCampaignResult> r = RunFleetCampaign(
        TestConfig(), driver.image, driver.pci,
        TestFleet(StrFormat("w%u", workers), workers));
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().FormatReport(driver.name, false), ReferenceReport())
        << "workers=" << workers;
    EXPECT_TRUE(r.value().fleet_mode);
    EXPECT_EQ(r.value().fleet_workers, workers);
    EXPECT_EQ(r.value().fleet_workers_lost, 0u);

    // The latent rtl8029 map-failure cleanup bug — unreachable in plain runs
    // — must surface under fleet mode with a stable identity at every worker
    // count (it is part of the byte-identical report, but assert it directly
    // so a regression names the bug, not a diff).
    bool found_latent = false;
    for (const Bug& bug : r.value().bugs) {
      if (bug.title.find("MosMapIoSpace[map-io-space#0]") != std::string::npos) {
        found_latent = true;
      }
    }
    EXPECT_TRUE(found_latent) << "latent map-failure bug missing at workers=" << workers;
  }
}

TEST(FleetCampaignTest, HwFaultPlaneIsByteIdenticalToInProcess) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FaultCampaignConfig config = TestConfig();
  // Room for the hw leg: TestConfig's kernel plans alone fill an 8-pass
  // budget, and hw plans are only appended to spare capacity.
  config.max_passes = 24;
  config.hw_faults = true;
  config.hw_max_points_per_kind = 2;
  config.base.dma_checker = true;
  Result<FaultCampaignResult> in_process = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(in_process.ok()) << in_process.status().message();
  EXPECT_GT(in_process.value().total_stats.hw_faults_injected, 0u);

  Result<FaultCampaignResult> fleet = RunFleetCampaign(config, driver.image, driver.pci,
                                                       TestFleet("hwplane", 3));
  ASSERT_TRUE(fleet.ok()) << fleet.status().message();
  EXPECT_EQ(fleet.value().FormatReport(driver.name, false),
            in_process.value().FormatReport(driver.name, false));
}

TEST(FleetCampaignTest, RejectsHeartbeatTimeoutInsideWatchdogBudget) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FaultCampaignConfig config = TestConfig();
  config.max_pass_wall_ms = 10'000;
  FleetCampaignConfig fleet = TestFleet("inversion", 1);
  fleet.heartbeat_timeout_ms = 10'000;  // == max_pass_wall_ms: inverted
  Result<FaultCampaignResult> r = RunFleetCampaign(config, driver.image, driver.pci, fleet);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("heartbeat/watchdog budget inversion"),
            std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("heartbeat_timeout_ms"), std::string::npos);

  // Strictly larger is fine again.
  fleet = TestFleet("inversion_ok", 1);
  fleet.heartbeat_timeout_ms = 10'001;
  Result<FaultCampaignResult> ok = RunFleetCampaign(config, driver.image, driver.pci, fleet);
  EXPECT_TRUE(ok.ok()) << ok.status().message();
}

TEST(FleetCampaignTest, SigkilledWorkerIsReassignedWithoutChangingTheReport) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  // Kill the holder of a different lease each run: the report must not care
  // where in the schedule the crash lands.
  for (int64_t kill_lease : {2, 4}) {
    FleetCampaignConfig fleet =
        TestFleet(StrFormat("kill%lld", static_cast<long long>(kill_lease)), 2);
    fleet.kill_lease_number = kill_lease;
    Result<FaultCampaignResult> r =
        RunFleetCampaign(TestConfig(), driver.image, driver.pci, fleet);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().FormatReport(driver.name, false), ReferenceReport())
        << "kill_lease=" << kill_lease;
    EXPECT_GE(r.value().fleet_workers_lost, 1u);
    EXPECT_GE(r.value().fleet_leases_reassigned, 1u);
    EXPECT_GT(r.value().fleet_workers_spawned, 2u);  // a replacement joined
    EXPECT_EQ(r.value().passes_quarantined, 0u);     // the pass itself is fine
  }
}

TEST(FleetCampaignTest, RecordsJournaledButNeverSentAreSalvagedNotDuplicated) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  // Every worker SIGKILLs itself after journaling its first pass but before
  // sending the RESULT frame: each pass reaches the coordinator only through
  // shard-journal salvage, and the merge must not duplicate or lose any.
  FleetCampaignConfig fleet = TestFleet("salvage", 1);
  fleet.worker_test.kill_after_journal_result = 1;
  Result<FaultCampaignResult> r =
      RunFleetCampaign(TestConfig(), driver.image, driver.pci, fleet);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().FormatReport(driver.name, false), ReferenceReport());
  EXPECT_GE(r.value().fleet_results_salvaged, r.value().passes.size());
  EXPECT_GE(r.value().fleet_workers_lost, r.value().passes.size());
  EXPECT_EQ(r.value().fleet_leases_reassigned, 0u);  // salvage made requeues moot
}

TEST(FleetCampaignTest, DuplicateResultFramesMergeIdempotently) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FleetCampaignConfig fleet = TestFleet("dup", 2);
  fleet.worker_test.duplicate_results = true;
  Result<FaultCampaignResult> r =
      RunFleetCampaign(TestConfig(), driver.image, driver.pci, fleet);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().FormatReport(driver.name, false), ReferenceReport());
  EXPECT_EQ(r.value().fleet_workers_lost, 0u);
}

TEST(FleetCampaignTest, MismatchedFingerprintIsRejectedNotQuarantined) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FleetCampaignConfig fleet = TestFleet("mismatch", 2);
  // Slot 0 is spawned with a *different* campaign (perturbed seed → different
  // fingerprint); slot 1 is correct. The impostor must be turned away at
  // HELLO — and because rejection is an operator problem, not a pass problem,
  // no pass may be quarantined over it.
  fleet.spawn_override = [&driver](const FleetWorkerOptions& options) {
    FaultCampaignConfig config = TestConfig();
    if (options.slot == 0) {
      config.seed ^= 1;
    }
    return SpawnChild([&driver, config, options](int in_fd, int out_fd) {
      FleetWorkerOptions opts = options;
      opts.in_fd = in_fd;
      opts.out_fd = out_fd;
      return RunFleetWorker(config, driver.image, driver.pci, opts);
    });
  };
  Result<FaultCampaignResult> r =
      RunFleetCampaign(TestConfig(), driver.image, driver.pci, fleet);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().FormatReport(driver.name, false), ReferenceReport());
  EXPECT_EQ(r.value().fleet_workers_rejected, 1u);
  EXPECT_EQ(r.value().fleet_workers_lost, 0u);
  EXPECT_EQ(r.value().passes_quarantined, 0u);

  // With *every* worker mismatched the fleet cannot make progress; that is a
  // campaign error naming the cause, not a hang or a quarantine cascade.
  FleetCampaignConfig all_bad = TestFleet("mismatch_all", 2);
  all_bad.spawn_override = [&driver](const FleetWorkerOptions& options) {
    FaultCampaignConfig config = TestConfig();
    config.seed ^= 1;
    return SpawnChild([&driver, config, options](int in_fd, int out_fd) {
      FleetWorkerOptions opts = options;
      opts.in_fd = in_fd;
      opts.out_fd = out_fd;
      return RunFleetWorker(config, driver.image, driver.pci, opts);
    });
  };
  Result<FaultCampaignResult> bad =
      RunFleetCampaign(TestConfig(), driver.image, driver.pci, all_bad);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("rejected"), std::string::npos)
      << bad.status().message();
}

TEST(FleetCampaignTest, WorkerRecyclingDrainsAndRespawns) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FleetCampaignConfig fleet = TestFleet("recycle", 2);
  fleet.max_leases_per_worker = 2;
  Result<FaultCampaignResult> r =
      RunFleetCampaign(TestConfig(), driver.image, driver.pci, fleet);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().FormatReport(driver.name, false), ReferenceReport());
  EXPECT_GE(r.value().fleet_workers_recycled, 1u);
  EXPECT_GT(r.value().fleet_workers_spawned, 2u);
  EXPECT_EQ(r.value().fleet_workers_lost, 0u);
}

TEST(FleetCampaignTest, CoordinatorJournalResumesWithoutReleasing) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  std::string journal = testing::TempDir() + "fleet_resume.journal";

  FaultCampaignConfig config = TestConfig();
  config.journal_path = journal;
  Result<FaultCampaignResult> first = RunFleetCampaign(
      config, driver.image, driver.pci, TestFleet("resume_first", 2));
  ASSERT_TRUE(first.ok()) << first.status().message();

  // Resume from a complete journal: every pass restores, no lease is ever
  // issued, and the report is still byte-identical.
  config.resume = true;
  Result<FaultCampaignResult> second = RunFleetCampaign(
      config, driver.image, driver.pci, TestFleet("resume_second", 2));
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(second.value().FormatReport(driver.name, false), ReferenceReport());
  EXPECT_EQ(second.value().passes_loaded, second.value().passes.size());
}

}  // namespace
}  // namespace fleet
}  // namespace ddt
