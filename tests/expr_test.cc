// Unit tests for the expression DAG: construction, hash-consing,
// simplification rules, and the concrete evaluator (including a randomized
// property suite cross-checking builder folds against direct evaluation).
#include "src/expr/expr.h"

#include <gtest/gtest.h>

#include "src/expr/eval.h"
#include "src/support/rng.h"

namespace ddt {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprContext ctx_;
};

TEST_F(ExprTest, ConstMasksToWidth) {
  ExprRef c = ctx_.Const(0x1FF, 8);
  EXPECT_EQ(c->const_value(), 0xFFu);
  EXPECT_EQ(c->width(), 8);
}

TEST_F(ExprTest, HashConsingDeduplicates) {
  ExprRef a = ctx_.Const(42, 32);
  ExprRef b = ctx_.Const(42, 32);
  EXPECT_EQ(a, b);
  ExprRef v = ctx_.Var(32, "x");
  EXPECT_EQ(ctx_.Add(v, a), ctx_.Add(v, b));
}

TEST_F(ExprTest, DistinctWidthsAreDistinct) {
  EXPECT_NE(ctx_.Const(1, 8), ctx_.Const(1, 16));
}

TEST_F(ExprTest, VarsAreUnique) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef y = ctx_.Var(32, "x");  // same name, still a fresh variable
  EXPECT_NE(x, y);
  EXPECT_NE(x->var_id(), y->var_id());
}

TEST_F(ExprTest, AddConstantFolding) {
  EXPECT_EQ(ctx_.Add(ctx_.Const(3, 32), ctx_.Const(4, 32)), ctx_.Const(7, 32));
}

TEST_F(ExprTest, AddIdentity) {
  ExprRef x = ctx_.Var(32, "x");
  EXPECT_EQ(ctx_.Add(x, ctx_.Const(0, 32)), x);
  EXPECT_EQ(ctx_.Add(ctx_.Const(0, 32), x), x);
}

TEST_F(ExprTest, AddConstantChainsCombine) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef e = ctx_.Add(ctx_.Const(5, 32), ctx_.Add(ctx_.Const(7, 32), x));
  ASSERT_EQ(e->kind(), ExprKind::kAdd);
  EXPECT_EQ(e->op(0), ctx_.Const(12, 32));
  EXPECT_EQ(e->op(1), x);
}

TEST_F(ExprTest, SubSelfIsZero) {
  ExprRef x = ctx_.Var(32, "x");
  EXPECT_EQ(ctx_.Sub(x, x), ctx_.Const(0, 32));
}

TEST_F(ExprTest, SubConstBecomesAddNegated) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef e = ctx_.Sub(x, ctx_.Const(1, 32));
  EXPECT_EQ(e->kind(), ExprKind::kAdd);
  EXPECT_EQ(e->op(0), ctx_.Const(0xFFFFFFFF, 32));
}

TEST_F(ExprTest, MulByZeroAndOne) {
  ExprRef x = ctx_.Var(32, "x");
  EXPECT_EQ(ctx_.Mul(x, ctx_.Const(0, 32)), ctx_.Const(0, 32));
  EXPECT_EQ(ctx_.Mul(x, ctx_.Const(1, 32)), x);
}

TEST_F(ExprTest, AndOrXorIdentities) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef zero = ctx_.Const(0, 32);
  ExprRef ones = ctx_.Const(0xFFFFFFFF, 32);
  EXPECT_EQ(ctx_.And(x, zero), zero);
  EXPECT_EQ(ctx_.And(x, ones), x);
  EXPECT_EQ(ctx_.And(x, x), x);
  EXPECT_EQ(ctx_.Or(x, zero), x);
  EXPECT_EQ(ctx_.Or(x, ones), ones);
  EXPECT_EQ(ctx_.Xor(x, zero), x);
  EXPECT_EQ(ctx_.Xor(x, x), zero);
}

TEST_F(ExprTest, NotNotCancels) {
  ExprRef x = ctx_.Var(32, "x");
  EXPECT_EQ(ctx_.Not(ctx_.Not(x)), x);
}

TEST_F(ExprTest, NotOfComparisonUsesDual) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef y = ctx_.Var(32, "y");
  ExprRef e = ctx_.Not(ctx_.Ult(x, y));
  EXPECT_EQ(e->kind(), ExprKind::kUle);
  EXPECT_EQ(e->op(0), y);
  EXPECT_EQ(e->op(1), x);
}

TEST_F(ExprTest, EqSelfIsTrue) {
  ExprRef x = ctx_.Var(32, "x");
  EXPECT_TRUE(ctx_.Eq(x, x)->IsTrue());
}

TEST_F(ExprTest, EqWidthOneSimplifies) {
  ExprRef b = ctx_.Var(1, "b");
  EXPECT_EQ(ctx_.Eq(b, ctx_.True()), b);
  EXPECT_EQ(ctx_.Eq(b, ctx_.False()), ctx_.Not(b));
}

TEST_F(ExprTest, EqThroughAddConstant) {
  ExprRef x = ctx_.Var(32, "x");
  // (x + 5) == 12  ->  x == 7
  ExprRef e = ctx_.Eq(ctx_.Add(x, ctx_.Const(5, 32)), ctx_.Const(12, 32));
  ASSERT_EQ(e->kind(), ExprKind::kEq);
  EXPECT_EQ(e->op(0), ctx_.Const(7, 32));
  EXPECT_EQ(e->op(1), x);
}

TEST_F(ExprTest, EqThroughZExtOutOfRangeIsFalse) {
  ExprRef x = ctx_.Var(8, "x");
  ExprRef e = ctx_.Eq(ctx_.ZExt(x, 32), ctx_.Const(0x500, 32));
  EXPECT_TRUE(e->IsFalse());
}

TEST_F(ExprTest, UltBounds) {
  ExprRef x = ctx_.Var(32, "x");
  EXPECT_TRUE(ctx_.Ult(x, ctx_.Const(0, 32))->IsFalse());
  EXPECT_TRUE(ctx_.Ule(ctx_.Const(0, 32), x)->IsTrue());
}

TEST_F(ExprTest, IteSimplifications) {
  ExprRef c = ctx_.Var(1, "c");
  ExprRef a = ctx_.Var(32, "a");
  ExprRef b = ctx_.Var(32, "b");
  EXPECT_EQ(ctx_.Ite(ctx_.True(), a, b), a);
  EXPECT_EQ(ctx_.Ite(ctx_.False(), a, b), b);
  EXPECT_EQ(ctx_.Ite(c, a, a), a);
  EXPECT_EQ(ctx_.Ite(c, ctx_.Const(1, 1), ctx_.Const(0, 1)), c);
}

TEST_F(ExprTest, ExtractOfExtract) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef e = ctx_.Extract(ctx_.Extract(x, 8, 16), 4, 8);
  ASSERT_EQ(e->kind(), ExprKind::kExtract);
  EXPECT_EQ(e->op(0), x);
  EXPECT_EQ(e->extract_low(), 12u);
  EXPECT_EQ(e->width(), 8);
}

TEST_F(ExprTest, ConcatOfExtractsReassembles) {
  ExprRef x = ctx_.Var(32, "x");
  // Byte-split then reassemble: the memory model depends on this fold.
  ExprRef b0 = ctx_.ExtractByte(x, 0);
  ExprRef b1 = ctx_.ExtractByte(x, 1);
  ExprRef b2 = ctx_.ExtractByte(x, 2);
  ExprRef b3 = ctx_.ExtractByte(x, 3);
  ExprRef whole = ctx_.Concat(ctx_.Concat(b3, b2), ctx_.Concat(b1, b0));
  EXPECT_EQ(whole, x);
}

TEST_F(ExprTest, ExtractOfConcatSelectsSide) {
  ExprRef hi = ctx_.Var(16, "hi");
  ExprRef lo = ctx_.Var(16, "lo");
  ExprRef cat = ctx_.Concat(hi, lo);
  EXPECT_EQ(ctx_.Extract(cat, 0, 16), lo);
  EXPECT_EQ(ctx_.Extract(cat, 16, 16), hi);
}

TEST_F(ExprTest, ZExtConstFolds) {
  EXPECT_EQ(ctx_.ZExt(ctx_.Const(0xAB, 8), 32), ctx_.Const(0xAB, 32));
  EXPECT_EQ(ctx_.SExt(ctx_.Const(0x80, 8), 32), ctx_.Const(0xFFFFFF80, 32));
}

TEST_F(ExprTest, ShiftBeyondWidth) {
  ExprRef x = ctx_.Var(32, "x");
  EXPECT_EQ(ctx_.Shl(x, ctx_.Const(32, 32)), ctx_.Const(0, 32));
  EXPECT_EQ(ctx_.LShr(x, ctx_.Const(40, 32)), ctx_.Const(0, 32));
}

TEST_F(ExprTest, CollectVarsFindsAll) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef y = ctx_.Var(32, "y");
  ExprRef e = ctx_.Add(ctx_.Mul(x, y), x);
  std::vector<uint32_t> vars;
  CollectVars(e, &vars);
  EXPECT_EQ(vars.size(), 2u);
}

TEST_F(ExprTest, EvalBasics) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef y = ctx_.Var(32, "y");
  Assignment a;
  a.Set(x->var_id(), 10);
  a.Set(y->var_id(), 3);
  EXPECT_EQ(EvalExpr(ctx_.Add(x, y), a), 13u);
  EXPECT_EQ(EvalExpr(ctx_.Sub(x, y), a), 7u);
  EXPECT_EQ(EvalExpr(ctx_.Mul(x, y), a), 30u);
  EXPECT_EQ(EvalExpr(ctx_.UDiv(x, y), a), 3u);
  EXPECT_EQ(EvalExpr(ctx_.URem(x, y), a), 1u);
  EXPECT_TRUE(EvalBool(ctx_.Ult(y, x), a));
  EXPECT_FALSE(EvalBool(ctx_.Ult(x, y), a));
}

TEST_F(ExprTest, EvalDivByZeroSemantics) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef zero = ctx_.Const(0, 32);
  Assignment a;
  a.Set(x->var_id(), 7);
  EXPECT_EQ(EvalExpr(ctx_.UDiv(x, zero), a), 0xFFFFFFFFu);
  EXPECT_EQ(EvalExpr(ctx_.URem(x, zero), a), 7u);
}

TEST_F(ExprTest, EvalSignedComparisons) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef y = ctx_.Var(32, "y");
  Assignment a;
  a.Set(x->var_id(), 0xFFFFFFFF);  // -1 signed
  a.Set(y->var_id(), 1);
  EXPECT_TRUE(EvalBool(ctx_.Slt(x, y), a));
  EXPECT_FALSE(EvalBool(ctx_.Ult(x, y), a));
}

// --- Randomized property suite: every builder output must agree with direct
// semantic evaluation on random inputs. Catches simplifier bugs.

struct BinOpCase {
  const char* name;
  ExprRef (ExprContext::*build)(ExprRef, ExprRef);
  uint64_t (*semantics)(uint64_t, uint64_t, uint8_t);
};

uint64_t SemAdd(uint64_t a, uint64_t b, uint8_t w) { return MaskToWidth(a + b, w); }
uint64_t SemSub(uint64_t a, uint64_t b, uint8_t w) { return MaskToWidth(a - b, w); }
uint64_t SemMul(uint64_t a, uint64_t b, uint8_t w) { return MaskToWidth(a * b, w); }
uint64_t SemUDiv(uint64_t a, uint64_t b, uint8_t w) {
  return MaskToWidth(b == 0 ? ~0ull : a / b, w);
}
uint64_t SemURem(uint64_t a, uint64_t b, uint8_t w) { return MaskToWidth(b == 0 ? a : a % b, w); }
uint64_t SemAnd(uint64_t a, uint64_t b, uint8_t w) { return MaskToWidth(a & b, w); }
uint64_t SemOr(uint64_t a, uint64_t b, uint8_t w) { return MaskToWidth(a | b, w); }
uint64_t SemXor(uint64_t a, uint64_t b, uint8_t w) { return MaskToWidth(a ^ b, w); }
uint64_t SemShl(uint64_t a, uint64_t b, uint8_t w) {
  return b >= w ? 0 : MaskToWidth(a << b, w);
}
uint64_t SemLShr(uint64_t a, uint64_t b, uint8_t w) { return b >= w ? 0 : (a >> b); }
uint64_t SemEq(uint64_t a, uint64_t b, uint8_t w) { return a == b ? 1 : 0; }
uint64_t SemUlt(uint64_t a, uint64_t b, uint8_t w) { return a < b ? 1 : 0; }
uint64_t SemUle(uint64_t a, uint64_t b, uint8_t w) { return a <= b ? 1 : 0; }
uint64_t SemSlt(uint64_t a, uint64_t b, uint8_t w) {
  return SignExtend(a, w) < SignExtend(b, w) ? 1 : 0;
}
uint64_t SemSle(uint64_t a, uint64_t b, uint8_t w) {
  return SignExtend(a, w) <= SignExtend(b, w) ? 1 : 0;
}

class ExprPropertyTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(ExprPropertyTest, BuilderMatchesSemanticsOnRandomInputs) {
  const BinOpCase& test_case = GetParam();
  ExprContext ctx;
  Rng rng(0xDD7 + std::string_view(test_case.name).size());
  for (uint8_t width : {8, 16, 32}) {
    ExprRef x = ctx.Var(width, "x");
    ExprRef y = ctx.Var(width, "y");
    for (int i = 0; i < 200; ++i) {
      uint64_t a = MaskToWidth(rng.Next(), width);
      uint64_t b = MaskToWidth(rng.Next(), width);
      // Bias toward interesting values.
      if (i % 7 == 0) {
        b = 0;
      }
      if (i % 11 == 0) {
        a = MaskToWidth(~0ull, width);
      }
      Assignment assignment;
      assignment.Set(x->var_id(), a);
      assignment.Set(y->var_id(), b);
      ExprRef sym_sym = (ctx.*test_case.build)(x, y);
      ExprRef sym_const = (ctx.*test_case.build)(x, ctx.Const(b, width));
      ExprRef const_const = (ctx.*test_case.build)(ctx.Const(a, width), ctx.Const(b, width));
      uint64_t expected = test_case.semantics(a, b, width);
      uint8_t rw = sym_sym->width();
      EXPECT_EQ(EvalExpr(sym_sym, assignment), MaskToWidth(expected, rw))
          << test_case.name << " width " << int(width) << " a=" << a << " b=" << b;
      EXPECT_EQ(EvalExpr(sym_const, assignment), MaskToWidth(expected, rw))
          << test_case.name << " (const rhs) width " << int(width) << " a=" << a << " b=" << b;
      EXPECT_EQ(EvalExpr(const_const, assignment), MaskToWidth(expected, rw))
          << test_case.name << " (folded) width " << int(width) << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinOps, ExprPropertyTest,
    ::testing::Values(BinOpCase{"add", &ExprContext::Add, SemAdd},
                      BinOpCase{"sub", &ExprContext::Sub, SemSub},
                      BinOpCase{"mul", &ExprContext::Mul, SemMul},
                      BinOpCase{"udiv", &ExprContext::UDiv, SemUDiv},
                      BinOpCase{"urem", &ExprContext::URem, SemURem},
                      BinOpCase{"and", &ExprContext::And, SemAnd},
                      BinOpCase{"or", &ExprContext::Or, SemOr},
                      BinOpCase{"xor", &ExprContext::Xor, SemXor},
                      BinOpCase{"shl", &ExprContext::Shl, SemShl},
                      BinOpCase{"lshr", &ExprContext::LShr, SemLShr},
                      BinOpCase{"eq", &ExprContext::Eq, SemEq},
                      BinOpCase{"ult", &ExprContext::Ult, SemUlt},
                      BinOpCase{"ule", &ExprContext::Ule, SemUle},
                      BinOpCase{"slt", &ExprContext::Slt, SemSlt},
                      BinOpCase{"sle", &ExprContext::Sle, SemSle}),
    [](const ::testing::TestParamInfo<BinOpCase>& info) { return info.param.name; });

TEST(ExprExtractPropertyTest, RandomExtractConcatRoundTrips) {
  ExprContext ctx;
  Rng rng(1234);
  ExprRef x = ctx.Var(32, "x");
  for (int i = 0; i < 300; ++i) {
    uint32_t low = static_cast<uint32_t>(rng.NextBelow(31));
    uint8_t width = static_cast<uint8_t>(1 + rng.NextBelow(32 - low));
    ExprRef ext = ctx.Extract(x, low, width);
    uint64_t value = rng.Next();
    Assignment a;
    a.Set(x->var_id(), value);
    EXPECT_EQ(EvalExpr(ext, a), MaskToWidth(MaskToWidth(value, 32) >> low, width));
  }
}

}  // namespace
}  // namespace ddt
