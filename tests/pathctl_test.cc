// Path-explosion control (src/engine/pathctl.h): kill-rule parsing and the
// fork-site table codec; the loop/edge killer terminating redundant loops a
// checker-less (or checker-blind) run would grind through; diamond state
// merging engaging on reconvergent branches without changing any verdict;
// and the campaign-level determinism contract — with the controls on, the
// rtl8029 campaign finds the identical bug set (including the map-io-space
// and pageable multicast-DMA latents) as the controls-off campaign, with
// byte-identical deterministic reports across thread counts, fleet workers,
// and journal resume.
#include "src/engine/pathctl.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/fleet/fleet.h"
#include "src/support/strings.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

// --- units: rule parsing, fork-site codec ----------------------------------

TEST(PathCtlTest, ParseEdgeKillRuleAcceptsHexAndDecimal) {
  EdgeKillRule rule;
  ASSERT_TRUE(ParseEdgeKillRule("0x10020:0x10004", &rule));
  EXPECT_EQ(rule.from, 0x10020u);
  EXPECT_EQ(rule.to, 0x10004u);
  ASSERT_TRUE(ParseEdgeKillRule("256:512", &rule));
  EXPECT_EQ(rule.from, 256u);
  EXPECT_EQ(rule.to, 512u);

  EXPECT_FALSE(ParseEdgeKillRule("", &rule));
  EXPECT_FALSE(ParseEdgeKillRule("0x10", &rule));
  EXPECT_FALSE(ParseEdgeKillRule("0x10:", &rule));
  EXPECT_FALSE(ParseEdgeKillRule(":0x10", &rule));
  EXPECT_FALSE(ParseEdgeKillRule("a:b", &rule));
  EXPECT_FALSE(ParseEdgeKillRule("1:2:3", &rule));
}

TEST(PathCtlTest, ForkSiteTableCodecRoundTrips) {
  ForkSiteTable table;
  ForkSiteStats& a = table[{0x10020, "-"}];
  a.states_created = 7;
  a.sat_calls = 3;
  ForkSiteStats& b = table[{0x10040, "alloc#1"}];
  b.states_created = 2;
  b.dropped_forks = 5;
  b.states_evicted = 1;
  b.states_merged = 4;
  b.kills = 6;

  ForkSiteTable decoded = DecodeForkSiteTable(EncodeForkSiteTable(table));
  ASSERT_EQ(decoded.size(), 2u);
  const ForkSiteStats& da = decoded[{0x10020, "-"}];
  EXPECT_EQ(da.states_created, 7u);
  EXPECT_EQ(da.sat_calls, 3u);
  const ForkSiteStats& db = decoded[{0x10040, "alloc#1"}];
  EXPECT_EQ(db.states_created, 2u);
  EXPECT_EQ(db.dropped_forks, 5u);
  EXPECT_EQ(db.states_evicted, 1u);
  EXPECT_EQ(db.states_merged, 4u);
  EXPECT_EQ(db.kills, 6u);

  EXPECT_TRUE(DecodeForkSiteTable("").empty());
  // Malformed tokens are dropped, never crash the decode.
  EXPECT_TRUE(DecodeForkSiteTable("garbage not:enough:fields").empty());
}

TEST(PathCtlTest, FormatHotForkSitesRanksByStatesCreated) {
  ForkSiteTable table;
  table[{0x100, "-"}].states_created = 2;
  table[{0x200, "alloc#0"}].states_created = 9;
  std::string out = FormatHotForkSites(table, 8);
  EXPECT_NE(out.find("hot fork sites"), std::string::npos);
  size_t hot = out.find("pc=00000200");
  size_t cold = out.find("pc=00000100");
  ASSERT_NE(hot, std::string::npos);
  ASSERT_NE(cold, std::string::npos);
  EXPECT_LT(hot, cold);  // most states spawned first

  EXPECT_NE(FormatHotForkSites(ForkSiteTable(), 8).find("none observed"),
            std::string::npos);
}

// --- loop/edge killer -------------------------------------------------------

// A long counted spin with nothing else in it. With default checkers the
// loop heuristic would end it at 100k frame-steps; with checkers off, only
// the pathctl killer stands between the engine and the instruction budget.
struct SpinDriver {
  DriverImage image;
  uint32_t spin_pc = 0;  // leader of the spin block; the back edge is spin->spin
};

SpinDriver AssembleSpin() {
  static const char* kSource = R"(
  .driver "spin"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r1, 1000000
  spin:
    subi r1, r1, 1
    bnz r1, spin
    movi r0, 0
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  Result<AssembledDriver> assembled = Assemble(kSource);
  EXPECT_TRUE(assembled.ok()) << assembled.error();
  SpinDriver out;
  out.image = assembled.value().image;
  out.spin_pc = assembled.value().symbols.at("spin");
  return out;
}

PciDescriptor SpinPci() {
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  return pci;
}

DdtConfig SpinConfig() {
  DdtConfig config;
  config.engine.max_instructions = 300'000;
  config.engine.max_wall_ms = 120'000;
  config.use_default_checkers = false;
  config.use_standard_annotations = false;
  return config;
}

TEST(PathCtlTest, BackEdgeKillerTerminatesCoverageStarvedLoop) {
  SpinDriver spin = AssembleSpin();

  DdtConfig off = SpinConfig();
  Ddt baseline(off);
  Result<DdtResult> base = baseline.TestDriver(spin.image, SpinPci());
  ASSERT_TRUE(base.ok()) << base.status().message();
  EXPECT_EQ(base.value().stats.loop_kills, 0u);
  EXPECT_GE(base.value().stats.instructions, 290'000u);  // ate the whole budget

  DdtConfig on = SpinConfig();
  on.engine.pathctl.enabled = true;
  on.engine.pathctl.backedge_kill_threshold = 1000;
  Ddt killed(on);
  Result<DdtResult> kill = killed.TestDriver(spin.image, SpinPci());
  ASSERT_TRUE(kill.ok()) << kill.status().message();
  EXPECT_EQ(kill.value().stats.loop_kills, 1u);
  EXPECT_LT(kill.value().stats.instructions, 50'000u);

  // Deterministic: the kill lands on the same instruction every run.
  Ddt again(on);
  Result<DdtResult> repeat = again.TestDriver(spin.image, SpinPci());
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat.value().stats.instructions, kill.value().stats.instructions);
  EXPECT_EQ(repeat.value().stats.loop_kills, 1u);
}

TEST(PathCtlTest, ExplicitEdgeRuleKillsAndCountsPerRule) {
  SpinDriver spin = AssembleSpin();

  DdtConfig config = SpinConfig();
  config.engine.pathctl.enabled = true;
  config.engine.pathctl.loop_kill = false;  // only the declarative rule may fire
  config.engine.pathctl.kill_edges.push_back(EdgeKillRule{spin.spin_pc, spin.spin_pc});
  Ddt ddt(config);
  Result<DdtResult> r = ddt.TestDriver(spin.image, SpinPci());
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().stats.loop_kills, 0u);
  EXPECT_EQ(r.value().stats.edge_kills, 1u);
  ASSERT_EQ(r.value().stats.edge_rule_kills.size(), 1u);
  EXPECT_EQ(r.value().stats.edge_rule_kills[0], 1u);
  EXPECT_LT(r.value().stats.instructions, 10'000u);  // first traversal dies

  // Rules are inert while pathctl is disabled: declarative kills must never
  // leak into a controls-off run.
  DdtConfig disabled = SpinConfig();
  disabled.engine.pathctl.kill_edges.push_back(EdgeKillRule{spin.spin_pc, spin.spin_pc});
  Ddt inert(disabled);
  Result<DdtResult> quiet = inert.TestDriver(spin.image, SpinPci());
  ASSERT_TRUE(quiet.ok());
  EXPECT_EQ(quiet.value().stats.edge_kills, 0u);
  EXPECT_GE(quiet.value().stats.instructions, 290'000u);
}

// --- diamond state merging --------------------------------------------------

// Four forward branch diamonds over independent symbolic device reads: an
// unmerged exploration fans out toward 2^4 leaves, a merging one folds each
// diamond back to one state at its join.
DriverImage DiamondImage() {
  std::string rounds;
  for (int i = 0; i < 4; ++i) {
    rounds += StrFormat(
        "    ld32 r1, [r5+%d]\n"
        "    andi r1, r1, 0xFF\n"
        "    subi r1, r1, %d\n"
        "    bz r1, hit%d\n"
        "    addi r6, r6, 1\n"
        "  hit%d:\n",
        i * 4, 10 + i, i, i);
  }
  std::string source = R"(
  .driver "diamond"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r6, 0
    movi r0, 0
    kcall MosMapIoSpace
    bz r0, map_failed
    mov r5, r0
)" + rounds + R"(
    movi r0, 0
    ret
  map_failed:
    movi r0, 0xC000009A
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  Result<AssembledDriver> assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.error();
  return assembled.value().image;
}

TEST(PathCtlTest, DiamondMergingFoldsReconvergentStatesWithoutChangingBugs) {
  DriverImage image = DiamondImage();
  DdtConfig off;
  off.engine.max_instructions = 2'000'000;
  off.engine.max_wall_ms = 120'000;
  off.use_standard_annotations = false;
  Ddt unmerged(off);
  Result<DdtResult> u = unmerged.TestDriver(image, SpinPci());
  ASSERT_TRUE(u.ok()) << u.status().message();
  EXPECT_EQ(u.value().stats.states_merged, 0u);

  DdtConfig on = off;
  on.engine.pathctl.enabled = true;
  Ddt merged(on);
  Result<DdtResult> m = merged.TestDriver(image, SpinPci());
  ASSERT_TRUE(m.ok()) << m.status().message();
  EXPECT_GT(m.value().stats.states_merged, 0u);
  EXPECT_LT(m.value().stats.states_created, u.value().stats.states_created);

  ASSERT_EQ(m.value().bugs.size(), u.value().bugs.size());
  for (size_t i = 0; i < u.value().bugs.size(); ++i) {
    EXPECT_EQ(m.value().bugs[i].Row(), u.value().bugs[i].Row());
  }

  // Merging is deterministic: same merge count and state totals every run.
  Ddt again(on);
  Result<DdtResult> repeat = again.TestDriver(image, SpinPci());
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat.value().stats.states_merged, m.value().stats.states_merged);
  EXPECT_EQ(repeat.value().stats.states_created, m.value().stats.states_created);
}

// --- campaign-level merge correctness and determinism -----------------------

FaultCampaignConfig CampaignConfig(bool pathctl) {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 120'000;
  config.base.engine.pathctl.enabled = pathctl;
  config.max_passes = 8;
  config.max_occurrences_per_class = 2;
  config.escalation_rounds = 1;
  config.threads = 1;
  return config;
}

// Sorted: merging reorders within-pass exploration, so the merged campaign
// may *discover* (and thus list) the same bugs in a different order. The
// contract is set identity; ordering determinism is covered by the on-vs-on
// report diffs below.
std::vector<std::string> BugRows(const FaultCampaignResult& result) {
  std::vector<std::string> rows;
  for (const Bug& bug : result.bugs) {
    rows.push_back(bug.Row());
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool HasTitle(const FaultCampaignResult& result, const std::string& needle) {
  for (const Bug& bug : result.bugs) {
    if (bug.title.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(PathCtlCampaignTest, MergedCampaignFindsIdenticalBugSetAtAnyThreadCount) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  Result<FaultCampaignResult> off =
      RunFaultCampaign(CampaignConfig(false), driver.image, driver.pci);
  ASSERT_TRUE(off.ok()) << off.status().message();

  FaultCampaignConfig on1 = CampaignConfig(true);
  Result<FaultCampaignResult> r1 = RunFaultCampaign(on1, driver.image, driver.pci);
  ASSERT_TRUE(r1.ok()) << r1.status().message();
  EXPECT_EQ(BugRows(r1.value()), BugRows(off.value()));
  EXPECT_TRUE(HasTitle(r1.value(), "MosMapIoSpace[map-io-space#0]"));

  FaultCampaignConfig on4 = CampaignConfig(true);
  on4.threads = 4;
  Result<FaultCampaignResult> r4 = RunFaultCampaign(on4, driver.image, driver.pci);
  ASSERT_TRUE(r4.ok()) << r4.status().message();
  EXPECT_EQ(r4.value().FormatReport(driver.name, /*include_volatile=*/false),
            r1.value().FormatReport(driver.name, /*include_volatile=*/false));

  // The fork profiler is always on: controls-off campaigns still attribute
  // their states to fork sites, and the volatile report surfaces the table.
  EXPECT_FALSE(off.value().total_stats.fork_sites.empty());
  std::string volatile_report = off.value().FormatReport(driver.name, true);
  EXPECT_NE(volatile_report.find("hot fork sites"), std::string::npos);
  EXPECT_NE(volatile_report.find("searcher coverage-greedy"), std::string::npos);
}

TEST(PathCtlCampaignTest, MergedCampaignPreservesHwAndDmaLatents) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FaultCampaignConfig off = CampaignConfig(false);
  off.max_passes = 24;  // room for the hw fault plans after the kernel plans
  off.hw_faults = true;
  off.hw_max_points_per_kind = 2;
  off.base.dma_checker = true;
  FaultCampaignConfig on = off;
  on.base.engine.pathctl.enabled = true;

  Result<FaultCampaignResult> r_off = RunFaultCampaign(off, driver.image, driver.pci);
  ASSERT_TRUE(r_off.ok()) << r_off.status().message();
  Result<FaultCampaignResult> r_on = RunFaultCampaign(on, driver.image, driver.pci);
  ASSERT_TRUE(r_on.ok()) << r_on.status().message();

  EXPECT_EQ(BugRows(r_on.value()), BugRows(r_off.value()));
  EXPECT_TRUE(HasTitle(r_on.value(), "MosMapIoSpace[map-io-space#0]"));
  EXPECT_TRUE(HasTitle(r_on.value(), "DMA target in pageable memory"));
}

TEST(PathCtlCampaignTest, FleetWorkersMatchInProcessWithControlsOn) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  Result<FaultCampaignResult> in_process =
      RunFaultCampaign(CampaignConfig(true), driver.image, driver.pci);
  ASSERT_TRUE(in_process.ok()) << in_process.status().message();

  fleet::FleetCampaignConfig fleet;
  fleet.workers = 3;
  fleet.shard_dir = testing::TempDir() + "pathctl_fleet";
  ::mkdir(fleet.shard_dir.c_str(), 0755);
  fleet.heartbeat_interval_ms = 50;
  Result<FaultCampaignResult> r = fleet::RunFleetCampaign(
      CampaignConfig(true), driver.image, driver.pci, fleet);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().FormatReport(driver.name, false),
            in_process.value().FormatReport(driver.name, false));
  EXPECT_TRUE(HasTitle(r.value(), "MosMapIoSpace[map-io-space#0]"));
}

TEST(PathCtlCampaignTest, JournalResumeRoundTripsForkSiteAttribution) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  std::string journal = testing::TempDir() + "pathctl_resume.journal";
  std::remove(journal.c_str());

  FaultCampaignConfig config = CampaignConfig(true);
  config.journal_path = journal;
  Result<FaultCampaignResult> first = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(first.ok()) << first.status().message();

  config.resume = true;
  Result<FaultCampaignResult> second = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(second.ok()) << second.status().message();
  EXPECT_EQ(second.value().passes_loaded, second.value().passes.size());
  EXPECT_EQ(second.value().FormatReport(driver.name, false),
            first.value().FormatReport(driver.name, false));
  // Record-sourced passes must restore the per-fork-site attribution exactly
  // (the table rides through the journal codec, not the live engine).
  EXPECT_EQ(second.value().total_stats.fork_sites, first.value().total_stats.fork_sites);
  EXPECT_EQ(second.value().total_stats.states_merged,
            first.value().total_stats.states_merged);
  std::remove(journal.c_str());
}

}  // namespace
}  // namespace ddt
