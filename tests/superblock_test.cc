// Tier-2 superblock tests: hotness counters, compiler region structure,
// full-corpus differential parity (per-instruction and per-access via a
// recording checker), side-exit correctness per exit kind, block-to-block
// chaining, and campaign/fleet report byte-identity with the tier on or off.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/fleet/fleet.h"
#include "src/support/strings.h"
#include "src/vm/assembler.h"
#include "src/vm/block_cache.h"
#include "src/vm/layout.h"
#include "src/vm/superblock.h"

namespace ddt {
namespace {

PciDescriptor TestPci() {
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  return pci;
}

// --- hotness counters ------------------------------------------------------

TEST(SuperblockCounterTest, NoteBlockEntryCountsAndMarksHotOnce) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  const std::vector<uint8_t>& code = driver.image.code;
  BlockCache cache(code.data(), code.size(), 0);

  // The counter climbs by one per entry and hot_blocks bumps exactly once,
  // at the crossing.
  for (uint32_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(cache.NoteBlockEntry(0, /*hot_threshold=*/3), i);
    EXPECT_EQ(cache.stats().hot_blocks, i >= 3 ? 1u : 0u);
  }
  EXPECT_EQ(cache.ExecCount(0), 5u);

  // A different block is an independent counter (and an independent crossing).
  EXPECT_EQ(cache.NoteBlockEntry(kInstructionSize, 1), 1u);
  EXPECT_EQ(cache.stats().hot_blocks, 2u);

  // Unsloted pcs never count.
  EXPECT_EQ(cache.NoteBlockEntry(3, 1), 0u);           // misaligned
  EXPECT_EQ(cache.NoteBlockEntry(0xFFFFFFF8, 1), 0u);  // out of range
  EXPECT_EQ(cache.ExecCount(3), 0u);
}

TEST(SuperblockCounterTest, FallbackFetchesCountUnservableProbes) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  const std::vector<uint8_t>& code = driver.image.code;
  BlockCache cache(code.data(), code.size(), 0x1000);

  ASSERT_NE(cache.Lookup(0x1000), nullptr);
  EXPECT_EQ(cache.stats().fallback_fetches, 0u);

  EXPECT_EQ(cache.Lookup(0x1004), nullptr);  // misaligned
  EXPECT_EQ(cache.stats().fallback_fetches, 1u);
  EXPECT_EQ(cache.Lookup(0x0FF8), nullptr);  // below base
  EXPECT_EQ(cache.stats().fallback_fetches, 2u);

  // An undecodable slot is also a fallback, every time it is probed.
  std::vector<uint8_t> junk(2 * kInstructionSize, 0xFF);
  BlockCache bad(junk.data(), junk.size(), 0);
  EXPECT_EQ(bad.Lookup(0), nullptr);
  EXPECT_EQ(bad.Lookup(0), nullptr);
  EXPECT_EQ(bad.stats().fallback_fetches, 2u);
}

// --- compiler region structure --------------------------------------------

TEST(SuperblockCompilerTest, TightLoopLowersToInternalBackEdge) {
  Result<AssembledDriver> assembled = Assemble(R"(
  .driver "loop_toy"
  .entry driver_entry
  .code
  .func driver_entry
    movi r1, 50
  loop:
    subi r1, r1, 1
    bnz r1, loop
    ret
)");
  ASSERT_TRUE(assembled.ok()) << assembled.error();
  const std::vector<uint8_t>& code = assembled.value().image.code;
  // The assembler resolves labels to loaded guest addresses, so the cache
  // base must match the image's load address for branch targets to be
  // in-region (exactly as the engine sets it up).
  const uint32_t base = kDriverImageBase;
  BlockCache cache(code.data(), code.size(), base);
  SuperblockCache sbs(&cache, base, /*leader_slots=*/nullptr);

  const Superblock* sb = sbs.Compile(base, SuperblockCache::Limits());
  ASSERT_NE(sb, nullptr);
  EXPECT_EQ(sb->entry_pc, base);
  EXPECT_GE(sb->instructions, 3u);  // movi, subi, bnz at minimum

  // The back edge to `loop` (base+8, a mid-block target handled by tail
  // duplication) resolves to an internal op index, so the loop spins without
  // leaving the region. The ret is an indirect transfer: a side exit.
  bool internal_back_edge = false;
  bool ret_side_exit = false;
  const uint32_t ret_pc = base + 3 * kInstructionSize;
  for (const SbOp& op : sb->ops) {
    if (op.kind == SbKind::kBnzOp && op.taken >= 0) {
      internal_back_edge = true;
      EXPECT_EQ(sb->ops[static_cast<size_t>(op.taken)].pc, base + kInstructionSize);
    }
    if (op.kind == SbKind::kSideExit && op.pc == ret_pc) {
      ret_side_exit = true;
    }
  }
  EXPECT_TRUE(internal_back_edge);
  EXPECT_TRUE(ret_side_exit);

  // Compilation is memoized: the same entry returns the same object and the
  // compile counter does not move.
  EXPECT_EQ(sbs.stats().compiled, 1u);
  EXPECT_EQ(sbs.Compile(base, SuperblockCache::Limits()), sb);
  EXPECT_EQ(sbs.stats().compiled, 1u);
  EXPECT_EQ(sbs.AtPc(base), sb);
}

TEST(SuperblockCompilerTest, RegionRespectsOpBudget) {
  // 50 straight-line instructions; a 16-op budget must stop the region early
  // with a synthetic exit, not overrun.
  std::string source = "  .driver \"straight_toy\"\n  .entry driver_entry\n  .code\n  .func driver_entry\n";
  for (int i = 0; i < 50; ++i) {
    source += "    addi r1, r1, 1\n";
  }
  source += "    ret\n";
  Result<AssembledDriver> assembled = Assemble(source);
  ASSERT_TRUE(assembled.ok()) << assembled.error();
  const std::vector<uint8_t>& code = assembled.value().image.code;
  const uint32_t base = kDriverImageBase;
  BlockCache cache(code.data(), code.size(), base);
  SuperblockCache sbs(&cache, base, nullptr);

  SuperblockCache::Limits limits;
  limits.max_ops = 16;
  const Superblock* sb = sbs.Compile(base, limits);
  ASSERT_NE(sb, nullptr);
  EXPECT_LE(sb->ops.size(), 17u);  // budget plus the synthetic exit
  bool has_exit = false;
  for (const SbOp& op : sb->ops) {
    if (op.kind == SbKind::kExit) {
      has_exit = true;
      EXPECT_EQ((op.imm - base) % kInstructionSize, 0u);
      EXPECT_LT(op.imm, base + static_cast<uint32_t>(code.size()));
    }
  }
  EXPECT_TRUE(has_exit);
}

// --- full-corpus differential run ------------------------------------------

// Strips expression pointers (context-specific) so traces compare by value.
struct FlatEvent {
  TraceEvent::Kind kind;
  uint32_t pc, addr, value, a, b;
  uint8_t size;
  bool value_symbolic;
  bool operator==(const FlatEvent& o) const {
    return kind == o.kind && pc == o.pc && addr == o.addr && value == o.value &&
           a == o.a && b == o.b && size == o.size && value_symbolic == o.value_symbolic;
  }
};

std::vector<FlatEvent> Flatten(const std::vector<TraceEvent>& events) {
  std::vector<FlatEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) {
    out.push_back(FlatEvent{e.kind, e.pc, e.addr, e.value, e.a, e.b, e.size, e.value_symbolic});
  }
  return out;
}

// Records a fingerprint per executed instruction (state id, pc, full register
// file) and per memory access. Tier 2 must produce the exact same streams as
// the interpreter: same instructions, same order, same machine state at every
// checker boundary.
class RecordingChecker : public Checker {
 public:
  explicit RecordingChecker(std::vector<uint64_t>* sink) : sink_(sink) {}
  std::string name() const override { return "recording"; }

  void OnInstruction(ExecutionState& st, uint32_t pc, CheckerHost& host) override {
    uint64_t h = Mix(0x9E3779B97F4A7C15ull ^ st.id, pc);
    for (int r = 0; r < kNumRegisters; ++r) {
      Value v = st.Reg(r);
      h = Mix(h, v.IsConcrete() ? v.concrete() : 0x5BADF00Du);
      h = Mix(h, v.IsSymbolic() ? 1u : 0u);
    }
    sink_->push_back(h);
  }

  void OnMemAccess(ExecutionState& st, const MemAccessEvent& access, CheckerHost& host) override {
    uint64_t h = Mix(0xA0761D6478BD642Full ^ st.id, access.pc);
    h = Mix(h, access.addr);
    h = Mix(h, access.size);
    h = Mix(h, access.is_write ? 1u : 0u);
    sink_->push_back(h);
  }

 private:
  static uint64_t Mix(uint64_t h, uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return h;
  }
  std::vector<uint64_t>* sink_;
};

TEST(SuperblockDifferentialTest, TierTwoIdenticalAcrossCorpus) {
  for (const CorpusDriver& driver : Corpus()) {
    DdtResult results[2];
    std::unique_ptr<Ddt> ddts[2];  // bugs reference engine-owned expr storage
    std::vector<uint64_t> streams[2];
    for (int tier2 = 0; tier2 < 2; ++tier2) {
      DdtConfig config;
      config.engine.max_instructions = 60000;
      config.engine.max_wall_ms = 3'600'000;  // never hit: budget cuts are instruction-determined
      config.engine.superblocks = tier2 == 1;
      config.engine.superblock_hot_threshold = 2;
      ddts[tier2] = std::make_unique<Ddt>(config);
      // Both runs carry the checker so the checker dispatch itself is
      // identical; only the execution tier differs.
      ddts[tier2]->AddChecker(std::make_unique<RecordingChecker>(&streams[tier2]));
      Result<DdtResult> r = ddts[tier2]->TestDriver(driver.image, driver.pci);
      ASSERT_TRUE(r.ok()) << driver.name << ": " << r.status().message();
      results[tier2] = r.take();
    }
    const DdtResult& plain = results[0];
    const DdtResult& fast = results[1];

    EXPECT_EQ(plain.stats.instructions, fast.stats.instructions) << driver.name;
    EXPECT_EQ(plain.stats.forks, fast.stats.forks) << driver.name;
    EXPECT_EQ(plain.covered_blocks, fast.covered_blocks) << driver.name;
    ASSERT_EQ(plain.bugs.size(), fast.bugs.size()) << driver.name;
    for (size_t i = 0; i < plain.bugs.size(); ++i) {
      EXPECT_EQ(plain.bugs[i].Row(), fast.bugs[i].Row()) << driver.name;
      EXPECT_EQ(plain.bugs[i].pc, fast.bugs[i].pc);
      EXPECT_TRUE(Flatten(plain.bugs[i].trace) == Flatten(fast.bugs[i].trace))
          << driver.name << " bug " << i << ": traces diverge";
    }

    // Per-instruction and per-access parity: the checker saw the same machine
    // states in the same order under both tiers.
    ASSERT_EQ(streams[0].size(), streams[1].size()) << driver.name;
    EXPECT_TRUE(streams[0] == streams[1]) << driver.name << ": checker streams diverge";

    // The tier-2 run actually ran tier 2 (and the tier-1 run did not).
    EXPECT_GT(fast.stats.superblocks_compiled, 0u) << driver.name;
    EXPECT_GT(fast.stats.superblock_instructions, 0u) << driver.name;
    EXPECT_GT(fast.stats.superblock_entries, 0u) << driver.name;
    EXPECT_EQ(plain.stats.superblocks_compiled, 0u) << driver.name;
    EXPECT_EQ(plain.stats.superblock_instructions, 0u) << driver.name;
  }
}

// --- side exits ------------------------------------------------------------

DdtResult RunToy(const std::string& source, bool superblocks,
                 std::unique_ptr<Ddt>* keepalive) {
  Result<AssembledDriver> assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.error();
  DdtConfig config;
  config.engine.max_instructions = 200000;
  config.engine.superblocks = superblocks;
  config.engine.superblock_hot_threshold = 2;
  *keepalive = std::make_unique<Ddt>(config);
  Result<DdtResult> result = (*keepalive)->TestDriver(assembled.value().image, TestPci());
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.take();
}

// A hot loop whose body ends by overwriting its own code: the store must trip
// the write barrier from inside the superblock executor via a side exit, so
// tier 1 reports the exact same bug at the exact same pc.
TEST(SuperblockSideExitTest, WriteBarrierStoreSideExitsAndReportsIdentically) {
  const std::string source = R"(
  .driver "barrier_hot_toy"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r3, 8
  loop:
    subi r3, r3, 1
    bnz r3, loop
    la r1, ep_init
    movi r2, 0x90
    st32 [r1+0], r2        ; overwrite own code
    movi r0, 0
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  std::unique_ptr<Ddt> ddts[2];
  DdtResult plain = RunToy(source, /*superblocks=*/false, &ddts[0]);
  DdtResult fast = RunToy(source, /*superblocks=*/true, &ddts[1]);

  ASSERT_EQ(plain.bugs.size(), fast.bugs.size());
  for (size_t i = 0; i < plain.bugs.size(); ++i) {
    EXPECT_EQ(plain.bugs[i].Row(), fast.bugs[i].Row());
    EXPECT_EQ(plain.bugs[i].pc, fast.bugs[i].pc);
  }
  bool barrier_bug = false;
  for (const Bug& bug : fast.bugs) {
    if (bug.title.find("code segment") != std::string::npos ||
        bug.title.find("immutable driver code") != std::string::npos) {
      barrier_bug = true;
    }
  }
  EXPECT_TRUE(barrier_bug);
  EXPECT_EQ(plain.stats.instructions, fast.stats.instructions);
  EXPECT_GT(fast.stats.superblocks_compiled, 0u);
  EXPECT_GT(fast.stats.superblock_side_exits, 0u);
}

// A divisor that counts down to zero: tier 2 retires the nonzero iterations
// and must side-exit on the zero one so tier 1 owns the division-by-zero bug.
TEST(SuperblockSideExitTest, ZeroDivisorSideExitsToTierOne) {
  const std::string source = R"(
  .driver "div_toy"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r3, 6
  loop:
    subi r3, r3, 1
    movi r1, 100
    udiv r2, r1, r3
    bnz r3, loop
    movi r0, 0
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  std::unique_ptr<Ddt> ddts[2];
  DdtResult plain = RunToy(source, /*superblocks=*/false, &ddts[0]);
  DdtResult fast = RunToy(source, /*superblocks=*/true, &ddts[1]);

  ASSERT_EQ(plain.bugs.size(), fast.bugs.size());
  for (size_t i = 0; i < plain.bugs.size(); ++i) {
    EXPECT_EQ(plain.bugs[i].Row(), fast.bugs[i].Row());
    EXPECT_EQ(plain.bugs[i].pc, fast.bugs[i].pc);
  }
  EXPECT_EQ(plain.stats.instructions, fast.stats.instructions);
  EXPECT_GT(fast.stats.superblocks_compiled, 0u);
  EXPECT_GT(fast.stats.superblock_side_exits, 0u);
  EXPECT_GT(fast.stats.superblock_instructions, 0u);
}

// --- chaining --------------------------------------------------------------

// A hot loop spanning more basic blocks than one region may hold: the first
// compiled region must chain directly into the next without bouncing through
// the dispatcher.
TEST(SuperblockChainTest, OversizedLoopChainsBetweenRegions) {
  std::string source = R"(
  .driver "chain_toy"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r1, 64
    movi r2, 1
  outer:
)";
  // 40 single-instruction blocks (each bnz is leader and terminator): more
  // than Limits::max_blocks, so the loop cannot fit in one region.
  for (int i = 0; i < 40; ++i) {
    source += StrFormat("  b%d:\n    bnz r2, b%d\n", i, i + 1);
  }
  source += R"(  b40:
    subi r1, r1, 1
    bnz r1, outer
    movi r0, 0
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  std::unique_ptr<Ddt> ddts[2];
  DdtResult plain = RunToy(source, /*superblocks=*/false, &ddts[0]);
  DdtResult fast = RunToy(source, /*superblocks=*/true, &ddts[1]);

  EXPECT_EQ(plain.stats.instructions, fast.stats.instructions);
  ASSERT_EQ(plain.bugs.size(), fast.bugs.size());
  for (size_t i = 0; i < plain.bugs.size(); ++i) {
    EXPECT_EQ(plain.bugs[i].Row(), fast.bugs[i].Row());
  }
  EXPECT_GE(fast.stats.superblocks_compiled, 2u);
  EXPECT_GT(fast.stats.superblock_chains, 0u);
  EXPECT_GT(fast.stats.superblock_instructions, 0u);
}

// --- campaign and fleet report identity -------------------------------------

FaultCampaignConfig CampaignConfig(bool superblocks, uint32_t threads) {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 120'000;
  config.base.engine.superblocks = superblocks;
  config.base.engine.superblock_hot_threshold = 4;
  config.max_passes = 8;
  config.max_occurrences_per_class = 2;
  config.escalation_rounds = 1;
  config.threads = threads;
  return config;
}

TEST(SuperblockCampaignTest, ReportByteIdenticalTierOnOffAtThreads1And4AndFleet) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  Result<FaultCampaignResult> off =
      RunFaultCampaign(CampaignConfig(false, 1), driver.image, driver.pci);
  ASSERT_TRUE(off.ok()) << off.status().message();
  const std::string reference = off.value().FormatReport(driver.name, /*include_volatile=*/false);
  ASSERT_FALSE(reference.empty());

  // Tier 2 on, sequential.
  Result<FaultCampaignResult> on1 =
      RunFaultCampaign(CampaignConfig(true, 1), driver.image, driver.pci);
  ASSERT_TRUE(on1.ok()) << on1.status().message();
  EXPECT_EQ(on1.value().FormatReport(driver.name, false), reference);
  EXPECT_GT(on1.value().total_stats.superblocks_compiled, 0u);
  EXPECT_GT(on1.value().total_stats.superblock_instructions, 0u);

  // Tier 2 on, four worker threads.
  Result<FaultCampaignResult> on4 =
      RunFaultCampaign(CampaignConfig(true, 4), driver.image, driver.pci);
  ASSERT_TRUE(on4.ok()) << on4.status().message();
  EXPECT_EQ(on4.value().FormatReport(driver.name, false), reference);

  // Tier 2 on, fleet of three worker processes (fork mode: the workers
  // inherit the in-memory config, superblock knobs included).
  fleet::FleetCampaignConfig fleet;
  fleet.workers = 3;
  fleet.shard_dir = testing::TempDir() + "superblock_fleet";
  ::mkdir(fleet.shard_dir.c_str(), 0755);
  fleet.heartbeat_interval_ms = 50;
  Result<FaultCampaignResult> on_fleet =
      fleet::RunFleetCampaign(CampaignConfig(true, 1), driver.image, driver.pci, fleet);
  ASSERT_TRUE(on_fleet.ok()) << on_fleet.status().message();
  EXPECT_EQ(on_fleet.value().FormatReport(driver.name, false), reference);
  EXPECT_GT(on_fleet.value().total_stats.superblocks_compiled, 0u);
}

}  // namespace
}  // namespace ddt
