// The hybrid concolic fuzz loop (src/fuzz): input serialization, deterministic
// mutation, coverage-novelty corpus admission and persistence, the concrete
// executor's seed round-trip, report determinism across thread and worker
// counts, the latent-bug acceptance path (a bug only the fuzz plane finds,
// with a replayable evidence file), and promotion driving symbolic passes into
// blocks the capped exploration alone never covered.
#include "src/fuzz/fuzz.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/bug_io.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/executor.h"
#include "src/fuzz/input.h"
#include "src/fuzz/mutator.h"
#include "src/support/rng.h"
#include "src/support/strings.h"

namespace ddt {
namespace fuzz {
namespace {

FuzzInput SampleInput() {
  FuzzInput input;
  input.label = "seed#0";
  FuzzField reg;
  reg.origin.source = VarOrigin::Source::kRegistry;
  reg.origin.label = "NetworkAddress";
  reg.origin.seq = 1;
  reg.width = 32;
  reg.value = 0xC0FFEE;
  reg.var_name = "registry:NetworkAddress";
  input.fields.push_back(reg);
  FuzzField hw;
  hw.origin.source = VarOrigin::Source::kHardwareRead;
  hw.origin.aux = 0x10;
  hw.origin.seq = 3;
  hw.width = 8;
  hw.value = 0x7F;
  hw.var_name = "hw:+0x10#3";
  input.fields.push_back(hw);
  input.interrupt_schedule = {2, 9};
  input.alternatives = {{4, "fail-once"}};
  input.fault_plan.label = "alloc#0";
  input.fault_plan.points.push_back(FaultPoint{FaultClass::kAllocation, 0});
  input.fault_plan.hw_points.push_back(HwFaultPoint{static_cast<HwFaultKind>(0), 2});
  return input;
}

TEST(FuzzInputTest, SerializationRoundTrips) {
  FuzzInput input = SampleInput();
  std::string text = SerializeFuzzInput(input);
  Result<FuzzInput> parsed = ParseFuzzInput(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  // The round-trip fixed point is the serialized form itself.
  EXPECT_EQ(SerializeFuzzInput(parsed.value()), text);
  EXPECT_EQ(parsed.value().label, "seed#0");
  ASSERT_EQ(parsed.value().fields.size(), 2u);
  EXPECT_EQ(parsed.value().fields[0].value, 0xC0FFEEu);
  EXPECT_EQ(parsed.value().fields[0].origin.label, "NetworkAddress");
  EXPECT_EQ(parsed.value().fields[1].origin.aux, 0x10u);
  EXPECT_EQ(parsed.value().interrupt_schedule, (std::vector<uint32_t>{2, 9}));
  ASSERT_EQ(parsed.value().alternatives.size(), 1u);
  EXPECT_EQ(parsed.value().alternatives[0].second, "fail-once");
  ASSERT_EQ(parsed.value().fault_plan.points.size(), 1u);
  ASSERT_EQ(parsed.value().fault_plan.hw_points.size(), 1u);
}

TEST(FuzzInputTest, ParseRejectsMalformedBlobs) {
  std::string text = SerializeFuzzInput(SampleInput());
  EXPECT_FALSE(ParseFuzzInput("").ok());
  EXPECT_FALSE(ParseFuzzInput("not-a-fuzz-input\nend\n").ok());
  // Truncation (missing the end marker) must be detected, not half-loaded.
  EXPECT_FALSE(ParseFuzzInput(text.substr(0, text.size() - 5)).ok());
  // Unknown keys are corruption, not extensions.
  std::string bad = text;
  bad.insert(bad.find("end\n"), "mystery 1 2 3\n");
  EXPECT_FALSE(ParseFuzzInput(bad).ok());
}

TEST(FuzzMutatorTest, SameStreamSameMutantDifferentStreamsDiverge) {
  FuzzInput base = SampleInput();
  std::array<uint64_t, kNumMutatorKinds> counts{};

  SplitMix64 a = SplitMix64(42).Fork(1).Fork(7);
  SplitMix64 b = SplitMix64(42).Fork(1).Fork(7);
  FuzzInput ma = MutateInput(base, a, &counts);
  FuzzInput mb = MutateInput(base, b, &counts);
  EXPECT_EQ(SerializeFuzzInput(ma), SerializeFuzzInput(mb));

  // Across exec indices the streams decorrelate: with stacked mutations over
  // 16 execs, at least one mutant must differ from the first.
  bool diverged = false;
  for (uint64_t e = 0; e < 16 && !diverged; ++e) {
    SplitMix64 stream = SplitMix64(42).Fork(1).Fork(e + 8);
    diverged = SerializeFuzzInput(MutateInput(base, stream, &counts)) != SerializeFuzzInput(ma);
  }
  EXPECT_TRUE(diverged);
  uint64_t total = 0;
  for (uint64_t c : counts) {
    total += c;
  }
  EXPECT_GT(total, 0u);  // every application is tallied per mutator kind
}

CoverageBitmap BitmapOf(std::initializer_list<size_t> slots) {
  CoverageBitmap map(64);
  for (size_t slot : slots) {
    map.Set(slot);
  }
  return map;
}

TEST(FuzzCorpusTest, AdmitsOnlyCoverageNovelInputs) {
  FuzzCorpus corpus;
  FuzzInput input = SampleInput();
  EXPECT_EQ(corpus.Offer(input, BitmapOf({1, 2}), 0, 8), 0);   // first is novel
  EXPECT_EQ(corpus.Offer(input, BitmapOf({1, 2}), 0, 8), -1);  // duplicate coverage
  EXPECT_EQ(corpus.Offer(input, BitmapOf({2, 3}), 1, 8), 1);   // slot 3 is new
  EXPECT_EQ(corpus.Offer(input, BitmapOf({9}), 1, 2), -1);     // over max_entries
  EXPECT_EQ(corpus.size(), 2u);
  EXPECT_EQ(corpus.entries()[1].novel_blocks, 1u);
  EXPECT_EQ(corpus.entries()[1].batch, 1u);
  EXPECT_EQ(corpus.cumulative().Popcount(), 3u);
}

TEST(FuzzCorpusTest, PersistsAndSurvivesTornTail) {
  const char* path = "/tmp/ddt_fuzz_corpus_test.bin";
  const uint64_t fp = 0x1234ABCDull;
  FuzzCorpus corpus;
  corpus.Offer(SampleInput(), BitmapOf({1}), 0, 8);
  FuzzInput second = SampleInput();
  second.label = "fuzz b1#3";
  corpus.Offer(second, BitmapOf({1, 2}), 1, 8);
  corpus.set_batches_done(2);
  ASSERT_TRUE(corpus.SaveToFile(path, fp).ok());

  FuzzCorpus loaded;
  size_t load_errors = 0;
  ASSERT_TRUE(loaded.LoadFromFile(path, fp, &load_errors).ok());
  EXPECT_EQ(load_errors, 0u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.batches_done(), 2u);
  EXPECT_EQ(loaded.entries()[1].input.label, "fuzz b1#3");
  EXPECT_EQ(loaded.cumulative().Fingerprint(), corpus.cumulative().Fingerprint());

  // A different fuzz seed / driver must refuse the file, never silently
  // continue under the wrong mutation universe.
  FuzzCorpus wrong;
  EXPECT_FALSE(wrong.LoadFromFile(path, fp + 1, &load_errors).ok());

  // Chop bytes off the tail (death mid-save): the intact prefix loads, the
  // damaged record is dropped and counted.
  std::FILE* f = std::fopen(path, "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string bytes(static_cast<size_t>(size), '\0');
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  f = std::fopen(path, "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size() - 7, f);
  std::fclose(f);

  FuzzCorpus torn;
  ASSERT_TRUE(torn.LoadFromFile(path, fp, &load_errors).ok());
  EXPECT_EQ(torn.size(), 1u);
  EXPECT_EQ(load_errors, 1u);
  EXPECT_EQ(torn.entries()[0].input.label, "seed#0");
  std::remove(path);
}

// --- End-to-end over the rtl8029 corpus driver -----------------------------

FuzzCampaignConfig SmallConfig() {
  FuzzCampaignConfig config;
  config.campaign.max_passes = 4;
  config.campaign.max_occurrences_per_class = 1;
  config.campaign.threads = 1;
  config.fuzz.batches = 2;
  config.fuzz.execs_per_batch = 8;
  config.fuzz.max_seeds = 8;
  config.fuzz.max_promotions = 1;
  return config;
}

// Satellite: a solver-derived seed, serialized and reloaded, must replay to
// the originating path's exact deterministic observation — same coverage
// fingerprint, same instruction count, same serialized bug set — on every
// execution.
TEST(FuzzExecutorTest, SerializedSeedRoundTripReplaysIdentically) {
  const CorpusDriver& rtl = CorpusDriverByName("rtl8029");
  FaultCampaignConfig campaign;

  DdtConfig seed_config = campaign.base;
  seed_config.engine.max_path_seeds = 4;
  Ddt ddt(seed_config);
  Result<DdtResult> run = ddt.TestDriver(rtl.image, rtl.pci);
  ASSERT_TRUE(run.ok()) << run.status().message();
  ASSERT_FALSE(run.value().path_seeds.empty());

  FuzzInput seed =
      FromPathSeed(run.value().path_seeds.front(), seed_config.engine.fault_plan, "seed#0");
  Result<FuzzInput> reloaded = ParseFuzzInput(SerializeFuzzInput(seed));
  ASSERT_TRUE(reloaded.ok()) << reloaded.error();

  FuzzExecutor executor(campaign, rtl.image, rtl.pci);
  FuzzExecResult first = executor.Execute(reloaded.value());
  FuzzExecResult second = executor.Execute(reloaded.value());
  ASSERT_TRUE(first.ok) << first.failure;
  ASSERT_TRUE(second.ok) << second.failure;
  EXPECT_GT(first.coverage.Popcount(), 0u);
  EXPECT_GT(first.instructions, 0u);
  EXPECT_EQ(first.coverage.Fingerprint(), second.coverage.Fingerprint());
  EXPECT_EQ(first.instructions, second.instructions);
  EXPECT_EQ(first.bugs_text, second.bugs_text);
}

// The full contract: for one fuzz seed the deterministic report is
// byte-identical in-process at 1 and 4 threads and across 3 fork-isolated
// shard workers.
TEST(FuzzCampaignTest, ReportByteIdenticalAcrossThreadAndWorkerCounts) {
  const CorpusDriver& rtl = CorpusDriverByName("rtl8029");

  FuzzCampaignConfig t1 = SmallConfig();
  Result<FuzzCampaignResult> r1 = RunFuzzCampaign(t1, rtl.image, rtl.pci);
  ASSERT_TRUE(r1.ok()) << r1.status().message();

  FuzzCampaignConfig t4 = SmallConfig();
  t4.campaign.threads = 4;
  Result<FuzzCampaignResult> r4 = RunFuzzCampaign(t4, rtl.image, rtl.pci);
  ASSERT_TRUE(r4.ok()) << r4.status().message();

  FuzzCampaignConfig w3 = SmallConfig();
  w3.fuzz.workers = 3;
  Result<FuzzCampaignResult> rw = RunFuzzCampaign(w3, rtl.image, rtl.pci);
  ASSERT_TRUE(rw.ok()) << rw.status().message();

  std::string report1 = r1.value().FormatReport(rtl.name, /*include_volatile=*/false);
  EXPECT_GT(r1.value().execs, 0u);
  EXPECT_GT(r1.value().corpus_entries, 0u);
  EXPECT_EQ(report1, r4.value().FormatReport(rtl.name, /*include_volatile=*/false));
  EXPECT_EQ(report1, rw.value().FormatReport(rtl.name, /*include_volatile=*/false));
  EXPECT_GT(rw.value().fuzz_workers_spawned, 0u);
}

// Acceptance: the campaign (DMA checker off, its shipping default here) never
// sees the pageable-multicast-list DMA bug; the fuzz plane — whose concrete
// executor always runs every checker — finds it, and the saved evidence file
// replays it like any campaign bug.
TEST(FuzzCampaignTest, FindsLatentDmaBugOnlyViaConcreteExecutor) {
  const CorpusDriver& rtl = CorpusDriverByName("rtl8029");
  FuzzCampaignConfig config = SmallConfig();
  config.fuzz.batches = 1;  // the solver-seeded batch alone exposes it
  ASSERT_FALSE(config.campaign.base.dma_checker);

  Result<FuzzCampaignResult> run = RunFuzzCampaign(config, rtl.image, rtl.pci);
  ASSERT_TRUE(run.ok()) << run.status().message();
  const FuzzCampaignResult& result = run.value();

  auto is_dma_bug = [](const Bug& bug) {
    return bug.title.find("DMA target in pageable memory") != std::string::npos;
  };
  for (const Bug& bug : result.campaign.bugs) {
    EXPECT_FALSE(is_dma_bug(bug)) << "campaign should not see the latent DMA bug";
  }
  const Bug* dma_bug = nullptr;
  for (const Bug& bug : result.fuzz_bugs) {
    if (is_dma_bug(bug)) {
      dma_bug = &bug;
    }
  }
  ASSERT_NE(dma_bug, nullptr) << "fuzz plane missed the latent DMA bug";

  // Evidence file round-trip, then replay under the executor's checker set.
  const char* evidence = "/tmp/ddt_fuzz_dma_evidence.report";
  ASSERT_TRUE(SaveBugsFile(evidence, {*dma_bug}).ok());
  Result<std::vector<Bug>> loaded = LoadBugsFile(evidence);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().size(), 1u);
  DdtConfig replay_config = config.campaign.base;
  replay_config.dma_checker = true;
  ReplayResult replay = ReplayBug(rtl.image, rtl.pci, loaded.value()[0], replay_config);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
  std::remove(evidence);
}

// Acceptance: under a tight fork cap the symbolic exploration is truncated;
// mutation finds concretely-reachable territory beyond it, and promoting
// those corpus entries back to symbolic exploration (as concretization hints)
// covers blocks neither the capped exploration nor any concrete execution
// reached on its own.
TEST(FuzzCampaignTest, PromotionCoversBlocksCappedExplorationMissed) {
  const CorpusDriver& rtl = CorpusDriverByName("rtl8029");
  FuzzCampaignConfig config = SmallConfig();
  config.campaign.base.engine.max_states = 24;  // truncate the exhaustive pass
  config.fuzz.batches = 3;
  config.fuzz.execs_per_batch = 16;
  config.fuzz.max_promotions = 2;

  Result<FuzzCampaignResult> run = RunFuzzCampaign(config, rtl.image, rtl.pci);
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_GT(run.value().promotions, 0u);
  EXPECT_GT(run.value().promotion_novel_blocks, 0u)
      << "promoted symbolic passes covered nothing beyond seed pass + corpus";
}

}  // namespace
}  // namespace fuzz
}  // namespace ddt
