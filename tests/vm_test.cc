// Tests for the VM substrate: ISA encode/decode round-trips, the assembler,
// DDF image serialization, CFG recovery, and chained-COW guest memory
// semantics (including fork isolation and the eager ablation mode).
#include <gtest/gtest.h>

#include <cstdio>

#include "src/expr/expr.h"
#include "src/support/rng.h"
#include "src/vm/assembler.h"
#include "src/vm/disasm.h"
#include "src/vm/guest_memory.h"
#include "src/vm/image.h"
#include "src/vm/isa.h"
#include "src/vm/layout.h"

namespace ddt {
namespace {

// --- ISA ----------------------------------------------------------------------

TEST(IsaTest, EncodeDecodeRoundTripsAllOpcodes) {
  Rng rng(5);
  for (int op = 0; op < static_cast<int>(Opcode::kOpcodeCount); ++op) {
    Instruction insn;
    insn.opcode = static_cast<Opcode>(op);
    insn.rd = static_cast<uint8_t>(rng.NextBelow(kNumRegisters));
    insn.ra = static_cast<uint8_t>(rng.NextBelow(kNumRegisters));
    insn.rb = static_cast<uint8_t>(rng.NextBelow(kNumRegisters));
    insn.imm = rng.Next32();
    uint8_t bytes[kInstructionSize];
    EncodeInstruction(insn, bytes);
    std::optional<Instruction> decoded = DecodeInstruction(bytes);
    ASSERT_TRUE(decoded.has_value()) << "opcode " << op;
    EXPECT_EQ(decoded->opcode, insn.opcode);
    EXPECT_EQ(decoded->rd, insn.rd);
    EXPECT_EQ(decoded->ra, insn.ra);
    EXPECT_EQ(decoded->rb, insn.rb);
    EXPECT_EQ(decoded->imm, insn.imm);
  }
}

TEST(IsaTest, InvalidOpcodeRejected) {
  uint8_t bytes[kInstructionSize] = {0xFF, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(DecodeInstruction(bytes).has_value());
}

TEST(IsaTest, InvalidRegisterRejected) {
  uint8_t bytes[kInstructionSize] = {static_cast<uint8_t>(Opcode::kMov), 17, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(DecodeInstruction(bytes).has_value());
}

TEST(IsaTest, MnemonicRoundTrip) {
  for (int op = 0; op < static_cast<int>(Opcode::kOpcodeCount); ++op) {
    Opcode opcode = static_cast<Opcode>(op);
    std::optional<Opcode> back = OpcodeFromMnemonic(OpcodeMnemonic(opcode));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, opcode);
  }
}

TEST(IsaTest, RegisterNames) {
  EXPECT_EQ(RegisterName(kRegSp), "sp");
  EXPECT_EQ(RegisterName(kRegLr), "lr");
  EXPECT_EQ(RegisterName(kRegZero), "zr");
  EXPECT_EQ(RegisterFromName("sp"), kRegSp);
  EXPECT_EQ(RegisterFromName("r7"), 7);
  EXPECT_EQ(RegisterFromName("r16"), -1);
  EXPECT_EQ(RegisterFromName("bogus"), -1);
}

// --- Assembler -------------------------------------------------------------------

TEST(AssemblerTest, MinimalDriverAssembles) {
  const char* source = R"(
    .driver "toy"
    .entry main
    .code
  main:
    movi r0, 42
    halt
  )";
  Result<AssembledDriver> result = Assemble(source);
  ASSERT_TRUE(result.ok()) << result.error();
  const DriverImage& image = result.value().image;
  EXPECT_EQ(image.name, "toy");
  EXPECT_EQ(image.code.size(), 2 * kInstructionSize);
  EXPECT_EQ(image.entry_offset, 0u);
}

TEST(AssemblerTest, LabelsResolveAcrossSections) {
  const char* source = R"(
    .driver "toy"
    .entry main
    .code
  main:
    la r0, message
    ld32 r1, [r0+0]
    halt
    .data
  message:
    .word 0xCAFEBABE
  )";
  Result<AssembledDriver> result = Assemble(source, 0x10000);
  ASSERT_TRUE(result.ok()) << result.error();
  const AssembledDriver& drv = result.value();
  // message lives right after 3 instructions of code.
  EXPECT_EQ(drv.symbols.at("message"), 0x10000u + 3 * kInstructionSize);
  // The la (movi) immediate must match.
  std::optional<Instruction> insn = DecodeInstruction(drv.image.code.data());
  ASSERT_TRUE(insn.has_value());
  EXPECT_EQ(insn->opcode, Opcode::kMovI);
  EXPECT_EQ(insn->imm, drv.symbols.at("message"));
}

TEST(AssemblerTest, KcallBuildsImportTable) {
  const char* source = R"(
    .driver "toy"
    .entry main
    .code
  main:
    kcall MosAllocatePool
    kcall MosFreePool
    kcall MosAllocatePool
    halt
  )";
  Result<AssembledDriver> result = Assemble(source);
  ASSERT_TRUE(result.ok()) << result.error();
  const DriverImage& image = result.value().image;
  ASSERT_EQ(image.imports.size(), 2u);
  EXPECT_EQ(image.imports[0], "MosAllocatePool");
  EXPECT_EQ(image.imports[1], "MosFreePool");
  // Third kcall reuses index 0.
  std::optional<Instruction> third =
      DecodeInstruction(image.code.data() + 2 * kInstructionSize);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->imm, 0u);
}

TEST(AssemblerTest, MultiPushPopExpandsAndReverses) {
  const char* source = R"(
    .driver "toy"
    .entry main
    .code
  main:
    push {r4, r5, lr}
    pop {r4, r5, lr}
    ret
  )";
  Result<AssembledDriver> result = Assemble(source);
  ASSERT_TRUE(result.ok()) << result.error();
  const DriverImage& image = result.value().image;
  ASSERT_EQ(image.code.size(), 7 * kInstructionSize);
  auto at = [&](size_t i) { return *DecodeInstruction(image.code.data() + i * kInstructionSize); };
  EXPECT_EQ(at(0).opcode, Opcode::kPush);
  EXPECT_EQ(at(0).rb, 4);
  EXPECT_EQ(at(1).rb, 5);
  EXPECT_EQ(at(2).rb, kRegLr);
  // pop reverses: lr, r5, r4.
  EXPECT_EQ(at(3).opcode, Opcode::kPop);
  EXPECT_EQ(at(3).rd, kRegLr);
  EXPECT_EQ(at(4).rd, 5);
  EXPECT_EQ(at(5).rd, 4);
}

TEST(AssemblerTest, FuncDirectiveCounts) {
  const char* source = R"(
    .driver "toy"
    .entry main
    .code
    .func main
    call helper
    halt
    .func helper
    ret
  )";
  Result<AssembledDriver> result = Assemble(source);
  ASSERT_TRUE(result.ok()) << result.error();
  EXPECT_EQ(result.value().functions.size(), 2u);
}

TEST(AssemblerTest, DataDirectives) {
  const char* source = R"(
    .driver "toy"
    .entry main
    .code
  main:
    halt
    .data
  bytes:
    .byte 1, 2, 3
    .align 4
  words:
    .word 0x11223344
  text:
    .asciiz "hi"
  pad:
    .space 5
  )";
  Result<AssembledDriver> result = Assemble(source);
  ASSERT_TRUE(result.ok()) << result.error();
  const std::vector<uint8_t>& data = result.value().image.data;
  ASSERT_EQ(data.size(), 3u + 1u /*align*/ + 4u + 3u + 5u);
  EXPECT_EQ(data[0], 1);
  EXPECT_EQ(data[4], 0x44);
  EXPECT_EQ(data[7], 0x11);
  EXPECT_EQ(data[8], 'h');
  EXPECT_EQ(data[10], 0);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  const char* source = ".driver \"x\"\n.entry main\n.code\nmain:\n  bogus r0, r1\n  halt\n";
  Result<AssembledDriver> result = Assemble(source);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("line 5"), std::string::npos) << result.error();
}

TEST(AssemblerTest, UndefinedLabelIsError) {
  const char* source = ".driver \"x\"\n.entry main\n.code\nmain:\n  br nowhere\n";
  Result<AssembledDriver> result = Assemble(source);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().find("nowhere"), std::string::npos);
}

TEST(AssemblerTest, DuplicateLabelIsError) {
  const char* source = ".driver \"x\"\n.entry a\n.code\na:\n  halt\na:\n  halt\n";
  EXPECT_FALSE(Assemble(source).ok());
}

TEST(AssemblerTest, MissingEntryIsError) {
  EXPECT_FALSE(Assemble(".driver \"x\"\n.code\nmain:\n halt\n").ok());
}

// --- Image ------------------------------------------------------------------------

TEST(ImageTest, SerializeParseRoundTrip) {
  DriverImage image;
  image.name = "rtl8029";
  image.entry_offset = 8;
  image.code = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  image.data = {0xAA, 0xBB};
  image.bss_size = 128;
  image.imports = {"MosAllocatePool", "MosFreePool"};
  std::vector<uint8_t> bytes = image.Serialize();
  EXPECT_EQ(bytes.size(), image.BinaryFileSize());
  Result<DriverImage> parsed = DriverImage::Parse(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  EXPECT_EQ(parsed.value().name, image.name);
  EXPECT_EQ(parsed.value().entry_offset, image.entry_offset);
  EXPECT_EQ(parsed.value().code, image.code);
  EXPECT_EQ(parsed.value().data, image.data);
  EXPECT_EQ(parsed.value().bss_size, image.bss_size);
  EXPECT_EQ(parsed.value().imports, image.imports);
}

TEST(ImageTest, ParseRejectsGarbage) {
  EXPECT_FALSE(DriverImage::Parse({1, 2, 3}).ok());
  std::vector<uint8_t> bad(100, 0);
  EXPECT_FALSE(DriverImage::Parse(bad).ok());
}

TEST(ImageTest, ParseRejectsTruncatedSegments) {
  DriverImage image;
  image.name = "x";
  image.entry_offset = 0;
  image.code.resize(64, 0);
  std::vector<uint8_t> bytes = image.Serialize();
  bytes.resize(bytes.size() - 10);
  EXPECT_FALSE(DriverImage::Parse(bytes).ok());
}


TEST(ImageTest, ParseNeverCrashesOnRandomBytes) {
  // Robustness fuzz: DriverImage::Parse on arbitrary byte soup must reject
  // gracefully (or accept and produce a structurally valid image), never
  // crash or over-read.
  Rng rng(0xF422);
  for (int round = 0; round < 500; ++round) {
    size_t size = rng.NextBelow(512);
    std::vector<uint8_t> bytes(size);
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.Next());
    }
    if (round % 3 == 0 && size >= 4) {
      // Bias: plant the magic so header parsing goes deeper.
      bytes[0] = 0x44;
      bytes[1] = 0x44;
      bytes[2] = 0x46;
      bytes[3] = 0x31;
    }
    Result<DriverImage> parsed = DriverImage::Parse(bytes);
    if (parsed.ok()) {
      EXPECT_LE(parsed.value().code.size() + parsed.value().data.size(), size);
    }
  }
}

TEST(ImageTest, FileRoundTrip) {
  DriverImage image;
  image.name = "filetest";
  image.entry_offset = 0;
  image.code.resize(32, 0x11);
  image.imports = {"MosLog"};
  std::string path = "/tmp/ddt_image_roundtrip.ddf";
  ASSERT_TRUE(image.SaveFile(path).ok());
  Result<DriverImage> loaded = DriverImage::LoadFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ(loaded.value().name, "filetest");
  EXPECT_EQ(loaded.value().code, image.code);
  EXPECT_EQ(loaded.value().imports, image.imports);
  std::remove(path.c_str());
  EXPECT_FALSE(DriverImage::LoadFile(path).ok());  // gone
}

// --- CFG --------------------------------------------------------------------------

TEST(CfgTest, StraightLineIsOneBlock) {
  const char* source = R"(
    .driver "x"
    .entry main
    .code
  main:
    movi r0, 1
    addi r0, r0, 2
    halt
  )";
  AssembledDriver drv = Assemble(source).take();
  Cfg cfg = BuildCfg(drv.image.code.data(), drv.image.code.size(), drv.load_base);
  EXPECT_EQ(cfg.NumBlocks(), 1u);
  EXPECT_TRUE(cfg.blocks.at(drv.load_base).ends_in_halt);
}

TEST(CfgTest, BranchSplitsBlocks) {
  const char* source = R"(
    .driver "x"
    .entry main
    .code
  main:
    movi r0, 1
    bz r0, target
    movi r1, 2
  target:
    halt
  )";
  AssembledDriver drv = Assemble(source).take();
  Cfg cfg = BuildCfg(drv.image.code.data(), drv.image.code.size(), drv.load_base);
  // blocks: [main..bz], [movi r1], [target: halt]
  EXPECT_EQ(cfg.NumBlocks(), 3u);
  const BasicBlock& first = cfg.blocks.at(drv.load_base);
  ASSERT_EQ(first.successors.size(), 2u);
  EXPECT_EQ(first.successors[0], drv.symbols.at("target"));
}

TEST(CfgTest, CallTargetsRecorded) {
  const char* source = R"(
    .driver "x"
    .entry main
    .code
  main:
    call fn
    halt
  fn:
    ret
  )";
  AssembledDriver drv = Assemble(source).take();
  Cfg cfg = BuildCfg(drv.image.code.data(), drv.image.code.size(), drv.load_base);
  ASSERT_EQ(cfg.call_targets.size(), 1u);
  EXPECT_EQ(cfg.call_targets[0], drv.symbols.at("fn"));
}

TEST(CfgTest, BlockLeaderLookup) {
  const char* source = R"(
    .driver "x"
    .entry main
    .code
  main:
    movi r0, 1
    movi r1, 2
    halt
  )";
  AssembledDriver drv = Assemble(source).take();
  Cfg cfg = BuildCfg(drv.image.code.data(), drv.image.code.size(), drv.load_base);
  EXPECT_EQ(cfg.BlockLeaderFor(drv.load_base + kInstructionSize), drv.load_base);
  EXPECT_EQ(cfg.BlockLeaderFor(0x999999), 0u);
}

// --- Guest memory -------------------------------------------------------------------

TEST(GuestMemoryTest, InitAndRead) {
  GuestMemory mem;
  uint8_t data[] = {1, 2, 3, 4};
  mem.InitWrite(0x10000, data, sizeof(data));
  EXPECT_EQ(mem.ReadByte(0x10000).conc, 1);
  EXPECT_EQ(mem.ReadByte(0x10003).conc, 4);
  EXPECT_EQ(mem.ReadByte(0x10004).conc, 0);  // untouched -> 0
}

TEST(GuestMemoryTest, WriteOverridesInit) {
  GuestMemory mem;
  uint8_t data[] = {1};
  mem.InitWrite(0x10000, data, 1);
  mem.WriteByte(0x10000, MemByte::Concrete(9));
  EXPECT_EQ(mem.ReadByte(0x10000).conc, 9);
}

TEST(GuestMemoryTest, SymbolicBytes) {
  ExprContext ctx;
  GuestMemory mem;
  ExprRef v = ctx.Var(8, "b");
  mem.WriteByte(0x2000, MemByte::Symbolic(v));
  MemByte byte = mem.ReadByte(0x2000);
  ASSERT_TRUE(byte.IsSymbolic());
  EXPECT_EQ(byte.sym, v);
}

TEST(GuestMemoryTest, ForkIsolation) {
  GuestMemory mem;
  mem.WriteByte(100, MemByte::Concrete(1));
  GuestMemory child = mem.Fork();
  child.WriteByte(100, MemByte::Concrete(2));
  mem.WriteByte(101, MemByte::Concrete(3));
  EXPECT_EQ(mem.ReadByte(100).conc, 1);
  EXPECT_EQ(child.ReadByte(100).conc, 2);
  EXPECT_EQ(child.ReadByte(101).conc, 0);
  EXPECT_EQ(mem.ReadByte(101).conc, 3);
}

TEST(GuestMemoryTest, ChainResolvesThroughParents) {
  GuestMemory mem;
  mem.WriteByte(50, MemByte::Concrete(7));
  GuestMemory a = mem.Fork();
  GuestMemory b = a.Fork();
  GuestMemory c = b.Fork();
  EXPECT_EQ(c.ReadByte(50).conc, 7);
  EXPECT_GE(c.ChainDepth(), 1u);
}

TEST(GuestMemoryTest, ReadCacheDoesNotShadowWrites) {
  GuestMemory mem;
  mem.WriteByte(10, MemByte::Concrete(1));
  GuestMemory child = mem.Fork();
  EXPECT_EQ(child.ReadByte(10).conc, 1);  // populates leaf cache via chain walk
  child.WriteByte(10, MemByte::Concrete(2));
  EXPECT_EQ(child.ReadByte(10).conc, 2);
}

TEST(GuestMemoryTest, EagerForkMatchesChainedSemantics) {
  Rng rng(7);
  for (int mode = 0; mode < 2; ++mode) {
    GuestMemory mem;
    mem.set_eager_fork(mode == 1);
    mem.WriteByte(0, MemByte::Concrete(11));
    GuestMemory child = mem.Fork();
    child.WriteByte(1, MemByte::Concrete(22));
    GuestMemory grandchild = child.Fork();
    grandchild.WriteByte(0, MemByte::Concrete(33));
    EXPECT_EQ(mem.ReadByte(0).conc, 11);
    EXPECT_EQ(mem.ReadByte(1).conc, 0);
    EXPECT_EQ(child.ReadByte(0).conc, 11);
    EXPECT_EQ(child.ReadByte(1).conc, 22);
    EXPECT_EQ(grandchild.ReadByte(0).conc, 33);
    EXPECT_EQ(grandchild.ReadByte(1).conc, 22);
  }
}

TEST(GuestMemoryTest, RandomizedForkTreeAgainstReferenceModel) {
  // Build a random fork tree and compare every state against a flat
  // std::map reference model.
  Rng rng(4242);
  struct StateModel {
    GuestMemory mem;
    std::map<uint32_t, uint8_t> reference;
  };
  std::vector<StateModel> states;
  states.push_back(StateModel{GuestMemory(), {}});
  for (int step = 0; step < 600; ++step) {
    size_t idx = rng.NextBelow(states.size());
    switch (rng.NextBelow(3)) {
      case 0: {  // write
        uint32_t addr = static_cast<uint32_t>(rng.NextBelow(64));
        uint8_t value = static_cast<uint8_t>(rng.Next());
        states[idx].mem.WriteByte(addr, MemByte::Concrete(value));
        states[idx].reference[addr] = value;
        break;
      }
      case 1: {  // read + verify
        uint32_t addr = static_cast<uint32_t>(rng.NextBelow(64));
        uint8_t expected = 0;
        auto it = states[idx].reference.find(addr);
        if (it != states[idx].reference.end()) {
          expected = it->second;
        }
        ASSERT_EQ(states[idx].mem.ReadByte(addr).conc, expected) << "step " << step;
        break;
      }
      default: {  // fork
        if (states.size() < 24) {
          StateModel child{states[idx].mem.Fork(), states[idx].reference};
          states.push_back(std::move(child));
        }
        break;
      }
    }
  }
  // Final sweep: every state must match its reference exactly.
  for (size_t i = 0; i < states.size(); ++i) {
    for (uint32_t addr = 0; addr < 64; ++addr) {
      uint8_t expected = 0;
      auto it = states[i].reference.find(addr);
      if (it != states[i].reference.end()) {
        expected = it->second;
      }
      ASSERT_EQ(states[i].mem.ReadByte(addr).conc, expected) << "state " << i;
    }
  }
}

TEST(GuestMemoryTest, StatsTrackForks) {
  MemStats stats;
  GuestMemory mem;
  mem.set_stats(&stats);
  mem.WriteByte(1, MemByte::Concrete(1));
  GuestMemory child = mem.Fork();
  EXPECT_EQ(stats.forks, 1u);
  EXPECT_GE(stats.writes, 1u);
}

TEST(GuestMemoryTest, TryReadConcreteFailsOnSymbolic) {
  ExprContext ctx;
  GuestMemory mem;
  uint8_t buf[4];
  mem.WriteConcrete(0x100, reinterpret_cast<const uint8_t*>("abcd"), 4);
  EXPECT_TRUE(mem.TryReadConcrete(0x100, buf, 4));
  EXPECT_EQ(buf[2], 'c');
  mem.WriteByte(0x102, MemByte::Symbolic(ctx.Var(8, "s")));
  EXPECT_FALSE(mem.TryReadConcrete(0x100, buf, 4));
}

// --- Disassembler ----------------------------------------------------------------

TEST(DisasmTest, RendersInstructions) {
  Instruction insn;
  insn.opcode = Opcode::kAddI;
  insn.rd = 2;
  insn.ra = 1;
  insn.imm = 4;
  EXPECT_EQ(DisassembleInstruction(insn), "addi r2, r1, 0x4");
  insn.opcode = Opcode::kLd32;
  EXPECT_EQ(DisassembleInstruction(insn), "ld32 r2, [r1+0x4]");
  insn.opcode = Opcode::kKCall;
  EXPECT_EQ(DisassembleInstruction(insn), "kcall #4");
}

TEST(DisasmTest, SegmentListingContainsEverything) {
  const char* source = R"(
    .driver "x"
    .entry main
    .code
  main:
    movi r0, 7
    bz r0, done
    addi r0, r0, 1
  done:
    halt
  )";
  AssembledDriver drv = Assemble(source).take();
  std::string listing =
      DisassembleSegment(drv.image.code.data(), drv.image.code.size(), drv.load_base);
  EXPECT_NE(listing.find("movi r0, 0x7"), std::string::npos);
  EXPECT_NE(listing.find("halt"), std::string::npos);
  EXPECT_NE(listing.find("<block>"), std::string::npos);
}

}  // namespace
}  // namespace ddt
