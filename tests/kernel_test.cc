// Unit tests for the MiniOS kernel API implementations and their in-guest
// Driver Verifier checks, driven through a fake KernelContext (no engine, no
// symbolic execution — pure kernel semantics).
#include "src/kernel/kernel_api.h"

#include <gtest/gtest.h>

#include "src/hw/device.h"
#include "src/kernel/exerciser.h"
#include "src/vm/guest_memory.h"
#include "src/vm/layout.h"
#include "tests/fake_kernel_context.h"

namespace ddt {
namespace {



// --- pool -----------------------------------------------------------------

TEST(KernelApiTest, AllocateAndFreePool) {
  FakeKernelContext kc;
  kc.Call("MosAllocatePool", {64});
  uint32_t addr = kc.ReturnedU32();
  ASSERT_NE(addr, 0u);
  EXPECT_GE(addr, kKernelHeapBase);
  const PoolAllocation* alloc = kc.kernel().FindAllocation(addr + 10);
  ASSERT_NE(alloc, nullptr);
  EXPECT_TRUE(alloc->alive);
  EXPECT_EQ(alloc->size, 64u);

  kc.Call("MosFreePool", {addr});
  EXPECT_FALSE(kc.crashed());
  EXPECT_FALSE(kc.kernel().FindAllocation(addr)->alive);
}

TEST(KernelApiTest, DoubleFreeBugchecks) {
  FakeKernelContext kc;
  kc.Call("MosAllocatePool", {64});
  uint32_t addr = kc.ReturnedU32();
  kc.Call("MosFreePool", {addr});
  kc.Call("MosFreePool", {addr});
  EXPECT_TRUE(kc.crashed());
  EXPECT_EQ(kc.bugcheck_code(), kBugcheckBadPointer);
}

TEST(KernelApiTest, FreeOfWildPointerBugchecks) {
  FakeKernelContext kc;
  kc.Call("MosFreePool", {0xDEAD0000});
  EXPECT_TRUE(kc.crashed());
}

TEST(KernelApiTest, AllocationsNeverOverlap) {
  FakeKernelContext kc;
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  for (int i = 0; i < 50; ++i) {
    kc.Call("MosAllocatePool", {static_cast<uint32_t>(1 + i * 7)});
    uint32_t addr = kc.ReturnedU32();
    ASSERT_NE(addr, 0u);
    for (const auto& [begin, end] : ranges) {
      EXPECT_TRUE(addr >= end || addr + 1 + i * 7 <= begin);
    }
    ranges.emplace_back(addr, addr + 1 + static_cast<uint32_t>(i) * 7);
  }
}

TEST(KernelApiTest, TaggedNdisAllocationUsesOutParam) {
  FakeKernelContext kc;
  uint32_t out_ptr = kDriverImageBase + 0x1100;  // driver data
  kc.Call("MosAllocateMemoryWithTag", {out_ptr, 128, 0x41414141});
  EXPECT_EQ(kc.ReturnedU32(), kStatusSuccess);
  uint32_t addr = kc.ReadGuestU32(out_ptr);
  ASSERT_NE(addr, 0u);
  EXPECT_EQ(kc.kernel().FindAllocation(addr)->tag, 0x41414141u);
}

// --- configuration -----------------------------------------------------------

TEST(KernelApiTest, ConfigurationLifecycle) {
  FakeKernelContext kc;
  kc.kernel().registry["Knob"] = 77;
  uint32_t out_ptr = kDriverImageBase + 0x1100;
  kc.Call("MosOpenConfiguration", {out_ptr});
  EXPECT_EQ(kc.ReturnedU32(), kStatusSuccess);
  uint32_t handle = kc.ReadGuestU32(out_ptr);
  ASSERT_NE(handle, 0u);
  EXPECT_EQ(kc.kernel().OpenConfigHandles(-1).size(), 1u);

  uint32_t name_ptr = kDriverImageBase + 0x1200;
  const char* name = "Knob";
  for (int i = 0; i <= 4; ++i) {
    kc.WriteGuestU8(name_ptr + static_cast<uint32_t>(i), static_cast<uint8_t>(name[i]));
  }
  uint32_t param_ptr = kDriverImageBase + 0x1300;
  kc.Call("MosReadConfiguration", {handle, name_ptr, param_ptr});
  EXPECT_EQ(kc.ReturnedU32(), kStatusSuccess);
  EXPECT_EQ(kc.ReadGuestU32(param_ptr), 1u);       // type: integer
  EXPECT_EQ(kc.ReadGuestU32(param_ptr + 4), 77u);  // value

  kc.Call("MosCloseConfiguration", {handle});
  EXPECT_EQ(kc.kernel().OpenConfigHandles(-1).size(), 0u);
}

TEST(KernelApiTest, ReadUnknownParameterReturnsNotFound) {
  FakeKernelContext kc;
  uint32_t out_ptr = kDriverImageBase + 0x1100;
  kc.Call("MosOpenConfiguration", {out_ptr});
  uint32_t handle = kc.ReadGuestU32(out_ptr);
  uint32_t name_ptr = kDriverImageBase + 0x1200;
  kc.WriteGuestU8(name_ptr, 'X');
  kc.WriteGuestU8(name_ptr + 1, 0);
  kc.Call("MosReadConfiguration", {handle, name_ptr, kDriverImageBase + 0x1300});
  EXPECT_EQ(kc.ReturnedU32(), kStatusNotFound);
}

TEST(KernelApiTest, CloseInvalidHandleBugchecks) {
  FakeKernelContext kc;
  kc.Call("MosCloseConfiguration", {0xBEEF});
  EXPECT_TRUE(kc.crashed());
}

// --- spinlocks + IRQL ----------------------------------------------------------

TEST(KernelApiTest, SpinLockRaisesAndRestoresIrql) {
  FakeKernelContext kc;
  EXPECT_EQ(kc.kernel().irql, Irql::kPassive);
  kc.Call("MosAcquireSpinLock", {0x2000});
  EXPECT_EQ(kc.kernel().irql, Irql::kDispatch);
  EXPECT_TRUE(kc.kernel().locks.at(0x2000).held);
  kc.Call("MosReleaseSpinLock", {0x2000});
  EXPECT_EQ(kc.kernel().irql, Irql::kPassive);
  EXPECT_FALSE(kc.kernel().locks.at(0x2000).held);
}

TEST(KernelApiTest, RecursiveAcquireIsDeadlock) {
  FakeKernelContext kc;
  kc.Call("MosAcquireSpinLock", {0x2000});
  kc.Call("MosAcquireSpinLock", {0x2000});
  EXPECT_TRUE(kc.crashed());
  EXPECT_EQ(kc.bugcheck_code(), kBugcheckDeadlock);
}

TEST(KernelApiTest, ReleaseUnheldLockBugchecks) {
  FakeKernelContext kc;
  kc.Call("MosReleaseSpinLock", {0x2000});
  EXPECT_TRUE(kc.crashed());
  EXPECT_EQ(kc.bugcheck_code(), kBugcheckSpinLockMisuse);
}

TEST(KernelApiTest, WrongVariantReleaseIsTheIntelPro100Bug) {
  FakeKernelContext kc;
  // In a DPC (IRQL already DISPATCH), Dpr-acquire then plain release.
  kc.SetContext(ExecContextKind::kDpc);
  kc.kernel().irql = Irql::kDispatch;
  kc.Call("MosDprAcquireSpinLock", {0x2000});
  ASSERT_FALSE(kc.crashed());
  kc.Call("MosReleaseSpinLock", {0x2000});
  EXPECT_TRUE(kc.crashed());
  EXPECT_EQ(kc.bugcheck_code(), kBugcheckIrqlNotLessOrEqual);
  EXPECT_NE(kc.bugcheck_message().find("KeReleaseSpinLock"), std::string::npos);
}

TEST(KernelApiTest, DprAcquireAtPassiveBugchecks) {
  FakeKernelContext kc;
  kc.Call("MosDprAcquireSpinLock", {0x2000});
  EXPECT_TRUE(kc.crashed());
}

TEST(KernelApiTest, ConfigAtDispatchIsPageableViolation) {
  FakeKernelContext kc;
  kc.kernel().irql = Irql::kDispatch;
  kc.Call("MosOpenConfiguration", {kDriverImageBase + 0x1100});
  EXPECT_TRUE(kc.crashed());
  EXPECT_EQ(kc.bugcheck_code(), kBugcheckDriverIrqlViolation);
}

TEST(KernelApiTest, AllocAboveDispatchBugchecks) {
  FakeKernelContext kc;
  kc.kernel().irql = Irql::kDevice;
  kc.Call("MosAllocatePool", {64});
  EXPECT_TRUE(kc.crashed());
}

TEST(KernelApiTest, RaiseAndLowerIrql) {
  FakeKernelContext kc;
  kc.Call("MosRaiseIrql", {5});
  EXPECT_EQ(kc.ReturnedU32(), 0u);  // old level
  EXPECT_EQ(kc.kernel().irql, Irql::kDevice);
  kc.Call("MosLowerIrql", {0});
  EXPECT_EQ(kc.kernel().irql, Irql::kPassive);
}

// --- timers --------------------------------------------------------------------

TEST(KernelApiTest, SetUninitializedTimerIsTheRtl8029Crash) {
  FakeKernelContext kc;
  kc.Call("MosSetTimer", {0x3000, 100});
  EXPECT_TRUE(kc.crashed());
  EXPECT_EQ(kc.bugcheck_code(), kBugcheckUninitializedTimer);
}

TEST(KernelApiTest, TimerLifecycle) {
  FakeKernelContext kc;
  kc.Call("MosInitializeTimer", {0x3000, kDriverImageBase + 8, 0});
  kc.Call("MosSetTimer", {0x3000, 100});
  EXPECT_FALSE(kc.crashed());
  EXPECT_TRUE(kc.kernel().timers.at(0x3000).armed);
  kc.Call("MosCancelTimer", {0x3000});
  EXPECT_EQ(kc.ReturnedU32(), 1u);  // was armed
  EXPECT_FALSE(kc.kernel().timers.at(0x3000).armed);
}

// --- packets -------------------------------------------------------------------

TEST(KernelApiTest, PacketPoolLifecycle) {
  FakeKernelContext kc;
  uint32_t out_ptr = kDriverImageBase + 0x1100;
  kc.Call("MosAllocatePacketPool", {out_ptr, 2});
  uint32_t pool = kc.ReadGuestU32(out_ptr);
  ASSERT_NE(pool, 0u);

  kc.Call("MosAllocatePacket", {out_ptr, pool});
  EXPECT_EQ(kc.ReturnedU32(), kStatusSuccess);
  uint32_t pkt1 = kc.ReadGuestU32(out_ptr);
  // Descriptor layout: payload pointer + length.
  uint32_t payload = kc.ReadGuestU32(pkt1);
  EXPECT_GE(payload, kPacketArenaBase);
  EXPECT_GT(kc.ReadGuestU32(pkt1 + 4), 0u);
  // The driver is granted the descriptor + payload.
  EXPECT_TRUE(kc.kernel().IsGranted(pkt1));
  EXPECT_TRUE(kc.kernel().IsGranted(payload + 100));

  kc.Call("MosAllocatePacket", {out_ptr, pool});
  uint32_t pkt2 = kc.ReadGuestU32(out_ptr);
  // Pool capacity 2: the third allocation fails.
  kc.Call("MosAllocatePacket", {out_ptr, pool});
  EXPECT_EQ(kc.ReturnedU32(), kStatusInsufficientResources);

  kc.Call("MosFreePacket", {pkt1});
  EXPECT_FALSE(kc.kernel().IsGranted(pkt1));
  kc.Call("MosFreePacket", {pkt2});
  kc.Call("MosFreePacketPool", {pool});
  EXPECT_FALSE(kc.crashed());
}

TEST(KernelApiTest, FreeInvalidPacketBugchecks) {
  FakeKernelContext kc;
  kc.Call("MosFreePacket", {0x1234});
  EXPECT_TRUE(kc.crashed());
}

// --- PCI / misc -----------------------------------------------------------------

TEST(KernelApiTest, ReadPciConfigServesDescriptor) {
  FakeKernelContext kc;
  kc.kernel().pci.vendor_id = 0x8086;
  kc.kernel().pci.revision = 3;
  uint32_t out_ptr = kDriverImageBase + 0x1100;
  kc.Call("MosReadPciConfig", {kPciCfgVendorId, out_ptr, 2});
  EXPECT_EQ(kc.ReadGuestU32(out_ptr) & 0xFFFF, 0x8086u);
  kc.Call("MosReadPciConfig", {kPciCfgRevision, out_ptr, 1});
  EXPECT_EQ(kc.ReadGuestU8(out_ptr), 3u);
}

TEST(KernelApiTest, MapIoSpaceReturnsBarWindow) {
  FakeKernelContext kc;
  kc.kernel().pci.bars.push_back(PciBar{0x100});
  kc.kernel().pci.bars.push_back(PciBar{0x80});
  kc.Call("MosMapIoSpace", {0});
  EXPECT_EQ(kc.ReturnedU32(), kMmioBase);
  kc.Call("MosMapIoSpace", {1});
  EXPECT_EQ(kc.ReturnedU32(), kMmioBase + 0x1000u);
  kc.Call("MosMapIoSpace", {7});
  EXPECT_EQ(kc.ReturnedU32(), 0u);  // no such BAR
}

TEST(KernelApiTest, RegisterDriverReadsEntryTable) {
  FakeKernelContext kc;
  uint32_t table = kDriverImageBase + 0x1100;
  kc.WriteGuestU32(table, kDriverImageBase + 0x10);  // Initialize
  kc.WriteGuestU32(table + 4, kDriverImageBase + 0x20);
  kc.Call("MosRegisterDriver", {table});
  EXPECT_EQ(kc.ReturnedU32(), kStatusSuccess);
  EXPECT_TRUE(kc.kernel().driver_registered);
  EXPECT_EQ(kc.kernel().entry_points[kEpInitialize], kDriverImageBase + 0x10);
}

TEST(KernelApiTest, RegisterDriverWithoutInitFails) {
  FakeKernelContext kc;
  uint32_t table = kDriverImageBase + 0x1100;  // all zero
  kc.Call("MosRegisterDriver", {table});
  EXPECT_EQ(kc.ReturnedU32(), kStatusUnsuccessful);
  EXPECT_FALSE(kc.kernel().driver_registered);
}

TEST(KernelApiTest, MoveMemoryHandlesOverlap) {
  FakeKernelContext kc;
  uint32_t base = kDriverImageBase + 0x1100;
  for (int i = 0; i < 8; ++i) {
    kc.WriteGuestU8(base + static_cast<uint32_t>(i), static_cast<uint8_t>(i));
  }
  kc.Call("MosMoveMemory", {base + 2, base, 6});  // overlapping forward copy
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(kc.ReadGuestU8(base + 2 + static_cast<uint32_t>(i)), i);
  }
}

// --- workload builder -------------------------------------------------------------

TEST(ExerciserTest, NetworkWorkloadShape) {
  std::vector<WorkloadStep> steps = BuildWorkload(DriverClass::kNetwork);
  ASSERT_GE(steps.size(), 4u);
  EXPECT_EQ(steps.front().slot, kEpInitialize);
  EXPECT_EQ(steps.back().slot, kEpHalt);
  bool has_send = false;
  for (const WorkloadStep& step : steps) {
    has_send |= step.slot == kEpSend;
    if (step.slot != kEpInitialize) {
      EXPECT_TRUE(step.only_if_init_ok);
    }
  }
  EXPECT_TRUE(has_send);
}

TEST(ExerciserTest, AudioWorkloadShape) {
  std::vector<WorkloadStep> steps = BuildWorkload(DriverClass::kAudio);
  bool has_write = false;
  for (const WorkloadStep& step : steps) {
    has_write |= step.slot == kEpWrite;
  }
  EXPECT_TRUE(has_write);
}

TEST(ExerciserTest, DriverClassHeuristics) {
  EXPECT_EQ(DriverClassFor("audiopci"), DriverClass::kAudio);
  EXPECT_EQ(DriverClassFor("ac97"), DriverClass::kAudio);
  EXPECT_EQ(DriverClassFor("rtl8029"), DriverClass::kNetwork);
}

// --- kernel state forking consistency -----------------------------------------------

TEST(KernelStateTest, CopyIsIndependent) {
  FakeKernelContext kc;
  kc.Call("MosAllocatePool", {64});
  uint32_t addr = kc.ReturnedU32();
  KernelState copy = kc.kernel();
  kc.Call("MosFreePool", {addr});
  EXPECT_FALSE(kc.kernel().FindAllocation(addr)->alive);
  EXPECT_TRUE(copy.FindAllocation(addr)->alive);  // the copy kept its world
}

TEST(KernelStateTest, GrantRevocationBySlot) {
  KernelState ks;
  MemoryGrant g1{100, 200, true, kEpQueryInfo};
  MemoryGrant g2{300, 400, true, kEpSetInfo};
  MemoryGrant g3{500, 600, false, kEpQueryInfo};
  ks.grants = {g1, g2, g3};
  ks.RevokeGrantsForSlot(kEpQueryInfo);
  EXPECT_FALSE(ks.IsGranted(150));  // revoked
  EXPECT_TRUE(ks.IsGranted(350));   // other slot
  EXPECT_TRUE(ks.IsGranted(550));   // not revoke-on-exit
}

}  // namespace
}  // namespace ddt
