// SMT-LIB2 export tests: structural validity (balanced s-expressions, one
// declaration per variable, topologically ordered definitions) and an
// end-to-end export of a real bug's path constraints.
#include "src/expr/smtlib.h"

#include <gtest/gtest.h>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"

namespace ddt {
namespace {

bool BalancedParens(const std::string& text) {
  int depth = 0;
  for (char c : text) {
    if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
      if (depth < 0) {
        return false;
      }
    }
  }
  return depth == 0;
}

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(SmtLibTest, SimpleConstraintStructure) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "hw_reg");
  std::vector<ExprRef> constraints = {ctx.Ult(x, ctx.Const(100, 32)),
                                      ctx.Eq(ctx.And(x, ctx.Const(3, 32)), ctx.Const(1, 32))};
  std::string smt = ToSmtLib(constraints, ctx);
  EXPECT_TRUE(BalancedParens(smt)) << smt;
  EXPECT_NE(smt.find("(set-logic QF_BV)"), std::string::npos);
  EXPECT_EQ(CountOccurrences(smt, "declare-const"), 1u);  // one variable
  EXPECT_EQ(CountOccurrences(smt, "(assert "), 2u);
  EXPECT_NE(smt.find("bvult"), std::string::npos);
  EXPECT_NE(smt.find("bvand"), std::string::npos);
  EXPECT_NE(smt.find("(check-sat)"), std::string::npos);
  // Variable names are sanitized + uniquified.
  EXPECT_NE(smt.find("hw_reg_v0"), std::string::npos);
}

TEST(SmtLibTest, SharedSubtermsDefinedOnce) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  ExprRef shared = ctx.Mul(x, ctx.Const(7, 32));
  std::vector<ExprRef> constraints = {ctx.Ult(shared, ctx.Const(100, 32)),
                                      ctx.Ult(ctx.Const(5, 32), shared)};
  std::string smt = ToSmtLib(constraints, ctx);
  EXPECT_TRUE(BalancedParens(smt));
  // The multiply appears in exactly one define-fun body.
  EXPECT_EQ(CountOccurrences(smt, "bvmul"), 1u) << smt;
}

TEST(SmtLibTest, AllOperatorsRender) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  ExprRef y = ctx.Var(32, "y");
  ExprRef b = ctx.Var(8, "b");
  std::vector<ExprRef> constraints = {
      ctx.Eq(ctx.UDiv(x, y), ctx.URem(x, y)),
      ctx.Slt(ctx.Shl(x, y), ctx.AShr(x, y)),
      ctx.Ule(ctx.ZExt(b, 32), ctx.SExt(b, 32)),
      ctx.Eq(ctx.Extract(x, 8, 8), ctx.ExtractByte(y, 0)),
      ctx.Eq(ctx.Ite(ctx.Ult(x, y), x, y), ctx.Const(0, 32)),
  };
  std::string smt = ToSmtLib(constraints, ctx);
  EXPECT_TRUE(BalancedParens(smt)) << smt;
  for (const char* op : {"bvudiv", "bvurem", "bvshl", "bvashr", "bvslt", "zero_extend",
                         "sign_extend", "extract", "ite"}) {
    EXPECT_NE(smt.find(op), std::string::npos) << "missing " << op;
  }
}

TEST(SmtLibTest, RealBugConstraintsExport) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().bugs.empty());
  const Bug& bug = result.value().bugs.front();
  ASSERT_FALSE(bug.constraints.empty());
  std::string smt = ToSmtLib(bug.constraints, *ddt.engine().expr());
  EXPECT_TRUE(BalancedParens(smt)) << smt.substr(0, 1000);
  EXPECT_GE(CountOccurrences(smt, "declare-const"), 1u);
  EXPECT_NE(smt.find("(check-sat)"), std::string::npos);
}

}  // namespace
}  // namespace ddt
