// Hardware fault plane tests (hostile-hardware robustness):
//   - hw plan generation is deterministic, covers first and last observed
//     interaction, and respects the per-kind budget;
//   - surprise removal latches: reads float all-ones, writes drop, and the
//     PnP removal path is delivered exactly once;
//   - a campaign with the hw plane on stays byte-identical across thread
//     counts and tier-2 superblock settings;
//   - a saved hardware-fault bug report replays end-to-end after a
//     serialize/deserialize round trip through the evidence-file format.
#include "src/hw/hw_fault.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/bug_io.h"
#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"
#include "src/engine/fault_injection.h"

namespace ddt {
namespace {

DdtConfig QuickConfig() {
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_wall_ms = 120'000;
  config.engine.max_states = 512;
  return config;
}

FaultCampaignConfig QuickHwCampaign() {
  FaultCampaignConfig config;
  config.base = QuickConfig();
  config.max_passes = 16;
  config.max_occurrences_per_class = 4;
  config.escalation_rounds = 0;
  config.hw_faults = true;
  config.hw_max_points_per_kind = 3;
  return config;
}

// ---------------------------------------------------------------------------
// HwFaultPoint / GenerateHwCampaignPlans units
// ---------------------------------------------------------------------------

TEST(HwFaultPlanTest, ShouldTriggerHwMatchesExactPoints) {
  FaultPlan plan;
  plan.hw_points.push_back({HwFaultKind::kSurpriseRemoval, 7});
  plan.hw_points.push_back({HwFaultKind::kIrqStorm, 0});
  EXPECT_TRUE(plan.ShouldTriggerHw(HwFaultKind::kSurpriseRemoval, 7));
  EXPECT_TRUE(plan.ShouldTriggerHw(HwFaultKind::kIrqStorm, 0));
  EXPECT_FALSE(plan.ShouldTriggerHw(HwFaultKind::kSurpriseRemoval, 6));
  EXPECT_FALSE(plan.ShouldTriggerHw(HwFaultKind::kStickyError, 7));
  EXPECT_FALSE(plan.empty());
  EXPECT_FALSE(FaultPlan{}.ShouldTriggerHw(HwFaultKind::kSurpriseRemoval, 0));
}

TEST(HwFaultPlanTest, EmptyProfileYieldsNoPlans) {
  EXPECT_TRUE(GenerateHwCampaignPlans(HwSiteProfile{}, 4, 64).empty());
}

TEST(HwFaultPlanTest, SamplingCoversFirstAndLastInteraction) {
  HwSiteProfile profile;
  profile.max_mmio_accesses = 100;
  std::vector<FaultPlan> plans = GenerateHwCampaignPlans(profile, 4, 64);
  // Only the MMIO-access-indexed kind has an extent, so only surprise-removal
  // plans are generated: 4 single-point plans sampled across [0, 99].
  ASSERT_EQ(plans.size(), 4u);
  for (const FaultPlan& plan : plans) {
    ASSERT_EQ(plan.hw_points.size(), 1u);
    EXPECT_EQ(plan.hw_points[0].kind, HwFaultKind::kSurpriseRemoval);
    EXPECT_TRUE(plan.points.empty());
    EXPECT_FALSE(plan.label.empty());
  }
  EXPECT_EQ(plans.front().hw_points[0].index, 0u);
  EXPECT_EQ(plans.back().hw_points[0].index, 99u);
}

TEST(HwFaultPlanTest, BudgetCapsPlansPerKindAndGenerationIsDeterministic) {
  HwSiteProfile profile;
  profile.max_mmio_accesses = 50;
  profile.max_mmio_reads = 40;
  profile.max_mmio_writes = 10;
  profile.max_crossings = 30;
  profile.max_interrupts = 5;
  std::vector<FaultPlan> a = GenerateHwCampaignPlans(profile, 2, 64);
  std::vector<FaultPlan> b = GenerateHwCampaignPlans(profile, 2, 64);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    ASSERT_EQ(a[i].hw_points.size(), 1u);
    EXPECT_TRUE(a[i].hw_points[0] == b[i].hw_points[0]);
  }
  // Every kind has a nonzero extent; at most 2 plans each.
  size_t per_kind[kNumHwFaultKinds] = {};
  for (const FaultPlan& plan : a) {
    ++per_kind[static_cast<size_t>(plan.hw_points[0].kind)];
  }
  for (size_t kind = 0; kind < kNumHwFaultKinds; ++kind) {
    EXPECT_GE(per_kind[kind], 1u) << HwFaultKindName(static_cast<HwFaultKind>(kind));
    EXPECT_LE(per_kind[kind], 2u) << HwFaultKindName(static_cast<HwFaultKind>(kind));
  }
  // The overall budget truncates deterministically.
  EXPECT_EQ(GenerateHwCampaignPlans(profile, 2, 3).size(), 3u);
}

// ---------------------------------------------------------------------------
// Surprise-removal semantics on the RTL8029 corpus driver
// ---------------------------------------------------------------------------

TEST(HwFaultEngineTest, SurpriseRemovalLatchesAndFloatsReads) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  // Baseline: no hw plan, no hw faults, but the hw-site profile is captured
  // for the campaign planner.
  DdtConfig config = QuickConfig();
  Ddt baseline(config);
  Result<DdtResult> base = baseline.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(base.ok()) << base.status().message();
  EXPECT_EQ(base.value().stats.hw_faults_injected, 0u);
  const HwSiteProfile& profile = baseline.engine().hw_site_profile();
  ASSERT_FALSE(profile.Empty());
  ASSERT_GT(profile.max_mmio_accesses, 1u);

  // Removal right after the first MMIO access: every later read floats
  // all-ones, every later write is dropped, and the PnP removal path runs
  // exactly once per affected execution path.
  config.engine.fault_plan.label = "hw surprise-removal#1";
  config.engine.fault_plan.hw_points.push_back({HwFaultKind::kSurpriseRemoval, 1});
  Ddt removed(config);
  Result<DdtResult> result = removed.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const EngineStats& stats = result.value().stats;
  EXPECT_GT(stats.hw_faults_injected, 0u);
  EXPECT_GT(stats.hw_removals, 0u);
  EXPECT_GT(stats.hw_reads_floated, 0u);
  EXPECT_GT(stats.hw_writes_dropped, 0u);
  EXPECT_GT(stats.hw_removal_events, 0u);

  // Determinism: the identical plan injects the identical fault schedule.
  Ddt again(config);
  Result<DdtResult> repeat = again.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat.value().stats.hw_faults_injected, stats.hw_faults_injected);
  EXPECT_EQ(repeat.value().stats.hw_reads_floated, stats.hw_reads_floated);
  EXPECT_EQ(repeat.value().stats.hw_writes_dropped, stats.hw_writes_dropped);
}

TEST(HwFaultEngineTest, RemovedReadBitsFloatAllOnesPerWidth) {
  EXPECT_EQ(HwRemovedReadBits(1), 0xFFu);
  EXPECT_EQ(HwRemovedReadBits(2), 0xFFFFu);
  EXPECT_EQ(HwRemovedReadBits(4), 0xFFFFFFFFu);
}

// ---------------------------------------------------------------------------
// Campaign determinism with the hw plane on
// ---------------------------------------------------------------------------

TEST(HwFaultCampaignTest, HwPlaneCampaignIsByteIdenticalAcrossSchedulers) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  auto report = [&](uint32_t threads, bool superblocks) {
    FaultCampaignConfig config = QuickHwCampaign();
    config.base.dma_checker = true;
    config.threads = threads;
    config.base.engine.superblocks = superblocks;
    Result<FaultCampaignResult> r = RunFaultCampaign(config, driver.image, driver.pci);
    EXPECT_TRUE(r.ok()) << r.status().message();
    EXPECT_GT(r.value().total_stats.hw_faults_injected, 0u);
    return r.value().FormatReport(driver.name, /*include_volatile=*/false);
  };
  std::string sequential = report(1, false);
  EXPECT_EQ(report(4, false), sequential);
  EXPECT_EQ(report(1, true), sequential);
  // Hw plans appear in the deterministic pass table under their own labels.
  EXPECT_NE(sequential.find("hw "), std::string::npos) << sequential;
}

TEST(HwFaultCampaignTest, HwPlaneOffLeavesScheduleAndReportUntouched) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FaultCampaignConfig config = QuickHwCampaign();
  config.hw_faults = false;
  Result<FaultCampaignResult> r = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(r.value().total_stats.hw_faults_injected, 0u);
  std::string report = r.value().FormatReport(driver.name, /*include_volatile=*/false);
  EXPECT_EQ(report.find("hw "), std::string::npos) << report;
  EXPECT_EQ(report.find("hw faults"), std::string::npos) << report;
}

// ---------------------------------------------------------------------------
// Saved hardware-fault bug reports replay end-to-end
// ---------------------------------------------------------------------------

TEST(HwFaultReplayTest, SavedHwBugReportReplaysAfterRoundTrip) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FaultCampaignConfig config = QuickHwCampaign();
  config.base.dma_checker = true;
  Result<FaultCampaignResult> campaign = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(campaign.ok()) << campaign.status().message();

  // Collect every bug a hardware fault plan exposed.
  std::vector<Bug> hw_bugs;
  for (const Bug& bug : campaign.value().bugs) {
    if (!bug.fault_plan.hw_points.empty()) {
      hw_bugs.push_back(bug);
    }
  }
  ASSERT_FALSE(hw_bugs.empty()) << campaign.value().FormatReport(driver.name);

  // Round-trip through the evidence-file format: the hw fault plan and the
  // concrete injection schedule must survive serialization, because replay on
  // another machine only has the file.
  std::string path = testing::TempDir() + "hw_bug_roundtrip.report";
  ASSERT_TRUE(SaveBugsFile(path, hw_bugs).ok());
  Result<std::vector<Bug>> loaded = LoadBugsFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().size(), hw_bugs.size());
  for (size_t b = 0; b < hw_bugs.size(); ++b) {
    const Bug& bug = loaded.value()[b];
    EXPECT_EQ(bug.title, hw_bugs[b].title);
    ASSERT_EQ(bug.fault_plan.hw_points.size(), hw_bugs[b].fault_plan.hw_points.size());
    for (size_t i = 0; i < bug.fault_plan.hw_points.size(); ++i) {
      EXPECT_TRUE(bug.fault_plan.hw_points[i] == hw_bugs[b].fault_plan.hw_points[i]);
    }
    ASSERT_EQ(bug.hw_fault_schedule.size(), hw_bugs[b].hw_fault_schedule.size());
  }

  // A path that carries several bugs can replay into a sibling first, so the
  // contract is: at least one loaded hw bug reproduces from the file alone.
  int reproduced = 0;
  for (const Bug& bug : loaded.value()) {
    ReplayResult replay = ReplayBug(driver.image, driver.pci, bug, config.base);
    if (replay.reproduced) {
      ++reproduced;
    }
  }
  EXPECT_GT(reproduced, 0);
}

}  // namespace
}  // namespace ddt
