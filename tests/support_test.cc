// Unit tests for the support layer: string helpers, integer parsing, the
// deterministic PRNG, Status/Result semantics, and the DDT_CHECK trap the
// campaign supervisor uses to survive engine invariant failures.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/support/check.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/strings.h"

namespace ddt {
namespace {

TEST(StringsTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d", 42), "x=42");
  EXPECT_EQ(StrFormat("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(StrFormat("%08x", 0x1234), "00001234");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrFormatLongOutput) {
  std::string big(5000, 'y');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 5000u);
}

TEST(StringsTest, SplitAny) {
  auto pieces = SplitAny("a, b\tc  d", ", \t");
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[3], "d");
  EXPECT_TRUE(SplitAny("", ",").empty());
  EXPECT_TRUE(SplitAny(",,,", ",").empty());
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, ParseIntFormats) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt("0x1F", &v));
  EXPECT_EQ(v, 31);
  EXPECT_TRUE(ParseInt("0b101", &v));
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(ParseInt("1_000", &v));
  EXPECT_EQ(v, 1000);
}

TEST(StringsTest, ParseIntRejectsGarbage) {
  int64_t v = 0;
  EXPECT_FALSE(ParseInt("", &v));
  EXPECT_FALSE(ParseInt("abc", &v));
  EXPECT_FALSE(ParseInt("12x", &v));
  EXPECT_FALSE(ParseInt("-", &v));
  EXPECT_FALSE(ParseInt("0x", &v));
  EXPECT_FALSE(ParseInt("99999999999999999999999", &v));  // overflow
}

TEST(StringsTest, HexBytes) {
  uint8_t data[] = {0xDE, 0xAD, 0x01};
  EXPECT_EQ(HexBytes(data, 3), "de ad 01");
  EXPECT_EQ(HexBytes(data, 0), "");
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(8);
  EXPECT_NE(Rng(7).Next(), c.Next());
}

TEST(RngTest, BoundsRespected) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    uint64_t r = rng.NextInRange(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ReasonableSpread) {
  Rng rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 64; ++i) {
    seen.insert(rng.NextBelow(1u << 20));
  }
  EXPECT_GT(seen.size(), 60u);  // essentially no collisions
}

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(ResultTest, ValueAndError) {
  Result<int> good(41);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 41);
  Result<int> bad(Status::Error("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "nope");
  EXPECT_FALSE(bad.status().ok());
}

TEST(ResultTest, TakeMoves) {
  Result<std::string> r(std::string("payload"));
  std::string taken = r.take();
  EXPECT_EQ(taken, "payload");
}

TEST(CheckTrapTest, TrapTurnsCheckFailureIntoException) {
  bool threw = false;
  try {
    ScopedCheckTrap trap;
    DDT_CHECK_MSG(1 == 2, "intentional support-test failure");
  } catch (const CheckFailureError& e) {
    threw = true;
    std::string what = e.what();
    // The exception carries the same file:line:expr(msg) text the abort
    // path prints.
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("intentional support-test failure"), std::string::npos) << what;
    EXPECT_NE(what.find("support_test.cc"), std::string::npos) << what;
  }
  EXPECT_TRUE(threw);
}

TEST(CheckTrapTest, TrapsNestAsADepthCounter) {
  ScopedCheckTrap outer;
  {
    ScopedCheckTrap inner;
    EXPECT_THROW(DDT_CHECK(false), CheckFailureError);
  }
  // The inner trap's exit must not disarm the outer one (depth, not flag):
  // an untrapped DDT_CHECK failure here would abort the test binary.
  EXPECT_THROW(DDT_CHECK(false), CheckFailureError);
}

}  // namespace
}  // namespace ddt
