// Tests for per-function coverage attribution and the end-to-end report on a
// real engine run.
#include "src/core/coverage_report.h"

#include <gtest/gtest.h>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

TEST(CoverageReportTest, AttributesBlocksToFunctions) {
  const char* source = R"(
    .driver "cov"
    .entry main
    .code
    .func main
      movi r0, 1
      bz r0, skip
      movi r1, 2
    skip:
      call helper
      halt
    .func helper
      movi r2, 3
      bz r2, hskip
      movi r3, 4
    hskip:
      ret
  )";
  AssembledDriver drv = Assemble(source).take();
  Cfg cfg = BuildCfg(drv.image.code.data(), drv.image.code.size(), drv.load_base);

  // Pretend only main's blocks ran.
  std::unordered_set<uint32_t> covered;
  for (const auto& [leader, block] : cfg.blocks) {
    if (leader < drv.symbols.at("helper")) {
      covered.insert(leader);
    }
  }
  std::map<uint32_t, std::string> symbols;
  for (const auto& [name, addr] : drv.symbols) {
    symbols[addr] = name;
  }
  CoverageReport report =
      BuildCoverageReport(cfg, covered, drv.functions, &symbols);
  ASSERT_EQ(report.functions.size(), 2u);
  EXPECT_EQ(report.functions[0].name, "main");
  EXPECT_EQ(report.functions[0].covered, report.functions[0].blocks);
  EXPECT_EQ(report.functions[1].name, "helper");
  EXPECT_EQ(report.functions[1].covered, 0u);
  EXPECT_GT(report.functions[1].blocks, 0u);

  std::string text = report.Format();
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("helper"), std::string::npos);
}

TEST(CoverageReportTest, FilterElidesFullyCovered) {
  const char* source = R"(
    .driver "cov"
    .entry main
    .code
    .func main
      halt
    .func other
      ret
  )";
  AssembledDriver drv = Assemble(source).take();
  Cfg cfg = BuildCfg(drv.image.code.data(), drv.image.code.size(), drv.load_base);
  std::unordered_set<uint32_t> covered;
  for (const auto& [leader, block] : cfg.blocks) {
    covered.insert(leader);
  }
  CoverageReport report = BuildCoverageReport(cfg, covered, drv.functions, nullptr);
  std::string text = report.Format(/*only_below=*/0.999);
  EXPECT_NE(text.find("elided"), std::string::npos);
}

TEST(CoverageReportTest, EndToEndOnCorpusDriver) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok());

  std::map<uint32_t, std::string> symbols;
  for (const auto& [name, addr] : driver.assembled.symbols) {
    symbols[addr] = name;
  }
  CoverageReport report =
      BuildCoverageReport(ddt.engine().cfg(), ddt.engine().covered_block_leaders(),
                          driver.assembled.functions, &symbols);
  EXPECT_EQ(report.covered_blocks, result.value().covered_blocks);
  EXPECT_EQ(report.total_blocks, result.value().total_blocks);
  // The sum of per-function blocks equals the CFG block count (full
  // attribution, nothing lost).
  size_t sum_blocks = 0;
  size_t sum_covered = 0;
  for (const FunctionCoverage& fn : report.functions) {
    sum_blocks += fn.blocks;
    sum_covered += fn.covered;
  }
  EXPECT_EQ(sum_blocks, report.total_blocks);
  EXPECT_EQ(sum_covered, report.covered_blocks);
  // The exercised entry points are meaningfully covered.
  bool init_covered = false;
  for (const FunctionCoverage& fn : report.functions) {
    if (fn.name == "ep_init") {
      init_covered = fn.Fraction() > 0.5;
    }
  }
  EXPECT_TRUE(init_covered);
}

}  // namespace
}  // namespace ddt
