// Searcher policy units: selection order for the FIFO-style BFS policy and
// the coverage-starved policy (src/engine/pathctl.h's scheduling leg), plus
// the determinism property the pathctl contract rests on — identical inputs
// produce the identical selection sequence, and coverage-starved consults no
// RNG at all.
#include "src/engine/searcher.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/engine/execution_state.h"

namespace ddt {
namespace {

class FakeOracle : public BlockCountOracle {
 public:
  uint64_t BlockCountAt(uint32_t pc) const override {
    auto it = counts_.find(pc);
    return it == counts_.end() ? 0 : it->second;
  }
  void Set(uint32_t pc, uint64_t count) { counts_[pc] = count; }

 private:
  std::map<uint32_t, uint64_t> counts_;
};

std::vector<std::unique_ptr<ExecutionState>> MakeStates(
    const std::vector<uint32_t>& pcs) {
  std::vector<std::unique_ptr<ExecutionState>> states;
  for (size_t i = 0; i < pcs.size(); ++i) {
    auto st = std::make_unique<ExecutionState>();
    st->id = i + 1;
    st->pc = pcs[i];
    states.push_back(std::move(st));
  }
  return states;
}

std::vector<ExecutionState*> Raw(
    const std::vector<std::unique_ptr<ExecutionState>>& states) {
  std::vector<ExecutionState*> raw;
  for (const auto& st : states) {
    raw.push_back(st.get());
  }
  return raw;
}

TEST(SearcherTest, NamesRoundTripThroughParse) {
  for (SearchStrategy s : {SearchStrategy::kCoverageGreedy, SearchStrategy::kDfs,
                           SearchStrategy::kBfs, SearchStrategy::kRandom,
                           SearchStrategy::kCoverageStarved}) {
    SearchStrategy parsed = SearchStrategy::kRandom;
    ASSERT_TRUE(ParseSearchStrategy(SearchStrategyName(s), &parsed))
        << SearchStrategyName(s);
    EXPECT_EQ(parsed, s);
  }
  SearchStrategy out;
  EXPECT_FALSE(ParseSearchStrategy("coverage", &out));
  EXPECT_FALSE(ParseSearchStrategy("", &out));
  EXPECT_FALSE(ParseSearchStrategy("COVERAGE-STARVED", &out));
}

TEST(SearcherTest, BfsIsFifoDfsIsLifo) {
  auto states = MakeStates({0x100, 0x200, 0x300});
  std::vector<ExecutionState*> raw = Raw(states);
  std::unique_ptr<Searcher> bfs = MakeSearcher(SearchStrategy::kBfs, nullptr, 1);
  std::unique_ptr<Searcher> dfs = MakeSearcher(SearchStrategy::kDfs, nullptr, 1);
  EXPECT_EQ(bfs->Select(raw), 0u);  // oldest state first
  EXPECT_EQ(dfs->Select(raw), 2u);  // newest state first
}

TEST(SearcherTest, CoverageStarvedPrefersUncoveredBlocks) {
  FakeOracle oracle;
  oracle.Set(0x100, 50);  // hot polling loop
  oracle.Set(0x200, 3);
  // 0x300 never executed -> count 0.
  auto states = MakeStates({0x100, 0x200, 0x300});
  std::unique_ptr<Searcher> searcher =
      MakeSearcher(SearchStrategy::kCoverageStarved, &oracle, 1);
  EXPECT_EQ(searcher->Select(Raw(states)), 2u);

  // Once every candidate's next block is covered, the least-executed wins;
  // the polling-loop state (largest count) is selected last of all.
  oracle.Set(0x300, 7);
  EXPECT_EQ(searcher->Select(Raw(states)), 1u);
  oracle.Set(0x200, 80);
  oracle.Set(0x300, 90);
  EXPECT_EQ(searcher->Select(Raw(states)), 0u);
}

TEST(SearcherTest, CoverageStarvedBreaksTiesByStateOrder) {
  FakeOracle oracle;
  oracle.Set(0x100, 5);
  oracle.Set(0x200, 5);
  oracle.Set(0x300, 5);
  auto states = MakeStates({0x100, 0x200, 0x300});
  std::unique_ptr<Searcher> searcher =
      MakeSearcher(SearchStrategy::kCoverageStarved, &oracle, 1);
  // All tied: the first index wins, deterministically, every time.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(searcher->Select(Raw(states)), 0u);
  }
}

TEST(SearcherTest, IdenticalInputsProduceIdenticalSelectionSequences) {
  FakeOracle oracle;
  oracle.Set(0x100, 2);
  oracle.Set(0x200, 9);
  oracle.Set(0x300, 1);
  oracle.Set(0x400, 9);
  auto states = MakeStates({0x100, 0x200, 0x300, 0x400});
  std::vector<ExecutionState*> raw = Raw(states);
  for (SearchStrategy s : {SearchStrategy::kCoverageGreedy, SearchStrategy::kDfs,
                           SearchStrategy::kBfs, SearchStrategy::kRandom,
                           SearchStrategy::kCoverageStarved}) {
    std::unique_ptr<Searcher> a = MakeSearcher(s, &oracle, 42);
    std::unique_ptr<Searcher> b = MakeSearcher(s, &oracle, 42);
    for (int step = 0; step < 32; ++step) {
      ASSERT_EQ(a->Select(raw), b->Select(raw))
          << SearchStrategyName(s) << " diverged at step " << step;
    }
  }
}

// Two *separately constructed* coverage-starved searchers agree even when
// consulted in interleaved orders: selection is a pure function of (states,
// coverage), with no per-instance mutable state.
TEST(SearcherTest, CoverageStarvedIsStateless) {
  FakeOracle oracle;
  oracle.Set(0x100, 4);
  oracle.Set(0x200, 2);
  auto states = MakeStates({0x100, 0x200});
  std::vector<ExecutionState*> raw = Raw(states);
  std::unique_ptr<Searcher> a =
      MakeSearcher(SearchStrategy::kCoverageStarved, &oracle, 1);
  std::unique_ptr<Searcher> b =
      MakeSearcher(SearchStrategy::kCoverageStarved, &oracle, 999);
  EXPECT_EQ(a->Select(raw), 1u);
  oracle.Set(0x200, 40);
  EXPECT_EQ(b->Select(raw), 0u);
  EXPECT_EQ(a->Select(raw), 0u);  // a saw b's world change; no hidden history
}

}  // namespace
}  // namespace ddt
