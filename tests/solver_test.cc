// Tests for the constraint solver stack: raw SAT, bit-blasting, intervals,
// slicing/caching in the facade, plus a randomized end-to-end property suite
// (solve a random constraint system, then check the model with the
// evaluator — and check UNSAT answers against brute force on small widths).
#include "src/solver/solver.h"

#include <gtest/gtest.h>

#include <atomic>

#include "src/expr/eval.h"
#include "src/solver/bitblast.h"
#include "src/solver/intervals.h"
#include "src/solver/known_bits.h"
#include "src/solver/sat.h"
#include "src/support/rng.h"

namespace ddt {
namespace {

// --- Raw SAT solver ---------------------------------------------------------

TEST(SatSolverTest, TrivialSat) {
  SatSolver sat;
  uint32_t a = sat.NewVar();
  sat.AddUnit(MakeLit(a, false));
  EXPECT_EQ(sat.Solve(), SatResult::kSat);
  EXPECT_TRUE(sat.ModelValue(a));
}

TEST(SatSolverTest, TrivialUnsat) {
  SatSolver sat;
  uint32_t a = sat.NewVar();
  sat.AddUnit(MakeLit(a, false));
  sat.AddUnit(MakeLit(a, true));
  EXPECT_EQ(sat.Solve(), SatResult::kUnsat);
}

TEST(SatSolverTest, EmptyClauseIsUnsat) {
  SatSolver sat;
  EXPECT_FALSE(sat.AddClause({}));
  EXPECT_EQ(sat.Solve(), SatResult::kUnsat);
}

TEST(SatSolverTest, PropagationChain) {
  SatSolver sat;
  uint32_t a = sat.NewVar();
  uint32_t b = sat.NewVar();
  uint32_t c = sat.NewVar();
  // a, a->b, b->c
  sat.AddUnit(MakeLit(a, false));
  sat.AddBinary(MakeLit(a, true), MakeLit(b, false));
  sat.AddBinary(MakeLit(b, true), MakeLit(c, false));
  EXPECT_EQ(sat.Solve(), SatResult::kSat);
  EXPECT_TRUE(sat.ModelValue(b));
  EXPECT_TRUE(sat.ModelValue(c));
}

TEST(SatSolverTest, PigeonholeThreeIntoTwoIsUnsat) {
  // 3 pigeons, 2 holes: forces real conflict analysis.
  SatSolver sat;
  uint32_t p[3][2];
  for (auto& row : p) {
    for (uint32_t& v : row) {
      v = sat.NewVar();
    }
  }
  for (auto& row : p) {
    sat.AddBinary(MakeLit(row[0], false), MakeLit(row[1], false));
  }
  for (int hole = 0; hole < 2; ++hole) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        sat.AddBinary(MakeLit(p[i][hole], true), MakeLit(p[j][hole], true));
      }
    }
  }
  EXPECT_EQ(sat.Solve(), SatResult::kUnsat);
}

TEST(SatSolverTest, AssumptionsWork) {
  SatSolver sat;
  uint32_t a = sat.NewVar();
  uint32_t b = sat.NewVar();
  sat.AddBinary(MakeLit(a, true), MakeLit(b, false));  // a -> b
  EXPECT_EQ(sat.Solve({MakeLit(a, false), MakeLit(b, true)}), SatResult::kUnsat);
  EXPECT_EQ(sat.Solve({MakeLit(a, false)}), SatResult::kSat);
  EXPECT_TRUE(sat.ModelValue(b));
}

TEST(SatSolverTest, RandomThreeSatAgainstBruteForce) {
  Rng rng(77);
  for (int round = 0; round < 60; ++round) {
    constexpr int kVars = 8;
    int num_clauses = 10 + static_cast<int>(rng.NextBelow(25));
    std::vector<std::vector<SatLit>> clauses;
    SatSolver sat;
    for (int i = 0; i < kVars; ++i) {
      sat.NewVar();
    }
    for (int i = 0; i < num_clauses; ++i) {
      std::vector<SatLit> clause;
      for (int j = 0; j < 3; ++j) {
        clause.push_back(
            MakeLit(static_cast<uint32_t>(rng.NextBelow(kVars)), rng.NextBelow(2) == 0));
      }
      clauses.push_back(clause);
      sat.AddClause(clause);
    }
    // Brute force.
    bool expect_sat = false;
    for (uint32_t mask = 0; mask < (1u << kVars) && !expect_sat; ++mask) {
      bool all = true;
      for (const auto& clause : clauses) {
        bool any = false;
        for (SatLit lit : clause) {
          bool value = ((mask >> LitVar(lit)) & 1) != 0;
          if (LitNegated(lit)) {
            value = !value;
          }
          any |= value;
        }
        if (!any) {
          all = false;
          break;
        }
      }
      expect_sat |= all;
    }
    SatResult result = sat.Solve();
    EXPECT_EQ(result, expect_sat ? SatResult::kSat : SatResult::kUnsat) << "round " << round;
    if (result == SatResult::kSat) {
      for (const auto& clause : clauses) {
        bool any = false;
        for (SatLit lit : clause) {
          bool value = sat.ModelValue(LitVar(lit));
          if (LitNegated(lit)) {
            value = !value;
          }
          any |= value;
        }
        EXPECT_TRUE(any) << "model violates clause in round " << round;
      }
    }
  }
}

// --- Bit-blaster -------------------------------------------------------------

class BitblastTest : public ::testing::Test {
 protected:
  // Asserts e == expected is satisfiable and e != expected is not.
  void ExpectForced(ExprRef e, uint64_t expected) {
    {
      SatSolver sat;
      Bitblaster blaster(&sat);
      blaster.AssertTrue(ctx_.Eq(e, ctx_.Const(expected, e->width())));
      EXPECT_EQ(sat.Solve(), SatResult::kSat) << ExprToString(e);
    }
    {
      SatSolver sat;
      Bitblaster blaster(&sat);
      blaster.AssertTrue(ctx_.Ne(e, ctx_.Const(expected, e->width())));
      EXPECT_EQ(sat.Solve(), SatResult::kUnsat) << ExprToString(e);
    }
  }

  ExprContext ctx_;
};

TEST_F(BitblastTest, ConstantsForceThemselves) {
  ExpectForced(ctx_.Const(0xDEADBEEF, 32), 0xDEADBEEF);
}

TEST_F(BitblastTest, VariableEqualityFindsModel) {
  ExprRef x = ctx_.Var(32, "x");
  SatSolver sat;
  Bitblaster blaster(&sat);
  blaster.AssertTrue(ctx_.Eq(x, ctx_.Const(12345, 32)));
  ASSERT_EQ(sat.Solve(), SatResult::kSat);
  Assignment model = blaster.ExtractModel();
  EXPECT_EQ(model.Get(x->var_id()), 12345u);
}

TEST_F(BitblastTest, AdditionRelation) {
  ExprRef x = ctx_.Var(16, "x");
  ExprRef y = ctx_.Var(16, "y");
  SatSolver sat;
  Bitblaster blaster(&sat);
  blaster.AssertTrue(ctx_.Eq(ctx_.Add(x, y), ctx_.Const(100, 16)));
  blaster.AssertTrue(ctx_.Eq(x, ctx_.Const(58, 16)));
  ASSERT_EQ(sat.Solve(), SatResult::kSat);
  Assignment model = blaster.ExtractModel();
  EXPECT_EQ(model.Get(y->var_id()), 42u);
}

TEST_F(BitblastTest, MultiplicationInverse) {
  ExprRef x = ctx_.Var(16, "x");
  SatSolver sat;
  Bitblaster blaster(&sat);
  // x * 7 == 91 -> x == 13 (unique in 16 bits? 7 is odd => invertible mod 2^16,
  // so yes, unique).
  blaster.AssertTrue(ctx_.Eq(ctx_.Mul(x, ctx_.Const(7, 16)), ctx_.Const(91, 16)));
  ASSERT_EQ(sat.Solve(), SatResult::kSat);
  Assignment model = blaster.ExtractModel();
  EXPECT_EQ(model.Get(x->var_id()), 13u);
}

TEST_F(BitblastTest, DivisionRelation) {
  ExprRef x = ctx_.Var(8, "x");
  SatSolver sat;
  Bitblaster blaster(&sat);
  // x / 10 == 7 and x % 10 == 3 -> x == 73.
  blaster.AssertTrue(ctx_.Eq(ctx_.UDiv(x, ctx_.Const(10, 8)), ctx_.Const(7, 8)));
  blaster.AssertTrue(ctx_.Eq(ctx_.URem(x, ctx_.Const(10, 8)), ctx_.Const(3, 8)));
  ASSERT_EQ(sat.Solve(), SatResult::kSat);
  Assignment model = blaster.ExtractModel();
  EXPECT_EQ(model.Get(x->var_id()), 73u);
}

TEST_F(BitblastTest, ShiftByVariableAmount) {
  ExprRef x = ctx_.Var(8, "x");
  ExprRef s = ctx_.Var(8, "s");
  SatSolver sat;
  Bitblaster blaster(&sat);
  // (x << s) == 0xA0 with x == 5 -> s == 5.
  blaster.AssertTrue(ctx_.Eq(ctx_.Shl(x, s), ctx_.Const(0xA0, 8)));
  blaster.AssertTrue(ctx_.Eq(x, ctx_.Const(5, 8)));
  ASSERT_EQ(sat.Solve(), SatResult::kSat);
  Assignment model = blaster.ExtractModel();
  EXPECT_EQ(model.Get(s->var_id()), 5u);
}

// Randomized soundness: build random expression trees, pick random inputs,
// assert (expr == eval(expr)) is SAT and verify the model evaluates right.
TEST_F(BitblastTest, RandomExpressionsRoundTrip) {
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    ExprContext ctx;
    ExprRef x = ctx.Var(8, "x");
    ExprRef y = ctx.Var(8, "y");
    std::vector<ExprRef> pool = {x, y, ctx.Const(rng.Next() & 0xFF, 8),
                                 ctx.Const(rng.Next() & 0xFF, 8)};
    for (int i = 0; i < 12; ++i) {
      ExprRef a = pool[rng.NextBelow(pool.size())];
      ExprRef b = pool[rng.NextBelow(pool.size())];
      ExprRef e = nullptr;
      switch (rng.NextBelow(10)) {
        case 0:
          e = ctx.Add(a, b);
          break;
        case 1:
          e = ctx.Sub(a, b);
          break;
        case 2:
          e = ctx.Mul(a, b);
          break;
        case 3:
          e = ctx.And(a, b);
          break;
        case 4:
          e = ctx.Or(a, b);
          break;
        case 5:
          e = ctx.Xor(a, b);
          break;
        case 6:
          e = ctx.Shl(a, ctx.Const(rng.NextBelow(10), 8));
          break;
        case 7:
          e = ctx.UDiv(a, b);
          break;
        case 8:
          e = ctx.Ite(ctx.Ult(a, b), a, b);
          break;
        default:
          e = ctx.URem(a, b);
          break;
      }
      pool.push_back(e);
    }
    ExprRef root = pool.back();
    Assignment inputs;
    inputs.Set(x->var_id(), rng.Next() & 0xFF);
    inputs.Set(y->var_id(), rng.Next() & 0xFF);
    uint64_t expected = EvalExpr(root, inputs);

    SatSolver sat;
    Bitblaster blaster(&sat);
    blaster.AssertTrue(ctx.Eq(x, ctx.Const(inputs.Get(x->var_id()), 8)));
    blaster.AssertTrue(ctx.Eq(y, ctx.Const(inputs.Get(y->var_id()), 8)));
    blaster.AssertTrue(ctx.Eq(root, ctx.Const(expected, root->width())));
    EXPECT_EQ(sat.Solve(), SatResult::kSat) << "round " << round;
  }
}

// --- Interval analysis --------------------------------------------------------

TEST(IntervalTest, ConstIsExact) {
  ExprContext ctx;
  std::unordered_map<ExprRef, Interval> memo;
  Interval iv = ComputeInterval(ctx.Const(7, 32), &memo);
  EXPECT_EQ(iv.lo, 7u);
  EXPECT_EQ(iv.hi, 7u);
}

TEST(IntervalTest, ZExtOfByteBoundsComparison) {
  ExprContext ctx;
  ExprRef x = ctx.Var(8, "x");
  ExprRef wide = ctx.ZExt(x, 32);
  // zext8(x) < 0x1000 is a tautology.
  EXPECT_EQ(QuickCheck(ctx.Ult(wide, ctx.Const(0x1000, 32))), QuickAnswer::kAlwaysTrue);
  // zext8(x) == 0x500 is impossible (already folded by the builder, but the
  // interval path must agree for un-folded shapes).
  EXPECT_EQ(QuickCheck(ctx.Ult(ctx.Const(0x1000, 32), wide)), QuickAnswer::kAlwaysFalse);
}

TEST(IntervalTest, UnknownWhenRangesOverlap) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  EXPECT_EQ(QuickCheck(ctx.Ult(x, ctx.Const(5, 32))), QuickAnswer::kUnknown);
}

TEST(IntervalTest, AndBoundedByOperands) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  ExprRef masked = ctx.And(x, ctx.Const(0xFF, 32));
  EXPECT_EQ(QuickCheck(ctx.Ule(masked, ctx.Const(0xFF, 32))), QuickAnswer::kAlwaysTrue);
}

// --- Solver facade -------------------------------------------------------------

class SolverTest : public ::testing::Test {
 protected:
  SolverTest() : solver_(&ctx_) {}
  ExprContext ctx_;
  Solver solver_;
};

TEST_F(SolverTest, EmptyConstraintsAreSat) {
  EXPECT_TRUE(solver_.IsSatisfiable({}, nullptr));
}

TEST_F(SolverTest, SimpleBranchQueries) {
  ExprRef x = ctx_.Var(32, "x");
  std::vector<ExprRef> constraints = {ctx_.Ult(x, ctx_.Const(10, 32))};
  ExprRef cond = ctx_.Eq(x, ctx_.Const(5, 32));
  EXPECT_TRUE(solver_.MayBeTrue(constraints, cond));
  EXPECT_TRUE(solver_.MayBeFalse(constraints, cond));
  EXPECT_FALSE(solver_.MustBeTrue(constraints, cond));
  ExprRef impossible = ctx_.Eq(x, ctx_.Const(50, 32));
  EXPECT_FALSE(solver_.MayBeTrue(constraints, impossible));
  EXPECT_TRUE(solver_.MustBeFalse(constraints, impossible));
}

TEST_F(SolverTest, ContradictoryConstraintsUnsat) {
  ExprRef x = ctx_.Var(32, "x");
  std::vector<ExprRef> constraints = {ctx_.Ult(x, ctx_.Const(10, 32)),
                                      ctx_.Ult(ctx_.Const(20, 32), x)};
  EXPECT_FALSE(solver_.IsSatisfiable(constraints, nullptr));
}

TEST_F(SolverTest, GetValueRespectsConstraints) {
  ExprRef x = ctx_.Var(32, "x");
  std::vector<ExprRef> constraints = {ctx_.Ult(x, ctx_.Const(100, 32)),
                                      ctx_.Ult(ctx_.Const(90, 32), x)};
  std::optional<uint64_t> value = solver_.GetValue(constraints, x);
  ASSERT_TRUE(value.has_value());
  EXPECT_GT(*value, 90u);
  EXPECT_LT(*value, 100u);
}

TEST_F(SolverTest, GetInitialValuesSolvesIndependentComponents) {
  ExprRef x = ctx_.Var(32, "x");
  ExprRef y = ctx_.Var(32, "y");
  ExprRef z = ctx_.Var(32, "z");
  std::vector<ExprRef> constraints = {
      ctx_.Eq(x, ctx_.Const(3, 32)),
      ctx_.Eq(ctx_.Add(y, z), ctx_.Const(10, 32)),
  };
  Assignment model;
  ASSERT_TRUE(solver_.GetInitialValues(constraints, &model));
  EXPECT_EQ(model.Get(x->var_id()), 3u);
  EXPECT_EQ(MaskToWidth(model.Get(y->var_id()) + model.Get(z->var_id()), 32), 10u);
}

TEST_F(SolverTest, CacheHitsOnRepeatedQuery) {
  ExprRef x = ctx_.Var(32, "x");
  std::vector<ExprRef> constraints = {ctx_.Ult(x, ctx_.Const(10, 32))};
  ExprRef cond = ctx_.Eq(x, ctx_.Const(5, 32));
  EXPECT_TRUE(solver_.MayBeTrue(constraints, cond));
  uint64_t sat_calls = solver_.stats().sat_calls;
  EXPECT_TRUE(solver_.MayBeTrue(constraints, cond));
  EXPECT_EQ(solver_.stats().sat_calls, sat_calls);
  EXPECT_GT(solver_.stats().cache_hits, 0u);
}

TEST_F(SolverTest, SlicingIgnoresUnrelatedConstraints) {
  // y's constraints must not be bit-blasted when querying about x.
  ExprRef x = ctx_.Var(8, "x");
  std::vector<ExprRef> constraints;
  for (int i = 0; i < 30; ++i) {
    ExprRef y = ctx_.Var(32, "unrelated");
    constraints.push_back(ctx_.Ult(y, ctx_.Const(1000 + i, 32)));
  }
  constraints.push_back(ctx_.Ult(x, ctx_.Const(5, 8)));
  uint64_t vars_before = solver_.stats().total_sat_vars;
  EXPECT_TRUE(solver_.MayBeTrue(constraints, ctx_.Eq(x, ctx_.Const(3, 8))));
  uint64_t vars_used = solver_.stats().total_sat_vars - vars_before;
  // 8-bit x plus gates: far fewer than 30 * 32-bit unrelated vars.
  EXPECT_LT(vars_used, 300u);
}

TEST_F(SolverTest, QuickPathAvoidsSat) {
  ExprRef x = ctx_.Var(8, "x");
  std::vector<ExprRef> constraints;
  uint64_t sat_calls = solver_.stats().sat_calls;
  // zext(x) < 0x1000 is decided by intervals.
  EXPECT_TRUE(
      solver_.MayBeTrue(constraints, ctx_.Ult(ctx_.ZExt(x, 32), ctx_.Const(0x1000, 32))));
  EXPECT_EQ(solver_.stats().sat_calls, sat_calls);
}

// Randomized end-to-end: random small constraint systems; SAT answers checked
// by evaluating the model, UNSAT answers checked by brute force.
TEST(SolverPropertyTest, RandomSystemsAgainstBruteForce) {
  Rng rng(31337);
  for (int round = 0; round < 40; ++round) {
    ExprContext ctx;
    Solver solver(&ctx);
    ExprRef x = ctx.Var(6, "x");
    ExprRef y = ctx.Var(6, "y");
    std::vector<ExprRef> constraints;
    int n = 2 + static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < n; ++i) {
      ExprRef a = rng.NextBelow(2) == 0 ? x : y;
      ExprRef b = rng.NextBelow(3) == 0 ? (a == x ? y : x)
                                        : ctx.Const(rng.NextBelow(64), 6);
      ExprRef c = nullptr;
      switch (rng.NextBelow(4)) {
        case 0:
          c = ctx.Ult(a, b);
          break;
        case 1:
          c = ctx.Eq(ctx.And(a, ctx.Const(rng.NextBelow(64), 6)), ctx.Const(rng.NextBelow(64), 6));
          break;
        case 2:
          c = ctx.Eq(ctx.Add(a, b), ctx.Const(rng.NextBelow(64), 6));
          break;
        default:
          c = ctx.Ule(b, a);
          break;
      }
      constraints.push_back(c);
    }
    // Brute force ground truth.
    bool expect_sat = false;
    for (uint32_t xv = 0; xv < 64 && !expect_sat; ++xv) {
      for (uint32_t yv = 0; yv < 64; ++yv) {
        Assignment a;
        a.Set(x->var_id(), xv);
        a.Set(y->var_id(), yv);
        bool all = true;
        for (ExprRef c : constraints) {
          if (!EvalBool(c, a)) {
            all = false;
            break;
          }
        }
        if (all) {
          expect_sat = true;
          break;
        }
      }
    }
    Assignment model;
    bool got_sat = solver.IsSatisfiable(constraints, nullptr, &model);
    EXPECT_EQ(got_sat, expect_sat) << "round " << round;
    if (got_sat && expect_sat) {
      for (ExprRef c : constraints) {
        EXPECT_TRUE(EvalBool(c, model)) << "round " << round;
      }
    }
  }
}


// --- known-bits analysis ----------------------------------------------------------

TEST(KnownBitsTest, ConstIsExact) {
  ExprContext ctx;
  std::unordered_map<ExprRef, KnownBits> memo;
  KnownBits kb = ComputeKnownBits(ctx.Const(0xA5, 8), &memo);
  EXPECT_TRUE(kb.IsExact());
  EXPECT_EQ(kb.ExactValue(), 0xA5u);
}

TEST(KnownBitsTest, MaskingDeterminesClearBits) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  ExprRef masked = ctx.And(x, ctx.Const(0x0F, 32));
  std::unordered_map<ExprRef, KnownBits> memo;
  KnownBits kb = ComputeKnownBits(masked, &memo);
  EXPECT_EQ(kb.known_zero, 0xFFFFFFF0u);  // high bits provably clear
  EXPECT_EQ(kb.known_one, 0u);
}

TEST(KnownBitsTest, OrSetsBits) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  std::unordered_map<ExprRef, KnownBits> memo;
  KnownBits kb = ComputeKnownBits(ctx.Or(x, ctx.Const(0x80000001u, 32)), &memo);
  EXPECT_EQ(kb.known_one, 0x80000001u);
}

TEST(KnownBitsTest, ShiftIntroducesZeros) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  std::unordered_map<ExprRef, KnownBits> memo;
  KnownBits kb = ComputeKnownBits(ctx.Shl(x, ctx.Const(4, 32)), &memo);
  EXPECT_EQ(kb.known_zero & 0xF, 0xFu);  // low 4 bits are zero
}

TEST(KnownBitsTest, QuickCheckDecidesMaskedFlagConditions) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  // ((x | 4) & 4) == 4 is a tautology the intervals can't see.
  ExprRef flag = ctx.And(ctx.Or(x, ctx.Const(4, 32)), ctx.Const(4, 32));
  EXPECT_EQ(QuickCheck(ctx.Eq(flag, ctx.Const(4, 32))), QuickAnswer::kAlwaysTrue);
  // ((x << 4) & 1) == 1 is impossible.
  ExprRef low = ctx.And(ctx.Shl(x, ctx.Const(4, 32)), ctx.Const(1, 32));
  EXPECT_EQ(QuickCheck(ctx.Eq(low, ctx.Const(1, 32))), QuickAnswer::kAlwaysFalse);
}

// Property: known bits are sound — every claimed bit matches the evaluator
// on random assignments over random bitwise expression trees.
TEST(KnownBitsTest, RandomizedSoundness) {
  Rng rng(0xBB17);
  for (int round = 0; round < 60; ++round) {
    ExprContext ctx;
    ExprRef x = ctx.Var(16, "x");
    ExprRef y = ctx.Var(16, "y");
    std::vector<ExprRef> pool = {x, y, ctx.Const(rng.Next() & 0xFFFF, 16),
                                 ctx.Const(rng.Next() & 0xFFFF, 16)};
    for (int i = 0; i < 10; ++i) {
      ExprRef a = pool[rng.NextBelow(pool.size())];
      ExprRef b = pool[rng.NextBelow(pool.size())];
      switch (rng.NextBelow(7)) {
        case 0:
          pool.push_back(ctx.And(a, b));
          break;
        case 1:
          pool.push_back(ctx.Or(a, b));
          break;
        case 2:
          pool.push_back(ctx.Xor(a, b));
          break;
        case 3:
          pool.push_back(ctx.Not(a));
          break;
        case 4:
          pool.push_back(ctx.Add(a, b));
          break;
        case 5:
          pool.push_back(ctx.Shl(a, ctx.Const(rng.NextBelow(18), 16)));
          break;
        default:
          pool.push_back(ctx.LShr(a, ctx.Const(rng.NextBelow(18), 16)));
          break;
      }
    }
    ExprRef root = pool.back();
    std::unordered_map<ExprRef, KnownBits> memo;
    KnownBits kb = ComputeKnownBits(root, &memo);
    for (int trial = 0; trial < 50; ++trial) {
      Assignment a;
      a.Set(x->var_id(), rng.Next());
      a.Set(y->var_id(), rng.Next());
      uint64_t value = EvalExpr(root, a);
      ASSERT_EQ(value & kb.known_one, kb.known_one)
          << "claimed-one bit was zero (round " << round << ")";
      ASSERT_EQ(value & kb.known_zero, 0u)
          << "claimed-zero bit was one (round " << round << ")";
    }
  }
}

// --- Per-query deadline (resource governor) ---------------------------------

// A chain of 32-bit multiplications equated to an unlikely constant: no
// interval/known-bits shortcut applies, and bit-blasted multiplier circuits
// make the SAT instance expensive enough that a ~zero deadline always trips.
std::vector<ExprRef> HostileConstraints(ExprContext* ctx, int chain) {
  ExprRef x = ctx->Var(32, "hostile_x");
  ExprRef y = ctx->Var(32, "hostile_y");
  ExprRef acc = x;
  for (int i = 0; i < chain; ++i) {
    acc = ctx->Mul(acc, i % 2 == 0 ? y : x);
  }
  return {ctx->Eq(acc, ctx->Const(0xDEADBEEF, 32)), ctx->Ne(x, ctx->Const(0, 32)),
          ctx->Ne(y, ctx->Const(0, 32))};
}

TEST(SolverDeadlineTest, TimedOutQueryDegradesToConservativeSat) {
  ExprContext ctx;
  SolverConfig config;
  config.max_query_ms = 1;
  config.conflict_budget = 0;  // only the deadline can stop it
  config.enable_cache = false;
  Solver solver(&ctx, config);
  // Conservative degradation: timeout answers "satisfiable" (never drops a
  // feasible path) and is counted.
  EXPECT_TRUE(solver.IsSatisfiable(HostileConstraints(&ctx, 24), nullptr));
  EXPECT_GT(solver.stats().query_timeouts, 0u);
  EXPECT_EQ(solver.stats().query_timeouts, solver.stats().unknown_results);
}

TEST(SolverDeadlineTest, GetValueStillProducesAValueOnTimeout) {
  ExprContext ctx;
  SolverConfig config;
  config.max_query_ms = 1;
  config.conflict_budget = 0;
  config.enable_cache = false;
  Solver solver(&ctx, config);
  std::vector<ExprRef> constraints = HostileConstraints(&ctx, 24);
  // GetValue degrades to evaluation under the partial/empty model: still a
  // concrete value (the engine concretizes with it), never a hang.
  std::optional<uint64_t> v = solver.GetValue(constraints, constraints[0]);
  EXPECT_TRUE(v.has_value());
}

TEST(SolverDeadlineTest, NoDeadlineMeansNoTimeouts) {
  ExprContext ctx;
  SolverConfig config;  // max_query_ms = 0
  Solver solver(&ctx, config);
  ExprRef x = ctx.Var(8, "x");
  EXPECT_TRUE(solver.IsSatisfiable({ctx.Eq(x, ctx.Const(3, 8))}, nullptr));
  EXPECT_EQ(solver.stats().query_timeouts, 0u);
}

// --- Model-reuse fast path ---------------------------------------------------

TEST(SolverModelReuseTest, SecondQuerySatisfiedByPriorModelSkipsSat) {
  ExprContext ctx;
  Solver solver(&ctx);
  ExprRef x = ctx.Var(32, "x");
  // First query bit-blasts and leaves a model with x == 5.
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Eq(x, ctx.Const(5, 32))));
  EXPECT_EQ(solver.stats().sat_calls, 1u);
  // x != 7 holds under x == 5: answered by evaluation, no second SAT call.
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Not(ctx.Eq(x, ctx.Const(7, 32)))));
  EXPECT_EQ(solver.stats().sat_calls, 1u);
  EXPECT_EQ(solver.stats().model_reuse_hits, 1u);
}

TEST(SolverModelReuseTest, StaleModelFallsThroughToSat) {
  ExprContext ctx;
  Solver solver(&ctx);
  ExprRef x = ctx.Var(32, "x");
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Eq(x, ctx.Const(5, 32))));
  // x == 7 is false under the cached x == 5 model but satisfiable: the reuse
  // check must not turn a reusable-model miss into an unsat answer.
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Eq(x, ctx.Const(7, 32))));
  EXPECT_EQ(solver.stats().sat_calls, 2u);
  EXPECT_EQ(solver.stats().model_reuse_hits, 0u);
}

TEST(SolverModelReuseTest, DisabledConfigNeverReuses) {
  ExprContext ctx;
  SolverConfig config;
  config.enable_model_reuse = false;
  Solver solver(&ctx, config);
  ExprRef x = ctx.Var(32, "x");
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Eq(x, ctx.Const(5, 32))));
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Not(ctx.Eq(x, ctx.Const(7, 32)))));
  EXPECT_EQ(solver.stats().sat_calls, 2u);
  EXPECT_EQ(solver.stats().model_reuse_hits, 0u);
}

TEST(SolverModelReuseTest, ModelRequestingQueriesBypassReuse) {
  // Callers that concretize from the returned model must get exactly what a
  // fresh solve produces; reuse only serves yes/no queries.
  ExprContext ctx;
  Solver solver(&ctx);
  ExprRef x = ctx.Var(32, "x");
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Eq(x, ctx.Const(5, 32))));
  Assignment model;
  ExprRef gt3 = ctx.Ult(ctx.Const(3, 32), x);
  EXPECT_TRUE(solver.IsSatisfiable({}, gt3, &model));
  EXPECT_EQ(solver.stats().model_reuse_hits, 0u);
  EXPECT_TRUE(EvalBool(gt3, model));
}

TEST(SolverStatsTest, AccumulateSumsCountersAndMaxesQueryTime) {
  SolverStats a;
  a.queries = 10;
  a.sat_calls = 4;
  a.model_reuse_hits = 2;
  a.aborted_queries = 1;
  a.shared_cache_hits = 3;
  a.shared_cache_fastpath_hits = 1;
  a.shared_cache_misses = 6;
  a.shared_cache_stores = 5;
  a.shared_cache_verify_failures = 1;
  a.max_query_wall_ms = 7.5;
  SolverStats b;
  b.queries = 3;
  b.sat_calls = 1;
  b.model_reuse_hits = 5;
  b.aborted_queries = 2;
  b.shared_cache_hits = 2;
  b.shared_cache_fastpath_hits = 4;
  b.shared_cache_misses = 1;
  b.shared_cache_stores = 2;
  b.shared_cache_verify_failures = 3;
  b.max_query_wall_ms = 2.5;
  a.Accumulate(b);
  EXPECT_EQ(a.queries, 13u);
  EXPECT_EQ(a.sat_calls, 5u);
  EXPECT_EQ(a.model_reuse_hits, 7u);
  EXPECT_EQ(a.aborted_queries, 3u);
  EXPECT_EQ(a.shared_cache_hits, 5u);
  EXPECT_EQ(a.shared_cache_fastpath_hits, 5u);
  EXPECT_EQ(a.shared_cache_misses, 7u);
  EXPECT_EQ(a.shared_cache_stores, 7u);
  EXPECT_EQ(a.shared_cache_verify_failures, 4u);
  EXPECT_DOUBLE_EQ(a.max_query_wall_ms, 7.5);  // max, not sum
}

// --- Per-solver cache collision safety ---------------------------------------

TEST(SolverCacheCollisionTest, CollidingKeysNeverServeAnotherQuerysVerdict) {
  // testing_collide_cache_keys collapses every cache key to one bucket, so
  // every query after the first is a hash collision. Entries must be trusted
  // only after the full sorted-constraint-set compare.
  ExprContext ctx;
  SolverConfig config;
  config.testing_collide_cache_keys = true;
  config.enable_model_reuse = false;  // isolate the cache
  Solver solver(&ctx, config);
  ExprRef x = ctx.Var(32, "x");
  std::vector<ExprRef> sat_set = {ctx.Eq(x, ctx.Const(1, 32))};
  std::vector<ExprRef> unsat_set = {ctx.Eq(x, ctx.Const(1, 32)),
                                    ctx.Eq(ctx.Add(x, x), ctx.Const(7, 32))};

  EXPECT_TRUE(solver.IsSatisfiable(sat_set, nullptr));
  // Collides with the cached sat entry; a key-only cache would answer "sat".
  EXPECT_FALSE(solver.IsSatisfiable(unsat_set, nullptr));
  // Both verdicts are now cached under the same key and still distinguishable.
  uint64_t sat_calls = solver.stats().sat_calls;
  EXPECT_TRUE(solver.IsSatisfiable(sat_set, nullptr));
  EXPECT_FALSE(solver.IsSatisfiable(unsat_set, nullptr));
  EXPECT_EQ(solver.stats().sat_calls, sat_calls);
  EXPECT_GE(solver.stats().cache_hits, 2u);
}

// --- Cooperative cancellation (campaign watchdog path) ----------------------

TEST(SolverAbortTest, AbortFlagTurnsSolvesIntoConservativeUnknowns) {
  ExprContext ctx;
  Solver solver(&ctx);
  std::atomic<bool> abort_flag{true};
  solver.SetAbortFlag(&abort_flag);
  ExprRef x = ctx.Var(32, "x");

  // With the flag raised the query never reaches the SAT core; it degrades to
  // "maybe satisfiable" (the same safe over-approximation as a timeout).
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Eq(x, ctx.Const(5, 32))));
  EXPECT_GE(solver.stats().aborted_queries, 1u);
  EXPECT_GE(solver.stats().unknown_results, 1u);
  EXPECT_EQ(solver.stats().sat_calls, 0u);
  uint64_t aborted = solver.stats().aborted_queries;

  // Lowering the flag restores real solving.
  abort_flag.store(false);
  EXPECT_TRUE(solver.IsSatisfiable({}, ctx.Eq(x, ctx.Const(5, 32))));
  EXPECT_EQ(solver.stats().aborted_queries, aborted);
  EXPECT_GE(solver.stats().sat_calls, 1u);
}

}  // namespace
}  // namespace ddt
