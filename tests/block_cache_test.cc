// Translation-cache tests: decode parity against the byte-wise path, block
// structure, the engine write barrier, and the full-corpus differential run
// (cached execution must be instruction-for-instruction identical to the
// original interpreter).
#include <gtest/gtest.h>

#include <memory>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/vm/assembler.h"
#include "src/vm/block_cache.h"

namespace ddt {
namespace {

PciDescriptor TestPci() {
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  return pci;
}

// --- decode parity ---------------------------------------------------------

TEST(BlockCacheTest, LookupMatchesByteWiseDecodeAcrossCorpus) {
  for (const CorpusDriver& driver : Corpus()) {
    const std::vector<uint8_t>& code = driver.image.code;
    const uint32_t base = 0x10000;
    BlockCache cache(code.data(), code.size(), base);
    size_t slots = code.size() / kInstructionSize;
    for (size_t i = 0; i < slots; ++i) {
      uint32_t pc = base + static_cast<uint32_t>(i * kInstructionSize);
      std::optional<Instruction> reference =
          DecodeInstruction(code.data() + i * kInstructionSize);
      const Instruction* cached = cache.Lookup(pc);
      if (!reference.has_value()) {
        EXPECT_EQ(cached, nullptr) << driver.name << " slot " << i;
        continue;
      }
      ASSERT_NE(cached, nullptr) << driver.name << " slot " << i;
      EXPECT_EQ(cached->opcode, reference->opcode);
      EXPECT_EQ(cached->rd, reference->rd);
      EXPECT_EQ(cached->ra, reference->ra);
      EXPECT_EQ(cached->rb, reference->rb);
      EXPECT_EQ(cached->imm, reference->imm);
    }
    // Every decoded instruction is accounted to exactly one block.
    EXPECT_GT(cache.stats().blocks_decoded, 0u);
  }
}

TEST(BlockCacheTest, RejectsMisalignedAndOutOfRangePcs) {
  // mov r0, r0 (any decodable instruction works).
  std::vector<uint8_t> code(4 * kInstructionSize, 0);
  BlockCache probe(code.data(), code.size(), 0x1000);
  // Offset 0 decodes or not depending on the zero encoding; the point here is
  // range/alignment handling, which must not read memory at all.
  EXPECT_EQ(probe.Lookup(0x0FFC), nullptr);              // below base
  EXPECT_EQ(probe.Lookup(0x1004), nullptr);              // misaligned
  EXPECT_EQ(probe.Lookup(0x1000 + 4 * 8), nullptr);      // one past the end
  EXPECT_EQ(probe.Lookup(0xFFFFFFF8), nullptr);          // far out of range
}

TEST(BlockCacheTest, BlockBoundariesFollowTerminators) {
  Result<AssembledDriver> assembled = Assemble(R"(
  .driver "blocks_toy"
  .entry driver_entry
  .code
  .func driver_entry
    movi r1, 1
    movi r2, 2
    bz r1, skip
    movi r3, 3
  skip:
    ret
)");
  ASSERT_TRUE(assembled.ok()) << assembled.error();
  const std::vector<uint8_t>& code = assembled.value().image.code;
  const uint32_t base = 0;
  BlockCache cache(code.data(), code.size(), base);

  // Entry block: movi, movi, bz — three instructions, two successors
  // (branch target and fall-through).
  const BlockCache::DecodedBlock* entry = cache.BlockAt(base);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->NumInstructions(), 3u);
  ASSERT_EQ(entry->successors.size(), 2u);
  uint32_t fall = entry->end;
  EXPECT_EQ(entry->successors[1], fall);
  EXPECT_FALSE(entry->has_indirect_successor);

  // Fall-through block: movi r3 then falls into `skip` — but straight-line
  // decode runs through to the ret (a terminator), since `skip:` is only a
  // label, not a barrier. The ret makes it indirect.
  const BlockCache::DecodedBlock* next = cache.BlockAt(fall);
  ASSERT_NE(next, nullptr);
  EXPECT_TRUE(next->has_indirect_successor);
  EXPECT_TRUE(next->successors.empty());
}

TEST(BlockCacheTest, HitCountingAndIdempotentLookups) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  const std::vector<uint8_t>& code = driver.image.code;
  BlockCache cache(code.data(), code.size(), 0);
  const Instruction* first = cache.Lookup(0);
  ASSERT_NE(first, nullptr);
  uint64_t decoded = cache.stats().instructions_decoded;
  const Instruction* again = cache.Lookup(0);
  EXPECT_EQ(first, again);  // dense storage: stable addresses
  EXPECT_EQ(cache.stats().instructions_decoded, decoded);  // no re-decode
  EXPECT_GE(cache.stats().hits, 1u);
}

// --- write barrier ---------------------------------------------------------

DdtResult RunBarrierToy(bool enable_cache, bool default_checkers) {
  std::string source = R"(
  .driver "barrier_toy"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    la r1, ep_init
    movi r2, 0x90
    st32 [r1+0], r2        ; overwrite own code
    movi r0, 0
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  Result<AssembledDriver> assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.error();
  DdtConfig config;
  config.engine.max_instructions = 200000;
  config.engine.enable_block_cache = enable_cache;
  config.use_default_checkers = default_checkers;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(assembled.value().image, TestPci());
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.take();
}

TEST(WriteBarrierTest, CodeWriteReportedEvenWithoutCheckers) {
  // The memory checker normally reports driver code writes; the barrier must
  // hold on its own so the decode-once invariant never depends on checker
  // configuration.
  for (bool enable_cache : {false, true}) {
    DdtResult result = RunBarrierToy(enable_cache, /*default_checkers=*/false);
    bool found = false;
    for (const Bug& bug : result.bugs) {
      if (bug.type == BugType::kMemoryCorruption &&
          bug.title.find("immutable driver code") != std::string::npos) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "cache=" << enable_cache;
  }
}

TEST(WriteBarrierTest, CheckerStillReportsFirstWithDefaultCheckers) {
  DdtResult result = RunBarrierToy(/*enable_cache=*/true, /*default_checkers=*/true);
  bool checker_bug = false;
  for (const Bug& bug : result.bugs) {
    if (bug.title.find("code segment") != std::string::npos) {
      checker_bug = true;
    }
  }
  EXPECT_TRUE(checker_bug);
}

// --- full-corpus differential run ------------------------------------------

// Strips expression pointers (context-specific) so traces compare by value.
struct FlatEvent {
  TraceEvent::Kind kind;
  uint32_t pc, addr, value, a, b;
  uint8_t size;
  bool value_symbolic;
  bool operator==(const FlatEvent& o) const {
    return kind == o.kind && pc == o.pc && addr == o.addr && value == o.value &&
           a == o.a && b == o.b && size == o.size && value_symbolic == o.value_symbolic;
  }
};

std::vector<FlatEvent> Flatten(const std::vector<TraceEvent>& events) {
  std::vector<FlatEvent> out;
  out.reserve(events.size());
  for (const TraceEvent& e : events) {
    out.push_back(FlatEvent{e.kind, e.pc, e.addr, e.value, e.a, e.b, e.size, e.value_symbolic});
  }
  return out;
}

TEST(BlockCacheDifferentialTest, CachedExecutionIdenticalAcrossCorpus) {
  for (const CorpusDriver& driver : Corpus()) {
    DdtResult results[2];
    std::unique_ptr<Ddt> ddts[2];  // bugs reference engine-owned expr storage
    for (int cached = 0; cached < 2; ++cached) {
      DdtConfig config;
      config.engine.max_instructions = 60000;
      config.engine.max_wall_ms = 3'600'000;  // never hit: budget cuts are instruction-determined
      config.engine.enable_block_cache = cached == 1;
      ddts[cached] = std::make_unique<Ddt>(config);
      Result<DdtResult> r = ddts[cached]->TestDriver(driver.image, driver.pci);
      ASSERT_TRUE(r.ok()) << driver.name << ": " << r.status().message();
      results[cached] = r.take();
    }
    const DdtResult& plain = results[0];
    const DdtResult& fast = results[1];

    EXPECT_EQ(plain.stats.instructions, fast.stats.instructions) << driver.name;
    EXPECT_EQ(plain.stats.forks, fast.stats.forks) << driver.name;
    EXPECT_EQ(plain.covered_blocks, fast.covered_blocks) << driver.name;
    ASSERT_EQ(plain.bugs.size(), fast.bugs.size()) << driver.name;
    for (size_t i = 0; i < plain.bugs.size(); ++i) {
      EXPECT_EQ(plain.bugs[i].Row(), fast.bugs[i].Row()) << driver.name;
      EXPECT_EQ(plain.bugs[i].pc, fast.bugs[i].pc);
      EXPECT_TRUE(Flatten(plain.bugs[i].trace) == Flatten(fast.bugs[i].trace))
          << driver.name << " bug " << i << ": traces diverge";
    }
    // The cached run actually used the cache.
    EXPECT_GT(fast.stats.blocks_decoded, 0u) << driver.name;
    EXPECT_GT(fast.stats.block_cache_hits, 0u) << driver.name;
    EXPECT_EQ(plain.stats.blocks_decoded, 0u) << driver.name;
  }
}

TEST(EngineStatsTest, AccumulateSumsCountersAndMaxesHighWater) {
  EngineStats a;
  a.instructions = 100;
  a.forks = 2;
  a.max_live_states = 5;
  a.peak_state_bytes = 1000;
  a.wall_ms = 10;
  EngineStats b;
  b.instructions = 50;
  b.forks = 1;
  b.max_live_states = 9;
  b.peak_state_bytes = 400;
  b.wall_ms = 5;
  a.Accumulate(b);
  EXPECT_EQ(a.instructions, 150u);
  EXPECT_EQ(a.forks, 3u);
  EXPECT_EQ(a.max_live_states, 9u);    // max, not sum
  EXPECT_EQ(a.peak_state_bytes, 1000u);  // max, not sum
  EXPECT_DOUBLE_EQ(a.wall_ms, 15.0);
}

}  // namespace
}  // namespace ddt
