// Unit tests for the annotation machinery (§3.4): the registry of
// annotations, the standard MiniOS set's concrete-to-symbolic conversions
// and failure alternatives, driven through the fake KernelContext.
#include "src/annotations/annotation.h"

#include <gtest/gtest.h>

#include <cstring>

#include "src/expr/eval.h"
#include "src/kernel/kernel_api.h"
#include "tests/fake_kernel_context.h"

namespace ddt {
namespace {

TEST(AnnotationSetTest, RegistryAndLookup) {
  class Dummy : public ApiAnnotation {
   public:
    std::string function() const override { return "MosAllocatePool"; }
  };
  AnnotationSet set;
  EXPECT_TRUE(set.empty());
  set.Add(std::make_shared<Dummy>());
  set.Add(std::make_shared<Dummy>());
  EXPECT_EQ(set.For("MosAllocatePool").size(), 2u);
  EXPECT_TRUE(set.For("MosFreePool").empty());
  EXPECT_EQ(set.size(), 2u);
}

TEST(AnnotationSetTest, MergeCombines) {
  class A : public ApiAnnotation {
   public:
    std::string function() const override { return "X"; }
  };
  class B : public ApiAnnotation {
   public:
    std::string function() const override { return "Y"; }
  };
  AnnotationSet one;
  one.Add(std::make_shared<A>());
  AnnotationSet two;
  two.Add(std::make_shared<B>());
  one.Merge(two);
  EXPECT_EQ(one.For("X").size(), 1u);
  EXPECT_EQ(one.For("Y").size(), 1u);
}

TEST(AnnotationSetTest, EntryKeyNaming) {
  EXPECT_EQ(EntryAnnotationKey(kEpQueryInfo), "entry:QueryInformation");
  EXPECT_EQ(EntryAnnotationKey(kEpInitialize), "entry:Initialize");
}

TEST(StandardAnnotationsTest, CoversTheExpectedFunctions) {
  AnnotationSet set = AnnotationSet::Standard();
  EXPECT_FALSE(set.For("MosReadConfiguration").empty());
  EXPECT_FALSE(set.For("MosAllocatePool").empty());
  EXPECT_FALSE(set.For("MosAllocatePoolWithTag").empty());
  EXPECT_FALSE(set.For("MosAllocateMemoryWithTag").empty());
  EXPECT_FALSE(set.For("MosNewInterruptSync").empty());
  EXPECT_FALSE(set.For("MosReadPciConfig").empty());
  EXPECT_FALSE(set.For(EntryAnnotationKey(kEpQueryInfo)).empty());
  EXPECT_FALSE(set.For(EntryAnnotationKey(kEpSetInfo)).empty());
  EXPECT_FALSE(set.For(EntryAnnotationKey(kEpSend)).empty());
  EXPECT_FALSE(set.For(EntryAnnotationKey(kEpDiag)).empty());
}

// The paper's worked example: a successful integer registry read gets a
// fresh non-negative symbolic value planted in the parameter block.
TEST(StandardAnnotationsTest, ReadConfigurationPlantsSymbolicInteger) {
  FakeKernelContext kc;
  kc.kernel().registry["MaximumMulticastList"] = 8;
  uint32_t out_ptr = kDriverImageBase + 0x1100;
  kc.Call("MosOpenConfiguration", {out_ptr});
  uint32_t handle = kc.ReadGuestU32(out_ptr);
  uint32_t name_ptr = kDriverImageBase + 0x1200;
  const char* name = "MaximumMulticastList";
  for (size_t i = 0; i <= strlen(name); ++i) {
    kc.WriteGuestU8(name_ptr + static_cast<uint32_t>(i), static_cast<uint8_t>(name[i]));
  }
  uint32_t param_ptr = kDriverImageBase + 0x1300;
  kc.Call("MosReadConfiguration", {handle, name_ptr, param_ptr});
  ASSERT_EQ(kc.ReturnedU32(), kStatusSuccess);
  uint32_t vars_before = kc.expr()->num_vars();

  AnnotationSet set = AnnotationSet::Standard();
  AnnotationOutcome outcome;
  for (const auto& annotation : set.For("MosReadConfiguration")) {
    AnnotationOutcome one = annotation->OnReturn(kc);
    outcome.alternatives.insert(outcome.alternatives.end(), one.alternatives.begin(),
                                one.alternatives.end());
  }
  // A fresh symbolic variable was created with the registry origin...
  ASSERT_GT(kc.expr()->num_vars(), vars_before);
  const VarInfo& info = kc.expr()->var_info(vars_before);
  EXPECT_EQ(info.origin.source, VarOrigin::Source::kRegistry);
  EXPECT_EQ(info.origin.label, "MaximumMulticastList");
  // ...and no fork alternatives are requested by this hint.
  EXPECT_TRUE(outcome.alternatives.empty());
  // The fake context resolves symbolic writes to concrete 0; the point here
  // is that WriteGuestValue was invoked for param+4 (the IntegerData slot).
}

TEST(StandardAnnotationsTest, ReadConfigurationIgnoresFailedReads) {
  FakeKernelContext kc;
  kc.SetArgs({0x7000, 0, 0});
  kc.SetReturn(Value::Concrete(kStatusNotFound));
  uint32_t vars_before = kc.expr()->num_vars();
  AnnotationSet set = AnnotationSet::Standard();
  for (const auto& annotation : set.For("MosReadConfiguration")) {
    annotation->OnReturn(kc);
  }
  EXPECT_EQ(kc.expr()->num_vars(), vars_before);  // nothing planted
}

// "A memory allocation function can either return a valid pointer or a null
// pointer, so the annotation would instruct DDT to try both."
TEST(StandardAnnotationsTest, AllocationFailureAlternativeUndoesTheAllocation) {
  FakeKernelContext kc;
  kc.Call("MosAllocatePool", {64});
  uint32_t addr = kc.ReturnedU32();
  ASSERT_NE(addr, 0u);

  AnnotationSet set = AnnotationSet::Standard();
  AnnotationOutcome outcome;
  for (const auto& annotation : set.For("MosAllocatePool")) {
    AnnotationOutcome one = annotation->OnReturn(kc);
    outcome.alternatives.insert(outcome.alternatives.end(), one.alternatives.begin(),
                                one.alternatives.end());
  }
  ASSERT_EQ(outcome.alternatives.size(), 1u);
  EXPECT_NE(outcome.alternatives[0].label.find("fails"), std::string::npos);

  // Applying the alternative (on what would be the forked state) removes the
  // allocation record and nulls the return value.
  outcome.alternatives[0].apply(kc);
  EXPECT_EQ(kc.ReturnedU32(), 0u);
  EXPECT_EQ(kc.kernel().FindAllocation(addr), nullptr);
}

TEST(StandardAnnotationsTest, NoFailureAlternativeWhenAllocationAlreadyFailed) {
  FakeKernelContext kc;
  kc.SetArgs({64});
  kc.SetReturn(Value::Concrete(0));  // the call itself returned NULL
  AnnotationSet set = AnnotationSet::Standard();
  for (const auto& annotation : set.For("MosAllocatePool")) {
    EXPECT_TRUE(annotation->OnReturn(kc).alternatives.empty());
  }
}

TEST(StandardAnnotationsTest, StatusAllocFailureScrubsOutParam) {
  FakeKernelContext kc;
  uint32_t out_ptr = kDriverImageBase + 0x1100;
  kc.Call("MosNewInterruptSync", {out_ptr});
  ASSERT_EQ(kc.ReturnedU32(), kStatusSuccess);
  uint32_t handle = kc.ReadGuestU32(out_ptr);
  ASSERT_NE(handle, 0u);

  AnnotationSet set = AnnotationSet::Standard();
  AnnotationOutcome outcome;
  for (const auto& annotation : set.For("MosNewInterruptSync")) {
    AnnotationOutcome one = annotation->OnReturn(kc);
    outcome.alternatives.insert(outcome.alternatives.end(), one.alternatives.begin(),
                                one.alternatives.end());
  }
  ASSERT_EQ(outcome.alternatives.size(), 1u);
  outcome.alternatives[0].apply(kc);
  EXPECT_EQ(kc.ReturnedU32(), kStatusInsufficientResources);
  EXPECT_EQ(kc.ReadGuestU32(out_ptr), 0u);               // out param scrubbed
  EXPECT_EQ(kc.kernel().FindAllocation(handle), nullptr);  // bookkeeping undone
}

TEST(StandardAnnotationsTest, SymbolicOidRewritesArgumentZero) {
  FakeKernelContext kc;
  kc.SetArgs({0x00010106, 0x1000, 64});
  AnnotationSet set = AnnotationSet::Standard();
  for (const auto& annotation : set.For(EntryAnnotationKey(kEpQueryInfo))) {
    annotation->OnCall(kc);
  }
  // The fake context stores Values verbatim; the OID argument must now be a
  // symbolic expression with the entry-arg origin.
  Value oid = kc.Arg(0);
  ASSERT_TRUE(oid.IsSymbolic());
  std::vector<uint32_t> vars;
  CollectVars(oid.symbolic(), &vars);
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(kc.expr()->var_info(vars[0]).origin.source, VarOrigin::Source::kEntryArg);
}

TEST(StandardAnnotationsTest, SymbolicLengthBoundedByOriginal) {
  // §7: "the concrete packet size must be replaced by a symbolic value
  // constrained not to be greater than the original value".
  class ConstraintRecorder : public FakeKernelContext {
   public:
    void AddConstraint(ExprRef constraint) override { constraints.push_back(constraint); }
    std::vector<ExprRef> constraints;
  };
  ConstraintRecorder kc;
  kc.SetArgs({0x1000, 128});
  AnnotationSet set = AnnotationSet::Standard();
  for (const auto& annotation : set.For(EntryAnnotationKey(kEpWrite))) {
    annotation->OnCall(kc);
  }
  Value len = kc.Arg(1);
  ASSERT_TRUE(len.IsSymbolic());
  ASSERT_EQ(kc.constraints.size(), 1u);
  // The constraint must be (len <= 128): check it rejects 129 and admits 128.
  std::vector<uint32_t> vars;
  CollectVars(kc.constraints[0], &vars);
  ASSERT_EQ(vars.size(), 1u);
  Assignment ok_case;
  ok_case.Set(vars[0], 128);
  Assignment bad_case;
  bad_case.Set(vars[0], 129);
  EXPECT_TRUE(EvalBool(kc.constraints[0], ok_case));
  EXPECT_FALSE(EvalBool(kc.constraints[0], bad_case));
}

}  // namespace
}  // namespace ddt
