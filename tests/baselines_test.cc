// Tests for the two comparison baselines: the SDV-style static analyzer and
// the Driver Verifier stress harness, including the §5.1 experiment shapes
// (SDV finds 8/8 sample bugs; on the synthetic variant it finds 2/5 plus one
// false positive, while DDT finds 5/5 with none).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/baselines/driver_verifier.h"
#include "src/baselines/sdv.h"
#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

AssembledDriver AssembleSample(bool synthetic) {
  Result<AssembledDriver> result = Assemble(SdvSampleSource(synthetic));
  EXPECT_TRUE(result.ok()) << result.error();
  return result.take();
}

std::map<std::string, int> RuleCounts(const SdvResult& result) {
  std::map<std::string, int> counts;
  for (const SdvFinding& finding : result.findings) {
    counts[finding.rule] += 1;
  }
  return counts;
}

TEST(SdvBaselineTest, FindsTheEightSampleBugs) {
  AssembledDriver driver = AssembleSample(/*synthetic=*/false);
  SdvResult result = RunSdvAnalysis(driver.image, driver.functions);
  std::map<std::string, int> counts = RuleCounts(result);
  EXPECT_EQ(counts["release-unacquired"], 1);
  EXPECT_EQ(counts["double-acquire"], 1);
  EXPECT_EQ(counts["wrong-release-variant"], 2);
  EXPECT_EQ(counts["lock-held-at-return"], 2);
  EXPECT_EQ(counts["pageable-at-raised-irql"], 1);
  EXPECT_EQ(counts["alloc-above-dispatch"], 1);
  EXPECT_EQ(result.findings.size(), 8u) << [&] {
    std::string all;
    for (const SdvFinding& f : result.findings) {
      all += f.rule + ": " + f.message + "\n";
    }
    return all;
  }();
}

TEST(SdvBaselineTest, SyntheticVariantTwoOfFivePlusOneFalsePositive) {
  AssembledDriver driver = AssembleSample(/*synthetic=*/true);
  SdvResult result = RunSdvAnalysis(driver.image, driver.functions);
  std::map<std::string, int> counts = RuleCounts(result);
  // Found synthetic bugs: the forgotten release (3rd lock-held-at-return)
  // and the wrong-IRQL allocation (2nd alloc-above-dispatch).
  EXPECT_EQ(counts["lock-held-at-return"], 3);
  EXPECT_EQ(counts["alloc-above-dispatch"], 2);
  // The false positive: sdv14's guarded acquire yields a spurious
  // release-unacquired (in addition to sdv0's genuine one).
  EXPECT_EQ(counts["release-unacquired"], 2);
  // Missed: AB/BA deadlock, out-of-order release, extra release through a
  // memory-held lock pointer — no rules fire for them.
  EXPECT_EQ(result.findings.size(), 11u);
}

TEST(SdvBaselineTest, PathEnumerationIsExpensive) {
  AssembledDriver driver = AssembleSample(/*synthetic=*/true);
  SdvResult result = RunSdvAnalysis(driver.image, driver.functions);
  // The branchy helper farm forces exhaustive path enumeration (this is the
  // §5.1 cost asymmetry against DDT's one-concrete-path-per-input dynamic
  // execution).
  EXPECT_GT(result.paths_explored, 10000u);
  EXPECT_GT(result.abstract_steps, 100000u);
}

DdtResult RunDdtOnSample(bool synthetic) {
  DdtConfig config;
  config.engine.max_instructions = 3'000'000;
  config.engine.max_states = 1024;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(SdvSampleImage(synthetic), SdvSamplePci());
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.take();
}

TEST(SdvBaselineTest, DdtFindsAllEightSampleBugs) {
  DdtResult result = RunDdtOnSample(/*synthetic=*/false);
  std::vector<ExpectedBug> expected = SdvSampleExpected(/*synthetic=*/false);
  std::set<size_t> used;
  for (const ExpectedBug& want : expected) {
    bool matched = false;
    for (size_t i = 0; i < result.bugs.size(); ++i) {
      if (used.count(i) == 0 && result.bugs[i].type == want.type &&
          result.bugs[i].title.find(want.keyword) != std::string::npos) {
        used.insert(i);
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "missing: " << want.description << "\n"
                         << result.FormatReport("sdv_sample");
  }
  EXPECT_EQ(used.size(), result.bugs.size()) << "unexpected extra findings";
}

TEST(SdvBaselineTest, DdtFindsAllFiveSyntheticBugsWithNoFalsePositive) {
  DdtResult result = RunDdtOnSample(/*synthetic=*/true);
  std::vector<ExpectedBug> expected = SdvSampleExpected(/*synthetic=*/true);
  ASSERT_EQ(expected.size(), 13u);
  std::set<size_t> used;
  for (const ExpectedBug& want : expected) {
    bool matched = false;
    for (size_t i = 0; i < result.bugs.size(); ++i) {
      if (used.count(i) == 0 && result.bugs[i].type == want.type &&
          result.bugs[i].title.find(want.keyword) != std::string::npos) {
        used.insert(i);
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "missing: " << want.description << "\n"
                         << result.FormatReport("sdv_sample");
  }
  for (size_t i = 0; i < result.bugs.size(); ++i) {
    EXPECT_TRUE(used.count(i) != 0)
        << "false positive from DDT: " << result.bugs[i].Format(8);
  }
}

TEST(DriverVerifierBaselineTest, ConcreteStressMissesTheTable2Bugs) {
  // §5.1: the Driver Verifier running concretely found none of the 14 bugs.
  // Detection power is identical; reachability is not. With a modest stress
  // budget the concrete runs find strictly fewer bugs than DDT on every
  // driver, and none of the annotation-dependent ones.
  size_t stress_total = 0;
  size_t ddt_total = 0;
  for (const CorpusDriver& driver : Corpus()) {
    StressConfig stress;
    stress.iterations = 5;
    StressResult stress_result = RunDriverVerifierStress(driver.image, driver.pci, stress);
    stress_total += stress_result.bugs.size();
    ddt_total += driver.expected.size();
    EXPECT_LT(stress_result.bugs.size(), driver.expected.size())
        << driver.name << ": stress found as many bugs as DDT?";
  }
  EXPECT_LT(stress_total, ddt_total / 2)
      << "stress testing should find far fewer than DDT's 14";
}

TEST(DriverVerifierBaselineTest, StressRunsAreDeterministicPerSeed) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  StressConfig config;
  config.iterations = 3;
  StressResult a = RunDriverVerifierStress(driver.image, driver.pci, config);
  StressResult b = RunDriverVerifierStress(driver.image, driver.pci, config);
  EXPECT_EQ(a.bugs.size(), b.bugs.size());
  EXPECT_EQ(a.total_instructions, b.total_instructions);
}


TEST(DriverVerifierBaselineTest, LowResourcesSimulationFindsSomeAllocationBugs) {
  // The real Driver Verifier has a "low resources simulation" mode that
  // randomly fails allocations. With it, concrete stress CAN stumble into
  // allocation-failure bugs — but only samples failure points, while DDT
  // enumerates them. The pcnet driver has two failure-path leaks.
  const ddt::CorpusDriver& driver = ddt::CorpusDriverByName("pcnet");
  ddt::StressConfig config;
  config.iterations = 40;
  config.simulate_low_resources = true;
  ddt::StressResult result = ddt::RunDriverVerifierStress(driver.image, driver.pci, config);
  EXPECT_GE(result.bugs.size(), 1u)
      << "low-resources simulation should hit at least one failure-path leak";
  // Still strictly weaker than DDT on the same driver (2 seeded bugs, and
  // DV stops at the first bug per run while sampling randomly).
  EXPECT_LE(result.bugs.size(), driver.expected.size());
}

}  // namespace
}  // namespace ddt
