// Tests for the automated bug analysis (§3.6), including the end-to-end
// device-specification verdict on real engine-produced bugs.
#include "src/core/analysis.h"

#include <gtest/gtest.h>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

SolvedInput HwInput(uint32_t offset, uint64_t seq, uint64_t value) {
  SolvedInput input;
  input.var_name = "hw";
  input.origin.source = VarOrigin::Source::kHardwareRead;
  input.origin.aux = offset;
  input.origin.seq = seq;
  input.value = value;
  return input;
}

TEST(AnalysisTest, LowMemoryClassification) {
  Bug bug;
  bug.type = BugType::kSegfault;
  bug.alternatives.emplace_back(3, "MosAllocatePool-fails");
  BugAnalysis analysis = AnalyzeBug(bug);
  EXPECT_TRUE(analysis.allocation_failure_dependent);
  EXPECT_NE(analysis.summary.find("low-memory"), std::string::npos);
}

TEST(AnalysisTest, LeakInLowMemoryWordsItAsLeak) {
  Bug bug;
  bug.type = BugType::kResourceLeak;
  bug.alternatives.emplace_back(1, "MosAllocatePoolWithTag-fails");
  BugAnalysis analysis = AnalyzeBug(bug);
  EXPECT_NE(analysis.summary.find("leaks resources"), std::string::npos);
}

TEST(AnalysisTest, InterruptInterleavingClassification) {
  Bug bug;
  bug.type = BugType::kRaceCondition;
  bug.interrupt_schedule = {14};
  BugAnalysis analysis = AnalyzeBug(bug);
  EXPECT_TRUE(analysis.interrupt_dependent);
  EXPECT_NE(analysis.summary.find("interrupt interleaving"), std::string::npos);
  bool mentions_crossing = false;
  for (const std::string& line : analysis.provenance) {
    mentions_crossing |= line.find("crossing(s) 14") != std::string::npos;
  }
  EXPECT_TRUE(mentions_crossing);
}

TEST(AnalysisTest, RegistryClassification) {
  Bug bug;
  bug.type = BugType::kMemoryCorruption;
  SolvedInput input;
  input.origin.source = VarOrigin::Source::kRegistry;
  input.origin.label = "MaximumMulticastList";
  input.value = 4096;
  bug.inputs.push_back(input);
  BugAnalysis analysis = AnalyzeBug(bug);
  EXPECT_TRUE(analysis.registry_dependent);
  EXPECT_NE(analysis.summary.find("registry"), std::string::npos);
}

TEST(AnalysisTest, SpecViolationMeansHardwareMalfunction) {
  Bug bug;
  bug.type = BugType::kMemoryCorruption;
  bug.inputs.push_back(HwInput(/*offset=*/4, /*seq=*/0, /*value=*/0x80));

  DeviceSpec spec;
  spec.registers[4] = RegisterSpec{0, 15, 0xFF};  // register +4 returns 0..15
  BugAnalysis analysis = AnalyzeBug(bug, &spec);
  EXPECT_TRUE(analysis.only_with_hardware_malfunction);
  EXPECT_EQ(analysis.spec_violations, 1u);
  EXPECT_NE(analysis.summary.find("malfunctions"), std::string::npos);
}

TEST(AnalysisTest, InSpecDeviceInputIsAGenuineDriverDefect) {
  Bug bug;
  bug.type = BugType::kSegfault;
  bug.inputs.push_back(HwInput(4, 0, 7));
  DeviceSpec spec;
  spec.registers[4] = RegisterSpec{0, 15, 0xFF};
  BugAnalysis analysis = AnalyzeBug(bug, &spec);
  EXPECT_FALSE(analysis.only_with_hardware_malfunction);
  EXPECT_NE(analysis.summary.find("genuine driver defect"), std::string::npos);
}

TEST(AnalysisTest, MixedInputsAreNotBlamedOnHardware) {
  Bug bug;
  bug.inputs.push_back(HwInput(4, 0, 0x80));  // violates
  bug.inputs.push_back(HwInput(8, 1, 1));     // fine
  DeviceSpec spec;
  spec.registers[4] = RegisterSpec{0, 15, 0xFF};
  spec.registers[8] = RegisterSpec{0, 1, 0x1};
  BugAnalysis analysis = AnalyzeBug(bug, &spec);
  EXPECT_FALSE(analysis.only_with_hardware_malfunction);
  EXPECT_EQ(analysis.spec_violations, 1u);
}

// End to end: the rtl8029 hardware-index bug analyzed against a spec that
// documents the register as small — the analysis must conclude "hardware
// malfunction" territory for the OOB value, matching the paper's RTL8029
// discussion ("one was related to improper hardware behavior").
TEST(AnalysisTest, EndToEndOnEngineProducedBug) {
  const char* source = R"(
    .driver "spec_toy"
    .entry driver_entry
    .code
    .func driver_entry
      la r0, entry_table
      kcall MosRegisterDriver
      ret
    .func ep_init
      movi r0, 0
      kcall MosMapIoSpace
      ld32 r1, [r0+4]
      la r2, table
      shli r3, r1, 2
      add r2, r2, r3
      st32 [r2+0], r1         ; unchecked device-provided index
      movi r0, 0
      ret
    .data
    entry_table:
      .word ep_init
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
    table:
      .space 32
  )";
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  DdtConfig config;
  config.engine.max_instructions = 100000;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(Assemble(source).value().image, pci);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().bugs.empty());

  // The vendor documents register +4 as returning 0..7 (fits the table).
  DeviceSpec spec;
  spec.registers[4] = RegisterSpec{0, 7, 0xFFFFFFFF};
  BugAnalysis analysis = AnalyzeBug(result.value().bugs.front(), &spec);
  EXPECT_TRUE(analysis.device_input_dependent);
  EXPECT_TRUE(analysis.only_with_hardware_malfunction)
      << "the OOB index requires a register value outside the documented 0..7";
}

}  // namespace
}  // namespace ddt
