// Worker-pool tests: completion, Wait() semantics, reuse, and destructor
// drain. These run under TSan in CI (the pool is the only new concurrency
// primitive the parallel campaign scheduler introduces).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/support/thread_pool.h"

namespace ddt {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitBlocksUntilInFlightTasksFinish) {
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  pool.Submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(done.load());
}

TEST(ThreadPoolTest, ReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count, i] {
        if (i == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        ++count;
      });
    }
    // No Wait(): the destructor must finish everything before joining.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelSlotWritesAreIndependent) {
  // The campaign scheduler's usage pattern: workers write into pre-sized
  // slots, the caller reads after Wait().
  ThreadPool pool(4);
  std::vector<int> slots(64, 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    pool.Submit([&slots, i] { slots[i] = static_cast<int>(i) * 3; });
  }
  pool.Wait();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, CapturesTaskExceptionsAndKeepsWorking) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  // The throwing task neither killed its worker nor poisoned the queue.
  EXPECT_EQ(count.load(), 10);

  std::vector<std::exception_ptr> errors = pool.TakeExceptions();
  ASSERT_EQ(errors.size(), 1u);
  try {
    std::rethrow_exception(errors[0]);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Take drains: a second call reports nothing.
  EXPECT_TRUE(pool.TakeExceptions().empty());
}

}  // namespace
}  // namespace ddt
