// Targeted tests for the individual dynamic checkers (§3.1.1), each driven
// by a minimal guest driver that violates exactly one rule.
#include <gtest/gtest.h>

#include "src/core/ddt.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

PciDescriptor TestPci() {
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  return pci;
}

DdtResult RunCheckerToy(const std::string& body_and_data, DdtConfig config = DdtConfig()) {
  std::string source = R"(
  .driver "checker_toy"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
)" + body_and_data;
  Result<AssembledDriver> assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.error();
  config.engine.max_instructions = 200000;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(assembled.value().image, TestPci());
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.take();
}

constexpr const char* kTableOnlyInit = R"(
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

const Bug* FindByKeyword(const DdtResult& result, const std::string& keyword) {
  for (const Bug& bug : result.bugs) {
    if (bug.title.find(keyword) != std::string::npos) {
      return &bug;
    }
  }
  return nullptr;
}

// --- memory checker -----------------------------------------------------------

TEST(MemoryCheckerTest, WriteToCodeSegmentIsCorruption) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    la r1, ep_init
    movi r2, 0x90
    st32 [r1+0], r2        ; overwrite own code
    movi r0, 0
    ret
)") + kTableOnlyInit);
  const Bug* bug = FindByKeyword(result, "code segment");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kMemoryCorruption);
}

TEST(MemoryCheckerTest, BelowStackPointerAccessFlagged) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    st32 [sp-16], r1       ; red-zone write: an interrupt would clobber it
    movi r0, 0
    ret
)") + kTableOnlyInit);
  const Bug* bug = FindByKeyword(result, "below the stack pointer");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kMemoryCorruption);
}

TEST(MemoryCheckerTest, UseAfterFreeDetected) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    push {r4, lr}
    movi r0, 64
    kcall MosAllocatePool
    mov r4, r0
    bz r4, done
    mov r0, r4
    kcall MosFreePool
    ld32 r1, [r4+0]        ; read after free
  done:
    movi r0, 0
    pop {r4, lr}
    ret
)") + kTableOnlyInit);
  const Bug* bug = FindByKeyword(result, "use-after-free");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kSegfault);
}

TEST(MemoryCheckerTest, HeapOverflowAtAllocationEnd) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    push {r4, lr}
    movi r0, 62            ; 62-byte allocation
    kcall MosAllocatePool
    mov r4, r0
    bz r4, done
    movi r1, 1
    st32 [r4+60], r1       ; 4-byte write at +60 crosses the 62-byte end
  done:
    movi r0, 0
    pop {r4, lr}
    ret
)") + kTableOnlyInit);
  const Bug* bug = FindByKeyword(result, "heap overflow");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kMemoryCorruption);
}

TEST(MemoryCheckerTest, StackAccessAboveSpIsFine) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    subi sp, sp, 16
    movi r1, 5
    st32 [sp+4], r1
    ld32 r2, [sp+4]
    addi sp, sp, 16
    movi r0, 0
    ret
)") + kTableOnlyInit);
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().Format(8);
}

// --- lock checker ----------------------------------------------------------------

TEST(LockCheckerTest, ForgottenReleaseAtEntryExit) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    push lr
    la r0, lock
    kcall MosAcquireSpinLock
    movi r0, 0
    pop lr
    ret
  .data
  lock:
    .space 4
)") + R"(
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  const Bug* bug = FindByKeyword(result, "still held");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kApiMisuse);
}

TEST(LockCheckerTest, OutOfOrderReleaseFlagged) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    push lr
    la r0, lock_a
    kcall MosAcquireSpinLock
    la r0, lock_b
    kcall MosAcquireSpinLock
    la r0, lock_a
    kcall MosReleaseSpinLock     ; non-LIFO
    la r0, lock_b
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret
  .data
  lock_a:
    .space 4
  lock_b:
    .space 4
)") + R"(
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  const Bug* bug = FindByKeyword(result, "out-of-order");
  ASSERT_NE(bug, nullptr);
}

TEST(LockCheckerTest, ProperNestingIsClean) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    push lr
    la r0, lock_a
    kcall MosAcquireSpinLock
    la r0, lock_b
    kcall MosAcquireSpinLock
    la r0, lock_b
    kcall MosReleaseSpinLock
    la r0, lock_a
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret
  .data
  lock_a:
    .space 4
  lock_b:
    .space 4
)") + R"(
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().Format(8);
}

// --- leak checker -----------------------------------------------------------------

TEST(LeakCheckerTest, UnfreedPoolAtUnloadIsMemoryLeak) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    push lr
    movi r0, 64
    kcall MosAllocatePool   ; never freed, not even in Halt
    movi r0, 0
    pop lr
    ret
  .func ep_halt
    movi r0, 0
    ret
)") + R"(
  .data
  entry_table:
    .word ep_init
    .word ep_halt
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  const Bug* bug = FindByKeyword(result, "memory leak");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kMemoryLeak);
}

TEST(LeakCheckerTest, ProperCleanupIsClean) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    push {r4, lr}
    movi r0, 64
    kcall MosAllocatePool
    la r1, adapter
    st32 [r1+0], r0
    movi r0, 0
    pop {r4, lr}
    ret
  .func ep_halt
    push lr
    la r1, adapter
    ld32 r0, [r1+0]
    bz r0, hdone
    kcall MosFreePool
  hdone:
    movi r0, 0
    pop lr
    ret
  .data
  adapter:
    .space 8
)") + R"(
  entry_table:
    .word ep_init
    .word ep_halt
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  // The alloc-failure annotation fork returns failure from init without
  // leaking anything (nothing was allocated), so both worlds are clean.
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().Format(8);
}


// --- loop checker ------------------------------------------------------------------

TEST(LoopCheckerTest, PureSpinIsProvablyInfinite) {
  // No register changes, no memory writes, no kernel calls: the precise
  // periodicity tier must prove the loop infinite (fast — no need for the
  // heuristic instruction budget).
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
  spin:
    br spin
)") + kTableOnlyInit);
  const Bug* bug = FindByKeyword(result, "machine state repeats");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kInfiniteLoop);
  EXPECT_NE(bug->details.find("can never terminate"), std::string::npos);
}

TEST(LoopCheckerTest, TerminatingLongLoopIsNotFlagged) {
  // A loop that counts to 20000 and exits: registers differ every iteration,
  // so the precise tier stays quiet, and it finishes before the heuristic
  // budget.
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    movi r1, 20000
  count:
    subi r1, r1, 1
    bnz r1, count
    movi r0, 0
    ret
)") + kTableOnlyInit);
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().Format(8);
}


// --- pageable-memory checker -------------------------------------------------------

TEST(MemoryCheckerTest, PageableBufferAtDispatchIsFlagged) {
  // QueryInformation holds a spinlock (IRQL = DISPATCH) while touching the
  // pageable request buffer — the classic page-fault-at-raised-IRQL bug.
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    movi r0, 0
    ret
  .func ep_query
    push lr
    la r0, lock
    kcall MosAcquireSpinLock
    movi r2, 1514
    st32 [r1+0], r2        ; write into the pageable buffer at DISPATCH
    la r0, lock
    kcall MosReleaseSpinLock
    movi r0, 0
    pop lr
    ret
  .data
  lock:
    .space 4
)") + R"(
  entry_table:
    .word ep_init
    .word 0
    .word ep_query
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  const Bug* bug = FindByKeyword(result, "pageable buffer");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->type, BugType::kKernelCrash);
}

TEST(MemoryCheckerTest, PageableBufferAtPassiveIsFine) {
  DdtResult result = RunCheckerToy(std::string(R"(
  .func ep_init
    movi r0, 0
    ret
  .func ep_query
    movi r2, 1514
    st32 [r1+0], r2        ; same write, but at PASSIVE
    movi r0, 0
    ret
)") + R"(
  .data
  entry_table:
    .word ep_init
    .word 0
    .word ep_query
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().Format(8);
}

}  // namespace
}  // namespace ddt
