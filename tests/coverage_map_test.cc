// CoverageBitmap: the stable novelty API the fuzz corpus and promotion
// scoring are built on. Units for the set algebra (snapshot, diff, popcount,
// fingerprint, hex round-trip), plus an engine-level check that bitmaps
// snapshotted from forked symbolic exploration and from a single guided
// replay of one of its paths diff the way a corpus manager relies on: the
// replayed path is a strict subset of the exploration that derived it.
#include "src/vm/coverage_map.h"

#include <gtest/gtest.h>

#include <string>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"

namespace ddt {
namespace {

TEST(CoverageBitmapTest, SetTestAndPopcount) {
  CoverageBitmap map(128);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Popcount(), 0u);

  EXPECT_TRUE(map.Set(0));
  EXPECT_TRUE(map.Set(63));
  EXPECT_TRUE(map.Set(64));
  EXPECT_TRUE(map.Set(127));
  EXPECT_FALSE(map.Set(64));  // already set
  EXPECT_EQ(map.Popcount(), 4u);
  EXPECT_TRUE(map.Test(0));
  EXPECT_TRUE(map.Test(127));
  EXPECT_FALSE(map.Test(1));
  EXPECT_FALSE(map.Test(1000));  // out of range reads as clear
}

TEST(CoverageBitmapTest, SetGrowsOutOfRangeSlots) {
  CoverageBitmap map(8);
  EXPECT_TRUE(map.Set(500));
  EXPECT_TRUE(map.Test(500));
  EXPECT_GE(map.num_slots(), 501u);
  EXPECT_EQ(map.Popcount(), 1u);
}

TEST(CoverageBitmapTest, OrWithReturnsFreshCountAndUnions) {
  CoverageBitmap a(256);
  a.Set(1);
  a.Set(2);
  a.Set(200);
  CoverageBitmap b(64);  // differently sized snapshots must stay comparable
  b.Set(2);
  b.Set(3);

  EXPECT_EQ(a.OrWith(b), 1u);  // only slot 3 was new
  EXPECT_EQ(a.Popcount(), 4u);
  EXPECT_TRUE(a.Test(3));
  EXPECT_EQ(a.OrWith(b), 0u);  // idempotent
}

TEST(CoverageBitmapTest, NewlyCoveredDiffsWithoutMutating) {
  CoverageBitmap cumulative(128);
  cumulative.Set(10);
  cumulative.Set(20);
  CoverageBitmap fresh(128);
  fresh.Set(20);
  fresh.Set(21);
  fresh.Set(22);

  EXPECT_EQ(cumulative.NewlyCovered(fresh), 2u);
  EXPECT_EQ(fresh.NewlyCovered(cumulative), 1u);
  EXPECT_EQ(cumulative.Popcount(), 2u);  // unchanged
  EXPECT_EQ(fresh.Popcount(), 3u);
  EXPECT_EQ(cumulative.NewlyCovered(cumulative), 0u);
}

TEST(CoverageBitmapTest, FingerprintIgnoresAllocatedSize) {
  CoverageBitmap small(8);
  small.Set(5);
  CoverageBitmap large(4096);
  large.Set(5);
  EXPECT_EQ(small.Fingerprint(), large.Fingerprint());
  EXPECT_TRUE(small == large);

  large.Set(6);
  EXPECT_NE(small.Fingerprint(), large.Fingerprint());
  EXPECT_FALSE(small == large);

  // The empty bitmap has a stable fingerprint too.
  EXPECT_EQ(CoverageBitmap().Fingerprint(), CoverageBitmap(512).Fingerprint());
}

TEST(CoverageBitmapTest, HexRoundTrip) {
  CoverageBitmap map(200);
  map.Set(0);
  map.Set(65);
  map.Set(199);
  std::string hex = map.ToHex();
  EXPECT_EQ(hex.size() % 16, 0u);  // whole little-endian words

  CoverageBitmap back;
  ASSERT_TRUE(CoverageBitmap::FromHex(hex, &back));
  EXPECT_TRUE(back == map);
  EXPECT_TRUE(back.Test(0));
  EXPECT_TRUE(back.Test(65));
  EXPECT_TRUE(back.Test(199));

  CoverageBitmap empty_back;
  ASSERT_TRUE(CoverageBitmap::FromHex(CoverageBitmap().ToHex(), &empty_back));
  EXPECT_TRUE(empty_back.empty());
}

TEST(CoverageBitmapTest, FromHexRejectsMalformedInput) {
  CoverageBitmap out;
  EXPECT_FALSE(CoverageBitmap::FromHex("zz", &out));                 // not hex
  EXPECT_FALSE(CoverageBitmap::FromHex("0123456789abcde", &out));    // torn word
  EXPECT_FALSE(CoverageBitmap::FromHex("0123456789ABCDEF", &out));   // uppercase
}

// Forked-path diffing: a full symbolic exploration of rtl8029 forks into many
// paths; a guided replay of one derived path model walks exactly one of them.
// The replay's bitmap must be non-empty, contribute nothing new to the
// exploration's bitmap, and be strictly smaller — the subset relation every
// corpus-admission decision builds on.
TEST(CoverageBitmapTest, GuidedReplayCoversSubsetOfForkedExploration) {
  const CorpusDriver& rtl = CorpusDriverByName("rtl8029");

  DdtConfig config;
  config.engine.max_path_seeds = 4;
  Ddt explore(config);
  Result<DdtResult> run = explore.TestDriver(rtl.image, rtl.pci);
  ASSERT_TRUE(run.ok()) << run.status().message();
  ASSERT_FALSE(run.value().path_seeds.empty());
  CoverageBitmap explored = explore.engine().CoverageSnapshot();
  ASSERT_GT(explored.Popcount(), 0u);

  const PathSeed& seed = run.value().path_seeds.front();
  DdtConfig replay = config;
  replay.engine.max_path_seeds = 0;
  replay.engine.guided = true;
  replay.engine.enable_symbolic_interrupts = false;
  replay.engine.forced_interrupt_schedule = seed.interrupt_schedule;
  replay.engine.forced_alternatives = seed.alternatives;
  for (const SolvedInput& input : seed.inputs) {
    replay.engine.guided_inputs[OriginKeyString(input.origin)] = input.value;
  }
  replay.engine.max_states = 4;
  replay.engine.stop_after_first_bug = false;
  Ddt replayer(replay);
  ASSERT_TRUE(replayer.TestDriver(rtl.image, rtl.pci).ok());
  CoverageBitmap path = replayer.engine().CoverageSnapshot();

  EXPECT_GT(path.Popcount(), 0u);
  EXPECT_LT(path.Popcount(), explored.Popcount());
  EXPECT_EQ(explored.NewlyCovered(path), 0u);   // subset: nothing novel
  EXPECT_GT(path.NewlyCovered(explored), 0u);   // proper subset: diff nonzero
  CoverageBitmap merged = path;
  EXPECT_GT(merged.OrWith(explored), 0u);
  EXPECT_TRUE(merged == explored);
}

}  // namespace
}  // namespace ddt
