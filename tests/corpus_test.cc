// Corpus-level integration tests: DDT must find exactly the seeded Table-2
// bugs in each of the six drivers — the 14 bugs, with no extra warnings
// (the paper reports zero false positives) — and every found bug must
// replay.
#include "src/drivers/corpus.h"

#include <gtest/gtest.h>

#include <set>

#include "src/core/ddt.h"
#include "src/core/replay.h"

namespace ddt {
namespace {

DdtConfig CorpusConfig() {
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_wall_ms = 120'000;
  config.engine.max_states = 512;
  return config;
}

// Greedily pairs expected bugs with distinct found bugs by (type, keyword).
// Returns the unmatched expected bugs.
std::vector<const ExpectedBug*> MatchBugs(const std::vector<ExpectedBug>& expected,
                                          const std::vector<Bug>& found,
                                          std::set<size_t>* used) {
  std::vector<const ExpectedBug*> missing;
  for (const ExpectedBug& want : expected) {
    bool matched = false;
    for (size_t i = 0; i < found.size(); ++i) {
      if (used->count(i) != 0) {
        continue;
      }
      if (found[i].type == want.type &&
          found[i].title.find(want.keyword) != std::string::npos) {
        used->insert(i);
        matched = true;
        break;
      }
    }
    if (!matched) {
      missing.push_back(&want);
    }
  }
  return missing;
}

class CorpusTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusTest, FindsExactlyTheSeededBugs) {
  const CorpusDriver& driver = CorpusDriverByName(GetParam());
  Ddt ddt(CorpusConfig());
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const DdtResult& r = result.value();

  std::set<size_t> used;
  std::vector<const ExpectedBug*> missing = MatchBugs(driver.expected, r.bugs, &used);
  std::string report = r.FormatReport(driver.name);
  for (const Bug& bug : r.bugs) {
    report += bug.Format(12);
  }
  for (const ExpectedBug* want : missing) {
    ADD_FAILURE() << driver.name << ": missing expected bug [" << BugTypeName(want->type)
                  << " ~ '" << want->keyword << "']: " << want->description << "\n"
                  << report;
  }
  // Zero false positives: every found bug must correspond to a seeded one.
  for (size_t i = 0; i < r.bugs.size(); ++i) {
    if (used.count(i) == 0) {
      ADD_FAILURE() << driver.name << ": unexpected bug (false positive?): "
                    << r.bugs[i].Format(12);
    }
  }
}

TEST_P(CorpusTest, EveryBugReplays) {
  const CorpusDriver& driver = CorpusDriverByName(GetParam());
  DdtConfig config = CorpusConfig();
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().bugs.empty());
  for (const Bug& bug : result.value().bugs) {
    ReplayResult replay = ReplayBug(driver.image, driver.pci, bug, config);
    EXPECT_TRUE(replay.reproduced)
        << driver.name << ": bug failed to replay: " << bug.Row() << "\n  " << replay.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDrivers, CorpusTest,
                         ::testing::Values("rtl8029", "pcnet", "pro1000", "pro100", "audiopci",
                                           "ac97"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(CorpusStructureTest, FourteenBugsAcrossSixDrivers) {
  size_t total = 0;
  for (const CorpusDriver& driver : Corpus()) {
    total += driver.expected.size();
  }
  EXPECT_EQ(total, 14u);
  EXPECT_EQ(Corpus().size(), 6u);
}

TEST(CorpusStructureTest, Table1OrderingsHold) {
  auto size_of = [](const char* name) {
    return CorpusDriverByName(name).image.BinaryFileSize();
  };
  auto funcs_of = [](const char* name) {
    return CorpusDriverByName(name).assembled.functions.size();
  };
  auto imports_of = [](const char* name) {
    return CorpusDriverByName(name).image.imports.size();
  };
  // Binary size: Pro/1000 > Pro/100 > AC97 > AudioPCI > PCNet > RTL8029.
  EXPECT_GT(size_of("pro1000"), size_of("pro100"));
  EXPECT_GT(size_of("pro100"), size_of("ac97"));
  EXPECT_GT(size_of("ac97"), size_of("audiopci"));
  EXPECT_GT(size_of("audiopci"), size_of("pcnet"));
  EXPECT_GT(size_of("pcnet"), size_of("rtl8029"));
  // Function count: Pro/1000 > AudioPCI > AC97 > Pro/100 > PCNet > RTL8029.
  EXPECT_GT(funcs_of("pro1000"), funcs_of("audiopci"));
  EXPECT_GT(funcs_of("audiopci"), funcs_of("ac97"));
  EXPECT_GT(funcs_of("ac97"), funcs_of("pro100"));
  EXPECT_GT(funcs_of("pro100"), funcs_of("pcnet"));
  EXPECT_GT(funcs_of("pcnet"), funcs_of("rtl8029"));
  // Imported kernel functions: Pro/1000 > Pro/100 > AudioPCI > PCNet >
  // RTL8029 > AC97.
  EXPECT_GT(imports_of("pro1000"), imports_of("pro100"));
  EXPECT_GT(imports_of("pro100"), imports_of("audiopci"));
  EXPECT_GT(imports_of("audiopci"), imports_of("pcnet"));
  EXPECT_GT(imports_of("pcnet"), imports_of("rtl8029"));
  EXPECT_GT(imports_of("rtl8029"), imports_of("ac97"));
}

}  // namespace
}  // namespace ddt
