// Checkbochs-style DMA checker tests (src/checkers/dma_checker.h):
//   - the checker is strictly opt-in: default runs report nothing new;
//   - a driver that programs a DMA register with a pageable request buffer is
//     flagged (the RTL8029 analogue's latent SetInfo bug);
//   - a correct release (halt clears the DMA register before freeing) passes
//     clean — no false freed-while-owned report in plain runs;
//   - surprise removal turns that same correct halt path into a
//     freed-while-owned bug: the clear write is dropped by the dead device,
//     so the free happens while the device still owns the buffer;
//   - the removal-exposed bug replays from its recorded plan.
#include "src/checkers/dma_checker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"
#include "src/hw/hw_fault.h"

namespace ddt {
namespace {

DdtConfig QuickConfig() {
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_wall_ms = 120'000;
  config.engine.max_states = 512;
  return config;
}

bool IsPageableDmaBug(const Bug& bug) {
  return bug.type == BugType::kMemoryCorruption &&
         bug.title.find("DMA target in pageable memory") != std::string::npos;
}

bool IsFreedWhileOwnedBug(const Bug& bug) {
  return bug.type == BugType::kMemoryCorruption &&
         bug.title.find("freed while the device owns it") != std::string::npos;
}

TEST(DmaCheckerTest, OptInOnly) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  Ddt ddt(QuickConfig());
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok()) << result.status().message();
  for (const Bug& bug : result.value().bugs) {
    EXPECT_FALSE(IsPageableDmaBug(bug)) << bug.Format(12);
    EXPECT_FALSE(IsFreedWhileOwnedBug(bug)) << bug.Format(12);
  }
}

TEST(DmaCheckerTest, FlagsPageableDmaTargetAndStaysQuietOnCorrectRelease) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config = QuickConfig();
  config.dma_checker = true;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok()) << result.status().message();

  // The SetInfo path programs the multicast DMA pointer with the caller's
  // pageable request buffer — the classic Checkbochs finding.
  bool pageable = false;
  for (const Bug& bug : result.value().bugs) {
    pageable = pageable || IsPageableDmaBug(bug);
    // Without device faults the halt path clears the rx-DMA register before
    // freeing, so the device never owns freed memory.
    EXPECT_FALSE(IsFreedWhileOwnedBug(bug)) << bug.Format(12);
  }
  EXPECT_TRUE(pageable);

  // Same config, same findings: the checker is deterministic.
  Ddt again(config);
  Result<DdtResult> repeat = again.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(repeat.ok());
  ASSERT_EQ(repeat.value().bugs.size(), result.value().bugs.size());
  for (size_t i = 0; i < result.value().bugs.size(); ++i) {
    EXPECT_EQ(repeat.value().bugs[i].Row(), result.value().bugs[i].Row());
  }
}

TEST(DmaCheckerTest, SurpriseRemovalExposesFreedWhileDeviceOwns) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  // Profile the device interaction so removal indices can be sampled the way
  // the campaign planner samples them.
  DdtConfig config = QuickConfig();
  config.dma_checker = true;
  Ddt baseline(config);
  ASSERT_TRUE(baseline.TestDriver(driver.image, driver.pci).ok());
  uint32_t extent = baseline.engine().hw_site_profile().max_mmio_accesses;
  ASSERT_GT(extent, 1u);

  // Removal between the init-time DMA programming and the halt-time clear
  // drops the clear write: the free then happens while the device still owns
  // the rx buffer. Scan the planner's sample grid for the window.
  Bug found;
  bool have_bug = false;
  constexpr uint32_t kSamples = 4;
  for (uint32_t i = 0; i < kSamples && !have_bug; ++i) {
    DdtConfig removal = config;
    removal.engine.fault_plan.label = "hw surprise-removal";
    removal.engine.fault_plan.hw_points.push_back(
        {HwFaultKind::kSurpriseRemoval, i * (extent - 1) / (kSamples - 1)});
    Ddt ddt(removal);
    Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
    ASSERT_TRUE(result.ok()) << result.status().message();
    for (const Bug& bug : result.value().bugs) {
      if (IsFreedWhileOwnedBug(bug)) {
        found = bug;
        have_bug = true;
        break;
      }
    }
  }
  ASSERT_TRUE(have_bug);
  ASSERT_FALSE(found.fault_plan.hw_points.empty());
  EXPECT_EQ(found.fault_plan.hw_points[0].kind, HwFaultKind::kSurpriseRemoval);
  ASSERT_FALSE(found.hw_fault_schedule.empty());

  // The recorded plan replays the removal schedule and reproduces the bug.
  ReplayResult replay = ReplayBug(driver.image, driver.pci, found, config);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
}

}  // namespace
}  // namespace ddt
