// Fault-injection campaign tests (§3.4 error-path testing):
//   - plan generation is deterministic and well-formed;
//   - a campaign over the RTL8029 corpus driver finds the latent
//     MosMapIoSpace-failure cleanup bug that a plain TestDriver run misses;
//   - the same campaign run twice produces the identical bug set (same seed,
//     same driver => same injection schedule);
//   - a fault-found bug replays concretely, with the recorded failure
//     schedule reproduced exactly.
#include "src/engine/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/campaign_journal.h"
#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"
#include "src/support/check.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan / GenerateCampaignPlans units
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ShouldFailMatchesExactPoints) {
  FaultPlan plan;
  plan.points.push_back({FaultClass::kAllocation, 1});
  plan.points.push_back({FaultClass::kMapIoSpace, 0});
  EXPECT_TRUE(plan.ShouldFail(FaultClass::kAllocation, 1));
  EXPECT_TRUE(plan.ShouldFail(FaultClass::kMapIoSpace, 0));
  EXPECT_FALSE(plan.ShouldFail(FaultClass::kAllocation, 0));
  EXPECT_FALSE(plan.ShouldFail(FaultClass::kMapIoSpace, 1));
  EXPECT_FALSE(plan.ShouldFail(FaultClass::kRegistryRead, 0));
  EXPECT_FALSE(FaultPlan{}.ShouldFail(FaultClass::kAllocation, 0));
}

TEST(FaultPlanTest, EmptyProfileYieldsNoPlans) {
  EXPECT_TRUE(GenerateCampaignPlans(FaultSiteProfile{}, 1, 8, 2, 64).empty());
}

TEST(FaultPlanTest, SinglesComeFirstAndCoverTheProfile) {
  FaultSiteProfile profile;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kAllocation)] = 3;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kMapIoSpace)] = 1;
  std::vector<FaultPlan> plans = GenerateCampaignPlans(profile, 42, 8, 0, 64);
  ASSERT_EQ(plans.size(), 4u);  // 3 allocation singles + 1 map single
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(plans[i].points.size(), 1u);
    EXPECT_EQ(plans[i].points[0].cls, FaultClass::kAllocation);
    EXPECT_EQ(plans[i].points[0].occurrence, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(plans[3].points[0].cls, FaultClass::kMapIoSpace);
}

TEST(FaultPlanTest, OccurrenceCapLimitsSingles) {
  FaultSiteProfile profile;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kAllocation)] = 100;
  std::vector<FaultPlan> plans = GenerateCampaignPlans(profile, 42, 4, 0, 64);
  EXPECT_EQ(plans.size(), 4u);
}

TEST(FaultPlanTest, GenerationIsDeterministicInSeed) {
  FaultSiteProfile profile;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kAllocation)] = 4;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kRegistryRead)] = 2;
  std::vector<FaultPlan> a = GenerateCampaignPlans(profile, 7, 8, 3, 64);
  std::vector<FaultPlan> b = GenerateCampaignPlans(profile, 7, 8, 3, 64);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].points.size(), b[i].points.size());
    for (size_t j = 0; j < a[i].points.size(); ++j) {
      EXPECT_TRUE(a[i].points[j] == b[i].points[j]);
    }
  }
  // Escalation rounds added multi-point combos past the 6 singles.
  EXPECT_GT(a.size(), 6u);
  for (size_t i = 6; i < a.size(); ++i) {
    EXPECT_GE(a[i].points.size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Campaign over the RTL8029 corpus driver
// ---------------------------------------------------------------------------

DdtConfig QuickConfig() {
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_wall_ms = 120'000;
  config.engine.max_states = 512;
  return config;
}

FaultCampaignConfig QuickCampaign() {
  FaultCampaignConfig config;
  config.base = QuickConfig();
  config.max_passes = 12;
  config.max_occurrences_per_class = 4;
  config.escalation_rounds = 0;
  return config;
}

bool IsMapFailureCleanupBug(const Bug& bug) {
  return bug.type == BugType::kResourceLeak &&
         bug.title.find("map-io-space") != std::string::npos;
}

TEST(FaultCampaignTest, FindsLatentCleanupBugPlainRunMisses) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  // Plain run: the MosMapIoSpace failure path is dead code (BAR0 always
  // maps), so no bug mentions the map fault class.
  Ddt plain(QuickConfig());
  Result<DdtResult> plain_result = plain.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(plain_result.ok()) << plain_result.status().message();
  for (const Bug& bug : plain_result.value().bugs) {
    EXPECT_FALSE(IsMapFailureCleanupBug(bug)) << bug.Format(12);
  }

  // Campaign: the map-io-space#0 plan drives the driver down that path and
  // the cleanup checker flags the still-open configuration handle.
  Result<FaultCampaignResult> campaign =
      RunFaultCampaign(QuickCampaign(), driver.image, driver.pci);
  ASSERT_TRUE(campaign.ok()) << campaign.status().message();
  const FaultCampaignResult& r = campaign.value();
  EXPECT_GT(r.total_faults_injected, 0u);
  EXPECT_GT(r.passes.size(), 1u);

  const Bug* latent = nullptr;
  for (const Bug& bug : r.bugs) {
    if (IsMapFailureCleanupBug(bug)) {
      latent = &bug;
      break;
    }
  }
  ASSERT_NE(latent, nullptr) << r.FormatReport(driver.name);
  // The bug records both the plan that exposed it and the concrete schedule.
  EXPECT_FALSE(latent->fault_plan.empty());
  ASSERT_FALSE(latent->fault_schedule.empty());
  EXPECT_EQ(latent->fault_schedule[0].cls, FaultClass::kMapIoSpace);
  EXPECT_EQ(latent->fault_schedule[0].api, "MosMapIoSpace");
  // The campaign also retains every baseline bug (merge keeps pass-0 output).
  EXPECT_GE(r.bugs.size(), plain_result.value().bugs.size());
}

TEST(FaultCampaignTest, CampaignIsDeterministic) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  auto run = [&] {
    Result<FaultCampaignResult> r = RunFaultCampaign(QuickCampaign(), driver.image, driver.pci);
    EXPECT_TRUE(r.ok());
    std::vector<std::string> keys;
    for (const Bug& bug : r.value().bugs) {
      keys.push_back(std::string(BugTypeName(bug.type)) + "|" + bug.title + "|" +
                     bug.fault_plan.ToString());
    }
    return keys;
  };
  std::vector<std::string> first = run();
  std::vector<std::string> second = run();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(FaultCampaignTest, FaultFoundBugReplaysConcretely) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config = QuickConfig();
  Result<FaultCampaignResult> campaign =
      RunFaultCampaign(QuickCampaign(), driver.image, driver.pci);
  ASSERT_TRUE(campaign.ok());

  const Bug* latent = nullptr;
  for (const Bug& bug : campaign.value().bugs) {
    if (IsMapFailureCleanupBug(bug)) {
      latent = &bug;
      break;
    }
  }
  ASSERT_NE(latent, nullptr);
  ReplayResult replay = ReplayBug(driver.image, driver.pci, *latent, config);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
}

// ---------------------------------------------------------------------------
// Parallel scheduler determinism
// ---------------------------------------------------------------------------

TEST(FaultCampaignTest, ParallelCampaignMatchesSequentialExactly) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  auto run = [&](uint32_t threads) {
    FaultCampaignConfig config = QuickCampaign();
    config.threads = threads;
    Result<FaultCampaignResult> r = RunFaultCampaign(config, driver.image, driver.pci);
    EXPECT_TRUE(r.ok()) << r.status().message();
    return std::move(r.value());
  };
  FaultCampaignResult sequential = run(1);
  FaultCampaignResult parallel = run(4);

  EXPECT_EQ(sequential.threads_used, 1u);
  EXPECT_GT(parallel.threads_used, 1u);

  // Merged bugs: same set, same order.
  ASSERT_EQ(sequential.bugs.size(), parallel.bugs.size());
  for (size_t i = 0; i < sequential.bugs.size(); ++i) {
    EXPECT_EQ(sequential.bugs[i].Row(), parallel.bugs[i].Row()) << "bug " << i;
    EXPECT_EQ(sequential.bugs[i].fault_plan.ToString(),
              parallel.bugs[i].fault_plan.ToString());
  }
  // Pass table: same plans in the same order with the same outcomes.
  ASSERT_EQ(sequential.passes.size(), parallel.passes.size());
  for (size_t i = 0; i < sequential.passes.size(); ++i) {
    EXPECT_EQ(sequential.passes[i].plan.ToString(), parallel.passes[i].plan.ToString());
    EXPECT_EQ(sequential.passes[i].bugs_found, parallel.passes[i].bugs_found) << "pass " << i;
    EXPECT_EQ(sequential.passes[i].bugs_new, parallel.passes[i].bugs_new) << "pass " << i;
    EXPECT_EQ(sequential.passes[i].stats.instructions, parallel.passes[i].stats.instructions)
        << "pass " << i;
  }
  // Aggregates over deterministic per-pass counters agree too.
  EXPECT_EQ(sequential.total_faults_injected, parallel.total_faults_injected);
  EXPECT_EQ(sequential.total_stats.instructions, parallel.total_stats.instructions);
  EXPECT_EQ(sequential.total_solver_stats.queries, parallel.total_solver_stats.queries);
}

// ---------------------------------------------------------------------------
// Plain runs stay fault-free
// ---------------------------------------------------------------------------

TEST(FaultCampaignTest, NoPlanMeansNoInjections) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  Ddt ddt(QuickConfig());
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.faults_injected, 0u);
  for (const Bug& bug : result.value().bugs) {
    EXPECT_TRUE(bug.fault_schedule.empty());
    EXPECT_TRUE(bug.fault_plan.empty());
  }
  // The baseline still profiles fault-eligible sites for the campaign.
  EXPECT_FALSE(ddt.engine().fault_site_profile().Empty());
}

// ---------------------------------------------------------------------------
// Campaign supervisor: checkpoint/resume, watchdog, retry, quarantine
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// A campaign killed mid-run and resumed — at any thread count, even with a
// torn half-written record at the kill point — must produce a deterministic
// report byte-identical to an uninterrupted run.
TEST(FaultCampaignSupervisorTest, KillAndResumeReportIsByteIdentical) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  std::string full_path = TempPath("campaign_full.jsonl");
  FaultCampaignConfig config = QuickCampaign();
  config.journal_path = full_path;
  Result<FaultCampaignResult> full = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(full.ok()) << full.status().message();
  std::string reference = full.value().FormatReport(driver.name, /*include_volatile=*/false);
  size_t total_passes = full.value().passes.size();
  ASSERT_GT(total_passes, 1u);

  // The journal holds one header line plus one record per pass.
  std::string journal = ReadFile(full_path);
  size_t newlines = static_cast<size_t>(std::count(journal.begin(), journal.end(), '\n'));
  ASSERT_EQ(newlines, total_passes + 1);

  // Simulate a kill: keep the header and the first half of the records, then
  // a torn half-appended line (the exact on-disk shape a SIGKILL leaves).
  size_t keep_records = total_passes / 2;
  size_t pos = 0;
  for (size_t i = 0; i < keep_records + 1; ++i) {
    pos = journal.find('\n', pos) + 1;
  }
  std::string truncated = journal.substr(0, pos) + "{\"crc\":\"00000000\",\"record\":{\"i\":99,";

  auto resume_run = [&](const std::string& path, uint32_t threads) {
    FaultCampaignConfig rc = QuickCampaign();
    rc.threads = threads;
    rc.journal_path = path;
    rc.resume = true;
    Result<FaultCampaignResult> r = RunFaultCampaign(rc, driver.image, driver.pci);
    EXPECT_TRUE(r.ok()) << r.status().message();
    return std::move(r.value());
  };

  // Resume sequentially.
  std::string t1 = TempPath("campaign_resume_t1.jsonl");
  WriteFile(t1, truncated);
  FaultCampaignResult r1 = resume_run(t1, 1);
  EXPECT_EQ(r1.passes_loaded, keep_records);
  EXPECT_EQ(r1.passes.size(), total_passes);
  EXPECT_EQ(r1.FormatReport(driver.name, false), reference);

  // Resume in parallel (resume repairs the file in place, so each resume
  // starts from a fresh copy of the interrupted journal).
  std::string t4 = TempPath("campaign_resume_t4.jsonl");
  WriteFile(t4, truncated);
  FaultCampaignResult r4 = resume_run(t4, 4);
  EXPECT_EQ(r4.passes_loaded, keep_records);
  EXPECT_EQ(r4.FormatReport(driver.name, false), reference);

  // Resuming a journal of a finished campaign re-runs nothing at all.
  FaultCampaignResult done = resume_run(full_path, 1);
  EXPECT_EQ(done.passes_loaded, done.passes.size());
  EXPECT_EQ(done.FormatReport(driver.name, false), reference);
}

// A pass that hangs (here: an injected alloc failure steering init into an
// infinite concrete loop) is cancelled by the watchdog, retried with doubled
// budgets, and finally quarantined — while the campaign itself succeeds.
TEST(FaultCampaignSupervisorTest, WatchdogCancelsAndQuarantinesHungPass) {
  std::string source = R"(
  .driver "toy_hang"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    movi r0, 64
    kcall MosAllocatePool
    bz r0, fail
    movi r0, 0
    ret
  fail:
    movi r1, 1
  spin:
    bnz r1, spin
    movi r0, 1
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";
  Result<AssembledDriver> assembled = Assemble(source);
  ASSERT_TRUE(assembled.ok()) << assembled.error();
  PciDescriptor pci;
  pci.vendor_id = 0x10EC;
  pci.device_id = 0x8029;
  pci.irq_line = 10;
  pci.bars.push_back(PciBar{0x100});

  FaultCampaignConfig config;
  // Generous backstop so a broken watchdog fails the test instead of hanging
  // it; the happy-path baseline never gets near either limit.
  config.base.engine.max_instructions = 50'000'000;
  config.base.engine.max_wall_ms = 3'600'000;
  // Error paths come from the campaign plan; the alloc annotation would fork
  // the baseline into the hang too.
  config.base.use_standard_annotations = false;
  config.base.use_default_checkers = false;
  config.max_passes = 4;
  config.max_occurrences_per_class = 4;
  config.escalation_rounds = 0;
  config.threads = 1;
  config.max_pass_wall_ms = 100;
  config.max_pass_retries = 2;
  config.retry_backoff_ms = 1;

  Result<FaultCampaignResult> campaign =
      RunFaultCampaign(config, assembled.value().image, pci);
  ASSERT_TRUE(campaign.ok()) << campaign.status().message();
  const FaultCampaignResult& r = campaign.value();

  ASSERT_EQ(r.passes.size(), 2u);  // baseline + allocation#0
  EXPECT_FALSE(r.passes[0].quarantined);
  EXPECT_TRUE(r.passes[1].quarantined);
  EXPECT_EQ(r.passes[1].retries, 2u);  // both retries consumed before giving up
  EXPECT_NE(r.passes[1].failure.find("watchdog"), std::string::npos) << r.passes[1].failure;
  EXPECT_EQ(r.passes_quarantined, 1u);
  EXPECT_GE(r.passes_retried, 1u);

  std::string report = r.FormatReport("toy_hang");
  EXPECT_NE(report.find("QUARANTINED"), std::string::npos) << report;
}

// A checker whose every callback trips an engine invariant. With the
// supervisor's check trap, this quarantines the pass instead of aborting the
// whole process.
class ExplodingChecker : public Checker {
 public:
  std::string name() const override { return "exploding"; }
  void OnInstruction(ExecutionState& st, uint32_t pc, CheckerHost& host) override {
    DDT_CHECK_MSG(pc == 0xFFFFFFFF, "intentional test explosion");
  }
};

TEST(FaultCampaignSupervisorTest, InvariantFailureQuarantinesPassNotProcess) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  std::string path = TempPath("campaign_trap.jsonl");

  FaultCampaignConfig config = QuickCampaign();
  config.max_passes = 3;
  config.threads = 2;
  config.journal_path = path;
  // Sabotage every fault pass (but not the baseline).
  config.configure_pass = [](Ddt& ddt, const FaultPlan& plan) {
    if (!plan.empty()) {
      ddt.AddChecker(std::make_unique<ExplodingChecker>());
    }
  };

  Result<FaultCampaignResult> campaign = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(campaign.ok()) << campaign.status().message();
  const FaultCampaignResult& r = campaign.value();
  ASSERT_EQ(r.passes.size(), 3u);
  EXPECT_FALSE(r.passes[0].quarantined);
  for (size_t i = 1; i < r.passes.size(); ++i) {
    EXPECT_TRUE(r.passes[i].quarantined) << "pass " << i;
    EXPECT_EQ(r.passes[i].retries, 0u);  // deterministic failure: no retries
    EXPECT_NE(r.passes[i].failure.find("engine invariant failure"), std::string::npos)
        << r.passes[i].failure;
    EXPECT_NE(r.passes[i].failure.find("intentional test explosion"), std::string::npos);
  }
  EXPECT_EQ(r.passes_quarantined, 2u);
  // Quarantined passes contribute no bugs: everything left is baseline output.
  EXPECT_FALSE(r.bugs.empty());
  for (const Bug& bug : r.bugs) {
    EXPECT_TRUE(bug.fault_plan.empty()) << bug.Row();
  }

  // Quarantine decisions are durable: resuming the journal restores all three
  // passes (including the quarantined ones) without re-running anything.
  FaultCampaignConfig rc = config;
  rc.resume = true;
  Result<FaultCampaignResult> resumed = RunFaultCampaign(rc, driver.image, driver.pci);
  ASSERT_TRUE(resumed.ok()) << resumed.status().message();
  EXPECT_EQ(resumed.value().passes_loaded, 3u);
  EXPECT_EQ(resumed.value().passes_quarantined, 2u);
  EXPECT_EQ(resumed.value().FormatReport(driver.name, false),
            r.FormatReport(driver.name, false));
}

TEST(FaultCampaignSupervisorTest, RejectsInvalidSupervisorConfig) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  auto expect_error = [&](const FaultCampaignConfig& config, const std::string& needle) {
    Result<FaultCampaignResult> r = RunFaultCampaign(config, driver.image, driver.pci);
    ASSERT_FALSE(r.ok()) << "expected failure mentioning: " << needle;
    EXPECT_NE(r.status().message().find(needle), std::string::npos) << r.status().message();
  };

  FaultCampaignConfig c = QuickCampaign();
  c.max_passes = 0;
  expect_error(c, "max_passes");

  c = QuickCampaign();
  c.max_pass_retries = 17;
  expect_error(c, "max_pass_retries");

  c = QuickCampaign();
  c.retry_backoff_ms = 60'001;
  expect_error(c, "retry_backoff_ms");

  c = QuickCampaign();
  c.resume = true;
  expect_error(c, "journal_path");

  c = QuickCampaign();
  c.journal_path = "/nonexistent-dir/journal.jsonl";
  expect_error(c, "cannot open");

  c = QuickCampaign();
  c.resume = true;
  c.journal_path = TempPath("campaign_never_written.jsonl");
  expect_error(c, "does not exist");
}

TEST(FaultCampaignSupervisorTest, ResumeRejectsJournalFromDifferentCampaign) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  std::string path = TempPath("campaign_mismatch.jsonl");
  {
    // A journal with the right driver name but a foreign config fingerprint.
    Result<std::unique_ptr<CampaignJournal>> journal =
        CampaignJournal::Create(path, driver.name, 0x1234);
    ASSERT_TRUE(journal.ok()) << journal.error();
  }
  FaultCampaignConfig config = QuickCampaign();
  config.resume = true;
  config.journal_path = path;
  Result<FaultCampaignResult> r = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("different configuration"), std::string::npos)
      << r.status().message();
}

// Engine-level cooperative cancellation: a pre-set abort token makes
// TestDriver wind down immediately (the watchdog's mechanism, in isolation).
TEST(FaultCampaignSupervisorTest, PresetAbortTokenStopsTheEngineImmediately) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config = QuickConfig();
  config.engine.abort_token = std::make_shared<std::atomic<bool>>(true);
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_TRUE(result.value().aborted);
  // The run never got anywhere: the budget check trips before real work.
  EXPECT_LT(result.value().stats.instructions, 1000u);
  EXPECT_TRUE(result.value().bugs.empty());
}

}  // namespace
}  // namespace ddt
