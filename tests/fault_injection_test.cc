// Fault-injection campaign tests (§3.4 error-path testing):
//   - plan generation is deterministic and well-formed;
//   - a campaign over the RTL8029 corpus driver finds the latent
//     MosMapIoSpace-failure cleanup bug that a plain TestDriver run misses;
//   - the same campaign run twice produces the identical bug set (same seed,
//     same driver => same injection schedule);
//   - a fault-found bug replays concretely, with the recorded failure
//     schedule reproduced exactly.
#include "src/engine/fault_injection.h"

#include <gtest/gtest.h>

#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"

namespace ddt {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan / GenerateCampaignPlans units
// ---------------------------------------------------------------------------

TEST(FaultPlanTest, ShouldFailMatchesExactPoints) {
  FaultPlan plan;
  plan.points.push_back({FaultClass::kAllocation, 1});
  plan.points.push_back({FaultClass::kMapIoSpace, 0});
  EXPECT_TRUE(plan.ShouldFail(FaultClass::kAllocation, 1));
  EXPECT_TRUE(plan.ShouldFail(FaultClass::kMapIoSpace, 0));
  EXPECT_FALSE(plan.ShouldFail(FaultClass::kAllocation, 0));
  EXPECT_FALSE(plan.ShouldFail(FaultClass::kMapIoSpace, 1));
  EXPECT_FALSE(plan.ShouldFail(FaultClass::kRegistryRead, 0));
  EXPECT_FALSE(FaultPlan{}.ShouldFail(FaultClass::kAllocation, 0));
}

TEST(FaultPlanTest, EmptyProfileYieldsNoPlans) {
  EXPECT_TRUE(GenerateCampaignPlans(FaultSiteProfile{}, 1, 8, 2, 64).empty());
}

TEST(FaultPlanTest, SinglesComeFirstAndCoverTheProfile) {
  FaultSiteProfile profile;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kAllocation)] = 3;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kMapIoSpace)] = 1;
  std::vector<FaultPlan> plans = GenerateCampaignPlans(profile, 42, 8, 0, 64);
  ASSERT_EQ(plans.size(), 4u);  // 3 allocation singles + 1 map single
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(plans[i].points.size(), 1u);
    EXPECT_EQ(plans[i].points[0].cls, FaultClass::kAllocation);
    EXPECT_EQ(plans[i].points[0].occurrence, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(plans[3].points[0].cls, FaultClass::kMapIoSpace);
}

TEST(FaultPlanTest, OccurrenceCapLimitsSingles) {
  FaultSiteProfile profile;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kAllocation)] = 100;
  std::vector<FaultPlan> plans = GenerateCampaignPlans(profile, 42, 4, 0, 64);
  EXPECT_EQ(plans.size(), 4u);
}

TEST(FaultPlanTest, GenerationIsDeterministicInSeed) {
  FaultSiteProfile profile;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kAllocation)] = 4;
  profile.max_occurrences[static_cast<size_t>(FaultClass::kRegistryRead)] = 2;
  std::vector<FaultPlan> a = GenerateCampaignPlans(profile, 7, 8, 3, 64);
  std::vector<FaultPlan> b = GenerateCampaignPlans(profile, 7, 8, 3, 64);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].points.size(), b[i].points.size());
    for (size_t j = 0; j < a[i].points.size(); ++j) {
      EXPECT_TRUE(a[i].points[j] == b[i].points[j]);
    }
  }
  // Escalation rounds added multi-point combos past the 6 singles.
  EXPECT_GT(a.size(), 6u);
  for (size_t i = 6; i < a.size(); ++i) {
    EXPECT_GE(a[i].points.size(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Campaign over the RTL8029 corpus driver
// ---------------------------------------------------------------------------

DdtConfig QuickConfig() {
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_wall_ms = 120'000;
  config.engine.max_states = 512;
  return config;
}

FaultCampaignConfig QuickCampaign() {
  FaultCampaignConfig config;
  config.base = QuickConfig();
  config.max_passes = 12;
  config.max_occurrences_per_class = 4;
  config.escalation_rounds = 0;
  return config;
}

bool IsMapFailureCleanupBug(const Bug& bug) {
  return bug.type == BugType::kResourceLeak &&
         bug.title.find("map-io-space") != std::string::npos;
}

TEST(FaultCampaignTest, FindsLatentCleanupBugPlainRunMisses) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  // Plain run: the MosMapIoSpace failure path is dead code (BAR0 always
  // maps), so no bug mentions the map fault class.
  Ddt plain(QuickConfig());
  Result<DdtResult> plain_result = plain.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(plain_result.ok()) << plain_result.status().message();
  for (const Bug& bug : plain_result.value().bugs) {
    EXPECT_FALSE(IsMapFailureCleanupBug(bug)) << bug.Format(12);
  }

  // Campaign: the map-io-space#0 plan drives the driver down that path and
  // the cleanup checker flags the still-open configuration handle.
  Result<FaultCampaignResult> campaign =
      RunFaultCampaign(QuickCampaign(), driver.image, driver.pci);
  ASSERT_TRUE(campaign.ok()) << campaign.status().message();
  const FaultCampaignResult& r = campaign.value();
  EXPECT_GT(r.total_faults_injected, 0u);
  EXPECT_GT(r.passes.size(), 1u);

  const Bug* latent = nullptr;
  for (const Bug& bug : r.bugs) {
    if (IsMapFailureCleanupBug(bug)) {
      latent = &bug;
      break;
    }
  }
  ASSERT_NE(latent, nullptr) << r.FormatReport(driver.name);
  // The bug records both the plan that exposed it and the concrete schedule.
  EXPECT_FALSE(latent->fault_plan.empty());
  ASSERT_FALSE(latent->fault_schedule.empty());
  EXPECT_EQ(latent->fault_schedule[0].cls, FaultClass::kMapIoSpace);
  EXPECT_EQ(latent->fault_schedule[0].api, "MosMapIoSpace");
  // The campaign also retains every baseline bug (merge keeps pass-0 output).
  EXPECT_GE(r.bugs.size(), plain_result.value().bugs.size());
}

TEST(FaultCampaignTest, CampaignIsDeterministic) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  auto run = [&] {
    Result<FaultCampaignResult> r = RunFaultCampaign(QuickCampaign(), driver.image, driver.pci);
    EXPECT_TRUE(r.ok());
    std::vector<std::string> keys;
    for (const Bug& bug : r.value().bugs) {
      keys.push_back(std::string(BugTypeName(bug.type)) + "|" + bug.title + "|" +
                     bug.fault_plan.ToString());
    }
    return keys;
  };
  std::vector<std::string> first = run();
  std::vector<std::string> second = run();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

TEST(FaultCampaignTest, FaultFoundBugReplaysConcretely) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config = QuickConfig();
  Result<FaultCampaignResult> campaign =
      RunFaultCampaign(QuickCampaign(), driver.image, driver.pci);
  ASSERT_TRUE(campaign.ok());

  const Bug* latent = nullptr;
  for (const Bug& bug : campaign.value().bugs) {
    if (IsMapFailureCleanupBug(bug)) {
      latent = &bug;
      break;
    }
  }
  ASSERT_NE(latent, nullptr);
  ReplayResult replay = ReplayBug(driver.image, driver.pci, *latent, config);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
}

// ---------------------------------------------------------------------------
// Parallel scheduler determinism
// ---------------------------------------------------------------------------

TEST(FaultCampaignTest, ParallelCampaignMatchesSequentialExactly) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  auto run = [&](uint32_t threads) {
    FaultCampaignConfig config = QuickCampaign();
    config.threads = threads;
    Result<FaultCampaignResult> r = RunFaultCampaign(config, driver.image, driver.pci);
    EXPECT_TRUE(r.ok()) << r.status().message();
    return std::move(r.value());
  };
  FaultCampaignResult sequential = run(1);
  FaultCampaignResult parallel = run(4);

  EXPECT_EQ(sequential.threads_used, 1u);
  EXPECT_GT(parallel.threads_used, 1u);

  // Merged bugs: same set, same order.
  ASSERT_EQ(sequential.bugs.size(), parallel.bugs.size());
  for (size_t i = 0; i < sequential.bugs.size(); ++i) {
    EXPECT_EQ(sequential.bugs[i].Row(), parallel.bugs[i].Row()) << "bug " << i;
    EXPECT_EQ(sequential.bugs[i].fault_plan.ToString(),
              parallel.bugs[i].fault_plan.ToString());
  }
  // Pass table: same plans in the same order with the same outcomes.
  ASSERT_EQ(sequential.passes.size(), parallel.passes.size());
  for (size_t i = 0; i < sequential.passes.size(); ++i) {
    EXPECT_EQ(sequential.passes[i].plan.ToString(), parallel.passes[i].plan.ToString());
    EXPECT_EQ(sequential.passes[i].bugs_found, parallel.passes[i].bugs_found) << "pass " << i;
    EXPECT_EQ(sequential.passes[i].bugs_new, parallel.passes[i].bugs_new) << "pass " << i;
    EXPECT_EQ(sequential.passes[i].stats.instructions, parallel.passes[i].stats.instructions)
        << "pass " << i;
  }
  // Aggregates over deterministic per-pass counters agree too.
  EXPECT_EQ(sequential.total_faults_injected, parallel.total_faults_injected);
  EXPECT_EQ(sequential.total_stats.instructions, parallel.total_stats.instructions);
  EXPECT_EQ(sequential.total_solver_stats.queries, parallel.total_solver_stats.queries);
}

// ---------------------------------------------------------------------------
// Plain runs stay fault-free
// ---------------------------------------------------------------------------

TEST(FaultCampaignTest, NoPlanMeansNoInjections) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  Ddt ddt(QuickConfig());
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().stats.faults_injected, 0u);
  for (const Bug& bug : result.value().bugs) {
    EXPECT_TRUE(bug.fault_schedule.empty());
    EXPECT_TRUE(bug.fault_plan.empty());
  }
  // The baseline still profiles fault-eligible sites for the campaign.
  EXPECT_FALSE(ddt.engine().fault_site_profile().Empty());
}

}  // namespace
}  // namespace ddt
