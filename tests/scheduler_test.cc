// Tests for the engine's scheduler: DPC and timer callback delivery, entry
// ordering, guided-replay determinism, and the eager-COW mode's behavioral
// equivalence.
#include <gtest/gtest.h>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

PciDescriptor SchedPci() {
  PciDescriptor pci;
  pci.vendor_id = 2;
  pci.device_id = 2;
  pci.bars.push_back(PciBar{0x100});
  return pci;
}

DdtResult RunSchedToy(const std::string& source, DdtConfig config = DdtConfig()) {
  Result<AssembledDriver> assembled = Assemble(source);
  EXPECT_TRUE(assembled.ok()) << assembled.error();
  config.engine.max_instructions = 300000;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(assembled.value().image, SchedPci());
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.take();
}

// A DPC queued by the ISR must run (at DISPATCH, outside the interrupted
// entry point). The DPC null-derefs, so "the bug fired with kDpc context"
// proves both delivery and context bookkeeping.
TEST(SchedulerTest, DpcQueuedFromIsrRuns) {
  DdtResult result = RunSchedToy(R"(
  .driver "toy_dpc"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    push lr
    la r0, isr
    movi r1, 0
    kcall MosRegisterInterrupt
    movi r0, 10
    kcall MosStallExecution
    movi r0, 0
    pop lr
    ret
  .func isr
    push lr
    la r0, the_dpc
    movi r1, 0
    kcall MosQueueDpc
    pop lr
    ret
  .func the_dpc
    movi r1, 0
    ld32 r2, [r1+0]          ; null deref inside the DPC
    ret
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  ASSERT_FALSE(result.bugs.empty());
  bool dpc_bug = false;
  for (const Bug& bug : result.bugs) {
    dpc_bug |= bug.context == ExecContextKind::kDpc;
  }
  EXPECT_TRUE(dpc_bug) << result.bugs.front().Format(8);
}

// A timer armed during Initialize fires after the entry returns; the timer
// context is tracked.
TEST(SchedulerTest, ArmedTimerFiresOnce) {
  DdtResult result = RunSchedToy(R"(
  .driver "toy_timer"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    push lr
    la r0, timer_block
    la r1, tick
    movi r2, 0
    kcall MosInitializeTimer
    la r0, timer_block
    movi r1, 50
    kcall MosSetTimer
    movi r0, 0
    pop lr
    ret
  .func tick
    movi r1, 0
    ld32 r2, [r1+0]          ; null deref inside the timer callback
    ret
  .data
  timer_block:
    .space 16
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  ASSERT_FALSE(result.bugs.empty());
  bool timer_bug = false;
  for (const Bug& bug : result.bugs) {
    timer_bug |= bug.context == ExecContextKind::kTimer;
  }
  EXPECT_TRUE(timer_bug) << result.bugs.front().Format(8);
}

// A cancelled timer must NOT fire.
TEST(SchedulerTest, CancelledTimerDoesNotFire) {
  DdtResult result = RunSchedToy(R"(
  .driver "toy_timer2"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret
  .func ep_init
    push lr
    la r0, timer_block
    la r1, tick
    movi r2, 0
    kcall MosInitializeTimer
    la r0, timer_block
    movi r1, 50
    kcall MosSetTimer
    la r0, timer_block
    kcall MosCancelTimer
    movi r0, 0
    pop lr
    ret
  .func tick
    movi r1, 0
    ld32 r2, [r1+0]          ; would crash if the timer ever fired
    ret
  .data
  timer_block:
    .space 16
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)");
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().Format(8);
}

// The eager-copy forking ablation must be behaviorally identical: same bugs,
// same coverage on a full corpus driver.
TEST(SchedulerTest, EagerCowModeFindsTheSameBugs) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig chained;
  chained.engine.max_instructions = 2'000'000;
  chained.engine.max_states = 512;
  DdtConfig eager = chained;
  eager.engine.eager_cow = true;

  Ddt a(chained);
  DdtResult ra = a.TestDriver(driver.image, driver.pci).take();
  Ddt b(eager);
  DdtResult rb = b.TestDriver(driver.image, driver.pci).take();

  ASSERT_EQ(ra.bugs.size(), rb.bugs.size());
  for (size_t i = 0; i < ra.bugs.size(); ++i) {
    EXPECT_EQ(ra.bugs[i].title, rb.bugs[i].title);
  }
  EXPECT_EQ(ra.covered_blocks, rb.covered_blocks);
  EXPECT_EQ(ra.stats.instructions, rb.stats.instructions);
  EXPECT_GT(rb.mem_stats.bytes_copied, 0u);  // eager mode really copied
  EXPECT_EQ(ra.mem_stats.bytes_copied, 0u);  // chained mode never did
}

// Guided replay explores exactly one path: no forks, no extra states.
TEST(SchedulerTest, GuidedReplayIsSinglePath) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;
  Ddt ddt(config);
  DdtResult found = ddt.TestDriver(driver.image, driver.pci).take();
  ASSERT_FALSE(found.bugs.empty());

  DdtConfig replay_config = config;
  EngineConfig& ec = replay_config.engine;
  ec.guided = true;
  ec.enable_symbolic_interrupts = false;
  const Bug& bug = found.bugs.front();
  ec.forced_interrupt_schedule = bug.interrupt_schedule;
  ec.forced_alternatives = bug.alternatives;
  for (const SolvedInput& input : bug.inputs) {
    ec.guided_inputs[OriginKeyString(input.origin)] = input.value;
  }
  Ddt replay(replay_config);
  DdtResult replayed = replay.TestDriver(driver.image, driver.pci).take();
  EXPECT_EQ(replayed.stats.forks, 0u);
  EXPECT_LE(replayed.stats.states_created, 1u);
}

}  // namespace
}  // namespace ddt
