// Bug-report serialization tests, ending with the headline property: a bug
// found in one process, saved to disk, loaded back, still replays.
#include "src/core/bug_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/drivers/corpus.h"

namespace ddt {
namespace {

Bug MakeBug() {
  Bug bug;
  bug.type = BugType::kRaceCondition;
  bug.title = "BSOD 0xDE: timer never initialized";
  bug.details = "line one\nline two with \\backslash";
  bug.driver = "rtl8029";
  bug.checker = "engine";
  bug.pc = 0x10450;
  bug.state_id = 42;
  bug.context = ExecContextKind::kIsr;
  SolvedInput input;
  input.var_name = "hw_rtl8029_0_0";
  input.origin.source = VarOrigin::Source::kHardwareRead;
  input.origin.label = "rtl8029";
  input.origin.aux = 0;
  input.origin.seq = 0;
  input.width = 32;
  input.value = 1;
  input.proximate = true;
  bug.inputs.push_back(input);
  bug.interrupt_schedule = {14};
  bug.alternatives.emplace_back(3, "MosAllocatePool-fails");
  bug.workload_trail = {0};
  return bug;
}

TEST(BugIoTest, RoundTripPreservesReplayFields) {
  std::vector<Bug> bugs = {MakeBug()};
  std::string text = SerializeBugs(bugs);
  Result<std::vector<Bug>> loaded = DeserializeBugs(text);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), 1u);
  const Bug& bug = loaded.value()[0];
  EXPECT_EQ(bug.type, BugType::kRaceCondition);
  EXPECT_EQ(bug.title, "BSOD 0xDE: timer never initialized");
  EXPECT_EQ(bug.driver, "rtl8029");
  EXPECT_EQ(bug.pc, 0x10450u);
  EXPECT_EQ(bug.context, ExecContextKind::kIsr);
  ASSERT_EQ(bug.inputs.size(), 1u);
  EXPECT_EQ(bug.inputs[0].var_name, "hw_rtl8029_0_0");
  EXPECT_EQ(bug.inputs[0].origin.source, VarOrigin::Source::kHardwareRead);
  EXPECT_EQ(bug.inputs[0].origin.label, "rtl8029");
  EXPECT_EQ(bug.inputs[0].value, 1u);
  EXPECT_TRUE(bug.inputs[0].proximate);
  ASSERT_EQ(bug.interrupt_schedule.size(), 1u);
  EXPECT_EQ(bug.interrupt_schedule[0], 14u);
  ASSERT_EQ(bug.alternatives.size(), 1u);
  EXPECT_EQ(bug.alternatives[0].first, 3u);
  EXPECT_EQ(bug.alternatives[0].second, "MosAllocatePool-fails");
  ASSERT_EQ(bug.workload_trail.size(), 1u);
}

TEST(BugIoTest, MultipleBugs) {
  std::vector<Bug> bugs = {MakeBug(), MakeBug(), MakeBug()};
  bugs[1].title = "second";
  bugs[2].title = "third";
  Result<std::vector<Bug>> loaded = DeserializeBugs(SerializeBugs(bugs));
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value()[1].title, "second");
  EXPECT_EQ(loaded.value()[2].title, "third");
}

TEST(BugIoTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeBugs("not a report").ok());
  EXPECT_FALSE(DeserializeBugs("ddt-bug-report v1\nbug\n").ok());  // truncated
}

TEST(BugIoTest, EscapingSurvivesNewlinesAndBackslashes) {
  std::vector<Bug> bugs = {MakeBug()};
  Result<std::vector<Bug>> loaded = DeserializeBugs(SerializeBugs(bugs));
  ASSERT_TRUE(loaded.ok());
  EXPECT_NE(loaded.value()[0].details.find("line one\nline two"), std::string::npos);
}

TEST(BugIoTest, SavedBugStillReplaysAfterLoad) {
  // Find the rtl8029 bugs, save the report, load it back, replay every bug
  // from the deserialized evidence alone.
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  DdtConfig config;
  config.engine.max_instructions = 2'000'000;
  config.engine.max_states = 512;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(driver.image, driver.pci);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.value().bugs.empty());

  std::string path = "/tmp/ddt_bug_io_test.report";
  ASSERT_TRUE(SaveBugsFile(path, result.value().bugs).ok());
  Result<std::vector<Bug>> loaded = LoadBugsFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  ASSERT_EQ(loaded.value().size(), result.value().bugs.size());

  for (const Bug& bug : loaded.value()) {
    ReplayResult replay = ReplayBug(driver.image, driver.pci, bug, config);
    EXPECT_TRUE(replay.reproduced)
        << "loaded bug failed to replay: " << bug.Row() << " — " << replay.detail;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ddt
