// Regression guard for the observability kill switches: turning metrics,
// profiling, and tracing fully on must not perturb the deterministic campaign
// report by a single byte, and the deterministic report must never grow a
// timing- or host-dependent field.
#include <gtest/gtest.h>

#include <string>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/obs/trace_events.h"

namespace ddt {
namespace {

FaultCampaignConfig QuickCampaign() {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 120'000;
  config.base.engine.max_states = 512;
  config.max_passes = 12;
  config.max_occurrences_per_class = 4;
  config.escalation_rounds = 0;
  return config;
}

TEST(ReportDeterminismTest, DeterministicReportIsByteIdenticalWithObsOnAndOff) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  // Everything off: no tracer, no metrics, no profile.
  FaultCampaignConfig off = QuickCampaign();
  off.collect_metrics = false;
  off.collect_profile = false;
  obs::Tracer::Get().Disable();
  Result<FaultCampaignResult> off_result = RunFaultCampaign(off, driver.image, driver.pci);
  ASSERT_TRUE(off_result.ok()) << off_result.status().message();

  // Everything on: tracer recording, per-pass metrics, per-pass profiles.
  FaultCampaignConfig on = QuickCampaign();
  on.collect_metrics = true;
  on.collect_profile = true;
  obs::Tracer::Get().Enable();
  Result<FaultCampaignResult> on_result = RunFaultCampaign(on, driver.image, driver.pci);
  obs::Tracer::Get().Disable();
  ASSERT_TRUE(on_result.ok()) << on_result.status().message();

  // Observability actually ran: the on-run produced metrics, profile entries,
  // and trace events.
  EXPECT_FALSE(on_result.value().metrics.empty());
  EXPECT_FALSE(on_result.value().profile.empty());
  EXPECT_FALSE(obs::Tracer::Get().Collect().empty());
  EXPECT_TRUE(off_result.value().metrics.counters.empty());
  EXPECT_TRUE(off_result.value().profile.empty());

  // The exploration itself is untouched: same bug set, same pass structure.
  ASSERT_EQ(on_result.value().bugs.size(), off_result.value().bugs.size());
  ASSERT_EQ(on_result.value().passes.size(), off_result.value().passes.size());

  // And the deterministic report is byte-identical.
  std::string off_report = off_result.value().FormatReport(driver.name, /*include_volatile=*/false);
  std::string on_report = on_result.value().FormatReport(driver.name, /*include_volatile=*/false);
  EXPECT_EQ(off_report, on_report);
}

TEST(ReportDeterminismTest, DeterministicReportHasNoTimingOrHostDependentFields) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FaultCampaignConfig config = QuickCampaign();
  config.collect_metrics = true;
  config.collect_profile = true;
  Result<FaultCampaignResult> result = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(result.ok()) << result.status().message();

  std::string report = result.value().FormatReport(driver.name, /*include_volatile=*/false);
  ASSERT_FALSE(report.empty());

  // The volatile report DOES carry these; the deterministic one must not.
  // " ms"/"wall" catch every timing line, "thread"/"inline" the scheduler
  // line, "resumed" the journal-restore counter, "slowest"/"profil" the
  // profiler sections, and "SAT calls"/"model-reuse"/"cache" every counter
  // that depends on cache temperature (per-solver, model-reuse, or the
  // shared cross-pass cache) rather than on exploration alone.
  // "superblock" guards the tier-2 counters: which instructions tier 2
  // retires is an implementation detail, never a deterministic result.
  for (const char* forbidden :
       {" ms", "wall", "thread", "inline", "slowest", "resumed", "profil",
        "SAT calls", "model-reuse", "cache", "superblock"}) {
    EXPECT_EQ(report.find(forbidden), std::string::npos)
        << "deterministic report leaks host-dependent field '" << forbidden << "':\n"
        << report;
  }

  // Sanity check on the volatile form: it is a strict superset that does
  // include the profiler section (collect_profile was on).
  std::string volatile_report = result.value().FormatReport(driver.name);
  EXPECT_NE(volatile_report.find("slowest"), std::string::npos) << volatile_report;
  EXPECT_NE(volatile_report.find("hot fault sites"), std::string::npos) << volatile_report;
}

}  // namespace
}  // namespace ddt
