// Tests for the cross-pass shared solver cache (src/solver/shared_cache):
// canonical query fingerprints (pointer- and var-id-independent), the
// sharded collision-safe store, on-disk persistence, solver integration
// (verdict hits, the counterexample fast path, model-path determinism), and
// the campaign-level contract that the deterministic report is byte-identical
// shared cache off vs cold vs warm-from-disk at any thread count.
#include "src/solver/shared_cache.h"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/core/ddt.h"
#include "src/drivers/corpus.h"
#include "src/expr/eval.h"
#include "src/solver/solver.h"
#include "src/support/subprocess.h"

namespace ddt {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "ddt_shared_cache_" + name;
}

// --- Canonicalization -------------------------------------------------------

TEST(CanonicalizerTest, SameQueryInDifferentContextsFingerprintsIdentically) {
  // Context 1: variables created in one order.
  ExprContext ctx1;
  ExprRef a1 = ctx1.Var(32, "a");
  ExprRef b1 = ctx1.Var(32, "b");
  std::vector<ExprRef> q1 = {ctx1.Eq(ctx1.Add(a1, b1), ctx1.Const(5, 32)),
                             ctx1.Ult(a1, ctx1.Const(10, 32))};

  // Context 2: junk interning first, then the variables in the *opposite*
  // creation order, so both the pointers and the variable ids differ.
  ExprContext ctx2;
  ctx2.Var(8, "junk0");
  ctx2.Const(0xDEAD, 32);
  ExprRef b2 = ctx2.Var(32, "bee");
  ExprRef a2 = ctx2.Var(32, "ay");
  ctx2.Mul(a2, b2);  // unrelated construction shifts intern order too
  std::vector<ExprRef> q2 = {ctx2.Eq(ctx2.Add(a2, b2), ctx2.Const(5, 32)),
                             ctx2.Ult(a2, ctx2.Const(10, 32))};

  QueryCanonicalizer canon1;
  QueryCanonicalizer canon2;
  CanonicalQuery c1 = canon1.Canonicalize(q1);
  CanonicalQuery c2 = canon2.Canonicalize(q2);
  EXPECT_EQ(c1.text, c2.text);
  EXPECT_EQ(c1.fingerprint, c2.fingerprint);
  // The remap tables point back at each context's own variable ids, in the
  // same canonical (first-visit) order.
  ASSERT_EQ(c1.local_vars.size(), 2u);
  ASSERT_EQ(c2.local_vars.size(), 2u);
  EXPECT_EQ(c1.local_vars[0], a1->var_id());
  EXPECT_EQ(c1.local_vars[1], b1->var_id());
  EXPECT_EQ(c2.local_vars[0], a2->var_id());
  EXPECT_EQ(c2.local_vars[1], b2->var_id());
}

TEST(CanonicalizerTest, StructurallyDifferentQueriesDiffer) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  QueryCanonicalizer canon;
  CanonicalQuery ult = canon.Canonicalize({ctx.Ult(x, ctx.Const(10, 32))});
  CanonicalQuery ule = canon.Canonicalize({ctx.Ule(x, ctx.Const(10, 32))});
  CanonicalQuery other_const = canon.Canonicalize({ctx.Ult(x, ctx.Const(11, 32))});
  EXPECT_NE(ult.text, ule.text);
  EXPECT_NE(ult.fingerprint, ule.fingerprint);
  EXPECT_NE(ult.text, other_const.text);
}

TEST(CanonicalizerTest, ConstraintListOrderMattersButDuplicatesDrop) {
  // List order drives canonical variable numbering, so it is part of the
  // key; duplicate pointers collapse to the first occurrence.
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  ExprRef c1 = ctx.Ult(x, ctx.Const(10, 32));
  ExprRef c2 = ctx.Ult(ctx.Const(2, 32), x);
  QueryCanonicalizer canon;
  CanonicalQuery with_dup = canon.Canonicalize({c1, c2, c1});
  CanonicalQuery without = canon.Canonicalize({c1, c2});
  EXPECT_EQ(with_dup.text, without.text);
}

TEST(CanonicalizerTest, VariableNamesDoNotAffectTheFingerprint) {
  ExprContext ctx1;
  ExprContext ctx2;
  ExprRef x = ctx1.Var(32, "hardware_read_0");
  ExprRef y = ctx2.Var(32, "registry:NetworkAddress");
  QueryCanonicalizer canon1;
  QueryCanonicalizer canon2;
  EXPECT_EQ(canon1.Canonicalize({ctx1.Eq(x, ctx1.Const(7, 32))}).fingerprint,
            canon2.Canonicalize({ctx2.Eq(y, ctx2.Const(7, 32))}).fingerprint);
}

// --- Store: collision safety, eviction --------------------------------------

TEST(SharedQueryCacheTest, CollidingFingerprintsAreDisambiguatedByFullKey) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  QueryCanonicalizer canon;
  CanonicalQuery sat_query = canon.Canonicalize({ctx.Eq(x, ctx.Const(1, 32))});
  CanonicalQuery unsat_query = canon.Canonicalize(
      {ctx.Eq(x, ctx.Const(1, 32)), ctx.Eq(x, ctx.Const(2, 32))});
  ASSERT_NE(sat_query.text, unsat_query.text);
  // Force the collision the FNV hash makes astronomically unlikely.
  sat_query.fingerprint = 42;
  unsat_query.fingerprint = 42;

  SharedQueryCache cache;
  cache.Store(sat_query, true, {{0, 1}});
  cache.Store(unsat_query, false, {});

  SharedQueryCache::LookupResult r1 = cache.Lookup(sat_query);
  ASSERT_TRUE(r1.hit);
  EXPECT_TRUE(r1.sat);
  ASSERT_EQ(r1.model.size(), 1u);
  EXPECT_EQ(r1.model[0].second, 1u);

  SharedQueryCache::LookupResult r2 = cache.Lookup(unsat_query);
  ASSERT_TRUE(r2.hit);
  EXPECT_FALSE(r2.sat);
}

TEST(SharedQueryCacheTest, EvictionKeepsTheStoreBounded) {
  SharedCacheConfig config;
  config.num_shards = 1;  // deterministic bound accounting
  config.max_entries = 4;
  SharedQueryCache cache(config);

  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  QueryCanonicalizer canon;
  for (uint64_t i = 0; i < 10; ++i) {
    CanonicalQuery q = canon.Canonicalize({ctx.Eq(x, ctx.Const(i, 32))});
    cache.Store(q, true, {{0, i}});
  }
  SharedQueryCache::Stats stats = cache.stats();
  EXPECT_LE(stats.entries, 4u);
  EXPECT_EQ(stats.evictions, 6u);
  // The most recently stored entry survived; the first did not.
  CanonicalQuery newest = canon.Canonicalize({ctx.Eq(x, ctx.Const(9ull, 32))});
  CanonicalQuery oldest = canon.Canonicalize({ctx.Eq(x, ctx.Const(0ull, 32))});
  EXPECT_TRUE(cache.Lookup(newest).hit);
  EXPECT_FALSE(cache.Lookup(oldest).hit);
}

// --- Persistence -------------------------------------------------------------

TEST(SharedQueryCacheTest, SaveLoadRoundTrip) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  QueryCanonicalizer canon;
  CanonicalQuery sat_query = canon.Canonicalize({ctx.Eq(x, ctx.Const(3, 32))});
  CanonicalQuery unsat_query = canon.Canonicalize(
      {ctx.Eq(x, ctx.Const(3, 32)), ctx.Eq(x, ctx.Const(4, 32))});

  std::string path = TempPath("roundtrip.bin");
  {
    SharedQueryCache cache;
    cache.Store(sat_query, true, {{0, 3}});
    cache.Store(unsat_query, false, {});
    Status saved = cache.SaveToFile(path);
    ASSERT_TRUE(saved.ok()) << saved.message();
    EXPECT_EQ(cache.stats().saved_entries, 2u);
  }
  SharedQueryCache reloaded;
  EXPECT_EQ(reloaded.LoadFromFile(path), 2u);
  EXPECT_EQ(reloaded.stats().loaded_entries, 2u);
  EXPECT_EQ(reloaded.stats().load_errors, 0u);

  SharedQueryCache::LookupResult r1 = reloaded.Lookup(sat_query);
  ASSERT_TRUE(r1.hit);
  EXPECT_TRUE(r1.sat);
  ASSERT_EQ(r1.model.size(), 1u);
  EXPECT_EQ(r1.model[0].first, 0u);
  EXPECT_EQ(r1.model[0].second, 3u);
  SharedQueryCache::LookupResult r2 = reloaded.Lookup(unsat_query);
  ASSERT_TRUE(r2.hit);
  EXPECT_FALSE(r2.sat);
  std::remove(path.c_str());
}

TEST(SharedQueryCacheTest, ConcurrentForkedWritersElectOneAndNeverTearTheFile) {
  // Two processes hammering SaveToFile on the same path share the same tmp
  // file; without the flock election one writer can rename the other's
  // half-written bytes into place. Each writer saves a differently-sized
  // cache many times — afterwards the file must parse cleanly and hold
  // exactly one writer's complete entry set, never a blend or a torn tail.
  std::string path = TempPath("elected.bin");
  std::remove(path.c_str());
  constexpr int kRounds = 40;
  auto writer_main = [&path](size_t entries) -> int {
    ExprContext ctx;
    ExprRef x = ctx.Var(32, "x");
    QueryCanonicalizer canon;
    SharedQueryCache cache;
    for (uint64_t i = 0; i < entries; ++i) {
      cache.Store(canon.Canonicalize({ctx.Eq(x, ctx.Const(i, 32))}), true, {{0, i}});
    }
    for (int round = 0; round < kRounds; ++round) {
      if (!cache.SaveToFile(path).ok()) {
        return 1;
      }
    }
    return 0;
  };
  Result<ChildProcess> a = SpawnChild([&](int, int) { return writer_main(7); });
  Result<ChildProcess> b = SpawnChild([&](int, int) { return writer_main(13); });
  ASSERT_TRUE(a.ok()) << a.status().message();
  ASSERT_TRUE(b.ok()) << b.status().message();
  for (ChildProcess* child : {&a.value(), &b.value()}) {
    int status = 0;
    while (!TryReap(child->pid, &status)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0) << DescribeExit(status);
    child->CloseFds();
  }

  SharedQueryCache loaded;
  size_t n = loaded.LoadFromFile(path);
  EXPECT_EQ(loaded.stats().load_errors, 0u);
  EXPECT_TRUE(n == 7u || n == 13u) << "blended or torn save: " << n << " entries";
  std::remove(path.c_str());
  std::remove((path + ".lock").c_str());
}

TEST(SharedQueryCacheTest, MissingFileIsSilentlyCold) {
  SharedQueryCache cache;
  EXPECT_EQ(cache.LoadFromFile(TempPath("never_written.bin")), 0u);
  EXPECT_EQ(cache.stats().load_errors, 0u);
}

// Helper: save a small cache and return the file bytes.
std::string SavedCacheBytes(const std::string& path) {
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  QueryCanonicalizer canon;
  SharedQueryCache cache;
  for (uint64_t i = 0; i < 5; ++i) {
    cache.Store(canon.Canonicalize({ctx.Eq(x, ctx.Const(i, 32))}), true, {{0, i}});
  }
  Status saved = cache.SaveToFile(path);
  EXPECT_TRUE(saved.ok()) << saved.message();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return bytes;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

TEST(SharedQueryCacheTest, TruncatedFileIsIgnoredWithCounter) {
  std::string path = TempPath("truncated.bin");
  std::string bytes = SavedCacheBytes(path);
  ASSERT_GT(bytes.size(), 16u);
  WriteBytes(path, bytes.substr(0, bytes.size() - 9));

  SharedQueryCache cache;
  EXPECT_EQ(cache.LoadFromFile(path), 0u);
  EXPECT_EQ(cache.stats().load_errors, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  std::remove(path.c_str());
}

TEST(SharedQueryCacheTest, CorruptPayloadIsIgnoredWithCounter) {
  std::string path = TempPath("corrupt.bin");
  std::string bytes = SavedCacheBytes(path);
  bytes[bytes.size() / 2] ^= 0x5A;  // flip a payload byte under the CRC
  WriteBytes(path, bytes);

  SharedQueryCache cache;
  EXPECT_EQ(cache.LoadFromFile(path), 0u);
  EXPECT_EQ(cache.stats().load_errors, 1u);
  std::remove(path.c_str());
}

TEST(SharedQueryCacheTest, VersionMismatchIsRejectedCleanly) {
  std::string path = TempPath("version.bin");
  std::string bytes = SavedCacheBytes(path);
  bytes[6] = static_cast<char>(SharedQueryCache::kFormatVersion + 1);  // LSB of the version
  WriteBytes(path, bytes);

  SharedQueryCache cache;
  EXPECT_EQ(cache.LoadFromFile(path), 0u);
  EXPECT_EQ(cache.stats().load_errors, 1u);
  std::remove(path.c_str());
}

// --- Solver integration -----------------------------------------------------

SolverConfig SharedConfig(SharedQueryCache* cache) {
  SolverConfig config;
  config.shared_cache = cache;
  return config;
}

TEST(SolverSharedCacheTest, VerdictHitsAcrossContextsWithoutSatCalls) {
  SharedQueryCache cache;

  ExprContext ctx1;
  Solver s1(&ctx1, SharedConfig(&cache));
  ExprRef x1 = ctx1.Var(32, "x");
  std::vector<ExprRef> cons1 = {ctx1.Ult(x1, ctx1.Const(10, 32))};
  EXPECT_TRUE(s1.MayBeTrue(cons1, ctx1.Eq(x1, ctx1.Const(3, 32))));
  EXPECT_EQ(s1.stats().sat_calls, 1u);
  EXPECT_EQ(s1.stats().shared_cache_stores, 1u);

  // Same logical query from a different context with shifted variable ids:
  // answered from the shared cache, no SAT call, model re-verified.
  ExprContext ctx2;
  ctx2.Var(16, "padding");
  Solver s2(&ctx2, SharedConfig(&cache));
  ExprRef x2 = ctx2.Var(32, "y");
  std::vector<ExprRef> cons2 = {ctx2.Ult(x2, ctx2.Const(10, 32))};
  EXPECT_TRUE(s2.MayBeTrue(cons2, ctx2.Eq(x2, ctx2.Const(3, 32))));
  EXPECT_EQ(s2.stats().sat_calls, 0u);
  EXPECT_EQ(s2.stats().shared_cache_hits, 1u);
  EXPECT_EQ(s2.stats().shared_cache_verify_failures, 0u);
}

TEST(SolverSharedCacheTest, UnsatPropagatesAcrossContexts) {
  SharedQueryCache cache;

  ExprContext ctx1;
  Solver s1(&ctx1, SharedConfig(&cache));
  ExprRef x1 = ctx1.Var(32, "x");
  std::vector<ExprRef> cons1 = {ctx1.Ult(x1, ctx1.Const(3, 32))};
  EXPECT_FALSE(s1.MayBeTrue(cons1, ctx1.Eq(x1, ctx1.Const(7, 32))));
  ASSERT_GE(s1.stats().sat_calls, 1u);

  ExprContext ctx2;
  Solver s2(&ctx2, SharedConfig(&cache));
  ExprRef x2 = ctx2.Var(32, "x");
  std::vector<ExprRef> cons2 = {ctx2.Ult(x2, ctx2.Const(3, 32))};
  EXPECT_FALSE(s2.MayBeTrue(cons2, ctx2.Eq(x2, ctx2.Const(7, 32))));
  EXPECT_EQ(s2.stats().sat_calls, 0u);
  EXPECT_EQ(s2.stats().shared_cache_hits, 1u);
}

TEST(SolverSharedCacheTest, ModelRequestsAlwaysSolveFreshAndMatchCacheOff) {
  // Warm the shared cache with a verdict + model from one context.
  SharedQueryCache cache;
  ExprContext ctx1;
  Solver s1(&ctx1, SharedConfig(&cache));
  ExprRef x1 = ctx1.Var(32, "x");
  std::vector<ExprRef> cons1 = {ctx1.Ult(x1, ctx1.Const(100, 32)),
                                ctx1.Ult(ctx1.Const(10, 32), x1)};
  EXPECT_TRUE(s1.IsSatisfiable(cons1, nullptr));

  // A model-requesting query against the warm cache must not be served the
  // cached model: it solves fresh, so its model is identical to what a
  // cache-off solver produces for the same query.
  ExprContext ctx2;
  Solver warm(&ctx2, SharedConfig(&cache));
  ExprRef x2 = ctx2.Var(32, "x");
  std::vector<ExprRef> cons2 = {ctx2.Ult(x2, ctx2.Const(100, 32)),
                                ctx2.Ult(ctx2.Const(10, 32), x2)};
  Assignment warm_model;
  EXPECT_TRUE(warm.IsSatisfiable(cons2, nullptr, &warm_model));
  EXPECT_EQ(warm.stats().sat_calls, 1u) << "cached model must not be served to model requests";

  ExprContext ctx3;
  Solver off(&ctx3, SolverConfig());
  ExprRef x3 = ctx3.Var(32, "x");
  std::vector<ExprRef> cons3 = {ctx3.Ult(x3, ctx3.Const(100, 32)),
                                ctx3.Ult(ctx3.Const(10, 32), x3)};
  Assignment off_model;
  EXPECT_TRUE(off.IsSatisfiable(cons3, nullptr, &off_model));
  EXPECT_EQ(warm_model.Get(x2->var_id()), off_model.Get(x3->var_id()))
      << "shared cache changed the concretization value";
}

TEST(SolverSharedCacheTest, CounterexampleFastPathServesSupersets) {
  SharedQueryCache cache;

  // Context 1 answers the prefix {x == 3} and caches its model.
  ExprContext ctx1;
  Solver s1(&ctx1, SharedConfig(&cache));
  ExprRef x1 = ctx1.Var(32, "x");
  std::vector<ExprRef> prefix1 = {ctx1.Eq(x1, ctx1.Const(3, 32))};
  EXPECT_TRUE(s1.IsSatisfiable(prefix1, nullptr));

  // Context 2 asks {x == 3} AND x < 10 — an exact miss, but the cached
  // prefix model (x = 3) satisfies the superset, so no SAT call is needed.
  ExprContext ctx2;
  SolverConfig config2 = SharedConfig(&cache);
  config2.enable_model_reuse = false;  // isolate the shared-cache fast path
  Solver s2(&ctx2, config2);
  ExprRef x2 = ctx2.Var(32, "x");
  std::vector<ExprRef> prefix2 = {ctx2.Eq(x2, ctx2.Const(3, 32))};
  EXPECT_TRUE(s2.MayBeTrue(prefix2, ctx2.Ult(x2, ctx2.Const(10, 32))));
  EXPECT_EQ(s2.stats().sat_calls, 0u);
  EXPECT_EQ(s2.stats().shared_cache_fastpath_hits, 1u);

  // The fast path promoted the superset to an exact entry: a third context
  // hits it directly.
  ExprContext ctx3;
  SolverConfig config3 = SharedConfig(&cache);
  config3.enable_model_reuse = false;
  Solver s3(&ctx3, config3);
  ExprRef x3 = ctx3.Var(32, "x");
  std::vector<ExprRef> prefix3 = {ctx3.Eq(x3, ctx3.Const(3, 32))};
  EXPECT_TRUE(s3.MayBeTrue(prefix3, ctx3.Ult(x3, ctx3.Const(10, 32))));
  EXPECT_EQ(s3.stats().sat_calls, 0u);
  EXPECT_EQ(s3.stats().shared_cache_hits, 1u);
}

TEST(SolverSharedCacheTest, UnsatPrefixDecidesSupersetViaFastPath) {
  SharedQueryCache cache;

  ExprContext ctx1;
  Solver s1(&ctx1, SharedConfig(&cache));
  ExprRef x1 = ctx1.Var(32, "x");
  std::vector<ExprRef> unsat_prefix1 = {ctx1.Eq(x1, ctx1.Const(1, 32)),
                                        ctx1.Eq(x1, ctx1.Const(2, 32))};
  EXPECT_FALSE(s1.IsSatisfiable(unsat_prefix1, nullptr));

  ExprContext ctx2;
  Solver s2(&ctx2, SharedConfig(&cache));
  ExprRef x2 = ctx2.Var(32, "x");
  std::vector<ExprRef> unsat_prefix2 = {ctx2.Eq(x2, ctx2.Const(1, 32)),
                                        ctx2.Eq(x2, ctx2.Const(2, 32))};
  EXPECT_FALSE(s2.MayBeTrue(unsat_prefix2, ctx2.Ult(x2, ctx2.Const(50, 32))));
  EXPECT_EQ(s2.stats().sat_calls, 0u);
  EXPECT_EQ(s2.stats().shared_cache_fastpath_hits, 1u);
}

TEST(SolverSharedCacheTest, BogusCachedModelFailsVerificationAndFallsBackToSat) {
  // Poison the cache with a wrong model for a satisfiable query (simulating
  // a stale or foreign disk entry). The solver must reject it on concrete
  // re-verification and still produce the correct verdict via SAT.
  SharedQueryCache cache;
  ExprContext ctx;
  ExprRef x = ctx.Var(32, "x");
  ExprRef eq = ctx.Eq(x, ctx.Const(3, 32));
  QueryCanonicalizer canon;
  CanonicalQuery q = canon.Canonicalize({eq});
  cache.Store(q, true, {{0, 999}});  // x = 999 does not satisfy x == 3

  Solver solver(&ctx, SharedConfig(&cache));
  EXPECT_TRUE(solver.MayBeTrue({}, eq));
  EXPECT_EQ(solver.stats().shared_cache_verify_failures, 1u);
  EXPECT_EQ(solver.stats().shared_cache_hits, 0u);
  EXPECT_EQ(solver.stats().sat_calls, 1u);
}

TEST(SolverSharedCacheTest, ForcedCollisionsStillYieldCorrectVerdicts) {
  // With every fingerprint collapsed to one value, both the shared cache and
  // the per-solver cache must disambiguate by full key.
  SharedQueryCache cache;
  ExprContext ctx;
  SolverConfig config = SharedConfig(&cache);
  config.testing_collide_cache_keys = true;
  Solver solver(&ctx, config);
  ExprRef x = ctx.Var(32, "x");
  ExprRef sat_cond = ctx.Eq(x, ctx.Const(1, 32));
  std::vector<ExprRef> pin = {ctx.Eq(x, ctx.Const(1, 32))};
  ExprRef contradiction = ctx.Eq(x, ctx.Const(2, 32));

  EXPECT_TRUE(solver.MayBeTrue({}, sat_cond));
  EXPECT_FALSE(solver.MayBeTrue(pin, contradiction));
  // Repeat both: served by (collision-chained) caches, verdicts unchanged.
  EXPECT_TRUE(solver.MayBeTrue({}, sat_cond));
  EXPECT_FALSE(solver.MayBeTrue(pin, contradiction));
}

// --- Concurrency (exercised under TSan in CI) -------------------------------

TEST(SharedQueryCacheTest, ConcurrentStoreLookupSaveIsSafe) {
  SharedCacheConfig config;
  config.max_entries = 64;  // force concurrent eviction too
  SharedQueryCache cache(config);
  std::string path = TempPath("concurrent.bin");

  auto worker = [&cache](unsigned seed) {
    ExprContext ctx;
    ExprRef x = ctx.Var(32, "x");
    QueryCanonicalizer canon;
    for (uint64_t i = 0; i < 200; ++i) {
      uint64_t value = (i + seed) % 100;  // overlapping canonical queries
      CanonicalQuery q = canon.Canonicalize({ctx.Eq(x, ctx.Const(value, 32))});
      if (i % 3 == 0) {
        cache.Store(q, true, {{0, value}});
      } else {
        SharedQueryCache::LookupResult r = cache.Lookup(q);
        if (r.hit) {
          ASSERT_TRUE(r.sat);
          ASSERT_EQ(r.model.size(), 1u);
          ASSERT_EQ(r.model[0].second, value);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back(worker, t * 17);
  }
  for (int i = 0; i < 5; ++i) {
    (void)cache.stats();
    (void)cache.SaveToFile(path);
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::remove(path.c_str());
}

// --- Campaign-level determinism and warm start ------------------------------

FaultCampaignConfig QuickCampaign() {
  FaultCampaignConfig config;
  config.base.engine.max_instructions = 2'000'000;
  config.base.engine.max_wall_ms = 120'000;
  config.base.engine.max_states = 512;
  config.max_passes = 8;
  config.max_occurrences_per_class = 3;
  config.escalation_rounds = 0;
  return config;
}

TEST(SharedCacheCampaignTest, DeterministicReportIdenticalOffColdWarmAtAnyThreadCount) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");

  auto run = [&driver](bool shared, const std::string& path, uint32_t threads,
                       FaultCampaignResult* out_result) {
    FaultCampaignConfig config = QuickCampaign();
    config.threads = threads;
    config.shared_cache = shared;
    config.shared_cache_path = path;
    Result<FaultCampaignResult> result = RunFaultCampaign(config, driver.image, driver.pci);
    EXPECT_TRUE(result.ok()) << result.status().message();
    if (!result.ok()) {
      return std::string();
    }
    std::string report = result.value().FormatReport(driver.name, /*include_volatile=*/false);
    if (out_result != nullptr) {
      *out_result = std::move(result.value());
    }
    return report;
  };

  std::string cache_path = TempPath("campaign.bin");
  std::remove(cache_path.c_str());

  FaultCampaignResult cold_result;
  FaultCampaignResult warm_result;
  std::string off = run(false, "", 1, nullptr);
  std::string cold = run(true, cache_path, 1, &cold_result);
  std::string warm = run(true, cache_path, 1, &warm_result);
  std::string cold4 = run(true, TempPath("campaign4.bin"), 4, nullptr);
  std::string warm4 = run(true, cache_path, 4, nullptr);

  ASSERT_FALSE(off.empty());
  EXPECT_EQ(off, cold) << "cold shared cache changed the deterministic report";
  EXPECT_EQ(off, warm) << "warm shared cache changed the deterministic report";
  EXPECT_EQ(off, cold4) << "cold shared cache at 4 threads changed the deterministic report";
  EXPECT_EQ(off, warm4) << "warm shared cache at 4 threads changed the deterministic report";

  // The cold run actually populated and persisted the cache...
  EXPECT_TRUE(cold_result.shared_cache_used);
  EXPECT_GT(cold_result.total_solver_stats.shared_cache_stores, 0u);
  EXPECT_GT(cold_result.shared_cache_saved_entries, 0u);
  // ...and the warm run actually loaded and hit it.
  EXPECT_GT(warm_result.shared_cache_loaded_entries, 0u);
  EXPECT_GT(warm_result.total_solver_stats.shared_cache_hits +
                warm_result.total_solver_stats.shared_cache_fastpath_hits,
            0u);

  // Cached models never reach the engine unverified, and the bug sets match.
  EXPECT_EQ(cold_result.bugs.size(), warm_result.bugs.size());

  std::remove(cache_path.c_str());
  std::remove(TempPath("campaign4.bin").c_str());
}

TEST(SharedCacheCampaignTest, MetricsAndVolatileReportExposeTheCache) {
  const CorpusDriver& driver = CorpusDriverByName("rtl8029");
  FaultCampaignConfig config = QuickCampaign();
  config.threads = 1;
  config.shared_cache = true;
  config.collect_metrics = true;
  Result<FaultCampaignResult> result = RunFaultCampaign(config, driver.image, driver.pci);
  ASSERT_TRUE(result.ok()) << result.status().message();

  const FaultCampaignResult& r = result.value();
  EXPECT_TRUE(r.shared_cache_used);
  // solver.shared_cache.* metrics are exported (per-pass counters from the
  // engine, store-level instruments from the campaign).
  EXPECT_GT(r.metrics.counters.count("solver.shared_cache.misses"), 0u);
  EXPECT_GT(r.metrics.counters.count("solver.shared_cache.stores"), 0u);
  EXPECT_GT(r.metrics.gauges.count("solver.shared_cache.entries"), 0u);

  std::string volatile_report = r.FormatReport(driver.name, /*include_volatile=*/true);
  EXPECT_NE(volatile_report.find("shared cache:"), std::string::npos) << volatile_report;
  std::string deterministic = r.FormatReport(driver.name, /*include_volatile=*/false);
  EXPECT_EQ(deterministic.find("shared cache"), std::string::npos)
      << "cache-temperature-dependent line leaked into the deterministic report";
}

}  // namespace
}  // namespace ddt
