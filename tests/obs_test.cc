// Tests for the observability subsystem (src/obs): metrics registry
// concurrency and merging, trace-event recording/export round-trips, the
// kill switches, and the per-pass profiler.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace_events.h"

namespace ddt::obs {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// Minimal JSON parser — just enough to verify the exported trace files are
// well-formed and carry the fields chrome://tracing needs. Deliberately
// independent of the exporter (no shared serialization code to hide a bug
// in).
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  bool Has(const std::string& key) const { return fields.count(key) != 0; }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = fields.find(key);
    return it == fields.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = Value(out);
    SkipWs();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }
  bool String(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            out->push_back('?');  // exact code point irrelevant for these tests
            pos_ += 4;
            break;
          }
          default: out->push_back(esc); break;
        }
      } else {
        out->push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // closing quote
    return true;
  }
  bool Value(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipWs();
        std::string key;
        if (!String(&key)) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_++] != ':') {
          return false;
        }
        JsonValue child;
        if (!Value(&child)) {
          return false;
        }
        out->fields.emplace(std::move(key), std::move(child));
        SkipWs();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        JsonValue child;
        if (!Value(&child)) {
          return false;
        }
        out->items.push_back(std::move(child));
        SkipWs();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    // Number.
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterGaugeHistogramBasics) {
  MetricsRegistry registry;
  Counter* c = registry.counter("test.count");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(registry.counter("test.count"), c);

  Gauge* g = registry.gauge("test.depth");
  g->Set(7);
  g->Set(3);
  EXPECT_EQ(g->value(), 3);
  EXPECT_EQ(g->max(), 7);  // high-water mark survives the drop
  g->Add(10);
  EXPECT_EQ(g->value(), 13);
  EXPECT_EQ(g->max(), 13);

  Histogram* h = registry.histogram("test.latency", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0
  h->Observe(5.0);    // bucket 1
  h->Observe(5000.0); // overflow bucket
  EXPECT_EQ(h->count(), 3u);
  EXPECT_DOUBLE_EQ(h->sum(), 5005.5);
  EXPECT_EQ(h->bucket_count(0), 1u);
  EXPECT_EQ(h->bucket_count(1), 1u);
  EXPECT_EQ(h->bucket_count(2), 0u);
  EXPECT_EQ(h->bucket_count(3), 1u);  // +inf
}

// Exercised under TSan in CI: concurrent updates through handles plus
// mid-flight snapshots must be race-free, and the final counts exact.
TEST(MetricsTest, ConcurrentIncrementAndSnapshot) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &go, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      // Registration races against other registrants and the snapshotter.
      Counter* c = registry.counter("shared.count");
      Gauge* g = registry.gauge("shared.depth");
      Histogram* h = registry.histogram("shared.ms", Histogram::LatencyBucketsMs());
      for (int i = 0; i < kIncrements; ++i) {
        c->Add();
        g->Set(t * kIncrements + i);
        h->Observe(static_cast<double>(i % 100));
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Snapshot while the writers run: values are torn-free and monotonic.
  uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    MetricsSnapshot snap = registry.Snapshot();
    auto it = snap.counters.find("shared.count");
    if (it != snap.counters.end()) {
      EXPECT_GE(it->second, last_count);
      last_count = it->second;
    }
  }
  for (std::thread& w : workers) {
    w.join();
  }
  MetricsSnapshot final_snap = registry.Snapshot();
  EXPECT_EQ(final_snap.counters.at("shared.count"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(final_snap.histograms.at("shared.ms").count,
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(final_snap.gauges.at("shared.depth").max,
            static_cast<int64_t>(kThreads - 1) * kIncrements + (kIncrements - 1));
}

TEST(MetricsTest, SnapshotsMergeLikePassStats) {
  // Two per-pass registries merge the way EngineStats::Accumulate folds pass
  // stats: counters and histogram buckets sum, gauges keep the high-water.
  MetricsRegistry pass1;
  MetricsRegistry pass2;
  pass1.counter("engine.instructions")->Add(100);
  pass2.counter("engine.instructions")->Add(250);
  pass2.counter("engine.forks")->Add(3);  // only in pass 2
  pass1.gauge("engine.live_states")->Set(12);
  pass2.gauge("engine.live_states")->Set(5);
  pass1.histogram("solver.query_ms", {1.0, 10.0})->Observe(0.5);
  pass2.histogram("solver.query_ms", {1.0, 10.0})->Observe(4.0);
  pass2.histogram("solver.query_ms", {1.0, 10.0})->Observe(40.0);

  MetricsSnapshot merged = pass1.Snapshot();
  merged.Merge(pass2.Snapshot());
  EXPECT_EQ(merged.counters.at("engine.instructions"), 350u);
  EXPECT_EQ(merged.counters.at("engine.forks"), 3u);
  EXPECT_EQ(merged.gauges.at("engine.live_states").max, 12);
  const MetricsSnapshot::HistogramValue& h = merged.histograms.at("solver.query_ms");
  EXPECT_EQ(h.count, 3u);
  EXPECT_DOUBLE_EQ(h.sum, 44.5);
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 1u);

  // Merging is associative enough for campaign use: order never changes sums.
  MetricsSnapshot reversed = pass2.Snapshot();
  reversed.Merge(pass1.Snapshot());
  EXPECT_EQ(reversed.ToJson(), merged.ToJson());
}

TEST(MetricsTest, MismatchedHistogramBoundsFoldCountAndSumOnly) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.histogram("h", {1.0, 2.0})->Observe(0.5);
  b.histogram("h", {5.0})->Observe(7.0);
  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  const MetricsSnapshot::HistogramValue& h = merged.histograms.at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 7.5);
  EXPECT_EQ(h.bounds.size(), 2u);  // keeps this snapshot's resolution
}

TEST(MetricsTest, ToJsonIsValidAndStable) {
  MetricsRegistry registry;
  registry.counter("z.last")->Add(1);
  registry.counter("a.first")->Add(2);
  registry.gauge("depth \"quoted\"")->Set(-4);
  registry.histogram("lat", {0.5})->Observe(0.25);
  std::string json = registry.Snapshot().ToJson();
  JsonValue parsed;
  ASSERT_TRUE(JsonParser(json).Parse(&parsed)) << json;
  EXPECT_EQ(parsed.At("counters").At("a.first").number, 2);
  EXPECT_EQ(parsed.At("counters").At("z.last").number, 1);
  EXPECT_EQ(parsed.At("gauges").At("depth \"quoted\"").At("value").number, -4);
  EXPECT_EQ(parsed.At("histograms").At("lat").At("count").number, 1);
  // Sorted keys make the serialization deterministic.
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_EQ(json, registry.Snapshot().ToJson());
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

#ifdef DDT_OBS_DISABLED

// The compile-time kill switch: Enable is a no-op, every probe is dead code.
// (The live-tracer tests below only build in the normal configuration.)
TEST(TracerKillSwitchTest, CompileTimeDisabledRecordsNothing) {
  Tracer::Get().Enable();
  EXPECT_FALSE(Tracer::Enabled());
  {
    ScopedSpan span("never.recorded");
    span.Tag("key", "val");
    TraceInstant("also.never");
  }
  EXPECT_TRUE(Tracer::Get().Collect().empty());
  EXPECT_EQ(Tracer::Get().DroppedEvents(), 0u);
  // Exports still work (an empty but valid document).
  std::string path = TempPath("obs_disabled_trace.json");
  std::string error;
  ASSERT_TRUE(Tracer::Get().ExportChromeJson(path, &error)) << error;
  JsonValue root;
  std::string text = ReadFile(path);
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  EXPECT_TRUE(root.At("traceEvents").items.empty());
}

#else  // !DDT_OBS_DISABLED

class TracerTest : public ::testing::Test {
 protected:
  void TearDown() override { Tracer::Get().Disable(); }
};

TEST_F(TracerTest, DisabledModeRecordsNothing) {
  Tracer::Get().Disable();
  ASSERT_FALSE(Tracer::Enabled());
  {
    ScopedSpan span("should.not.record");
    span.Tag("key", "val");
    TraceInstant("also.not.recorded");
  }
  // Enable clears anything previously buffered, so a fresh Enable right
  // after proves the spans above never landed.
  Tracer::Get().Enable();
  EXPECT_TRUE(Tracer::Get().Collect().empty());
  Tracer::Get().Disable();
  // Events emitted while disabled (after a previous enabled period) are
  // dropped too.
  TraceInstant("late.event");
  EXPECT_TRUE(Tracer::Get().Collect().empty());
}

TEST_F(TracerTest, ExportRoundTripPreservesNestingAndThreads) {
  Tracer::Get().Enable();
  std::thread worker([] {
    ScopedSpan outer("worker.outer");
    {
      ScopedSpan inner("worker.inner");
      inner.Tag("result", "sat");
    }
  });
  worker.join();
  {
    ScopedSpan main_span("main.span");
    main_span.Arg("label text");
    TraceInstant("main.instant");
  }
  Tracer::Get().Disable();

  std::string path = TempPath("obs_trace.json");
  std::string error;
  ASSERT_TRUE(Tracer::Get().ExportChromeJson(path, &error)) << error;

  JsonValue root;
  std::string text = ReadFile(path);
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  ASSERT_EQ(root.At("traceEvents").kind, JsonValue::Kind::kArray);
  const std::vector<JsonValue>& events = root.At("traceEvents").items;
  ASSERT_EQ(events.size(), 4u);

  std::map<std::string, const JsonValue*> by_name;
  for (const JsonValue& ev : events) {
    // Every event carries the fields chrome://tracing requires.
    EXPECT_TRUE(ev.Has("name"));
    EXPECT_TRUE(ev.Has("ph"));
    EXPECT_TRUE(ev.Has("pid"));
    EXPECT_TRUE(ev.Has("tid"));
    EXPECT_TRUE(ev.Has("ts"));
    by_name[ev.At("name").str] = &ev;
  }
  ASSERT_TRUE(by_name.count("worker.outer"));
  ASSERT_TRUE(by_name.count("worker.inner"));
  ASSERT_TRUE(by_name.count("main.span"));
  ASSERT_TRUE(by_name.count("main.instant"));

  const JsonValue& outer = *by_name["worker.outer"];
  const JsonValue& inner = *by_name["worker.inner"];
  const JsonValue& main_span = *by_name["main.span"];
  const JsonValue& main_instant = *by_name["main.instant"];

  // Span nesting: the inner span lies within the outer on the same thread,
  // one level deeper.
  EXPECT_EQ(outer.At("ph").str, "X");
  EXPECT_EQ(inner.At("ph").str, "X");
  EXPECT_EQ(inner.At("tid").number, outer.At("tid").number);
  EXPECT_GE(inner.At("ts").number, outer.At("ts").number);
  EXPECT_LE(inner.At("ts").number + inner.At("dur").number,
            outer.At("ts").number + outer.At("dur").number + 5e-3);
  EXPECT_EQ(outer.At("args").At("depth").number, 0);
  EXPECT_EQ(inner.At("args").At("depth").number, 1);
  EXPECT_EQ(inner.At("args").At("result").str, "sat");

  // Thread attribution: the worker's events and the main thread's events
  // carry different tracer-assigned thread ids.
  EXPECT_NE(main_span.At("tid").number, outer.At("tid").number);
  EXPECT_EQ(main_instant.At("tid").number, main_span.At("tid").number);
  EXPECT_EQ(main_instant.At("ph").str, "i");
  EXPECT_EQ(main_span.At("args").At("label").str, "label text");
}

TEST_F(TracerTest, JsonlExportOneValidObjectPerLine) {
  Tracer::Get().Enable();
  TraceInstant("a");
  TraceInstant("b", "key", "val");
  Tracer::Get().Disable();
  std::string path = TempPath("obs_trace.jsonl");
  std::string error;
  ASSERT_TRUE(Tracer::Get().ExportJsonl(path, &error)) << error;
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    JsonValue parsed;
    EXPECT_TRUE(JsonParser(line).Parse(&parsed)) << line;
    EXPECT_EQ(parsed.kind, JsonValue::Kind::kObject);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

TEST_F(TracerTest, RingOverflowKeepsNewestAndCountsDrops) {
  Tracer::Get().Enable(/*events_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    TraceInstant("overflow.event");
  }
  Tracer::Get().Disable();
  std::vector<TraceEventRecord> events = Tracer::Get().Collect();
  EXPECT_EQ(events.size(), 8u);
  EXPECT_EQ(Tracer::Get().DroppedEvents(), 12u);
  // The survivors are the newest events: strictly increasing timestamps with
  // the first survivor later than the overall start.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
  }
}

TEST_F(TracerTest, ConcurrentSpansAcrossThreads) {
  Tracer::Get().Enable();
  constexpr int kThreads = 4;
  constexpr int kSpans = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        ScopedSpan span("worker.span");
        TraceInstant("worker.tick");
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  Tracer::Get().Disable();
  std::vector<TraceEventRecord> events = Tracer::Get().Collect();
  EXPECT_EQ(events.size() + Tracer::Get().DroppedEvents(),
            static_cast<size_t>(kThreads) * kSpans * 2);
  // Collect is sorted by (tid, ts).
  for (size_t i = 1; i < events.size(); ++i) {
    if (events[i].tid == events[i - 1].tid) {
      EXPECT_GE(events[i].ts_us, events[i - 1].ts_us);
    } else {
      EXPECT_GT(events[i].tid, events[i - 1].tid);
    }
  }
}

#endif  // DDT_OBS_DISABLED

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

TEST(ProfilerTest, DerivesInterpretBySubtraction) {
  PassProfile profile;
  profile.Add(Phase::kDecode, 100);
  profile.Add(Phase::kSolver, 300);
  profile.Add(Phase::kChecker, 100);
  profile.Add(Phase::kJournal, 1'000'000);  // outside the engine run: excluded
  profile.SetTotalAndDeriveInterpret(1000);
  PhaseBreakdown breakdown = profile.Snapshot();
  EXPECT_EQ(breakdown.phase_ns(Phase::kInterpret), 500u);
  EXPECT_EQ(breakdown.total_ns, 1000u);
  std::string summary = breakdown.Summary();
  EXPECT_NE(summary.find("solver"), std::string::npos) << summary;
  EXPECT_NE(summary.find("interpret"), std::string::npos) << summary;
}

TEST(ProfilerTest, InterpretNeverUnderflows) {
  PassProfile profile;
  profile.Add(Phase::kSolver, 5000);
  profile.SetTotalAndDeriveInterpret(1000);  // claimed > total (clock skew)
  EXPECT_EQ(profile.Snapshot().phase_ns(Phase::kInterpret), 0u);
}

TEST(ProfilerTest, ScopedPhaseIsNullSafe) {
  { ScopedPhase phase(nullptr, Phase::kSolver); }
  PassProfile profile;
  {
    ScopedPhase phase(&profile, Phase::kDecode);
  }
  // A timed scope records a sane duration (zero is possible on a coarse
  // clock, but not a wild value).
  EXPECT_LT(profile.Snapshot().phase_ns(Phase::kDecode), 1'000'000'000u);
}

TEST(ProfilerTest, CampaignProfileRanksSlowestFirst) {
  CampaignProfile profile;
  for (size_t i = 0; i < 4; ++i) {
    CampaignProfile::PassEntry entry;
    entry.index = i;
    entry.label = "plan" + std::to_string(i);
    entry.wall_ms = static_cast<double>(10 * (i + 1));
    entry.phases.total_ns = static_cast<uint64_t>(entry.wall_ms * 1e6);
    profile.passes.push_back(entry);
  }
  profile.passes[1].quarantined = true;  // excluded from the ranking
  std::string top = profile.FormatTopPasses(2);
  size_t p3 = top.find("plan3");
  size_t p2 = top.find("plan2");
  EXPECT_NE(p3, std::string::npos) << top;
  EXPECT_NE(p2, std::string::npos) << top;
  EXPECT_LT(p3, p2) << top;
  EXPECT_EQ(top.find("plan1"), std::string::npos) << top;  // quarantined
  EXPECT_EQ(top.find("plan0"), std::string::npos) << top;  // beyond top-2

  profile.fault_site_occurrences["allocation"] = 12;
  profile.fault_site_occurrences["map-io-space"] = 3;
  std::string hot = profile.FormatHotFaultSites(8);
  size_t alloc = hot.find("allocation: 12");
  size_t map = hot.find("map-io-space: 3");
  EXPECT_NE(alloc, std::string::npos) << hot;
  EXPECT_NE(map, std::string::npos) << hot;
  EXPECT_LT(alloc, map) << hot;
}

}  // namespace
}  // namespace ddt::obs
