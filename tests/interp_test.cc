// Differential testing of the interpreter's concrete ALU semantics: for each
// opcode, generate random operands, run a tiny guest driver that computes
// `a OP b` and returns it as the Initialize status, and compare against the
// host-side reference semantics. A custom checker captures the entry-exit
// status (the kernel event stream is the observation channel).
#include <gtest/gtest.h>

#include "src/core/ddt.h"
#include "src/support/rng.h"
#include "src/support/strings.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

class StatusCapture : public Checker {
 public:
  explicit StatusCapture(std::vector<uint32_t>* sink) : sink_(sink) {}
  std::string name() const override { return "status-capture"; }
  void OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) override {
    if (event.kind == KernelEvent::Kind::kEntryExit && event.a == kEpInitialize) {
      sink_->push_back(event.b);
    }
  }

 private:
  std::vector<uint32_t>* sink_;
};

uint32_t RunAluProgram(const std::string& mnemonic, uint32_t a, uint32_t b) {
  std::string source = StrFormat(R"(
    .driver "alu"
    .entry driver_entry
    .code
    .func driver_entry
      la r0, entry_table
      kcall MosRegisterDriver
      ret
    .func ep_init
      movi r1, 0x%x
      movi r2, 0x%x
      %s r0, r1, r2
      ret
    .data
    entry_table:
      .word ep_init
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
  )",
                                 a, b, mnemonic.c_str());
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  DdtConfig config;
  config.use_standard_annotations = false;
  config.engine.enable_symbolic_interrupts = false;
  config.engine.max_instructions = 10000;
  std::vector<uint32_t> statuses;
  Ddt ddt(config);
  ddt.AddChecker(std::make_unique<StatusCapture>(&statuses));
  Result<DdtResult> result = ddt.TestDriver(Assemble(source).value().image, pci);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(statuses.size(), 1u) << mnemonic;
  return statuses.empty() ? 0xDEADDEAD : statuses[0];
}

struct AluCase {
  const char* mnemonic;
  uint32_t (*reference)(uint32_t, uint32_t);
  bool nonzero_b;  // avoid division traps
};

uint32_t RefAdd(uint32_t a, uint32_t b) { return a + b; }
uint32_t RefSub(uint32_t a, uint32_t b) { return a - b; }
uint32_t RefMul(uint32_t a, uint32_t b) { return a * b; }
uint32_t RefUDiv(uint32_t a, uint32_t b) { return a / b; }
uint32_t RefURem(uint32_t a, uint32_t b) { return a % b; }
uint32_t RefSDiv(uint32_t a, uint32_t b) {
  int32_t sa = static_cast<int32_t>(a);
  int32_t sb = static_cast<int32_t>(b);
  if (sa == INT32_MIN && sb == -1) {
    return a;
  }
  return static_cast<uint32_t>(sa / sb);
}
uint32_t RefAnd(uint32_t a, uint32_t b) { return a & b; }
uint32_t RefOr(uint32_t a, uint32_t b) { return a | b; }
uint32_t RefXor(uint32_t a, uint32_t b) { return a ^ b; }
uint32_t RefShl(uint32_t a, uint32_t b) { return b >= 32 ? 0 : a << b; }
uint32_t RefLShr(uint32_t a, uint32_t b) { return b >= 32 ? 0 : a >> b; }
uint32_t RefAShr(uint32_t a, uint32_t b) {
  return static_cast<uint32_t>(static_cast<int32_t>(a) >> (b >= 32 ? 31 : b));
}
uint32_t RefSeq(uint32_t a, uint32_t b) { return a == b ? 1 : 0; }
uint32_t RefSne(uint32_t a, uint32_t b) { return a != b ? 1 : 0; }
uint32_t RefSltU(uint32_t a, uint32_t b) { return a < b ? 1 : 0; }
uint32_t RefSltS(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a) < static_cast<int32_t>(b) ? 1 : 0;
}
uint32_t RefSleU(uint32_t a, uint32_t b) { return a <= b ? 1 : 0; }
uint32_t RefSleS(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a) <= static_cast<int32_t>(b) ? 1 : 0;
}

class InterpAluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(InterpAluTest, GuestMatchesHostSemantics) {
  const AluCase& test_case = GetParam();
  Rng rng(0xA111 + std::string(test_case.mnemonic).size());
  for (int i = 0; i < 12; ++i) {
    uint32_t a = rng.Next32();
    uint32_t b = rng.Next32();
    if (i == 0) {
      a = 0;
      b = 0xFFFFFFFF;
    }
    if (i == 1) {
      a = 0x80000000;
      b = 1;
    }
    if (i == 2) {
      b = static_cast<uint32_t>(rng.NextBelow(40));  // interesting shifts
    }
    if (test_case.nonzero_b && b == 0) {
      b = 7;
    }
    uint32_t expected = test_case.reference(a, b);
    uint32_t actual = RunAluProgram(test_case.mnemonic, a, b);
    ASSERT_EQ(actual, expected)
        << test_case.mnemonic << " a=0x" << std::hex << a << " b=0x" << b;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, InterpAluTest,
    ::testing::Values(AluCase{"add", RefAdd, false}, AluCase{"sub", RefSub, false},
                      AluCase{"mul", RefMul, false}, AluCase{"udiv", RefUDiv, true},
                      AluCase{"urem", RefURem, true}, AluCase{"sdiv", RefSDiv, true},
                      AluCase{"and", RefAnd, false}, AluCase{"or", RefOr, false},
                      AluCase{"xor", RefXor, false}, AluCase{"shl", RefShl, false},
                      AluCase{"lshr", RefLShr, false}, AluCase{"ashr", RefAShr, false},
                      AluCase{"seq", RefSeq, false}, AluCase{"sne", RefSne, false},
                      AluCase{"sltu", RefSltU, false}, AluCase{"slts", RefSltS, false},
                      AluCase{"sleu", RefSleU, false}, AluCase{"sles", RefSleS, false}),
    [](const ::testing::TestParamInfo<AluCase>& info) { return info.param.mnemonic; });

// Symbolic/concrete consistency: the same program with a SYMBOLIC operand
// constrained to a single value must produce the same entry status.
TEST(InterpConsistencyTest, SymbolicPinnedEqualsConcrete) {
  // The device register is symbolic; the driver constrains it by branching,
  // and returns reg+5 on the reg==37 path.
  const char* source = R"(
    .driver "pin"
    .entry driver_entry
    .code
    .func driver_entry
      la r0, entry_table
      kcall MosRegisterDriver
      ret
    .func ep_init
      movi r0, 0
      kcall MosMapIoSpace
      ld32 r1, [r0+0]
      seqi r2, r1, 37
      bz r2, other
      addi r0, r1, 5          ; returns 42 when reg == 37
      ret
    other:
      movi r0, 0
      ret
    .data
    entry_table:
      .word ep_init
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
      .word 0
  )";
  PciDescriptor pci;
  pci.vendor_id = 1;
  pci.device_id = 1;
  pci.bars.push_back(PciBar{0x100});
  DdtConfig config;
  config.use_standard_annotations = false;
  config.engine.enable_symbolic_interrupts = false;
  config.engine.max_instructions = 10000;
  std::vector<uint32_t> statuses;
  Ddt ddt(config);
  ddt.AddChecker(std::make_unique<StatusCapture>(&statuses));
  Result<DdtResult> result = ddt.TestDriver(Assemble(source).value().image, pci);
  ASSERT_TRUE(result.ok());
  // Two paths: reg == 37 (status 42) and reg != 37 (status 0).
  ASSERT_EQ(statuses.size(), 2u);
  bool saw_42 = false;
  bool saw_0 = false;
  for (uint32_t status : statuses) {
    saw_42 |= status == 42;
    saw_0 |= status == 0;
  }
  EXPECT_TRUE(saw_42);
  EXPECT_TRUE(saw_0);
}

}  // namespace
}  // namespace ddt
