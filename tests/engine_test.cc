// End-to-end engine tests: small hand-written guest drivers exercising the
// full DDT pipeline — loading, selective symbolic execution, symbolic
// hardware, annotations, checkers, bug reporting, and guided replay.
#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include "src/checkers/loop_checker.h"
#include "src/core/ddt.h"
#include "src/core/replay.h"
#include "src/vm/assembler.h"

namespace ddt {
namespace {

PciDescriptor ToyPci() {
  PciDescriptor pci;
  pci.vendor_id = 0x10EC;
  pci.device_id = 0x8029;
  pci.revision = 1;
  pci.irq_line = 10;
  pci.bars.push_back(PciBar{0x100});
  return pci;
}

DriverImage AssembleToy(const std::string& source) {
  Result<AssembledDriver> result = Assemble(source);
  EXPECT_TRUE(result.ok()) << result.error();
  return result.value().image;
}

DdtResult RunToy(const std::string& source, DdtConfig config = DdtConfig()) {
  config.engine.max_instructions = 200000;
  config.engine.max_wall_ms = 20000;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(AssembleToy(source), ToyPci());
  EXPECT_TRUE(result.ok()) << result.status().message();
  return result.take();
}

bool HasBug(const DdtResult& result, BugType type) {
  for (const Bug& bug : result.bugs) {
    if (bug.type == type) {
      return true;
    }
  }
  return false;
}

const Bug* FindBug(const DdtResult& result, BugType type) {
  for (const Bug& bug : result.bugs) {
    if (bug.type == type) {
      return &bug;
    }
  }
  return nullptr;
}

// --- 1. Clean driver: loads, registers, runs the workload, zero bugs -------

constexpr const char* kCleanDriver = R"(
  .driver "toy_clean"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    movi r0, 0
    ret

  .func ep_halt
    movi r0, 0
    ret

  .data
  entry_table:
    .word ep_init
    .word ep_halt
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, CleanDriverRunsWithoutBugs) {
  DdtResult result = RunToy(kCleanDriver);
  EXPECT_TRUE(result.bugs.empty()) << result.bugs.front().Format();
  EXPECT_GT(result.covered_blocks, 0u);
  EXPECT_GT(result.stats.instructions, 0u);
  EXPECT_GE(result.stats.entry_invocations, 3u);  // DriverEntry, init, halt
}

// --- 2. Null pointer dereference in Initialize ------------------------------

constexpr const char* kNullDerefDriver = R"(
  .driver "toy_nullderef"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    movi r1, 0
    ld32 r2, [r1+0]     ; *NULL
    movi r0, 0
    ret

  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, NullDereferenceIsDetected) {
  DdtResult result = RunToy(kNullDerefDriver);
  ASSERT_TRUE(HasBug(result, BugType::kSegfault));
  const Bug* bug = FindBug(result, BugType::kSegfault);
  EXPECT_NE(bug->title.find("null pointer"), std::string::npos) << bug->title;
  EXPECT_FALSE(bug->trace.empty());
}

// --- 3. Symbolic hardware drives an out-of-bounds write ---------------------

constexpr const char* kHwIndexDriver = R"(
  .driver "toy_hwindex"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    movi r0, 0
    kcall MosMapIoSpace     ; r0 = BAR0 base
    ld32 r1, [r0+4]         ; symbolic device register
    sltui r2, r1, 16
    bnz r2, index_ok
    ; missing bounds check: driver trusts the device-provided index anyway
  index_ok:
    la r3, small_table
    shli r4, r1, 2
    add r3, r3, r4
    st32 [r3+0], r1         ; OOB write when r1 >= 16
    movi r0, 0
    ret
)";

// small_table is deliberately the LAST object in .data, so any index >= 16
// lands past the segment end and trips the memory checker.
constexpr const char* kHwIndexTable = R"(
  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
  small_table:
    .space 64
)";

TEST(EngineTest, SymbolicHardwareFindsOutOfBoundsWrite) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtResult result = RunToy(source);
  const Bug* bug = FindBug(result, BugType::kMemoryCorruption);
  ASSERT_NE(bug, nullptr) << result.FormatReport("toy_hwindex");
  // The concrete inputs must include the hardware read that caused it.
  bool has_hw_input = false;
  for (const SolvedInput& input : bug->inputs) {
    if (input.origin.source == VarOrigin::Source::kHardwareRead) {
      has_hw_input = true;
      EXPECT_GE(input.value, 16u);  // must violate the bounds check
    }
  }
  EXPECT_TRUE(has_hw_input);
}

TEST(EngineTest, HwIndexBugReplays) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtConfig config;
  config.engine.max_instructions = 200000;
  Ddt ddt(config);
  Result<DdtResult> run = ddt.TestDriver(AssembleToy(source), ToyPci());
  ASSERT_TRUE(run.ok());
  const Bug* bug = FindBug(run.value(), BugType::kMemoryCorruption);
  ASSERT_NE(bug, nullptr);
  ReplayResult replay = ReplayBug(AssembleToy(source), ToyPci(), *bug, config);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
}

// --- 4. Unchecked allocation: found only with annotations -------------------

constexpr const char* kUncheckedAllocDriver = R"(
  .driver "toy_alloc"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    movi r0, 64
    kcall MosAllocatePool
    ; BUG: no check for NULL return
    movi r1, 7
    st32 [r0+0], r1
    movi r0, 0
    ret

  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, AllocationFailureFoundOnlyWithAnnotations) {
  DdtResult with = RunToy(kUncheckedAllocDriver);
  EXPECT_TRUE(HasBug(with, BugType::kSegfault)) << "annotations should expose the NULL path";

  DdtConfig no_annotations;
  no_annotations.use_standard_annotations = false;
  DdtResult without = RunToy(kUncheckedAllocDriver, no_annotations);
  EXPECT_FALSE(HasBug(without, BugType::kSegfault))
      << "without annotations the allocation never fails";
}

// --- 5. Resource leak on a failure path --------------------------------------

constexpr const char* kConfigLeakDriver = R"(
  .driver "toy_leak"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    subi sp, sp, 8
    mov r0, sp
    kcall MosOpenConfiguration
    ld32 r4, [sp+0]          ; config handle
    movi r0, 0
    kcall MosMapIoSpace
    ld32 r1, [r0+0]          ; symbolic device id register
    andi r2, r1, 1
    bnz r2, init_fail
    mov r0, r4
    kcall MosCloseConfiguration
    addi sp, sp, 8
    movi r0, 0
    ret
  init_fail:
    ; BUG: fails without closing the configuration handle
    addi sp, sp, 8
    movi r0, 0xC0000001
    ret

  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, ConfigHandleLeakOnFailedInit) {
  DdtResult result = RunToy(kConfigLeakDriver);
  const Bug* bug = FindBug(result, BugType::kResourceLeak);
  ASSERT_NE(bug, nullptr) << result.FormatReport("toy_leak");
  EXPECT_NE(bug->title.find("MosCloseConfiguration"), std::string::npos) << bug->title;
}

// --- 6. Interrupt-before-timer-init race (the RTL8029 bug shape) -------------

constexpr const char* kTimerRaceDriver = R"(
  .driver "toy_timerrace"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    la r0, isr
    movi r1, 0
    kcall MosRegisterInterrupt
    movi r0, 50
    kcall MosStallExecution     ; boundary crossing: interrupt window
    la r0, timer_block
    la r1, timer_fn
    movi r2, 0
    kcall MosInitializeTimer
    movi r0, 0
    ret

  .func isr
    la r0, timer_block
    movi r1, 10
    kcall MosSetTimer           ; BSOD if the timer is not yet initialized
    ret

  .func timer_fn
    ret

  .data
  timer_block:
    .space 16
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, InterruptBeforeTimerInitIsARace) {
  DdtResult result = RunToy(kTimerRaceDriver);
  const Bug* bug = FindBug(result, BugType::kRaceCondition);
  ASSERT_NE(bug, nullptr) << result.FormatReport("toy_timerrace");
  EXPECT_FALSE(bug->interrupt_schedule.empty());
  EXPECT_NE(bug->title.find("timer"), std::string::npos) << bug->title;
}

TEST(EngineTest, TimerRaceReplaysWithInterruptSchedule) {
  DdtConfig config;
  config.engine.max_instructions = 200000;
  Ddt ddt(config);
  Result<DdtResult> run = ddt.TestDriver(AssembleToy(kTimerRaceDriver), ToyPci());
  ASSERT_TRUE(run.ok());
  const Bug* bug = FindBug(run.value(), BugType::kRaceCondition);
  ASSERT_NE(bug, nullptr);
  ReplayResult replay = ReplayBug(AssembleToy(kTimerRaceDriver), ToyPci(), *bug, config);
  EXPECT_TRUE(replay.reproduced) << replay.detail;
}

TEST(EngineTest, TimerRaceNotFoundWithoutSymbolicInterrupts) {
  DdtConfig config;
  config.engine.enable_symbolic_interrupts = false;
  DdtResult result = RunToy(kTimerRaceDriver, config);
  EXPECT_FALSE(HasBug(result, BugType::kRaceCondition));
}

// --- 7. Infinite polling loop -------------------------------------------------

constexpr const char* kSpinDriver = R"(
  .driver "toy_spin"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    movi r3, 0
  spin:
    addi r3, r3, 1
    br spin

  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, InfiniteLoopHeuristicFires) {
  DdtConfig config;
  config.use_default_checkers = false;  // use a low-threshold loop checker
  config.engine.max_instructions = 100000;
  Ddt ddt(config);
  ddt.AddChecker(std::make_unique<LoopChecker>(3000));
  Result<DdtResult> result = ddt.TestDriver(AssembleToy(kSpinDriver), ToyPci());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(HasBug(result.value(), BugType::kInfiniteLoop));
}

// --- 8. Searcher / strategy plumbing -----------------------------------------

class EngineStrategyTest : public ::testing::TestWithParam<SearchStrategy> {};

TEST_P(EngineStrategyTest, AllStrategiesFindTheHwIndexBug) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtConfig config;
  config.engine.strategy = GetParam();
  DdtResult result = RunToy(source, config);
  EXPECT_TRUE(HasBug(result, BugType::kMemoryCorruption))
      << "strategy " << SearchStrategyName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, EngineStrategyTest,
                         ::testing::Values(SearchStrategy::kCoverageGreedy, SearchStrategy::kDfs,
                                           SearchStrategy::kBfs, SearchStrategy::kRandom),
                         [](const ::testing::TestParamInfo<SearchStrategy>& info) {
                           std::string name = SearchStrategyName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- 9. Coverage accounting ----------------------------------------------------

TEST(EngineTest, CoverageSamplesAreMonotonic) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtResult result = RunToy(source);
  ASSERT_FALSE(result.coverage_samples.empty());
  for (size_t i = 1; i < result.coverage_samples.size(); ++i) {
    EXPECT_GE(result.coverage_samples[i].covered_blocks,
              result.coverage_samples[i - 1].covered_blocks);
    EXPECT_GE(result.coverage_samples[i].instructions,
              result.coverage_samples[i - 1].instructions);
  }
  EXPECT_LE(result.covered_blocks, result.total_blocks);
}

// --- 10. Deterministic runs -----------------------------------------------------

TEST(EngineTest, RunsAreDeterministic) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtResult a = RunToy(source);
  DdtResult b = RunToy(source);
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].title, b.bugs[i].title);
    EXPECT_EQ(a.bugs[i].type, b.bugs[i].type);
  }
  EXPECT_EQ(a.stats.instructions, b.stats.instructions);
  EXPECT_EQ(a.covered_blocks, b.covered_blocks);
}


// --- 11. Concretization backtracking (section 3.2) ------------------------------

// The driver passes a symbolic registry value to MosAllocatePool (which
// concretizes it to some arbitrary feasible length), and only LATER branches
// on whether that value was exactly 7. Without backtracking, the path is
// pinned to whatever the concretization picked, so the len==7 branch is
// almost surely unreachable; with backtracking, DDT revives the kernel-call
// snapshot constrained to len == 7 and re-executes the call.
constexpr const char* kBacktrackDriver = R"(
  .driver "toy_backtrack"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    push {r4, r5, lr}
    subi sp, sp, 16
    mov r0, sp
    kcall MosOpenConfiguration
    ld32 r4, [sp+0]
    mov r0, r4
    la r1, name_knob
    addi r2, sp, 4
    kcall MosReadConfiguration
    ld32 r5, [sp+8]             ; symbolic knob (annotation)
    mov r0, r5
    kcall MosAllocatePool       ; concretizes the knob to one value
    ; ... much later, a path only reachable for knob == 7:
    seqi r1, r5, 7
    bz r1, bt_done
    ; the special path has a bug DDT can only find by backtracking
    movi r1, 0
    ld32 r2, [r1+0]             ; NULL dereference
  bt_done:
    mov r0, r4
    kcall MosCloseConfiguration
    addi sp, sp, 16
    movi r0, 0
    pop {r4, r5, lr}
    ret

  .data
  name_knob:
    .asciiz "LinkSpeed"
    .align 4
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, ConcretizationBacktrackingReenablesBlockedPaths) {
  // With backtracking: the len==7 world is revived and the bug found.
  DdtResult with = RunToy(kBacktrackDriver);
  EXPECT_TRUE(HasBug(with, BugType::kSegfault))
      << "backtracking should re-enable the knob==7 path";

  // Without backtracking: the concretization pins the knob; unless the
  // solver happened to pick exactly 7 (it does not, with this seed), the
  // special path stays unreachable.
  DdtConfig no_bt;
  no_bt.engine.enable_concretization_backtracking = false;
  DdtResult without = RunToy(kBacktrackDriver, no_bt);
  EXPECT_FALSE(HasBug(without, BugType::kSegfault));
}

TEST(EngineTest, BacktrackBudgetIsHonored) {
  DdtConfig config;
  config.engine.max_concretization_backtracks = 0;
  DdtResult result = RunToy(kBacktrackDriver, config);
  EXPECT_FALSE(HasBug(result, BugType::kSegfault));
}


// --- 12. Budget / cap behavior ------------------------------------------------

TEST(EngineTest, StopAfterFirstBugStopsTheRun) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtConfig config;
  config.engine.stop_after_first_bug = true;
  DdtResult result = RunToy(source, config);
  EXPECT_EQ(result.bugs.size(), 1u);
}

TEST(EngineTest, MaxStatesCapSuppressesForks) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtConfig config;
  config.engine.max_states = 2;
  DdtResult result = RunToy(source, config);
  EXPECT_LE(result.stats.max_live_states, 2u);
  // Exploration still makes progress (one side of each branch).
  EXPECT_GT(result.covered_blocks, 0u);
}

TEST(EngineTest, InstructionBudgetIsHonored) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtConfig config;
  config.engine.max_instructions = 50;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(AssembleToy(source), ToyPci());
  ASSERT_TRUE(result.ok());
  // The engine stops at the first check past the budget (quantum
  // granularity: at most one 64-instruction quantum over).
  EXPECT_LE(result.value().stats.instructions, 50u + 64u);
}

// --- 13. Config validation ----------------------------------------------------

TEST(EngineTest, ZeroBudgetsAreRejectedAtLoad) {
  auto expect_rejected = [](DdtConfig config, const char* what) {
    Ddt ddt(config);
    Result<DdtResult> result = ddt.TestDriver(AssembleToy(kCleanDriver), ToyPci());
    ASSERT_FALSE(result.ok()) << what << " = 0 should be rejected";
    EXPECT_NE(result.status().message().find(what), std::string::npos)
        << result.status().message();
  };
  DdtConfig zero_states;
  zero_states.engine.max_states = 0;
  expect_rejected(zero_states, "max_states");
  DdtConfig zero_instructions;
  zero_instructions.engine.max_instructions = 0;
  expect_rejected(zero_instructions, "max_instructions");
  DdtConfig zero_wall;
  zero_wall.engine.max_wall_ms = 0;
  expect_rejected(zero_wall, "max_wall_ms");
}

// --- 14. Resource governor ----------------------------------------------------

// Pathological driver: a runaway polling loop whose every iteration reads a
// fresh symbolic device register, builds a multiplication chain out of it
// (solver-hostile), and branches on the product — unbounded forking plus
// expensive queries. The governor must keep the run inside its wall budget.
constexpr const char* kPathologicalDriver = R"(
  .driver "toy_hostile"
  .entry driver_entry
  .code
  .func driver_entry
    la r0, entry_table
    kcall MosRegisterDriver
    ret

  .func ep_init
    movi r0, 0
    kcall MosMapIoSpace
    mov r4, r0
  poll:
    ld32 r1, [r4+0]        ; fresh symbolic values every read
    ld32 r6, [r4+4]
    mul r2, r1, r6
    mul r2, r2, r1
    mul r2, r2, r6
    mul r2, r2, r1
    mul r2, r2, r6
    mul r2, r2, r1
    mul r2, r2, r6
    mul r2, r2, r1
    mul r2, r2, r6
    mul r2, r2, r1
    mul r2, r2, r6
    mul r2, r2, r1
    seqi r3, r2, 12345     ; solver-hostile branch condition
    bz r3, poll
    movi r5, 1
    br poll                ; never terminates on its own

  .data
  entry_table:
    .word ep_init
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
    .word 0
)";

TEST(EngineTest, GovernorKeepsPathologicalDriverInsideWallBudget) {
  DdtConfig config;
  config.use_default_checkers = false;  // isolate the governor from checkers
  config.engine.max_wall_ms = 1500;
  config.engine.max_instructions = 100'000'000;  // wall is the binding budget
  config.engine.solver.max_query_ms = 10;
  config.engine.solver.conflict_budget = 0;  // only the deadline limits queries
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(AssembleToy(kPathologicalDriver), ToyPci());
  ASSERT_TRUE(result.ok());
  const DdtResult& r = result.value();
  // Graceful degradation, not a hang: the run ends within 2x the wall budget
  // even though single queries could otherwise run unboundedly.
  EXPECT_LE(r.stats.wall_ms, 2.0 * 1500);
  EXPECT_GT(r.solver_stats.query_timeouts, 0u);
}

TEST(EngineTest, PerStateFuelEvictsRunawayState) {
  DdtConfig config;
  config.use_default_checkers = false;
  config.engine.max_instructions_per_state = 2000;
  config.engine.max_instructions = 500'000;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(AssembleToy(kSpinDriver), ToyPci());
  ASSERT_TRUE(result.ok());
  const DdtResult& r = result.value();
  EXPECT_GT(r.stats.states_evicted, 0u);
  // The spinning state was evicted at its fuel limit; the run did not burn
  // the whole global budget on it.
  EXPECT_LT(r.stats.instructions, 500'000u);
}

TEST(EngineTest, MemoryPressureEvictionKeepsRunAlive) {
  std::string source = std::string(kHwIndexDriver) + kHwIndexTable;
  DdtConfig config;
  config.engine.max_state_bytes = 1;  // absurdly tight: every sample evicts
  config.engine.max_instructions = 200'000;
  Ddt ddt(config);
  Result<DdtResult> result = ddt.TestDriver(AssembleToy(source), ToyPci());
  ASSERT_TRUE(result.ok());
  // At least one state always survives eviction, so the run still covers code.
  EXPECT_GT(result.value().covered_blocks, 0u);
}

}  // namespace
}  // namespace ddt
