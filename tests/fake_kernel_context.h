// A stand-alone KernelContext for unit tests: concrete values only, guest
// memory backed by a plain GuestMemory, bugchecks recorded instead of
// terminating anything. Lets kernel APIs and annotations be tested without
// the engine.
#ifndef TESTS_FAKE_KERNEL_CONTEXT_H_
#define TESTS_FAKE_KERNEL_CONTEXT_H_

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "src/hw/device.h"
#include "src/kernel/kernel_api.h"
#include "src/kernel/kernel_context.h"
#include "src/vm/guest_memory.h"
#include "src/vm/layout.h"

namespace ddt {

class FakeKernelContext : public KernelContext {
 public:
  FakeKernelContext() : device_("fake") {
    state_.driver.code_begin = kDriverImageBase;
    state_.driver.code_end = kDriverImageBase + 0x1000;
    state_.driver.data_begin = state_.driver.code_end;
    state_.driver.data_end = state_.driver.data_begin + 0x1000;
  }

  // --- test harness controls ---
  void SetArgs(std::initializer_list<uint32_t> args) {
    int i = 0;
    for (uint32_t arg : args) {
      args_[i++] = Value::Concrete(arg);
    }
  }
  uint32_t ReturnedU32() {
    Value v = return_value_;
    EXPECT_TRUE(v.IsConcrete());
    return v.IsConcrete() ? v.concrete() : 0;
  }
  bool crashed() const { return crashed_; }
  uint32_t bugcheck_code() const { return bugcheck_code_; }
  const std::string& bugcheck_message() const { return bugcheck_message_; }
  const std::vector<KernelEvent>& events() const { return events_; }
  void SetContext(ExecContextKind kind) { context_ = kind; }

  // --- KernelContext ---
  ExprContext* expr() override { return &ctx_; }
  KernelState& kernel() override { return state_; }
  Rng& rng() override { return rng_; }
  DeviceModel& device() override { return device_; }
  Value Arg(int index) override { return args_[index]; }
  void SetArg(int index, const Value& value) override { args_[index] = value; }
  void SetReturn(const Value& value) override { return_value_ = value; }
  Value GetReturn() override { return return_value_; }
  uint32_t Concretize(const Value& value, const std::string&) override {
    return value.IsConcrete() ? value.concrete() : 0;
  }
  uint32_t ReadGuestU32(uint32_t addr) override {
    uint8_t bytes[4];
    mem_.TryReadConcrete(addr, bytes, 4);
    return static_cast<uint32_t>(bytes[0]) | (bytes[1] << 8) | (bytes[2] << 16) |
           (static_cast<uint32_t>(bytes[3]) << 24);
  }
  uint8_t ReadGuestU8(uint32_t addr) override {
    uint8_t byte;
    mem_.TryReadConcrete(addr, &byte, 1);
    return byte;
  }
  void WriteGuestU32(uint32_t addr, uint32_t value) override {
    uint8_t bytes[4] = {static_cast<uint8_t>(value), static_cast<uint8_t>(value >> 8),
                        static_cast<uint8_t>(value >> 16), static_cast<uint8_t>(value >> 24)};
    mem_.WriteConcrete(addr, bytes, 4);
  }
  void WriteGuestU8(uint32_t addr, uint8_t value) override {
    mem_.WriteConcrete(addr, &value, 1);
  }
  std::string ReadGuestCString(uint32_t addr, size_t max_len) override {
    std::string out;
    for (size_t i = 0; i < max_len; ++i) {
      uint8_t c = ReadGuestU8(addr + static_cast<uint32_t>(i));
      if (c == 0) {
        break;
      }
      out.push_back(static_cast<char>(c));
    }
    return out;
  }
  Value ReadGuestValue(uint32_t addr, unsigned size) override {
    uint32_t v = 0;
    for (unsigned i = 0; i < size; ++i) {
      v |= static_cast<uint32_t>(ReadGuestU8(addr + i)) << (8 * i);
    }
    return Value::Concrete(v);
  }
  void WriteGuestValue(uint32_t addr, const Value& value, unsigned size) override {
    uint32_t v = value.IsConcrete() ? value.concrete() : 0;
    for (unsigned i = 0; i < size; ++i) {
      WriteGuestU8(addr + i, static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void AddConstraint(ExprRef) override {}
  ExecContextKind CurrentContext() const override { return context_; }
  void BugCheck(uint32_t code, const std::string& message) override {
    crashed_ = true;
    bugcheck_code_ = code;
    bugcheck_message_ = message;
    state_.crashed = true;
  }
  void EmitEvent(const KernelEvent& event) override { events_.push_back(event); }
  uint32_t CallSitePc() const override { return 0x1234; }

  // Convenience: invoke an API by name.
  void Call(const std::string& name, std::initializer_list<uint32_t> args) {
    SetArgs(args);
    KernelApiFn fn = FindKernelApi(name);
    ASSERT_NE(fn, nullptr) << name;
    fn(*this);
  }

 private:
  ExprContext ctx_;
  KernelState state_;
  Rng rng_{42};
  SymbolicDevice device_;
  GuestMemory mem_;
  std::array<Value, 6> args_ = {};
  Value return_value_;
  bool crashed_ = false;
  uint32_t bugcheck_code_ = 0;
  std::string bugcheck_message_;
  ExecContextKind context_ = ExecContextKind::kEntryPoint;
  std::vector<KernelEvent> events_;
};

}  // namespace ddt

#endif  // TESTS_FAKE_KERNEL_CONTEXT_H_
