// Campaign checkpoint journal units: full record round-trip (stats, bugs,
// profile, quarantine metadata), crash-tolerant resume (torn and corrupt
// trailing records discarded, valid prefix preserved and appendable), and
// header validation (wrong driver / fingerprint / format rejected).
#include "src/core/campaign_journal.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/support/strings.h"

namespace ddt {
namespace {

std::string TempPath(const std::string& name) { return testing::TempDir() + name; }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

CampaignPassRecord SampleRecord(uint64_t index) {
  CampaignPassRecord rec;
  rec.index = index;
  rec.label = StrFormat("allocation#%llu", static_cast<unsigned long long>(index));
  rec.points.push_back(FaultPoint{FaultClass::kAllocation, static_cast<uint32_t>(index)});
  rec.points.push_back(FaultPoint{FaultClass::kMapIoSpace, 0});
  rec.retries = 1;
  rec.stats.instructions = 123456 + index;
  rec.stats.forks = 7;
  rec.stats.faults_injected = 3;
  rec.stats.peak_state_bytes = 1 << 20;
  rec.stats.wall_ms = 123.45678901234567;  // exercises %.17g round-trip
  rec.solver_stats.queries = 42;
  rec.solver_stats.sat_calls = 9;
  rec.solver_stats.aborted_queries = 2;
  rec.solver_stats.max_query_wall_ms = 0.125;
  Bug bug;
  bug.type = BugType::kResourceLeak;
  bug.title = "rx ring never freed on \"weird\" path\nwith a newline";
  bug.details = "escaping stress: backslash \\ tab \t quote \"";
  bug.driver = "toy";
  bug.checker = "cleanup";
  bug.fault_plan.label = rec.label;
  bug.fault_plan.points = rec.points;
  rec.bugs.push_back(bug);
  return rec;
}

TEST(CampaignJournalTest, RoundTripsRecordsExactly) {
  std::string path = TempPath("journal_roundtrip.jsonl");
  {
    Result<std::unique_ptr<CampaignJournal>> journal =
        CampaignJournal::Create(path, "toy", 0xABCDEF0123456789ull);
    ASSERT_TRUE(journal.ok()) << journal.error();
    CampaignPassRecord baseline = SampleRecord(0);
    baseline.label.clear();
    baseline.points.clear();
    baseline.retries = 0;
    baseline.has_profile = true;
    baseline.profile.max_occurrences = {4, 1, 0, 2};
    ASSERT_TRUE(journal.value()->Append(baseline).ok());
    ASSERT_TRUE(journal.value()->Append(SampleRecord(1)).ok());
    CampaignPassRecord quarantined = SampleRecord(2);
    quarantined.quarantined = true;
    quarantined.failure = "watchdog: pass exceeded its wall budget";
    quarantined.bugs.clear();
    ASSERT_TRUE(journal.value()->Append(quarantined).ok());
  }

  std::vector<CampaignPassRecord> records;
  Result<std::unique_ptr<CampaignJournal>> reopened =
      CampaignJournal::OpenForResume(path, "toy", 0xABCDEF0123456789ull, &records);
  ASSERT_TRUE(reopened.ok()) << reopened.error();
  ASSERT_EQ(records.size(), 3u);

  EXPECT_EQ(records[0].index, 0u);
  EXPECT_TRUE(records[0].has_profile);
  EXPECT_EQ(records[0].profile.max_occurrences[0], 4u);
  EXPECT_EQ(records[0].profile.max_occurrences[3], 2u);
  EXPECT_TRUE(records[0].points.empty());

  const CampaignPassRecord& rec = records[1];
  CampaignPassRecord want = SampleRecord(1);
  EXPECT_EQ(rec.index, 1u);
  EXPECT_EQ(rec.label, want.label);
  ASSERT_EQ(rec.points.size(), 2u);
  EXPECT_TRUE(rec.points[0] == want.points[0]);
  EXPECT_TRUE(rec.points[1] == want.points[1]);
  EXPECT_EQ(rec.retries, 1u);
  EXPECT_FALSE(rec.quarantined);
  EXPECT_FALSE(rec.has_profile);
  EXPECT_EQ(rec.stats.instructions, want.stats.instructions);
  EXPECT_EQ(rec.stats.peak_state_bytes, want.stats.peak_state_bytes);
  EXPECT_EQ(rec.stats.wall_ms, want.stats.wall_ms);  // exact double round-trip
  EXPECT_EQ(rec.solver_stats.queries, want.solver_stats.queries);
  EXPECT_EQ(rec.solver_stats.aborted_queries, want.solver_stats.aborted_queries);
  EXPECT_EQ(rec.solver_stats.max_query_wall_ms, want.solver_stats.max_query_wall_ms);
  ASSERT_EQ(rec.bugs.size(), 1u);
  EXPECT_EQ(rec.bugs[0].type, BugType::kResourceLeak);
  EXPECT_EQ(rec.bugs[0].title, want.bugs[0].title);
  EXPECT_EQ(rec.bugs[0].driver, "toy");
  EXPECT_EQ(rec.bugs[0].fault_plan.ToString(), want.bugs[0].fault_plan.ToString());

  EXPECT_TRUE(records[2].quarantined);
  EXPECT_EQ(records[2].failure, "watchdog: pass exceeded its wall budget");
  EXPECT_TRUE(records[2].bugs.empty());
}

TEST(CampaignJournalTest, DiscardsTornTailAndStaysAppendable) {
  std::string path = TempPath("journal_torn.jsonl");
  {
    Result<std::unique_ptr<CampaignJournal>> journal = CampaignJournal::Create(path, "toy", 7);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->Append(SampleRecord(0)).ok());
    ASSERT_TRUE(journal.value()->Append(SampleRecord(1)).ok());
  }
  std::string intact = ReadFile(path);
  // Simulate a kill mid-append: half a record, no trailing newline.
  WriteFile(path, intact + "{\"crc\":\"DEADBEEF\",\"record\":{\"i\":2,\"labe");

  std::vector<CampaignPassRecord> records;
  {
    Result<std::unique_ptr<CampaignJournal>> resumed =
        CampaignJournal::OpenForResume(path, "toy", 7, &records);
    ASSERT_TRUE(resumed.ok()) << resumed.error();
    ASSERT_EQ(records.size(), 2u);
    // The torn tail was truncated away; appending must produce a valid file.
    ASSERT_TRUE(resumed.value()->Append(SampleRecord(2)).ok());
  }
  records.clear();
  Result<std::unique_ptr<CampaignJournal>> again =
      CampaignJournal::OpenForResume(path, "toy", 7, &records);
  ASSERT_TRUE(again.ok()) << again.error();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].index, 2u);
}

TEST(CampaignJournalTest, DiscardsCorruptTrailingRecord) {
  std::string path = TempPath("journal_corrupt.jsonl");
  {
    Result<std::unique_ptr<CampaignJournal>> journal = CampaignJournal::Create(path, "toy", 7);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->Append(SampleRecord(0)).ok());
    ASSERT_TRUE(journal.value()->Append(SampleRecord(1)).ok());
  }
  // Flip one payload byte inside the final (complete) line: CRC must catch it.
  std::string content = ReadFile(path);
  size_t last_line_start = content.rfind('\n', content.size() - 2) + 1;
  content[last_line_start + 40] ^= 0x20;
  WriteFile(path, content);

  std::vector<CampaignPassRecord> records;
  Result<std::unique_ptr<CampaignJournal>> resumed =
      CampaignJournal::OpenForResume(path, "toy", 7, &records);
  ASSERT_TRUE(resumed.ok()) << resumed.error();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].index, 0u);
}

TEST(CampaignJournalTest, RejectsMismatchedOrInvalidJournals) {
  std::string path = TempPath("journal_validate.jsonl");
  {
    Result<std::unique_ptr<CampaignJournal>> journal = CampaignJournal::Create(path, "toy", 7);
    ASSERT_TRUE(journal.ok());
  }
  std::vector<CampaignPassRecord> records;

  Result<std::unique_ptr<CampaignJournal>> wrong_driver =
      CampaignJournal::OpenForResume(path, "other", 7, &records);
  ASSERT_FALSE(wrong_driver.ok());
  EXPECT_NE(wrong_driver.error().find("belongs to driver"), std::string::npos);

  Result<std::unique_ptr<CampaignJournal>> wrong_fp =
      CampaignJournal::OpenForResume(path, "toy", 8, &records);
  ASSERT_FALSE(wrong_fp.ok());
  EXPECT_NE(wrong_fp.error().find("different configuration"), std::string::npos);

  Result<std::unique_ptr<CampaignJournal>> missing =
      CampaignJournal::OpenForResume(TempPath("nope.jsonl"), "toy", 7, &records);
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.error().find("does not exist"), std::string::npos);

  std::string not_journal = TempPath("journal_notajournal.txt");
  WriteFile(not_journal, "hello world\n");
  Result<std::unique_ptr<CampaignJournal>> bad =
      CampaignJournal::OpenForResume(not_journal, "toy", 7, &records);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("not a DDT campaign journal"), std::string::npos);

  Result<std::unique_ptr<CampaignJournal>> unwritable =
      CampaignJournal::Create("/nonexistent-dir/j.jsonl", "toy", 7);
  ASSERT_FALSE(unwritable.ok());
  EXPECT_NE(unwritable.error().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace ddt
