// Unit tests for the trace module: chained-segment recording, fork sharing,
// reconstruction order, the tail cap, and formatting.
#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include "src/support/rng.h"

namespace ddt {
namespace {

TraceEvent Exec(uint32_t pc) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kExec;
  e.pc = pc;
  return e;
}

TEST(TraceTest, RecordAndReconstructInOrder) {
  TraceRecorder recorder;
  for (uint32_t i = 0; i < 10; ++i) {
    recorder.Append(Exec(i));
  }
  std::vector<TraceEvent> events = recorder.Reconstruct();
  ASSERT_EQ(events.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].pc, i);
  }
}

TEST(TraceTest, ForkSharesPrefixAndDivergesAfter) {
  TraceRecorder parent;
  parent.Append(Exec(1));
  parent.Append(Exec(2));
  TraceRecorder child = parent.Fork();
  parent.Append(Exec(3));
  child.Append(Exec(100));
  child.Append(Exec(101));

  std::vector<TraceEvent> p = parent.Reconstruct();
  std::vector<TraceEvent> c = child.Reconstruct();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[2].pc, 3u);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c[0].pc, 1u);
  EXPECT_EQ(c[1].pc, 2u);
  EXPECT_EQ(c[2].pc, 100u);
  EXPECT_EQ(c[3].pc, 101u);
}

TEST(TraceTest, DeepForkChains) {
  TraceRecorder recorder;
  std::vector<TraceRecorder> generations;
  for (uint32_t g = 0; g < 50; ++g) {
    recorder.Append(Exec(g));
    generations.push_back(recorder.Fork());
  }
  // The original accumulated everything.
  EXPECT_EQ(recorder.TotalEvents(), 50u);
  // Generation k saw exactly the first k+1 events.
  EXPECT_EQ(generations[10].Reconstruct().size(), 11u);
  EXPECT_EQ(generations[49].Reconstruct().back().pc, 49u);
}

TEST(TraceTest, TailCapDropsOldestKeepsNewest) {
  TraceRecorder recorder;
  recorder.set_max_tail_events(100);
  for (uint32_t i = 0; i < 1000; ++i) {
    recorder.Append(Exec(i));
  }
  EXPECT_GT(recorder.dropped_events(), 0u);
  std::vector<TraceEvent> events = recorder.Reconstruct();
  ASSERT_FALSE(events.empty());
  // The newest event always survives (bug sites live at the end of traces).
  EXPECT_EQ(events.back().pc, 999u);
}

TEST(TraceTest, RandomizedForkTreeMatchesReferenceModel) {
  Rng rng(99);
  struct Node {
    TraceRecorder recorder;
    std::vector<uint32_t> reference;
  };
  std::vector<Node> nodes(1);
  uint32_t next_pc = 0;
  for (int step = 0; step < 2000; ++step) {
    size_t idx = rng.NextBelow(nodes.size());
    if (rng.NextBelow(4) == 0 && nodes.size() < 32) {
      Node forked;
      forked.recorder = nodes[idx].recorder.Fork();
      forked.reference = nodes[idx].reference;
      nodes.push_back(std::move(forked));
    } else {
      nodes[idx].recorder.Append(Exec(next_pc));
      nodes[idx].reference.push_back(next_pc);
      ++next_pc;
    }
  }
  for (Node& node : nodes) {
    std::vector<TraceEvent> events = node.recorder.Reconstruct();
    ASSERT_EQ(events.size(), node.reference.size());
    for (size_t i = 0; i < events.size(); ++i) {
      ASSERT_EQ(events[i].pc, node.reference[i]);
    }
  }
}

TEST(TraceTest, FormatContainsKeyEvents) {
  TraceRecorder recorder;
  recorder.Append(Exec(0x10000));
  TraceEvent mem;
  mem.kind = TraceEvent::Kind::kMemWrite;
  mem.pc = 0x10008;
  mem.addr = 0x2000;
  mem.size = 4;
  mem.value = 0xABCD;
  recorder.Append(mem);
  TraceEvent intr;
  intr.kind = TraceEvent::Kind::kInterrupt;
  intr.a = 7;
  recorder.Append(intr);
  TraceEvent bug;
  bug.kind = TraceEvent::Kind::kBugMark;
  bug.pc = 0x10010;
  bug.a = 0;
  recorder.Append(bug);

  std::string text = FormatTrace(recorder.Reconstruct());
  EXPECT_NE(text.find("exec  pc=00010000"), std::string::npos);
  EXPECT_NE(text.find("write"), std::string::npos);
  EXPECT_NE(text.find("symbolic interrupt injected (crossing 7)"), std::string::npos);
  EXPECT_NE(text.find("BUG #0"), std::string::npos);
}

TEST(TraceTest, FormatElidesLongTraces) {
  TraceRecorder recorder;
  for (uint32_t i = 0; i < 100; ++i) {
    recorder.Append(Exec(i));
  }
  std::string text = FormatTrace(recorder.Reconstruct(), 10);
  EXPECT_NE(text.find("earlier events elided"), std::string::npos);
}

TEST(TraceTest, EventKindNamesAreComplete) {
  // Every kind renders to a non-placeholder name.
  for (int k = 0; k <= static_cast<int>(TraceEvent::Kind::kBugMark); ++k) {
    EXPECT_STRNE(TraceEventKindName(static_cast<TraceEvent::Kind>(k)), "?");
  }
}


TEST(TraceTest, SymbolizedRendering) {
  TraceSymbolizer symbolizer({{0x10000, "ep_init"}, {0x10040, "isr"}});
  EXPECT_EQ(symbolizer.Label(0x10000), "ep_init");
  EXPECT_EQ(symbolizer.Label(0x10008), "ep_init+0x8");
  EXPECT_EQ(symbolizer.Label(0x10040), "isr");
  EXPECT_EQ(symbolizer.Label(0x9000), "0x00009000");  // before every symbol

  TraceRecorder recorder;
  recorder.Append(Exec(0x10008));
  TraceEvent branch;
  branch.kind = TraceEvent::Kind::kBranch;
  branch.pc = 0x10010;
  branch.a = 0x10048;
  recorder.Append(branch);
  std::string text = FormatTrace(recorder.Reconstruct(), 100, &symbolizer);
  EXPECT_NE(text.find("exec  pc=ep_init+0x8"), std::string::npos) << text;
  EXPECT_NE(text.find("branch pc=ep_init+0x10 -> isr+0x8"), std::string::npos) << text;
}

}  // namespace
}  // namespace ddt
