// Internal invariant checking.
//
// DDT_CHECK is for programmer errors: violations abort the process with a
// source location. It is always on (including release builds) because the
// engine's correctness claims (soundness of path constraints, COW memory
// integrity) are exactly the kind of thing that must never silently degrade.
//
// The one sanctioned exception is the campaign supervisor: a multi-hour
// fault campaign must not lose every completed pass because one pathological
// plan drove the engine into an invariant trip. While a ScopedCheckTrap is
// alive on the current thread, DDT_CHECK failures throw CheckFailureError
// (carrying the same file:line:expr message) instead of aborting; the
// supervisor catches it and quarantines the offending pass.
#ifndef SRC_SUPPORT_CHECK_H_
#define SRC_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ddt {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr, const char* msg);

// Thrown instead of aborting when a ScopedCheckTrap is active on this thread.
class CheckFailureError : public std::runtime_error {
 public:
  explicit CheckFailureError(const std::string& what) : std::runtime_error(what) {}
};

// RAII scope converting DDT_CHECK failures on the current thread into thrown
// CheckFailureError. Nests (a depth counter, not a flag). Best-effort by
// design: a check that fires inside a noexcept context still terminates, but
// every engine-pass invariant reachable from guest input unwinds cleanly.
class ScopedCheckTrap {
 public:
  ScopedCheckTrap();
  ~ScopedCheckTrap();

  ScopedCheckTrap(const ScopedCheckTrap&) = delete;
  ScopedCheckTrap& operator=(const ScopedCheckTrap&) = delete;
};

}  // namespace ddt

#define DDT_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::ddt::CheckFailed(__FILE__, __LINE__, #cond, nullptr);  \
    }                                                          \
  } while (0)

#define DDT_CHECK_MSG(cond, msg)                            \
  do {                                                      \
    if (!(cond)) {                                          \
      ::ddt::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                       \
  } while (0)

#define DDT_UNREACHABLE(msg) ::ddt::CheckFailed(__FILE__, __LINE__, "unreachable", (msg))

#endif  // SRC_SUPPORT_CHECK_H_
