// Internal invariant checking.
//
// DDT_CHECK is for programmer errors: violations abort the process with a
// source location. It is always on (including release builds) because the
// engine's correctness claims (soundness of path constraints, COW memory
// integrity) are exactly the kind of thing that must never silently degrade.
#ifndef SRC_SUPPORT_CHECK_H_
#define SRC_SUPPORT_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ddt {

[[noreturn]] void CheckFailed(const char* file, int line, const char* expr, const char* msg);

}  // namespace ddt

#define DDT_CHECK(cond)                                        \
  do {                                                         \
    if (!(cond)) {                                             \
      ::ddt::CheckFailed(__FILE__, __LINE__, #cond, nullptr);  \
    }                                                          \
  } while (0)

#define DDT_CHECK_MSG(cond, msg)                            \
  do {                                                      \
    if (!(cond)) {                                          \
      ::ddt::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                       \
  } while (0)

#define DDT_UNREACHABLE(msg) ::ddt::CheckFailed(__FILE__, __LINE__, "unreachable", (msg))

#endif  // SRC_SUPPORT_CHECK_H_
