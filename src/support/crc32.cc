#include "src/support/crc32.h"

namespace ddt {

uint32_t Crc32(const void* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace ddt
