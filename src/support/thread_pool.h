// A small fixed-size worker pool for running independent engine passes in
// parallel (the fault-campaign scheduler). Tasks are opaque closures; there
// is deliberately no result plumbing — callers write into pre-sized slots
// they own, which keeps result ordering deterministic regardless of
// completion order.
#ifndef SRC_SUPPORT_THREAD_POOL_H_
#define SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/obs/metrics.h"

namespace ddt {

class ThreadPool {
 public:
  // Spawns exactly `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(size_t num_threads);
  // Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. A task that throws does not terminate the pool: the
  // exception is captured (in completion order) and retrievable through
  // TakeExceptions(), and the worker moves on to the next task. Callers that
  // care about per-task failure should still catch inside the task and
  // report through their own result slots; the capture here is the backstop
  // that keeps one faulty task from killing every in-flight sibling.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished. The pool is reusable
  // afterwards.
  void Wait();

  // Exceptions captured from tasks that threw, in completion order; clears
  // the captured list. Call after Wait() for a complete picture.
  std::vector<std::exception_ptr> TakeExceptions();

  size_t num_threads() const { return workers_.size(); }

  // std::thread::hardware_concurrency(), clamped to at least 1 (the standard
  // allows it to return 0 when unknown).
  static size_t HardwareThreads();

  // Optional metrics sink (non-owning, null = off). Publishes:
  //   pool.queue_depth      gauge   tasks waiting (high-water = backlog peak)
  //   pool.tasks_completed  counter tasks finished (including those that threw)
  //   pool.busy_ms          counter summed wall time workers spent inside tasks
  // Call before the first Submit; instruments register once here, and workers
  // update them without extra locking beyond the pool's own mutex.
  void SetMetrics(obs::MetricsRegistry* metrics);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: task ready / stop
  std::condition_variable idle_cv_;   // signals Wait(): everything drained
  std::deque<std::function<void()>> queue_;
  std::vector<std::exception_ptr> exceptions_;  // captured from throwing tasks
  size_t in_flight_ = 0;  // tasks popped but not yet finished
  bool stop_ = false;

  // Metrics handles (null when no registry was attached).
  obs::Gauge* queue_depth_ = nullptr;
  obs::Counter* tasks_completed_ = nullptr;
  obs::Counter* busy_ms_ = nullptr;
};

}  // namespace ddt

#endif  // SRC_SUPPORT_THREAD_POOL_H_
