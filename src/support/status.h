// Lightweight error propagation for fallible library boundaries (assembler,
// binary loading, trace deserialization). Guest-level failures (driver bugs,
// kernel panics) are *events*, not statuses — they flow through the checker
// pipeline instead.
#ifndef SRC_SUPPORT_STATUS_H_
#define SRC_SUPPORT_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/support/check.h"

namespace ddt {

class Status {
 public:
  Status() = default;  // OK
  static Status Ok() { return Status(); }
  static Status Error(std::string message) { return Status(std::move(message)); }

  bool ok() const { return message_.empty(); }
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::string message_;  // empty == OK
};

// Minimal StatusOr: holds either a value or an error message.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}                       // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {                 // NOLINT(runtime/explicit)
    DDT_CHECK_MSG(!std::get<Status>(value_).ok(), "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }
  const std::string& error() const { return std::get<Status>(value_).message(); }
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(value_);
  }

  T& value() {
    DDT_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(value_);
  }
  const T& value() const {
    DDT_CHECK_MSG(ok(), "Result::value() on error");
    return std::get<T>(value_);
  }
  T&& take() {
    DDT_CHECK_MSG(ok(), "Result::take() on error");
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace ddt

#endif  // SRC_SUPPORT_STATUS_H_
