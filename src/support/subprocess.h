// Child-process plumbing for the campaign fleet (src/fleet).
//
// The fleet's crash-isolation story rests on real OS processes: a worker that
// segfaults, trips a CHECK, or is SIGKILLed takes down only itself. This
// header is the thin POSIX layer the coordinator uses to get there — spawn a
// child connected by a pipe pair, reap it without blocking, and kill it with
// certainty. Two spawn modes:
//
//   - SpawnChild(fn): plain fork(); `fn` runs in the child and its return
//     value becomes the exit status. The child shares the parent's memory
//     image (copy-on-write), so the worker can be handed config objects
//     directly. Used by tests and by library callers that already have the
//     campaign config in memory. Callers must not hold locks other threads
//     might own at fork time; the coordinator spawns before starting any of
//     its own threads for exactly this reason.
//
//   - SpawnChildExec(exe, args): fork + execvp. The pipe ends are dup2'd onto
//     fixed descriptors (kChildInFd/kChildOutFd) so the re-executed binary
//     finds them without argv plumbing. Used by the fault_campaign example's
//     --workers mode, where each worker is a fresh copy of the same binary in
//     --fleet-worker mode.
//
// On Linux, children request PR_SET_PDEATHSIG(SIGKILL): if the coordinator
// itself dies, the kernel reaps the fleet — no orphaned workers grinding on.
#ifndef SRC_SUPPORT_SUBPROCESS_H_
#define SRC_SUPPORT_SUBPROCESS_H_

#include <sys/types.h>

#include <functional>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace ddt {

// The fixed descriptors an exec'd child finds its command/response pipes on
// (after stdin/stdout/stderr).
constexpr int kChildInFd = 3;   // child reads coordinator frames here
constexpr int kChildOutFd = 4;  // child writes frames to the coordinator here

struct ChildProcess {
  pid_t pid = -1;
  int to_child_fd = -1;    // parent writes, child reads
  int from_child_fd = -1;  // parent reads, child writes

  // Closes the parent's pipe ends (idempotent). Does not touch the process.
  void CloseFds();
};

// fork(): runs `child_main(in_fd, out_fd)` in the child; its return value is
// the child's exit status (the child never returns past this call).
Result<ChildProcess> SpawnChild(const std::function<int(int in_fd, int out_fd)>& child_main);

// fork + execvp: the child re-executes `exe` with `args` (argv[0] is set to
// `exe`), with the pipes on kChildInFd/kChildOutFd.
Result<ChildProcess> SpawnChildExec(const std::string& exe, const std::vector<std::string>& args);

// Non-blocking reap. Returns true iff the child has terminated (status
// filled); false while it is still running.
bool TryReap(pid_t pid, int* status);

// SIGKILL + blocking reap — the coordinator's last word on a wedged worker.
void KillAndReap(pid_t pid);

// "exited 0", "killed by signal 9", ... for logs and failure strings.
std::string DescribeExit(int status);

}  // namespace ddt

#endif  // SRC_SUPPORT_SUBPROCESS_H_
