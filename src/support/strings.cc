#include "src/support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ddt {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return result;
}

std::vector<std::string_view> SplitAny(std::string_view text, std::string_view delims) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || delims.find(text[i]) != std::string_view::npos) {
      if (i > start) {
        pieces.push_back(text.substr(start, i - start));
      }
      start = i + 1;
    }
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ParseInt(std::string_view text, int64_t* out) {
  if (text.empty()) {
    return false;
  }
  bool negative = false;
  size_t pos = 0;
  if (text[0] == '-') {
    negative = true;
    pos = 1;
  } else if (text[0] == '+') {
    pos = 1;
  }
  if (pos >= text.size()) {
    return false;
  }
  int base = 10;
  if (text.size() - pos > 2 && text[pos] == '0' && (text[pos + 1] == 'x' || text[pos + 1] == 'X')) {
    base = 16;
    pos += 2;
  } else if (text.size() - pos > 2 && text[pos] == '0' &&
             (text[pos + 1] == 'b' || text[pos + 1] == 'B')) {
    base = 2;
    pos += 2;
  }
  uint64_t value = 0;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else if (c == '_') {
      continue;  // digit separator
    } else {
      return false;
    }
    if (digit >= base) {
      return false;
    }
    uint64_t next = value * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
    if (next < value) {
      return false;  // overflow
    }
    value = next;
  }
  if (negative) {
    if (value > 0x8000000000000000ull) {
      return false;
    }
    *out = -static_cast<int64_t>(value);
  } else {
    if (value > 0x7FFFFFFFFFFFFFFFull) {
      return false;
    }
    *out = static_cast<int64_t>(value);
  }
  return true;
}

std::string HexBytes(const uint8_t* data, size_t size) {
  std::string out;
  out.reserve(size * 3);
  for (size_t i = 0; i < size; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out += StrFormat("%02x", data[i]);
  }
  return out;
}

}  // namespace ddt
