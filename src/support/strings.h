// Small string helpers shared by the assembler, report formatter, and tests.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ddt {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on any char in `delims`, dropping empty pieces.
std::vector<std::string_view> SplitAny(std::string_view text, std::string_view delims);

// Strips leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);

// Parses a signed integer literal: decimal, 0x hex, or 0b binary, with
// optional leading '-'. Returns false on malformed input or overflow of
// int64_t.
bool ParseInt(std::string_view text, int64_t* out);

// Hex dump helper for diagnostics: "de ad be ef".
std::string HexBytes(const uint8_t* data, size_t size);

}  // namespace ddt

#endif  // SRC_SUPPORT_STRINGS_H_
