// Deterministic PRNGs. Every stochastic decision in DDT — random
// concretization choices (§3.2 "selects feasible values at random"), searcher
// tie-breaking, campaign escalation-plan sampling, fuzz mutation — draws from
// a seeded generator defined here, so whole runs are reproducible, which the
// trace/replay machinery depends on.
//
// Two generators, two jobs:
//   Rng        — xorshift64*; the engine/searcher/campaign-plan generator.
//                Its sequences are load-bearing: existing deterministic
//                reports depend on them, so its algorithm never changes.
//   SplitMix64 — stateless-jump splittable generator; the fuzz subsystem's
//                mutation streams. Each (seed, batch, exec) coordinate forks
//                an independent stream with Fork(), so a mutated input's
//                bytes depend only on its coordinates — never on thread
//                interleaving, worker count, or execution order.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace ddt {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed != 0 ? seed : 1) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  double NextDouble() { return static_cast<double>(Next() >> 11) / 9007199254740992.0; }

  uint64_t state() const { return state_; }

 private:
  uint64_t state_;
};

// SplitMix64 (Steele/Lea/Flood). Full-period over the 64-bit state, every
// seed valid (including 0), and cheap to split: Fork(k) derives the
// generator for sub-stream k without consuming this stream's outputs, which
// is what lets fuzz coordinates (seed, batch, exec index) map to independent
// deterministic streams.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed = 0) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Independent sub-stream k of this generator's current state. Mixing the
  // key through one Next()-style avalanche keeps adjacent keys uncorrelated.
  SplitMix64 Fork(uint64_t key) const {
    SplitMix64 child(state_ ^ (key * 0xBF58476D1CE4E5B9ull + 0x94D049BB133111EBull));
    child.Next();
    return child;
  }

 private:
  uint64_t state_;
};

}  // namespace ddt

#endif  // SRC_SUPPORT_RNG_H_
