// Deterministic PRNG (xorshift64*). Every stochastic decision in DDT — random
// concretization choices (§3.2 "selects feasible values at random"), searcher
// tie-breaking, Driver Verifier stress inputs — draws from a seeded Rng so
// whole runs are reproducible, which the trace/replay machinery depends on.
#ifndef SRC_SUPPORT_RNG_H_
#define SRC_SUPPORT_RNG_H_

#include <cstdint>

namespace ddt {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed != 0 ? seed : 1) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1Dull;
  }

  // Uniform in [0, bound). bound must be nonzero.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) { return lo + NextBelow(hi - lo + 1); }

  double NextDouble() { return static_cast<double>(Next() >> 11) / 9007199254740992.0; }

  uint64_t state() const { return state_; }

 private:
  uint64_t state_;
};

}  // namespace ddt

#endif  // SRC_SUPPORT_RNG_H_
