// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the standard zlib
// CRC. One shared implementation for every integrity-checked byte stream in
// the tree: the campaign journal's record lines, the shared solver cache's
// persistence file, and the fleet wire protocol's frames all use this exact
// function, so a checksum computed by one layer verifies in another.
#ifndef SRC_SUPPORT_CRC32_H_
#define SRC_SUPPORT_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ddt {

uint32_t Crc32(const void* data, size_t size);

inline uint32_t Crc32(std::string_view data) { return Crc32(data.data(), data.size()); }

}  // namespace ddt

#endif  // SRC_SUPPORT_CRC32_H_
