#include "src/support/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace ddt {

size_t ThreadPool::HardwareThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::SetMetrics(obs::MetricsRegistry* metrics) {
#ifndef DDT_OBS_DISABLED
  std::unique_lock<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    queue_depth_ = nullptr;
    tasks_completed_ = nullptr;
    busy_ms_ = nullptr;
    return;
  }
  queue_depth_ = metrics->gauge("pool.queue_depth");
  tasks_completed_ = metrics->counter("pool.tasks_completed");
  busy_ms_ = metrics->counter("pool.busy_ms");
#endif
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    if (queue_depth_ != nullptr) {
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::vector<std::exception_ptr> ThreadPool::TakeExceptions() {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::exception_ptr> out;
  out.swap(exceptions_);
  return out;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to do
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_ != nullptr) {
        queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      }
      ++in_flight_;
    }
    std::chrono::steady_clock::time_point task_start;
    if (busy_ms_ != nullptr) {
      task_start = std::chrono::steady_clock::now();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // Capture instead of std::terminate: one throwing task must not take
      // down the pool (or the process) while siblings are mid-flight.
      error = std::current_exception();
    }
    if (busy_ms_ != nullptr) {
      busy_ms_->Add(static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                              std::chrono::steady_clock::now() - task_start)
                                              .count()));
    }
    if (tasks_completed_ != nullptr) {
      tasks_completed_->Add(1);
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (error != nullptr) {
        exceptions_.push_back(std::move(error));
      }
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace ddt
