#include "src/support/subprocess.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#ifdef __linux__
#include <sys/prctl.h>
#endif

#include "src/support/eintr.h"
#include "src/support/strings.h"

namespace ddt {
namespace {

void ChildCommonSetup() {
#ifdef __linux__
  // If the coordinator dies, take the worker with it — an orphaned worker
  // would grind on a lease nobody will ever collect.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  // A worker whose coordinator closed the pipe must see EPIPE from write(),
  // not die silently mid-frame.
  ::signal(SIGPIPE, SIG_IGN);
}

struct PipePair {
  int read_fd = -1;
  int write_fd = -1;
};

Status MakePipe(PipePair* out) {
  int fds[2];
  if (::pipe(fds) != 0) {
    return Status::Error(StrFormat("pipe() failed: %s", std::strerror(errno)));
  }
  out->read_fd = fds[0];
  out->write_fd = fds[1];
  return Status::Ok();
}

}  // namespace

void ChildProcess::CloseFds() {
  if (to_child_fd >= 0) {
    ::close(to_child_fd);
    to_child_fd = -1;
  }
  if (from_child_fd >= 0) {
    ::close(from_child_fd);
    from_child_fd = -1;
  }
}

Result<ChildProcess> SpawnChild(const std::function<int(int in_fd, int out_fd)>& child_main) {
  PipePair to_child;
  PipePair from_child;
  Status st = MakePipe(&to_child);
  if (!st.ok()) {
    return st;
  }
  st = MakePipe(&from_child);
  if (!st.ok()) {
    ::close(to_child.read_fd);
    ::close(to_child.write_fd);
    return st;
  }

  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(to_child.read_fd);
    ::close(to_child.write_fd);
    ::close(from_child.read_fd);
    ::close(from_child.write_fd);
    return Status::Error(StrFormat("fork() failed: %s", std::strerror(errno)));
  }
  if (pid == 0) {
    ChildCommonSetup();
    ::close(to_child.write_fd);
    ::close(from_child.read_fd);
    int code = child_main(to_child.read_fd, from_child.write_fd);
    // _exit, not exit: the child must not run the parent's atexit handlers or
    // flush the parent's stdio buffers a second time.
    ::_exit(code);
  }
  ::close(to_child.read_fd);
  ::close(from_child.write_fd);
  // CLOEXEC on the parent's ends: a sibling spawned later via exec must not
  // inherit this child's pipes (it would hold the write end open and mask
  // EOF on this child's death).
  ::fcntl(to_child.write_fd, F_SETFD, FD_CLOEXEC);
  ::fcntl(from_child.read_fd, F_SETFD, FD_CLOEXEC);
  ChildProcess child;
  child.pid = pid;
  child.to_child_fd = to_child.write_fd;
  child.from_child_fd = from_child.read_fd;
  return child;
}

Result<ChildProcess> SpawnChildExec(const std::string& exe, const std::vector<std::string>& args) {
  return SpawnChild([&exe, &args](int in_fd, int out_fd) -> int {
    if (::dup2(in_fd, kChildInFd) < 0 || ::dup2(out_fd, kChildOutFd) < 0) {
      return 127;
    }
    if (in_fd != kChildInFd && in_fd != kChildOutFd) {
      ::close(in_fd);
    }
    if (out_fd != kChildInFd && out_fd != kChildOutFd) {
      ::close(out_fd);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(exe.c_str()));
    for (const std::string& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execvp(exe.c_str(), argv.data());
    return 127;  // execvp only returns on failure
  });
}

bool TryReap(pid_t pid, int* status) {
  int st = 0;
  pid_t r = RetryOnEintr([&] { return ::waitpid(pid, &st, WNOHANG); });
  if (r == pid) {
    *status = st;
    return true;
  }
  return false;
}

void KillAndReap(pid_t pid) {
  ::kill(pid, SIGKILL);
  int st = 0;
  RetryOnEintr([&] { return ::waitpid(pid, &st, 0); });
}

std::string DescribeExit(int status) {
  if (WIFEXITED(status)) {
    return StrFormat("exited %d", WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return StrFormat("killed by signal %d", WTERMSIG(status));
  }
  return StrFormat("unknown wait status 0x%x", status);
}

}  // namespace ddt
