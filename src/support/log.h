// Leveled logging to stderr. The engine is chatty at kDebug when tracing path
// exploration; default level is kWarn so tests and benches stay quiet.
#ifndef SRC_SUPPORT_LOG_H_
#define SRC_SUPPORT_LOG_H_

#include <cstdarg>

namespace ddt {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kNone = 4,
};

// Global threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// printf-style. Cheap early-out when the level is filtered.
void Logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace ddt

#define DDT_LOG_DEBUG(...) ::ddt::Logf(::ddt::LogLevel::kDebug, __VA_ARGS__)
#define DDT_LOG_INFO(...) ::ddt::Logf(::ddt::LogLevel::kInfo, __VA_ARGS__)
#define DDT_LOG_WARN(...) ::ddt::Logf(::ddt::LogLevel::kWarn, __VA_ARGS__)
#define DDT_LOG_ERROR(...) ::ddt::Logf(::ddt::LogLevel::kError, __VA_ARGS__)

#endif  // SRC_SUPPORT_LOG_H_
