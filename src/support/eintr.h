// EINTR retry for raw POSIX calls.
//
// Every blocking syscall the fleet makes — pipe reads/writes, poll, waitpid —
// can be interrupted by a signal and return -1/EINTR, which is a retry, not a
// failure. Before this helper each call site open-coded its own do/while
// loop; subtle variations between them (wire.cc retried reads but checked
// errno after the loop, the coordinator checked EINTR inside a larger errno
// ladder) made the retry policy hard to audit. RetryOnEintr is that policy in
// one place: call again until the result is not an EINTR-flavored -1.
#ifndef SRC_SUPPORT_EINTR_H_
#define SRC_SUPPORT_EINTR_H_

#include <cerrno>

namespace ddt {

// Invokes `fn` (a nullary callable wrapping one syscall that reports failure
// as a negative result with errno set) until it returns anything other than
// a negative value with errno == EINTR, and returns that result. errno is
// left as the final call set it, so callers can still dispatch on EAGAIN,
// EPIPE, etc.
template <typename Fn>
auto RetryOnEintr(Fn&& fn) -> decltype(fn()) {
  decltype(fn()) result;
  do {
    result = fn();
  } while (result < 0 && errno == EINTR);
  return result;
}

}  // namespace ddt

#endif  // SRC_SUPPORT_EINTR_H_
