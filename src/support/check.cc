#include "src/support/check.h"

namespace ddt {

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  if (msg != nullptr) {
    std::fprintf(stderr, "DDT_CHECK failed at %s:%d: %s (%s)\n", file, line, expr, msg);
  } else {
    std::fprintf(stderr, "DDT_CHECK failed at %s:%d: %s\n", file, line, expr);
  }
  std::abort();
}

}  // namespace ddt
