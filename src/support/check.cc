#include "src/support/check.h"

namespace ddt {

namespace {
// Per-thread trap depth: >0 means DDT_CHECK failures throw instead of abort.
thread_local int check_trap_depth = 0;
}  // namespace

ScopedCheckTrap::ScopedCheckTrap() { ++check_trap_depth; }

ScopedCheckTrap::~ScopedCheckTrap() { --check_trap_depth; }

void CheckFailed(const char* file, int line, const char* expr, const char* msg) {
  char buffer[512];
  if (msg != nullptr) {
    std::snprintf(buffer, sizeof(buffer), "DDT_CHECK failed at %s:%d: %s (%s)", file, line, expr,
                  msg);
  } else {
    std::snprintf(buffer, sizeof(buffer), "DDT_CHECK failed at %s:%d: %s", file, line, expr);
  }
  if (check_trap_depth > 0) {
    throw CheckFailureError(buffer);
  }
  std::fprintf(stderr, "%s\n", buffer);
  std::abort();
}

}  // namespace ddt
