#include "src/solver/sat.h"

#include <algorithm>

#include "src/support/check.h"

namespace ddt {

namespace {

// Luby restart sequence: 1,1,2,1,1,2,4,... (MiniSat's formulation, 0-based).
uint64_t Luby(uint64_t x) {
  uint64_t size = 1;
  uint64_t seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return 1ull << seq;
}

constexpr uint64_t kRestartBase = 256;

}  // namespace

SatSolver::SatSolver() = default;

uint32_t SatSolver::NewVar() {
  uint32_t var = static_cast<uint32_t>(assign_.size());
  assign_.push_back(kUndef);
  saved_phase_.push_back(0);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  return var;
}

bool SatSolver::AddClause(std::vector<SatLit> lits) {
  if (known_unsat_) {
    return false;
  }
  DDT_CHECK_MSG(trail_limits_.empty(), "AddClause only at decision level 0");
  // Normalize: sort, dedupe, drop clauses with complementary pairs, drop
  // false literals, and short-circuit on true literals.
  std::sort(lits.begin(), lits.end());
  std::vector<SatLit> cleaned;
  for (size_t i = 0; i < lits.size(); ++i) {
    SatLit lit = lits[i];
    if (i + 1 < lits.size() && lits[i + 1] == NegateLit(lit)) {
      return true;  // tautology
    }
    if (!cleaned.empty() && cleaned.back() == lit) {
      continue;
    }
    if (LitValueIsTrue(lit)) {
      return true;  // satisfied at level 0
    }
    if (LitValueIsFalse(lit)) {
      continue;  // drop
    }
    cleaned.push_back(lit);
  }
  if (cleaned.empty()) {
    known_unsat_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    Enqueue(cleaned[0], kNoReason);
    if (Propagate() != kNoReason) {
      known_unsat_ = true;
      return false;
    }
    return true;
  }
  clauses_.push_back(Clause{std::move(cleaned), false, 0.0});
  AttachClause(static_cast<ClauseIdx>(clauses_.size() - 1));
  return true;
}

void SatSolver::AttachClause(ClauseIdx idx) {
  const Clause& c = clauses_[idx];
  watches_[NegateLit(c.lits[0])].push_back(idx);
  watches_[NegateLit(c.lits[1])].push_back(idx);
}

void SatSolver::Enqueue(SatLit lit, ClauseIdx reason) {
  uint32_t var = LitVar(lit);
  DDT_CHECK(assign_[var] == kUndef);
  assign_[var] = LitNegated(lit) ? 0 : 1;
  level_[var] = static_cast<uint32_t>(trail_limits_.size());
  reason_[var] = reason;
  trail_.push_back(lit);
}

SatSolver::ClauseIdx SatSolver::Propagate() {
  while (propagate_head_ < trail_.size()) {
    SatLit p = trail_[propagate_head_++];
    ++propagations_;
    // Clauses watching ¬p: that literal just became false.
    std::vector<ClauseIdx>& watch_list = watches_[p];
    size_t keep = 0;
    for (size_t i = 0; i < watch_list.size(); ++i) {
      ClauseIdx idx = watch_list[i];
      Clause& c = clauses_[idx];
      SatLit false_lit = NegateLit(p);
      // Ensure the false literal is in slot 1.
      if (c.lits[0] == false_lit) {
        std::swap(c.lits[0], c.lits[1]);
      }
      // If slot 0 is already true, clause is satisfied; keep watch.
      if (LitValueIsTrue(c.lits[0])) {
        watch_list[keep++] = idx;
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (!LitValueIsFalse(c.lits[k])) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[NegateLit(c.lits[1])].push_back(idx);
          found = true;
          break;
        }
      }
      if (found) {
        continue;  // watch moved; drop from this list
      }
      // Clause is unit or conflicting.
      watch_list[keep++] = idx;
      if (LitValueIsFalse(c.lits[0])) {
        // Conflict: restore remaining watches and report.
        for (size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return idx;
      }
      Enqueue(c.lits[0], idx);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void SatSolver::Analyze(ClauseIdx conflict, std::vector<SatLit>* learned,
                        uint32_t* backtrack_level) {
  learned->clear();
  learned->push_back(0);  // placeholder for the asserting literal
  uint32_t current_level = static_cast<uint32_t>(trail_limits_.size());
  int counter = 0;
  SatLit p = 0;
  bool have_p = false;
  size_t trail_index = trail_.size();
  ClauseIdx reason = conflict;

  for (;;) {
    DDT_CHECK(reason != kNoReason);
    Clause& c = clauses_[reason];
    c.activity += activity_inc_;
    size_t start = have_p ? 1 : 0;  // skip the asserting literal itself
    for (size_t i = start; i < c.lits.size(); ++i) {
      SatLit q = c.lits[i];
      if (have_p && q == p) {
        continue;
      }
      uint32_t var = LitVar(q);
      if (seen_[var] != 0 || level_[var] == 0) {
        continue;
      }
      seen_[var] = 1;
      BumpVar(var);
      if (level_[var] == current_level) {
        ++counter;
      } else {
        learned->push_back(q);
      }
    }
    // Select next literal on the trail to resolve on.
    do {
      DDT_CHECK(trail_index > 0);
      --trail_index;
      p = trail_[trail_index];
    } while (seen_[LitVar(p)] == 0);
    have_p = true;
    seen_[LitVar(p)] = 0;
    reason = reason_[LitVar(p)];
    --counter;
    if (counter <= 0) {
      break;
    }
    // Invariant from Enqueue/Propagate: a reason clause always has its
    // asserting literal in slot 0, so the `start = 1` skip above is valid.
    if (reason != kNoReason) {
      DDT_CHECK(clauses_[reason].lits[0] == p);
    }
  }
  (*learned)[0] = NegateLit(p);

  // Clear seen marks for the learned clause literals.
  for (SatLit lit : *learned) {
    seen_[LitVar(lit)] = 0;
  }

  // Backtrack level: maximum level among non-asserting literals.
  *backtrack_level = 0;
  size_t max_pos = 1;
  for (size_t i = 1; i < learned->size(); ++i) {
    uint32_t lvl = level_[LitVar((*learned)[i])];
    if (lvl > *backtrack_level) {
      *backtrack_level = lvl;
      max_pos = i;
    }
  }
  if (learned->size() > 1) {
    std::swap((*learned)[1], (*learned)[max_pos]);
  }
}

void SatSolver::Backtrack(uint32_t target_level) {
  if (trail_limits_.size() <= target_level) {
    return;
  }
  size_t bound = trail_limits_[target_level];
  for (size_t i = trail_.size(); i > bound; --i) {
    SatLit lit = trail_[i - 1];
    uint32_t var = LitVar(lit);
    saved_phase_[var] = assign_[var];
    assign_[var] = kUndef;
    reason_[var] = kNoReason;
  }
  trail_.resize(bound);
  trail_limits_.resize(target_level);
  propagate_head_ = trail_.size();
}

void SatSolver::BumpVar(uint32_t var) {
  activity_[var] += activity_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) {
      a *= 1e-100;
    }
    activity_inc_ *= 1e-100;
  }
}

void SatSolver::DecayActivities() { activity_inc_ *= (1.0 / 0.95); }

SatLit SatSolver::PickBranchLit() {
  // Linear scan for the highest-activity unassigned variable. Problem sizes
  // here (a few thousand variables) make a heap unnecessary.
  double best = -1.0;
  uint32_t best_var = UINT32_MAX;
  for (uint32_t v = 0; v < assign_.size(); ++v) {
    if (assign_[v] == kUndef && activity_[v] > best) {
      best = activity_[v];
      best_var = v;
    }
  }
  if (best_var == UINT32_MAX) {
    return UINT32_MAX;
  }
  // Phase saving: re-use the last assigned polarity.
  bool negate = saved_phase_[best_var] == 0;
  return MakeLit(best_var, negate);
}

SatResult SatSolver::Solve(const std::vector<SatLit>& assumptions, uint64_t conflict_budget,
                           const std::chrono::steady_clock::time_point* deadline,
                           const std::atomic<bool>* abort) {
  hit_deadline_ = false;
  hit_abort_ = false;
  if (known_unsat_) {
    return SatResult::kUnsat;
  }
  Backtrack(0);
  if (Propagate() != kNoReason) {
    known_unsat_ = true;
    return SatResult::kUnsat;
  }

  uint64_t conflicts_at_start = conflicts_;
  uint64_t restarts = 0;
  uint64_t restart_limit = kRestartBase * Luby(0);
  uint64_t conflicts_since_restart = 0;
  std::vector<SatLit> learned;

  for (;;) {
    ClauseIdx conflict = Propagate();
    if (conflict != kNoReason) {
      ++conflicts_;
      ++conflicts_since_restart;
      if (trail_limits_.empty()) {
        known_unsat_ = true;
        return SatResult::kUnsat;
      }
      if (trail_limits_.size() <= assumptions.size()) {
        // Conflict entirely under the assumption prefix.
        Backtrack(0);
        return SatResult::kUnsat;
      }
      uint32_t backtrack_level;
      Analyze(conflict, &learned, &backtrack_level);
      Backtrack(backtrack_level);
      if (learned.size() == 1) {
        Backtrack(0);
        if (!LitUnassigned(learned[0])) {
          if (LitValueIsFalse(learned[0])) {
            known_unsat_ = true;
            return SatResult::kUnsat;
          }
        } else {
          Enqueue(learned[0], kNoReason);
        }
      } else {
        clauses_.push_back(Clause{learned, true, activity_inc_});
        ClauseIdx idx = static_cast<ClauseIdx>(clauses_.size() - 1);
        AttachClause(idx);
        Enqueue(learned[0], idx);
      }
      DecayActivities();
      if (conflict_budget != 0 && conflicts_ - conflicts_at_start >= conflict_budget) {
        Backtrack(0);
        return SatResult::kUnknown;
      }
      if (deadline != nullptr && std::chrono::steady_clock::now() >= *deadline) {
        hit_deadline_ = true;
        Backtrack(0);
        return SatResult::kUnknown;
      }
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
        hit_abort_ = true;
        Backtrack(0);
        return SatResult::kUnknown;
      }
      if (conflicts_since_restart >= restart_limit) {
        ++restarts;
        conflicts_since_restart = 0;
        restart_limit = kRestartBase * Luby(restarts);
        Backtrack(0);
      }
      continue;
    }

    // No conflict: extend the assumption prefix, then decide.
    if (trail_limits_.size() < assumptions.size()) {
      SatLit lit = assumptions[trail_limits_.size()];
      if (LitValueIsFalse(lit)) {
        Backtrack(0);
        return SatResult::kUnsat;
      }
      trail_limits_.push_back(static_cast<uint32_t>(trail_.size()));
      if (LitUnassigned(lit)) {
        Enqueue(lit, kNoReason);
      }
      continue;
    }
    SatLit decision = PickBranchLit();
    if (decision == UINT32_MAX) {
      return SatResult::kSat;  // full assignment
    }
    // Conflict-free instances never reach the conflict-side deadline/abort
    // checks; poll them here too, cheaply (every 128 decisions).
    if ((decisions_ & 0x7F) == 0) {
      if (deadline != nullptr && std::chrono::steady_clock::now() >= *deadline) {
        hit_deadline_ = true;
        Backtrack(0);
        return SatResult::kUnknown;
      }
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
        hit_abort_ = true;
        Backtrack(0);
        return SatResult::kUnknown;
      }
    }
    ++decisions_;
    trail_limits_.push_back(static_cast<uint32_t>(trail_.size()));
    Enqueue(decision, kNoReason);
  }
}

bool SatSolver::ModelValue(uint32_t var) const {
  DDT_CHECK(var < assign_.size());
  return assign_[var] == 1;
}

}  // namespace ddt
