// Known-bits analysis: tracks, per expression, which bits are provably 0 and
// which are provably 1 under EVERY assignment. Complements the unsigned
// interval analysis as a second SAT-free fast path: bitwise-heavy driver
// code (masking, flag tests) is exactly where intervals are weakest.
//
// Soundness contract: (value & known_zero) == 0 and (value & known_one) ==
// known_one for every assignment. The analysis is an over-approximation —
// unknown bits may still be fixed in reality.
#ifndef SRC_SOLVER_KNOWN_BITS_H_
#define SRC_SOLVER_KNOWN_BITS_H_

#include <cstdint>
#include <unordered_map>

#include "src/expr/expr.h"

namespace ddt {

struct KnownBits {
  uint64_t known_one = 0;   // bits that are 1 in every assignment
  uint64_t known_zero = 0;  // bits that are 0 in every assignment
  uint8_t width = 0;

  static KnownBits Top(uint8_t width) { return KnownBits{0, 0, width}; }
  static KnownBits Exact(uint64_t value, uint8_t width) {
    uint64_t mask = MaskToWidth(~0ull, width);
    return KnownBits{value & mask, ~value & mask, width};
  }

  bool IsExact() const {
    return (known_one | known_zero) == MaskToWidth(~0ull, width);
  }
  uint64_t ExactValue() const { return known_one; }
  // Bits we know anything about.
  uint64_t Determined() const { return known_one | known_zero; }
};

KnownBits ComputeKnownBits(ExprRef e, std::unordered_map<ExprRef, KnownBits>* memo);

}  // namespace ddt

#endif  // SRC_SOLVER_KNOWN_BITS_H_
