#include "src/solver/known_bits.h"

#include <algorithm>

namespace ddt {

namespace {

// Carry-aware addition: low bits stay known until the first position where
// either operand bit (or an incoming carry) is unknown.
KnownBits AddBits(const KnownBits& a, const KnownBits& b, uint8_t width, bool carry_in) {
  KnownBits out = KnownBits::Top(width);
  int carry = carry_in ? 1 : 0;  // 0/1 known, -1 unknown
  for (uint8_t i = 0; i < width; ++i) {
    uint64_t bit = 1ull << i;
    int abit = (a.known_one & bit) != 0 ? 1 : ((a.known_zero & bit) != 0 ? 0 : -1);
    int bbit = (b.known_one & bit) != 0 ? 1 : ((b.known_zero & bit) != 0 ? 0 : -1);
    if (abit < 0 || bbit < 0 || carry < 0) {
      // From here on, sums and carries are unknown.
      break;
    }
    int sum = abit + bbit + carry;
    if ((sum & 1) != 0) {
      out.known_one |= bit;
    } else {
      out.known_zero |= bit;
    }
    carry = sum >> 1;
  }
  return out;
}

}  // namespace

KnownBits ComputeKnownBits(ExprRef e, std::unordered_map<ExprRef, KnownBits>* memo) {
  auto it = memo->find(e);
  if (it != memo->end()) {
    return it->second;
  }
  uint8_t w = e->width();
  uint64_t mask = MaskToWidth(~0ull, w);
  KnownBits result = KnownBits::Top(w);

  switch (e->kind()) {
    case ExprKind::kConst:
      result = KnownBits::Exact(e->const_value(), w);
      break;
    case ExprKind::kAnd: {
      KnownBits a = ComputeKnownBits(e->op(0), memo);
      KnownBits b = ComputeKnownBits(e->op(1), memo);
      result.known_one = a.known_one & b.known_one;
      result.known_zero = (a.known_zero | b.known_zero) & mask;
      result.width = w;
      break;
    }
    case ExprKind::kOr: {
      KnownBits a = ComputeKnownBits(e->op(0), memo);
      KnownBits b = ComputeKnownBits(e->op(1), memo);
      result.known_one = (a.known_one | b.known_one) & mask;
      result.known_zero = a.known_zero & b.known_zero;
      result.width = w;
      break;
    }
    case ExprKind::kXor: {
      KnownBits a = ComputeKnownBits(e->op(0), memo);
      KnownBits b = ComputeKnownBits(e->op(1), memo);
      uint64_t both = a.Determined() & b.Determined();
      uint64_t value = (a.known_one ^ b.known_one) & both;
      result.known_one = value & mask;
      result.known_zero = (~value & both) & mask;
      result.width = w;
      break;
    }
    case ExprKind::kNot: {
      KnownBits a = ComputeKnownBits(e->op(0), memo);
      result.known_one = a.known_zero & mask;
      result.known_zero = a.known_one & mask;
      result.width = w;
      break;
    }
    case ExprKind::kAdd:
      result = AddBits(ComputeKnownBits(e->op(0), memo), ComputeKnownBits(e->op(1), memo), w,
                       /*carry_in=*/false);
      break;
    case ExprKind::kShl: {
      if (e->op(1)->IsConst()) {
        uint64_t s = e->op(1)->const_value();
        if (s >= w) {
          result = KnownBits::Exact(0, w);
        } else {
          KnownBits a = ComputeKnownBits(e->op(0), memo);
          result.known_one = (a.known_one << s) & mask;
          result.known_zero = ((a.known_zero << s) | ((1ull << s) - 1)) & mask;
          result.width = w;
        }
      }
      break;
    }
    case ExprKind::kLShr: {
      if (e->op(1)->IsConst()) {
        uint64_t s = e->op(1)->const_value();
        if (s >= w) {
          result = KnownBits::Exact(0, w);
        } else {
          KnownBits a = ComputeKnownBits(e->op(0), memo);
          uint64_t high_zeros = s == 0 ? 0 : (~((mask >> s))) & mask;
          result.known_one = (a.known_one & mask) >> s;
          result.known_zero = (((a.known_zero & mask) >> s) | high_zeros) & mask;
          result.width = w;
        }
      }
      break;
    }
    case ExprKind::kZExt: {
      KnownBits a = ComputeKnownBits(e->op(0), memo);
      uint64_t inner_mask = MaskToWidth(~0ull, e->op(0)->width());
      result.known_one = a.known_one & inner_mask;
      result.known_zero = (a.known_zero & inner_mask) | (mask & ~inner_mask);
      result.width = w;
      break;
    }
    case ExprKind::kConcat: {
      KnownBits high = ComputeKnownBits(e->op(0), memo);
      KnownBits low = ComputeKnownBits(e->op(1), memo);
      uint8_t low_w = e->op(1)->width();
      uint64_t low_mask = MaskToWidth(~0ull, low_w);
      result.known_one = ((high.known_one << low_w) | (low.known_one & low_mask)) & mask;
      result.known_zero = ((high.known_zero << low_w) | (low.known_zero & low_mask)) & mask;
      result.width = w;
      break;
    }
    case ExprKind::kExtract: {
      KnownBits a = ComputeKnownBits(e->op(0), memo);
      uint32_t low = e->extract_low();
      result.known_one = (a.known_one >> low) & mask;
      result.known_zero = (a.known_zero >> low) & mask;
      result.width = w;
      break;
    }
    case ExprKind::kIte: {
      KnownBits c = ComputeKnownBits(e->op(0), memo);
      KnownBits t = ComputeKnownBits(e->op(1), memo);
      KnownBits f = ComputeKnownBits(e->op(2), memo);
      if (c.IsExact()) {
        result = c.ExactValue() != 0 ? t : f;
      } else {
        result.known_one = t.known_one & f.known_one;
        result.known_zero = t.known_zero & f.known_zero;
        result.width = w;
      }
      break;
    }
    case ExprKind::kEq: {
      KnownBits a = ComputeKnownBits(e->op(0), memo);
      KnownBits b = ComputeKnownBits(e->op(1), memo);
      // Disagreement on any mutually-determined bit makes equality impossible.
      uint64_t both = a.Determined() & b.Determined();
      if (((a.known_one ^ b.known_one) & both) != 0) {
        result = KnownBits::Exact(0, 1);
      } else if (a.IsExact() && b.IsExact()) {
        result = KnownBits::Exact(a.ExactValue() == b.ExactValue() ? 1 : 0, 1);
      } else {
        result = KnownBits::Top(1);
      }
      break;
    }
    default:
      // Vars, Sub, Mul, divisions, variable shifts, signed comparisons,
      // SExt: no bit-level information tracked.
      break;
  }
  result.width = w;
  memo->emplace(e, result);
  return result;
}

}  // namespace ddt
