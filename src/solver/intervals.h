// Unsigned interval analysis over expression DAGs.
//
// This is the solver's fast path: a sound over-approximation of each
// expression's value range, computed without touching SAT. The engine asks
// "may this branch condition be true?" thousands of times; most conditions
// are decided here (the condition's interval collapses to {0} or {1}),
// leaving the expensive bit-blast + CDCL path for genuinely hard queries.
#ifndef SRC_SOLVER_INTERVALS_H_
#define SRC_SOLVER_INTERVALS_H_

#include <cstdint>
#include <unordered_map>

#include "src/expr/expr.h"

namespace ddt {

// Unsigned range [lo, hi], inclusive. Invalid (lo > hi) never escapes the
// analysis. The full range of a width-w expression is [0, 2^w - 1].
struct Interval {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool IsSingleton() const { return lo == hi; }
  bool Contains(uint64_t v) const { return v >= lo && v <= hi; }

  static Interval Exact(uint64_t v) { return {v, v}; }
  static Interval Full(uint8_t width) { return {0, MaskToWidth(~0ull, width)}; }
};

// Computes an over-approximating interval for `e`, memoizing in `memo`.
Interval ComputeInterval(ExprRef e, std::unordered_map<ExprRef, Interval>* memo);

// Tri-state quick answer about a width-1 condition, ignoring path constraints
// (sound for the "maybe" direction: kUnknown means SAT must decide).
enum class QuickAnswer { kAlwaysTrue, kAlwaysFalse, kUnknown };
QuickAnswer QuickCheck(ExprRef cond);

}  // namespace ddt

#endif  // SRC_SOLVER_INTERVALS_H_
