#include "src/solver/bitblast.h"

#include <algorithm>

#include "src/support/check.h"

namespace ddt {

Bitblaster::Bitblaster(SatSolver* sat) : sat_(sat) {
  uint32_t true_var = sat_->NewVar();
  true_lit_ = MakeLit(true_var, false);
  sat_->AddUnit(true_lit_);
}

SatLit Bitblaster::FreshLit() { return MakeLit(sat_->NewVar(), false); }

SatLit Bitblaster::GateAnd(SatLit a, SatLit b) {
  if (a == false_lit() || b == false_lit()) {
    return false_lit();
  }
  if (a == true_lit_) {
    return b;
  }
  if (b == true_lit_) {
    return a;
  }
  if (a == b) {
    return a;
  }
  if (a == NegateLit(b)) {
    return false_lit();
  }
  SatLit o = FreshLit();
  sat_->AddTernary(NegateLit(a), NegateLit(b), o);
  sat_->AddBinary(a, NegateLit(o));
  sat_->AddBinary(b, NegateLit(o));
  return o;
}

SatLit Bitblaster::GateOr(SatLit a, SatLit b) {
  return NegateLit(GateAnd(NegateLit(a), NegateLit(b)));
}

SatLit Bitblaster::GateXor(SatLit a, SatLit b) {
  if (a == false_lit()) {
    return b;
  }
  if (b == false_lit()) {
    return a;
  }
  if (a == true_lit_) {
    return NegateLit(b);
  }
  if (b == true_lit_) {
    return NegateLit(a);
  }
  if (a == b) {
    return false_lit();
  }
  if (a == NegateLit(b)) {
    return true_lit_;
  }
  SatLit o = FreshLit();
  sat_->AddTernary(NegateLit(a), NegateLit(b), NegateLit(o));
  sat_->AddTernary(a, b, NegateLit(o));
  sat_->AddTernary(a, NegateLit(b), o);
  sat_->AddTernary(NegateLit(a), b, o);
  return o;
}

SatLit Bitblaster::GateMux(SatLit sel, SatLit if_true, SatLit if_false) {
  if (sel == true_lit_) {
    return if_true;
  }
  if (sel == false_lit()) {
    return if_false;
  }
  if (if_true == if_false) {
    return if_true;
  }
  SatLit o = FreshLit();
  sat_->AddTernary(NegateLit(sel), NegateLit(if_true), o);
  sat_->AddTernary(NegateLit(sel), if_true, NegateLit(o));
  sat_->AddTernary(sel, NegateLit(if_false), o);
  sat_->AddTernary(sel, if_false, NegateLit(o));
  return o;
}

SatLit Bitblaster::GateFullAdder(SatLit a, SatLit b, SatLit carry_in, SatLit* carry_out) {
  SatLit ab = GateXor(a, b);
  SatLit sum = GateXor(ab, carry_in);
  // carry = (a & b) | (carry_in & (a ^ b))
  *carry_out = GateOr(GateAnd(a, b), GateAnd(carry_in, ab));
  return sum;
}

SatLit Bitblaster::GateOrMany(const Bits& lits) {
  SatLit acc = false_lit();
  for (SatLit lit : lits) {
    acc = GateOr(acc, lit);
  }
  return acc;
}

SatLit Bitblaster::GateEq(const Bits& a, const Bits& b) {
  DDT_CHECK(a.size() == b.size());
  SatLit acc = true_lit_;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = GateAnd(acc, NegateLit(GateXor(a[i], b[i])));
  }
  return acc;
}

SatLit Bitblaster::GateUlt(const Bits& a, const Bits& b) {
  // a < b  <=>  no carry out of a + ~b + 1  <=>  borrow out of a - b.
  DDT_CHECK(a.size() == b.size());
  SatLit carry = true_lit_;
  for (size_t i = 0; i < a.size(); ++i) {
    SatLit nb = NegateLit(b[i]);
    SatLit ab = GateXor(a[i], nb);
    carry = GateOr(GateAnd(a[i], nb), GateAnd(carry, ab));
  }
  return NegateLit(carry);
}

SatLit Bitblaster::GateSlt(const Bits& a, const Bits& b) {
  // Signed: flip sign bits and compare unsigned.
  Bits fa = a;
  Bits fb = b;
  fa.back() = NegateLit(fa.back());
  fb.back() = NegateLit(fb.back());
  return GateUlt(fa, fb);
}

Bitblaster::Bits Bitblaster::Add(const Bits& a, const Bits& b, SatLit carry_in,
                                 SatLit* carry_out) {
  DDT_CHECK(a.size() == b.size());
  Bits sum(a.size());
  SatLit carry = carry_in;
  for (size_t i = 0; i < a.size(); ++i) {
    sum[i] = GateFullAdder(a[i], b[i], carry, &carry);
  }
  if (carry_out != nullptr) {
    *carry_out = carry;
  }
  return sum;
}

Bitblaster::Bits Bitblaster::Negate(const Bits& a) {
  Bits inverted(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    inverted[i] = NegateLit(a[i]);
  }
  Bits zero(a.size(), false_lit());
  return Add(inverted, zero, true_lit_);
}

Bitblaster::Bits Bitblaster::Mul(const Bits& a, const Bits& b) {
  DDT_CHECK(a.size() == b.size());
  size_t w = a.size();
  Bits acc(w, false_lit());
  for (size_t i = 0; i < w; ++i) {
    // addend = (b << i) & a[i], truncated to w bits.
    Bits addend(w, false_lit());
    for (size_t j = i; j < w; ++j) {
      addend[j] = GateAnd(b[j - i], a[i]);
    }
    acc = Add(acc, addend, false_lit());
  }
  return acc;
}

void Bitblaster::UDivURem(const Bits& a, const Bits& b, Bits* quotient, Bits* remainder) {
  size_t w = a.size();
  // Fresh result vectors.
  Bits q(w);
  Bits r(w);
  for (size_t i = 0; i < w; ++i) {
    q[i] = FreshLit();
    r[i] = FreshLit();
  }
  SatLit b_zero = true_lit_;
  for (size_t i = 0; i < w; ++i) {
    b_zero = GateAnd(b_zero, NegateLit(b[i]));
  }
  // Case b == 0 (SMT-LIB): q = all-ones, r = a.
  for (size_t i = 0; i < w; ++i) {
    // b_zero -> q[i] == 1
    sat_->AddBinary(NegateLit(b_zero), q[i]);
    // b_zero -> r[i] == a[i]
    SatLit eq_bit = NegateLit(GateXor(r[i], a[i]));
    sat_->AddBinary(NegateLit(b_zero), eq_bit);
  }
  // Case b != 0: a == q*b + r computed at double width (no wraparound), r < b.
  Bits q2 = q;
  Bits b2 = b;
  Bits r2 = r;
  Bits a2 = a;
  q2.resize(2 * w, false_lit());
  b2.resize(2 * w, false_lit());
  r2.resize(2 * w, false_lit());
  a2.resize(2 * w, false_lit());
  Bits prod = Mul(q2, b2);
  Bits sum = Add(prod, r2, false_lit());
  SatLit exact = GateEq(sum, a2);
  SatLit r_lt_b = GateUlt(r, b);
  sat_->AddBinary(b_zero, exact);   // !b_zero -> exact
  sat_->AddBinary(b_zero, r_lt_b);  // !b_zero -> r < b
  *quotient = q;
  *remainder = r;
}

Bitblaster::Bits Bitblaster::Mux(SatLit sel, const Bits& if_true, const Bits& if_false) {
  DDT_CHECK(if_true.size() == if_false.size());
  Bits out(if_true.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = GateMux(sel, if_true[i], if_false[i]);
  }
  return out;
}

Bitblaster::Bits Bitblaster::Shift(const Bits& value, const Bits& amount, ExprKind kind) {
  size_t w = value.size();
  SatLit fill = false_lit();
  if (kind == ExprKind::kAShr) {
    fill = value.back();  // sign bit
  }
  // Barrel shifter over the low log2(w) amount bits.
  size_t stages = 0;
  while ((1ull << stages) < w) {
    ++stages;
  }
  Bits current = value;
  for (size_t s = 0; s < stages && s < amount.size(); ++s) {
    size_t dist = 1ull << s;
    Bits shifted(w, fill);
    for (size_t i = 0; i < w; ++i) {
      if (kind == ExprKind::kShl) {
        if (i >= dist) {
          shifted[i] = current[i - dist];
        }
      } else {  // kLShr / kAShr
        if (i + dist < w) {
          shifted[i] = current[i + dist];
        }
      }
    }
    current = Mux(amount[s], shifted, current);
  }
  // Amount bits above the barrel range: if any is set, the result saturates
  // to all-fill.
  Bits high_amount;
  for (size_t i = stages; i < amount.size(); ++i) {
    high_amount.push_back(amount[i]);
  }
  if (!high_amount.empty()) {
    SatLit overflow = GateOrMany(high_amount);
    Bits saturated(w, fill);
    current = Mux(overflow, saturated, current);
  }
  return current;
}

const std::vector<SatLit>& Bitblaster::Encode(ExprRef e) {
  auto it = cache_.find(e);
  if (it != cache_.end()) {
    return it->second;
  }
  Bits bits = EncodeNode(e);
  DDT_CHECK(bits.size() == e->width());
  return cache_.emplace(e, std::move(bits)).first->second;
}

Bitblaster::Bits Bitblaster::EncodeNode(ExprRef e) {
  uint8_t w = e->width();
  switch (e->kind()) {
    case ExprKind::kConst: {
      Bits bits(w);
      for (uint8_t i = 0; i < w; ++i) {
        bits[i] = ConstLit(((e->const_value() >> i) & 1) != 0);
      }
      return bits;
    }
    case ExprKind::kVar: {
      auto it = var_bits_.find(e->var_id());
      if (it != var_bits_.end()) {
        return it->second;
      }
      Bits bits(w);
      for (uint8_t i = 0; i < w; ++i) {
        bits[i] = FreshLit();
      }
      var_bits_.emplace(e->var_id(), bits);
      var_width_.emplace(e->var_id(), w);
      return bits;
    }
    case ExprKind::kAdd:
      return Add(Encode(e->op(0)), Encode(e->op(1)), false_lit());
    case ExprKind::kSub: {
      Bits b = Encode(e->op(1));
      Bits inverted(b.size());
      for (size_t i = 0; i < b.size(); ++i) {
        inverted[i] = NegateLit(b[i]);
      }
      return Add(Encode(e->op(0)), inverted, true_lit_);
    }
    case ExprKind::kMul:
      return Mul(Encode(e->op(0)), Encode(e->op(1)));
    case ExprKind::kUDiv: {
      Bits q;
      Bits r;
      UDivURem(Encode(e->op(0)), Encode(e->op(1)), &q, &r);
      return q;
    }
    case ExprKind::kURem: {
      Bits q;
      Bits r;
      UDivURem(Encode(e->op(0)), Encode(e->op(1)), &q, &r);
      return r;
    }
    case ExprKind::kSDiv:
    case ExprKind::kSRem: {
      // Lower through unsigned division on absolute values with
      // sign-corrected results (wrap-around semantics match the evaluator).
      Bits a = Encode(e->op(0));
      Bits b = Encode(e->op(1));
      SatLit sign_a = a.back();
      SatLit sign_b = b.back();
      Bits abs_a = Mux(sign_a, Negate(a), a);
      Bits abs_b = Mux(sign_b, Negate(b), b);
      Bits q;
      Bits r;
      UDivURem(abs_a, abs_b, &q, &r);
      if (e->kind() == ExprKind::kSDiv) {
        SatLit diff_sign = GateXor(sign_a, sign_b);
        Bits result = Mux(diff_sign, Negate(q), q);
        // SMT-LIB sdiv-by-zero: 1 if a < 0, all-ones otherwise. The udiv
        // zero-case yields q = all-ones on |a|; patch the b == 0 case.
        SatLit b_zero = true_lit_;
        for (SatLit bit : b) {
          b_zero = GateAnd(b_zero, NegateLit(bit));
        }
        Bits one(a.size(), false_lit());
        one[0] = true_lit_;
        Bits all_ones(a.size(), true_lit_);
        Bits zero_case = Mux(sign_a, one, all_ones);
        return Mux(b_zero, zero_case, result);
      }
      // srem: result has the sign of the dividend.
      Bits result = Mux(sign_a, Negate(r), r);
      SatLit b_zero = true_lit_;
      for (SatLit bit : b) {
        b_zero = GateAnd(b_zero, NegateLit(bit));
      }
      return Mux(b_zero, a, result);
    }
    case ExprKind::kAnd: {
      Bits a = Encode(e->op(0));
      Bits b = Encode(e->op(1));
      Bits out(w);
      for (uint8_t i = 0; i < w; ++i) {
        out[i] = GateAnd(a[i], b[i]);
      }
      return out;
    }
    case ExprKind::kOr: {
      Bits a = Encode(e->op(0));
      Bits b = Encode(e->op(1));
      Bits out(w);
      for (uint8_t i = 0; i < w; ++i) {
        out[i] = GateOr(a[i], b[i]);
      }
      return out;
    }
    case ExprKind::kXor: {
      Bits a = Encode(e->op(0));
      Bits b = Encode(e->op(1));
      Bits out(w);
      for (uint8_t i = 0; i < w; ++i) {
        out[i] = GateXor(a[i], b[i]);
      }
      return out;
    }
    case ExprKind::kNot: {
      Bits a = Encode(e->op(0));
      Bits out(w);
      for (uint8_t i = 0; i < w; ++i) {
        out[i] = NegateLit(a[i]);
      }
      return out;
    }
    case ExprKind::kShl:
    case ExprKind::kLShr:
    case ExprKind::kAShr:
      return Shift(Encode(e->op(0)), Encode(e->op(1)), e->kind());
    case ExprKind::kEq:
      return Bits{GateEq(Encode(e->op(0)), Encode(e->op(1)))};
    case ExprKind::kUlt:
      return Bits{GateUlt(Encode(e->op(0)), Encode(e->op(1)))};
    case ExprKind::kUle:
      return Bits{NegateLit(GateUlt(Encode(e->op(1)), Encode(e->op(0))))};
    case ExprKind::kSlt:
      return Bits{GateSlt(Encode(e->op(0)), Encode(e->op(1)))};
    case ExprKind::kSle:
      return Bits{NegateLit(GateSlt(Encode(e->op(1)), Encode(e->op(0))))};
    case ExprKind::kIte: {
      SatLit sel = Encode(e->op(0))[0];
      return Mux(sel, Encode(e->op(1)), Encode(e->op(2)));
    }
    case ExprKind::kExtract: {
      const Bits& a = Encode(e->op(0));
      Bits out(w);
      for (uint8_t i = 0; i < w; ++i) {
        out[i] = a[e->extract_low() + i];
      }
      return out;
    }
    case ExprKind::kConcat: {
      Bits low = Encode(e->op(1));
      Bits high = Encode(e->op(0));
      Bits out;
      out.reserve(w);
      out.insert(out.end(), low.begin(), low.end());
      out.insert(out.end(), high.begin(), high.end());
      return out;
    }
    case ExprKind::kZExt: {
      Bits a = Encode(e->op(0));
      a.resize(w, false_lit());
      return a;
    }
    case ExprKind::kSExt: {
      Bits a = Encode(e->op(0));
      SatLit sign = a.back();
      a.resize(w, sign);
      return a;
    }
  }
  DDT_UNREACHABLE("bad expr kind");
}

void Bitblaster::AssertTrue(ExprRef e) {
  DDT_CHECK(e->width() == 1);
  sat_->AddUnit(Encode(e)[0]);
}

Assignment Bitblaster::ExtractModel() const {
  Assignment model;
  for (const auto& [var_id, bits] : var_bits_) {
    uint64_t value = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      SatLit lit = bits[i];
      bool bit = sat_->ModelValue(LitVar(lit));
      if (LitNegated(lit)) {
        bit = !bit;
      }
      if (bit) {
        value |= 1ull << i;
      }
    }
    model.Set(var_id, value);
  }
  return model;
}

}  // namespace ddt
