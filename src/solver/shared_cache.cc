#include "src/solver/shared_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "src/support/crc32.h"
#include "src/support/log.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

// Single-writer election for cache persistence. Every saver to `path` shares
// the same tmp file, so two unserialised processes (concurrent campaigns, or
// a fleet coordinator racing an independent run) can rename each other's
// half-written bytes into place. A blocking exclusive flock on a sidecar
// `<path>.lock` file elects one writer at a time: each elected writer
// publishes a complete file via tmp+rename, and the last one wins whole.
// flock (not fcntl/POSIX locks) so a same-process second saver blocks too
// instead of silently sharing the lock.
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ < 0) {
      return;
    }
    int rc;
    do {
      rc = ::flock(fd_, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::close(fd_);  // releases the flock
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

uint64_t Fnv1a64(const std::string& data) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : data) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// Bounds-checked little-endian reader over a loaded file image.
struct ByteReader {
  const unsigned char* p;
  size_t size;
  size_t pos = 0;
  bool ok = true;

  bool Take(void* out, size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    std::memcpy(out, p + pos, n);
    pos += n;
    return true;
  }
  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, 1);
    return v;
  }
  uint32_t U32() {
    unsigned char b[4] = {0, 0, 0, 0};
    Take(b, 4);
    return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
           (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
  }
  uint64_t U64() {
    unsigned char b[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    Take(b, 8);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | b[i];
    }
    return v;
  }
  std::string Str(size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return std::string();
    }
    std::string s(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return s;
  }
};

constexpr char kMagic[6] = {'D', 'D', 'T', 'S', 'Q', 'C'};

uint64_t EntryFootprint(const std::string& text, size_t model_size) {
  // Approximate heap footprint: the key text, the model pairs, and fixed
  // per-entry bookkeeping (chain slot, map node amortization).
  return text.size() + model_size * (sizeof(uint32_t) + sizeof(uint64_t)) + 64;
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryCanonicalizer
// ---------------------------------------------------------------------------

const QueryCanonicalizer::RootTemplate& QueryCanonicalizer::TemplateFor(ExprRef root) {
  auto it = templates_.find(root);
  if (it != templates_.end()) {
    return it->second;
  }
  RootTemplate tmpl;
  // DAG-aware bottom-up serialization with per-root node numbering (like the
  // SMT-LIB emitter's define-fun sharing): each distinct node appears once as
  // a `t<n>=` line, and the last line is the root. Node numbers restart at
  // every root, so the template depends only on the root's structure.
  std::unordered_map<ExprRef, uint32_t> node_ids;
  std::unordered_map<uint32_t, uint32_t> var_index;  // local var id -> @k
  // Explicit stack: guest-built expressions (long add/mul chains from loops)
  // can be deep enough to worry plain recursion.
  struct Frame {
    ExprRef e;
    int next_op = 0;
  };
  std::vector<Frame> stack;
  stack.push_back(Frame{root});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (node_ids.count(f.e) != 0) {
      stack.pop_back();
      continue;
    }
    if (f.next_op < f.e->num_ops()) {
      ExprRef child = f.e->op(f.next_op);
      ++f.next_op;
      if (node_ids.count(child) == 0) {
        stack.push_back(Frame{child});
      }
      continue;
    }
    uint32_t id = static_cast<uint32_t>(node_ids.size());
    node_ids.emplace(f.e, id);
    tmpl.text += StrFormat("t%u=", id);
    switch (f.e->kind()) {
      case ExprKind::kConst:
        tmpl.text += StrFormat("c%u:%llx", f.e->width(),
                               static_cast<unsigned long long>(f.e->const_value()));
        break;
      case ExprKind::kVar: {
        uint32_t local = f.e->var_id();
        auto [vit, inserted] = var_index.emplace(local, static_cast<uint32_t>(tmpl.vars.size()));
        if (inserted) {
          tmpl.vars.push_back(local);
        }
        tmpl.text += StrFormat("@%u:%u", vit->second, f.e->width());
        break;
      }
      case ExprKind::kExtract:
        tmpl.text += StrFormat("Extract%u[%u](t%u)", f.e->width(), f.e->extract_low(),
                               node_ids.at(f.e->op(0)));
        break;
      default: {
        tmpl.text += StrFormat("%s%u(", ExprKindName(f.e->kind()), f.e->width());
        for (int i = 0; i < f.e->num_ops(); ++i) {
          tmpl.text += StrFormat("%st%u", i == 0 ? "" : ",", node_ids.at(f.e->op(i)));
        }
        tmpl.text += ")";
        break;
      }
    }
    tmpl.text += "\n";
    stack.pop_back();
  }
  return templates_.emplace(root, std::move(tmpl)).first->second;
}

CanonicalQuery QueryCanonicalizer::Canonicalize(const std::vector<ExprRef>& exprs) {
  CanonicalQuery q;
  std::unordered_map<uint32_t, uint32_t> canon;  // local var id -> canonical id
  std::unordered_set<ExprRef> seen;
  for (ExprRef e : exprs) {
    if (!seen.insert(e).second) {
      continue;
    }
    const RootTemplate& tmpl = TemplateFor(e);
    q.text += "#\n";  // constraint separator (keeps per-root t-numbering unambiguous)
    // Splice the template in, rewriting each `@k` placeholder to the global
    // canonical variable id, assigned in first-visit order over the list.
    const std::string& t = tmpl.text;
    for (size_t i = 0; i < t.size(); ++i) {
      if (t[i] != '@') {
        q.text.push_back(t[i]);
        continue;
      }
      size_t j = i + 1;
      uint32_t k = 0;
      while (j < t.size() && t[j] >= '0' && t[j] <= '9') {
        k = k * 10 + static_cast<uint32_t>(t[j] - '0');
        ++j;
      }
      uint32_t local = tmpl.vars[k];
      auto [vit, inserted] = canon.emplace(local, static_cast<uint32_t>(q.local_vars.size()));
      if (inserted) {
        q.local_vars.push_back(local);
      }
      q.text += StrFormat("v%u", vit->second);
      i = j - 1;  // loop ++ lands on the ':' after the placeholder index
    }
  }
  q.fingerprint = Fnv1a64(q.text);
  return q;
}

// ---------------------------------------------------------------------------
// SharedQueryCache
// ---------------------------------------------------------------------------

SharedQueryCache::SharedQueryCache(const SharedCacheConfig& config) : config_(config) {
  if (config_.num_shards == 0) {
    config_.num_shards = 1;
  }
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SharedQueryCache::LookupResult SharedQueryCache::Lookup(const CanonicalQuery& query) {
  Shard& shard = ShardFor(query.fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(query.fingerprint);
  LookupResult r;
  if (it == shard.map.end()) {
    return r;
  }
  for (Entry& e : it->second) {
    if (e.text == query.text) {
      e.last_used = ++shard.tick;
      r.hit = true;
      r.sat = e.sat;
      r.model = e.model;
      return r;
    }
  }
  return r;
}

void SharedQueryCache::Store(const CanonicalQuery& query, bool sat, CanonicalModel model) {
  if (!sat) {
    model.clear();
  }
  std::sort(model.begin(), model.end());
  Shard& shard = ShardFor(query.fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<Entry>& chain = shard.map[query.fingerprint];
  for (Entry& e : chain) {
    if (e.text == query.text) {
      shard.bytes -= e.bytes;
      e.sat = sat;
      e.model = std::move(model);
      e.bytes = EntryFootprint(e.text, e.model.size());
      e.last_used = ++shard.tick;
      shard.bytes += e.bytes;
      return;
    }
  }
  Entry e;
  e.text = query.text;
  e.sat = sat;
  e.model = std::move(model);
  e.last_used = ++shard.tick;
  e.bytes = EntryFootprint(e.text, e.model.size());
  shard.bytes += e.bytes;
  ++shard.entries;
  chain.push_back(std::move(e));
  EvictIfNeeded(shard);
}

void SharedQueryCache::EvictIfNeeded(Shard& shard) {
  uint64_t max_entries = std::max<uint64_t>(1, config_.max_entries / shards_.size());
  uint64_t max_bytes = std::max<uint64_t>(1024, config_.max_bytes / shards_.size());
  while (shard.entries > max_entries || shard.bytes > max_bytes) {
    // LRU-ish: linear scan for the stalest entry. Shards keep the scan short,
    // and eviction only runs when a bound is actually exceeded.
    auto victim_chain = shard.map.end();
    size_t victim_idx = 0;
    uint64_t oldest = UINT64_MAX;
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        if (it->second[i].last_used < oldest) {
          oldest = it->second[i].last_used;
          victim_chain = it;
          victim_idx = i;
        }
      }
    }
    if (victim_chain == shard.map.end()) {
      return;
    }
    std::vector<Entry>& chain = victim_chain->second;
    shard.bytes -= chain[victim_idx].bytes;
    --shard.entries;
    ++shard.evictions;
    chain.erase(chain.begin() + static_cast<ptrdiff_t>(victim_idx));
    if (chain.empty()) {
      shard.map.erase(victim_chain);
    }
  }
}

SharedQueryCache::Stats SharedQueryCache::stats() const {
  Stats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += shard->entries;
    s.bytes += shard->bytes;
    s.evictions += shard->evictions;
  }
  std::lock_guard<std::mutex> lock(io_stats_mu_);
  s.load_errors = load_errors_;
  s.loaded_entries = loaded_entries_;
  s.saved_entries = saved_entries_;
  return s;
}

Status SharedQueryCache::SaveToFile(const std::string& path) const {
  // Snapshot under the shard locks, serialize and write outside them.
  std::vector<std::pair<std::string, std::pair<bool, CanonicalModel>>> snapshot;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [fp, chain] : shard->map) {
      (void)fp;
      for (const Entry& e : chain) {
        snapshot.emplace_back(e.text, std::make_pair(e.sat, e.model));
      }
    }
  }
  // Stable file contents regardless of shard iteration order: sort by key.
  std::sort(snapshot.begin(), snapshot.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string payload;
  AppendU64(&payload, snapshot.size());
  for (const auto& [text, verdict] : snapshot) {
    payload.push_back(verdict.first ? 1 : 0);
    AppendU32(&payload, static_cast<uint32_t>(text.size()));
    payload += text;
    AppendU32(&payload, static_cast<uint32_t>(verdict.second.size()));
    for (const auto& [id, value] : verdict.second) {
      AppendU32(&payload, id);
      AppendU64(&payload, value);
    }
  }

  std::string file;
  file.append(kMagic, sizeof(kMagic));
  AppendU32(&file, kFormatVersion);
  file += payload;
  AppendU32(&file, Crc32(payload.data(), payload.size()));

  FileLock writer_lock(path + ".lock");
  if (!writer_lock.held()) {
    return Status::Error(
        StrFormat("shared cache: cannot lock '%s.lock' for writing", path.c_str()));
  }
  std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error(StrFormat("shared cache: cannot open '%s' for writing", tmp.c_str()));
  }
  size_t written = std::fwrite(file.data(), 1, file.size(), f);
  bool ok = written == file.size();
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Error(StrFormat("shared cache: short write to '%s'", tmp.c_str()));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Error(
        StrFormat("shared cache: cannot rename '%s' to '%s'", tmp.c_str(), path.c_str()));
  }
  std::lock_guard<std::mutex> lock(io_stats_mu_);
  saved_entries_ = snapshot.size();
  return Status::Ok();
}

size_t SharedQueryCache::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return 0;  // no warm-start file yet: the normal cold case, not an error
  }
  std::string file;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    file.append(buf, n);
  }
  std::fclose(f);

  auto reject = [this, &path](const char* why) -> size_t {
    DDT_LOG_WARN("shared cache: ignoring '%s': %s", path.c_str(), why);
    std::lock_guard<std::mutex> lock(io_stats_mu_);
    ++load_errors_;
    return 0;
  };

  if (file.size() < sizeof(kMagic) + sizeof(uint32_t) * 2 + sizeof(uint64_t)) {
    return reject("truncated header");
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return reject("bad magic");
  }
  ByteReader header{reinterpret_cast<const unsigned char*>(file.data()), file.size(),
                    sizeof(kMagic)};
  uint32_t version = header.U32();
  if (version != kFormatVersion) {
    return reject("format version mismatch");
  }
  size_t payload_begin = header.pos;
  size_t payload_size = file.size() - payload_begin - sizeof(uint32_t);
  uint32_t stored_crc;
  std::memcpy(&stored_crc, file.data() + payload_begin + payload_size, sizeof(stored_crc));
  // The CRC footer was appended little-endian; reassemble it the same way.
  {
    unsigned char b[4];
    std::memcpy(b, file.data() + payload_begin + payload_size, 4);
    stored_crc = static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
                 (static_cast<uint32_t>(b[2]) << 16) | (static_cast<uint32_t>(b[3]) << 24);
  }
  if (Crc32(file.data() + payload_begin, payload_size) != stored_crc) {
    return reject("CRC mismatch (truncated or corrupt)");
  }

  ByteReader r{reinterpret_cast<const unsigned char*>(file.data()),
               payload_begin + payload_size, payload_begin};
  uint64_t count = r.U64();
  // Parse everything before inserting anything: a malformed payload (which
  // the CRC should already have caught) loads nothing rather than half.
  std::vector<std::pair<std::string, std::pair<bool, CanonicalModel>>> parsed;
  for (uint64_t i = 0; i < count && r.ok; ++i) {
    bool sat = r.U8() != 0;
    uint32_t text_len = r.U32();
    std::string text = r.Str(text_len);
    uint32_t model_n = r.U32();
    if (!r.ok || (!sat && model_n != 0)) {
      r.ok = false;
      break;
    }
    CanonicalModel model;
    model.reserve(model_n);
    for (uint32_t m = 0; m < model_n && r.ok; ++m) {
      uint32_t id = r.U32();
      uint64_t value = r.U64();
      model.emplace_back(id, value);
    }
    parsed.emplace_back(std::move(text), std::make_pair(sat, std::move(model)));
  }
  if (!r.ok || r.pos != r.size) {
    return reject("malformed payload");
  }
  for (auto& [text, verdict] : parsed) {
    CanonicalQuery q;
    q.fingerprint = Fnv1a64(text);
    q.text = std::move(text);
    Store(q, verdict.first, std::move(verdict.second));
  }
  std::lock_guard<std::mutex> lock(io_stats_mu_);
  loaded_entries_ += parsed.size();
  return parsed.size();
}

}  // namespace ddt
