#include "src/solver/solver.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "src/obs/trace_events.h"
#include "src/solver/bitblast.h"
#include "src/solver/intervals.h"
#include "src/solver/sat.h"
#include "src/support/check.h"
#include "src/support/log.h"

namespace ddt {

void SolverStats::Accumulate(const SolverStats& other) {
  queries += other.queries;
  quick_decides += other.quick_decides;
  cache_hits += other.cache_hits;
  sat_calls += other.sat_calls;
  sat_results += other.sat_results;
  unsat_results += other.unsat_results;
  unknown_results += other.unknown_results;
  query_timeouts += other.query_timeouts;
  aborted_queries += other.aborted_queries;
  total_conflicts += other.total_conflicts;
  total_sat_vars += other.total_sat_vars;
  total_sat_clauses += other.total_sat_clauses;
  model_reuse_hits += other.model_reuse_hits;
  shared_cache_hits += other.shared_cache_hits;
  shared_cache_fastpath_hits += other.shared_cache_fastpath_hits;
  shared_cache_misses += other.shared_cache_misses;
  shared_cache_stores += other.shared_cache_stores;
  shared_cache_verify_failures += other.shared_cache_verify_failures;
  max_query_wall_ms = std::max(max_query_wall_ms, other.max_query_wall_ms);
}

Solver::Solver(ExprContext* ctx, const SolverConfig& config) : ctx_(ctx), config_(config) {
#ifndef DDT_OBS_DISABLED
  if (config_.metrics != nullptr) {
    obs_query_ms_ =
        config_.metrics->histogram("solver.query_ms", obs::Histogram::LatencyBucketsMs());
  }
#endif
}

std::vector<ExprRef> Solver::Slice(const std::vector<ExprRef>& constraints,
                                   const std::vector<uint32_t>& seed_vars) const {
  // Fixpoint: pull in every constraint sharing a variable with the working
  // set. Constraint var sets are computed once.
  std::unordered_set<uint32_t> live(seed_vars.begin(), seed_vars.end());
  std::vector<std::unordered_set<uint32_t>> cvars(constraints.size());
  for (size_t i = 0; i < constraints.size(); ++i) {
    CollectVars(constraints[i], &cvars[i]);
  }
  std::vector<bool> included(constraints.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < constraints.size(); ++i) {
      if (included[i]) {
        continue;
      }
      bool intersects = false;
      for (uint32_t v : cvars[i]) {
        if (live.count(v) != 0) {
          intersects = true;
          break;
        }
      }
      if (intersects) {
        included[i] = true;
        changed = true;
        for (uint32_t v : cvars[i]) {
          live.insert(v);
        }
      }
    }
  }
  std::vector<ExprRef> out;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (included[i]) {
      out.push_back(constraints[i]);
    }
  }
  return out;
}

std::vector<ExprRef> Solver::SortedUnique(const std::vector<ExprRef>& exprs) {
  std::vector<ExprRef> sorted = exprs;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  return sorted;
}

uint64_t Solver::CacheKey(const std::vector<ExprRef>& sorted_exprs) const {
  if (config_.testing_collide_cache_keys) {
    return 0xC0111DEull;  // every query lands in one bucket: full-key compare or bust
  }
  uint64_t h = 0xCBF29CE484222325ull;
  for (ExprRef e : sorted_exprs) {
    h ^= reinterpret_cast<uint64_t>(e);
    h *= 0x100000001B3ull;
  }
  return h;
}

bool Solver::RemapAndVerify(const CanonicalModel& model, const CanonicalQuery& query,
                            const std::vector<ExprRef>& exprs, Assignment* out) {
  Assignment a;
  for (const auto& [canon_id, value] : model) {
    if (canon_id >= query.local_vars.size()) {
      // The stored model mentions a variable the query doesn't have — stale
      // or foreign entry. Never trust it.
      ++stats_.shared_cache_verify_failures;
      return false;
    }
    a.Set(query.local_vars[canon_id], value);
  }
  // Mandatory concrete re-verification, independent of verify_models: a
  // cached model (possibly loaded from disk) is only believed if it actually
  // satisfies this query — so a wrong entry costs a SAT call, never a wrong
  // verdict.
  for (ExprRef e : exprs) {
    if (!EvalBool(e, a)) {
      ++stats_.shared_cache_verify_failures;
      return false;
    }
  }
  *out = std::move(a);
  return true;
}

bool Solver::SharedCacheDecide(const std::vector<ExprRef>& filtered, bool want_model,
                               bool extra_at_back, CanonicalQuery* out_query, bool* sat) {
  *out_query = canonicalizer_.Canonicalize(filtered);
  if (config_.testing_collide_cache_keys) {
    out_query->fingerprint = 0xC0111DEull;
  }
  SharedQueryCache::LookupResult r = config_.shared_cache->Lookup(*out_query);
  if (r.hit) {
    if (!r.sat) {
      // Exact canonical match, unsat. Unsat is a pure verdict (no model to
      // diverge on), so this short-circuit is safe for every caller,
      // including model-requesting ones.
      ++stats_.shared_cache_hits;
      obs::TraceInstant("solver.query", "result", "shared_hit");
      *sat = false;
      return true;
    }
    if (!want_model) {
      Assignment remapped;
      if (RemapAndVerify(r.model, *out_query, filtered, &remapped)) {
        ++stats_.shared_cache_hits;
        obs::TraceInstant("solver.query", "result", "shared_hit");
        last_model_ = std::move(remapped);
        have_last_model_ = true;
        *sat = true;
        return true;
      }
      // Verification failed: fall through to SAT below.
    }
    // want_model with a sat entry: deliberately fall through. Serving the
    // cached model would hand the engine concretization values that depend
    // on cache contents; a fresh solve of the identical expression list
    // returns exactly the model a cache-off run would.
  } else if (extra_at_back && filtered.size() >= 2) {
    // Counterexample fast path (KLEE-style): the query is `prefix AND cond`
    // where `prefix` was itself a recent query on this path. If the prefix
    // is cached unsat, any superset is unsat; if its cached model happens to
    // satisfy the whole query, the query is sat — either way we skip SAT and
    // promote the answer to an exact entry for next time.
    std::vector<ExprRef> prefix(filtered.begin(), filtered.end() - 1);
    CanonicalQuery prefix_query = canonicalizer_.Canonicalize(prefix);
    if (config_.testing_collide_cache_keys) {
      prefix_query.fingerprint = 0xC0111DEull;
    }
    SharedQueryCache::LookupResult pr = config_.shared_cache->Lookup(prefix_query);
    if (pr.hit && !pr.sat) {
      ++stats_.shared_cache_fastpath_hits;
      obs::TraceInstant("solver.query", "result", "shared_fastpath");
      config_.shared_cache->Store(*out_query, false, CanonicalModel());
      ++stats_.shared_cache_stores;
      *sat = false;
      return true;
    }
    if (pr.hit && pr.sat && !want_model) {
      Assignment remapped;
      if (RemapAndVerify(pr.model, prefix_query, filtered, &remapped)) {
        ++stats_.shared_cache_fastpath_hits;
        obs::TraceInstant("solver.query", "result", "shared_fastpath");
        CanonicalModel promoted;
        promoted.reserve(out_query->local_vars.size());
        for (uint32_t i = 0; i < out_query->local_vars.size(); ++i) {
          promoted.emplace_back(i, remapped.Get(out_query->local_vars[i]));
        }
        config_.shared_cache->Store(*out_query, true, std::move(promoted));
        ++stats_.shared_cache_stores;
        last_model_ = std::move(remapped);
        have_last_model_ = true;
        *sat = true;
        return true;
      }
    }
  }
  ++stats_.shared_cache_misses;
  return false;
}

bool Solver::SolveExprs(const std::vector<ExprRef>& exprs, Assignment* model, bool* unknown) {
  *unknown = false;
  // Cancelled pass: don't even start bit-blasting; drain with the same
  // conservative "maybe" a timed-out query yields, so the run loop can
  // observe the abort at its next check instead of queueing behind SAT work.
  if (abort_flag_ != nullptr && abort_flag_->load(std::memory_order_relaxed)) {
    *unknown = true;
    ++stats_.unknown_results;
    ++stats_.aborted_queries;
    obs::TraceInstant("solver.query", "result", "abort");
    return true;
  }
  ++stats_.sat_calls;
  obs::ScopedPhase obs_phase(config_.profile, obs::Phase::kSolver);
  obs::ScopedSpan obs_span("solver.query");
  std::chrono::steady_clock::time_point query_start = std::chrono::steady_clock::now();
  struct QueryTimer {
    std::chrono::steady_clock::time_point start;
    SolverStats* stats;
    obs::Histogram* query_ms;
    ~QueryTimer() {
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      stats->max_query_wall_ms = std::max(stats->max_query_wall_ms, ms);
      if (query_ms != nullptr) {
        query_ms->Observe(ms);
      }
    }
  } timer{query_start, &stats_, obs_query_ms_};
  // Per-query wall deadline (resource governor): the clock starts here, so
  // bit-blasting time counts against the budget too via the first check.
  std::chrono::steady_clock::time_point deadline;
  bool have_deadline = config_.max_query_ms != 0;
  if (have_deadline) {
    deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(config_.max_query_ms);
  }
  SatSolver sat;
  Bitblaster blaster(&sat);
  for (ExprRef e : exprs) {
    blaster.AssertTrue(e);
  }
  SatResult result =
      sat.Solve({}, config_.conflict_budget, have_deadline ? &deadline : nullptr, abort_flag_);
  stats_.total_conflicts += sat.conflicts();
  stats_.total_sat_vars += sat.num_vars();
  stats_.total_sat_clauses += sat.num_clauses();
  if (result == SatResult::kUnknown) {
    *unknown = true;
    ++stats_.unknown_results;
    if (sat.hit_abort()) {
      ++stats_.aborted_queries;
      obs_span.Tag("result", "abort");
    } else if (sat.hit_deadline() ||
               (have_deadline && std::chrono::steady_clock::now() >= deadline)) {
      ++stats_.query_timeouts;
      obs_span.Tag("result", "timeout");
    } else {
      obs_span.Tag("result", "unknown");
    }
    return true;  // conservative
  }
  if (result == SatResult::kUnsat) {
    ++stats_.unsat_results;
    obs_span.Tag("result", "unsat");
    return false;
  }
  ++stats_.sat_results;
  obs_span.Tag("result", "sat");
  Assignment extracted = blaster.ExtractModel();
  if (config_.verify_models) {
    for (ExprRef e : exprs) {
      DDT_CHECK_MSG(EvalBool(e, extracted), "SAT model fails to satisfy constraint");
    }
  }
  if (model != nullptr) {
    *model = std::move(extracted);
  }
  return true;
}

bool Solver::IsSatisfiable(const std::vector<ExprRef>& constraints, ExprRef extra,
                           Assignment* model) {
  ++stats_.queries;

  // Quick path: an always-false conjunct kills the query; an always-true
  // `extra` reduces to the constraint set.
  if (extra != nullptr) {
    QuickAnswer qa = QuickCheck(extra);
    if (qa == QuickAnswer::kAlwaysFalse) {
      ++stats_.quick_decides;
      return false;
    }
    if (qa == QuickAnswer::kAlwaysTrue) {
      extra = nullptr;  // no information
    }
  }
  if (extra == nullptr && constraints.empty()) {
    ++stats_.quick_decides;
    if (model != nullptr) {
      *model = Assignment();
    }
    return true;
  }

  std::vector<ExprRef> query;
  if (config_.enable_slicing && extra != nullptr) {
    std::vector<uint32_t> seed;
    CollectVars(extra, &seed);
    query = Slice(constraints, seed);
    query.push_back(extra);
  } else {
    query = constraints;
    if (extra != nullptr) {
      query.push_back(extra);
    }
  }
  // Drop literal-true conjuncts; a literal-false conjunct decides it.
  std::vector<ExprRef> filtered;
  for (ExprRef e : query) {
    if (e->IsTrue()) {
      continue;
    }
    if (e->IsFalse()) {
      ++stats_.quick_decides;
      return false;
    }
    filtered.push_back(e);
  }
  if (filtered.empty()) {
    ++stats_.quick_decides;
    if (model != nullptr) {
      *model = Assignment();
    }
    return true;
  }

  uint64_t key = 0;
  std::vector<ExprRef> sorted;
  if (config_.enable_cache) {
    sorted = SortedUnique(filtered);
    key = CacheKey(sorted);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      for (const CacheEntry& entry : it->second) {
        if (entry.exprs != sorted) {
          continue;  // hash collision: keep scanning the chain
        }
        ++stats_.cache_hits;
        obs::TraceInstant("solver.query", "result", "cached");
        if (entry.sat) {
          last_model_ = entry.model;
          have_last_model_ = true;
          if (model != nullptr) {
            *model = entry.model;
          }
        }
        return entry.sat;
      }
    }
  }

  // Model-reuse fast path: consecutive queries on one path usually extend the
  // same constraint set, so the previous satisfying model often still works.
  // Evaluating is linear in expression size — far cheaper than bit-blasting.
  // Restricted to model-free queries (MayBe*/MustBe*) so callers that
  // concretize from the returned model see exactly the values a fresh SAT
  // solve would hand them.
  if (config_.enable_model_reuse && model == nullptr && have_last_model_) {
    bool all_true = true;
    for (ExprRef e : filtered) {
      if (!EvalBool(e, last_model_)) {
        all_true = false;
        break;
      }
    }
    if (all_true) {
      ++stats_.model_reuse_hits;
      obs::TraceInstant("solver.query", "result", "model_reuse");
      return true;
    }
  }

  // Cross-pass shared cache: canonical-fingerprint lookup plus the
  // counterexample fast path. Answers only verdicts it can prove locally
  // (exact unsat, or a cached model re-verified by the concrete evaluator);
  // model-requesting callers always fall through to a fresh solve.
  CanonicalQuery shared_query;
  bool have_shared_query = false;
  if (config_.shared_cache != nullptr) {
    bool extra_at_back = extra != nullptr && !filtered.empty() && filtered.back() == extra;
    bool shared_sat = false;
    if (SharedCacheDecide(filtered, model != nullptr, extra_at_back, &shared_query,
                          &shared_sat)) {
      return shared_sat;
    }
    have_shared_query = true;
  }

  Assignment local_model;
  bool unknown = false;
  bool sat = SolveExprs(filtered, &local_model, &unknown);
  if (config_.enable_cache && !unknown) {
    cache_[key].push_back(CacheEntry{sorted, sat, local_model});
  }
  if (have_shared_query && !unknown) {
    // Publish the fresh verdict for other passes/threads/runs. The model is
    // stored against canonical variable ids (complete over the query's
    // variables; solver-undecided ones are zero, exactly what verification
    // assumed).
    CanonicalModel canonical_model;
    if (sat) {
      canonical_model.reserve(shared_query.local_vars.size());
      for (uint32_t i = 0; i < static_cast<uint32_t>(shared_query.local_vars.size()); ++i) {
        canonical_model.emplace_back(i, local_model.Get(shared_query.local_vars[i]));
      }
    }
    config_.shared_cache->Store(shared_query, sat, std::move(canonical_model));
    ++stats_.shared_cache_stores;
  }
  if (sat && !unknown) {
    last_model_ = local_model;
    have_last_model_ = true;
  }
  if (sat && model != nullptr) {
    *model = std::move(local_model);
  }
  return sat;
}

bool Solver::MayBeTrue(const std::vector<ExprRef>& constraints, ExprRef cond) {
  return IsSatisfiable(constraints, cond);
}

bool Solver::MayBeFalse(const std::vector<ExprRef>& constraints, ExprRef cond) {
  return IsSatisfiable(constraints, ctx_->Not(cond));
}

bool Solver::MustBeTrue(const std::vector<ExprRef>& constraints, ExprRef cond) {
  return !MayBeFalse(constraints, cond);
}

bool Solver::MustBeFalse(const std::vector<ExprRef>& constraints, ExprRef cond) {
  return !MayBeTrue(constraints, cond);
}

std::optional<uint64_t> Solver::GetValue(const std::vector<ExprRef>& constraints, ExprRef expr) {
  if (expr->IsConst()) {
    return expr->const_value();
  }
  // Slice to the constraints relevant to this expression, solve, evaluate.
  std::vector<uint32_t> seed;
  CollectVars(expr, &seed);
  std::vector<ExprRef> relevant =
      config_.enable_slicing ? Slice(constraints, seed) : constraints;
  Assignment model;
  if (!IsSatisfiable(relevant, nullptr, &model)) {
    return std::nullopt;
  }
  return EvalExpr(expr, model);
}

bool Solver::GetInitialValues(const std::vector<ExprRef>& constraints, Assignment* out) {
  // Solve the whole set (sliced into independent components for tractability)
  // and merge the models. Variables in no constraint default to zero, which
  // Assignment::Get already provides.
  *out = Assignment();
  if (constraints.empty()) {
    return true;
  }
  // Union-find over constraints via shared variables would be neater; a
  // simple repeated-slice partition is clear and fast enough.
  std::vector<ExprRef> remaining = constraints;
  while (!remaining.empty()) {
    std::vector<uint32_t> seed;
    CollectVars(remaining[0], &seed);
    std::vector<ExprRef> component = Slice(remaining, seed);
    if (component.empty()) {
      component.push_back(remaining[0]);
    }
    Assignment model;
    if (!IsSatisfiable(component, nullptr, &model)) {
      return false;
    }
    for (const auto& [var, value] : model.values()) {
      out->Set(var, value);
    }
    std::unordered_set<ExprRef> in_component(component.begin(), component.end());
    std::vector<ExprRef> next;
    for (ExprRef e : remaining) {
      if (in_component.count(e) == 0) {
        next.push_back(e);
      }
    }
    // Guard against no progress (shouldn't happen: component contains
    // remaining[0]).
    DDT_CHECK(next.size() < remaining.size());
    remaining = std::move(next);
  }
  return true;
}

}  // namespace ddt
