// Process-wide shared solver query cache (KLEE-style counterexample cache).
//
// Every fault-campaign pass re-executes the same driver entry points under a
// slightly different fault schedule, so the sliced constraint sets the passes
// send to SAT are overwhelmingly identical — but each pass owns a private
// ExprContext, so the same logical query arrives with different ExprRef
// pointers and different variable ids. The per-solver cache (keyed on
// pointers) cannot see across passes; this layer can:
//
//   1. QueryCanonicalizer renders a sliced constraint set into a *canonical*
//      textual form that is independent of pointer identity and of the order
//      in which variable ids were handed out: every expression DAG is
//      serialized bottom-up with per-root node numbering, and variables are
//      renumbered v0, v1, ... in first-visit order over the constraint list.
//      Two passes (or two threads, or a run last week) that build the same
//      logical query get byte-identical canonical text — and its FNV-1a hash
//      is the cache fingerprint.
//
//   2. SharedQueryCache is a sharded, mutex-per-shard store from fingerprint
//      to {verdict, satisfying model over canonical variable ids}. Colliding
//      fingerprints chain within a bucket and are disambiguated by comparing
//      the full canonical text, so a hash collision can never return the
//      wrong verdict. Each shard is bounded (entries and bytes) with
//      LRU-ish eviction.
//
//   3. The store persists to a CRC-protected, version-tagged file so a
//      repeated or resumed campaign warm-starts: load is best-effort (a
//      missing, truncated, corrupt, or version-mismatched file is ignored
//      and counted, never fatal), save is atomic (tmp + rename).
//
// Determinism contract (the reason the integration in solver.cc is shaped
// the way it is): the shared cache may change *how fast* a verdict is found,
// never *which* verdict or which model the engine concretizes from. Cached
// models are only ever used after re-verification by the concrete evaluator,
// and only to answer verdict-only (MayBe*/MustBe*) queries; any caller that
// wants a model back always gets a fresh SAT solve. See DESIGN.md §7d.
#ifndef SRC_SOLVER_SHARED_CACHE_H_
#define SRC_SOLVER_SHARED_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/expr/expr.h"
#include "src/support/status.h"

namespace ddt {

// A constraint-set query in canonical form. `text` is the full serialized
// query (the collision-proof key); `fingerprint` is FNV-1a over `text`;
// `local_vars[i]` is the querying context's variable id for canonical
// variable vi (the remap table for models).
struct CanonicalQuery {
  std::string text;
  uint64_t fingerprint = 0;
  std::vector<uint32_t> local_vars;  // canonical id -> local var id
};

// A satisfying model expressed over canonical variable ids. Kept sorted by
// canonical id so serialized entries are stable.
using CanonicalModel = std::vector<std::pair<uint32_t, uint64_t>>;

// Renders constraint sets into canonical form. One instance per Solver (it
// memoizes per-root templates against that solver's ExprContext, so it is
// not thread-safe and must not outlive the context).
class QueryCanonicalizer {
 public:
  // Canonicalizes the conjunction of `exprs`. Order-sensitive by design: the
  // solver's sliced constraint lists are themselves deterministic (path
  // order), and preserving list order keeps canonical variable numbering
  // deterministic without inventing a tie-break over arbitrary structures.
  // Duplicate pointers are dropped (first occurrence wins).
  CanonicalQuery Canonicalize(const std::vector<ExprRef>& exprs);

  size_t memo_size() const { return templates_.size(); }

 private:
  // A root expression serialized with placeholder variables `@k` (k = index
  // into `vars`, the root's distinct variables in first-visit order). The
  // template depends only on structure, so it is valid for the lifetime of
  // the ExprRef and memoizable across queries.
  struct RootTemplate {
    std::string text;
    std::vector<uint32_t> vars;
  };

  const RootTemplate& TemplateFor(ExprRef root);

  std::unordered_map<ExprRef, RootTemplate> templates_;
};

struct SharedCacheConfig {
  size_t num_shards = 16;
  // Bounds are global; each shard enforces its 1/num_shards slice.
  uint64_t max_bytes = 64ull << 20;
  uint64_t max_entries = 1u << 20;
};

// Thread-safe verdict + counterexample store, shared by every solver in a
// campaign (all passes, all worker threads).
class SharedQueryCache {
 public:
  explicit SharedQueryCache(const SharedCacheConfig& config = SharedCacheConfig());

  struct LookupResult {
    bool hit = false;
    bool sat = false;
    CanonicalModel model;  // valid iff hit && sat
  };

  // Exact lookup by fingerprint + full canonical-text compare.
  LookupResult Lookup(const CanonicalQuery& query);

  // Stores a verdict (idempotent; an existing entry for the same text is
  // refreshed, not duplicated). `model` must be empty for unsat entries.
  void Store(const CanonicalQuery& query, bool sat, CanonicalModel model);

  // --- Persistence ---
  // Atomic save (tmp + rename) of every resident entry; CRC-protected and
  // version-tagged. Returns an error only for I/O failures — callers treat
  // even that as a warning, never a campaign failure.
  Status SaveToFile(const std::string& path) const;
  // Best-effort warm start: loads entries from `path` into the store. A
  // missing file is silently fine; a truncated/corrupt/version-mismatched
  // file is ignored with stats().load_errors bumped. Returns the number of
  // entries loaded.
  size_t LoadFromFile(const std::string& path);

  struct Stats {
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t evictions = 0;
    uint64_t load_errors = 0;
    uint64_t loaded_entries = 0;
    uint64_t saved_entries = 0;
  };
  Stats stats() const;

  // On-disk format version; bumped whenever the canonical encoding or the
  // file layout changes so a stale cache can never be misread.
  static constexpr uint32_t kFormatVersion = 1;

 private:
  struct Entry {
    std::string text;  // full canonical key (collision disambiguation)
    bool sat = false;
    CanonicalModel model;
    uint64_t last_used = 0;  // shard tick, for LRU-ish eviction
    uint64_t bytes = 0;      // approximate footprint of this entry
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> map;  // fingerprint -> chain
    uint64_t tick = 0;
    uint64_t entries = 0;
    uint64_t bytes = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return *shards_[fingerprint % shards_.size()];
  }
  void EvictIfNeeded(Shard& shard);  // caller holds shard.mu

  SharedCacheConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex io_stats_mu_;
  uint64_t load_errors_ = 0;
  uint64_t loaded_entries_ = 0;
  mutable uint64_t saved_entries_ = 0;
};

}  // namespace ddt

#endif  // SRC_SOLVER_SHARED_CACHE_H_
