#include "src/solver/intervals.h"

#include <algorithm>

#include "src/solver/known_bits.h"
#include "src/support/check.h"

namespace ddt {

namespace {

// Addition with wraparound detection: if the sum can wrap, fall back to full.
Interval AddIntervals(Interval a, Interval b, uint8_t width) {
  uint64_t max = MaskToWidth(~0ull, width);
  // Check hi + hi for overflow beyond the width.
  if (a.hi > max - b.hi) {
    return Interval::Full(width);
  }
  return {a.lo + b.lo, a.hi + b.hi};
}

Interval MulIntervals(Interval a, Interval b, uint8_t width) {
  uint64_t max = MaskToWidth(~0ull, width);
  // Guard against 64-bit overflow in the bound computation itself.
  if (b.hi != 0 && a.hi > UINT64_MAX / b.hi) {
    return Interval::Full(width);
  }
  uint64_t hi = a.hi * b.hi;
  if (hi > max) {
    return Interval::Full(width);
  }
  return {a.lo * b.lo, hi};
}

}  // namespace

Interval ComputeInterval(ExprRef e, std::unordered_map<ExprRef, Interval>* memo) {
  auto it = memo->find(e);
  if (it != memo->end()) {
    return it->second;
  }
  uint8_t w = e->width();
  Interval result = Interval::Full(w);
  switch (e->kind()) {
    case ExprKind::kConst:
      result = Interval::Exact(e->const_value());
      break;
    case ExprKind::kVar:
      result = Interval::Full(w);
      break;
    case ExprKind::kAdd:
      result = AddIntervals(ComputeInterval(e->op(0), memo), ComputeInterval(e->op(1), memo), w);
      break;
    case ExprKind::kMul:
      result = MulIntervals(ComputeInterval(e->op(0), memo), ComputeInterval(e->op(1), memo), w);
      break;
    case ExprKind::kUDiv: {
      Interval a = ComputeInterval(e->op(0), memo);
      Interval b = ComputeInterval(e->op(1), memo);
      if (b.lo > 0) {
        result = {a.lo / b.hi, a.hi / b.lo};
      }
      break;
    }
    case ExprKind::kURem: {
      Interval b = ComputeInterval(e->op(1), memo);
      if (b.hi > 0) {
        // Remainder is at most hi(b)-1, unless b can be 0 (then result can be a).
        Interval a = ComputeInterval(e->op(0), memo);
        uint64_t bound = b.lo == 0 ? std::max(a.hi, b.hi - 1) : b.hi - 1;
        result = {0, std::min(bound, a.hi)};
      }
      break;
    }
    case ExprKind::kAnd: {
      Interval a = ComputeInterval(e->op(0), memo);
      Interval b = ComputeInterval(e->op(1), memo);
      result = {0, std::min(a.hi, b.hi)};
      break;
    }
    case ExprKind::kOr: {
      Interval a = ComputeInterval(e->op(0), memo);
      Interval b = ComputeInterval(e->op(1), memo);
      // Upper bound: next power-of-two envelope of hi(a)|hi(b).
      uint64_t envelope = a.hi | b.hi;
      envelope |= envelope >> 1;
      envelope |= envelope >> 2;
      envelope |= envelope >> 4;
      envelope |= envelope >> 8;
      envelope |= envelope >> 16;
      envelope |= envelope >> 32;
      result = {std::max(a.lo, b.lo), std::min(envelope, MaskToWidth(~0ull, w))};
      break;
    }
    case ExprKind::kXor: {
      Interval a = ComputeInterval(e->op(0), memo);
      Interval b = ComputeInterval(e->op(1), memo);
      uint64_t envelope = a.hi | b.hi;
      envelope |= envelope >> 1;
      envelope |= envelope >> 2;
      envelope |= envelope >> 4;
      envelope |= envelope >> 8;
      envelope |= envelope >> 16;
      envelope |= envelope >> 32;
      result = {0, std::min(envelope, MaskToWidth(~0ull, w))};
      break;
    }
    case ExprKind::kShl: {
      if (e->op(1)->IsConst()) {
        uint64_t s = e->op(1)->const_value();
        Interval a = ComputeInterval(e->op(0), memo);
        if (s < w && a.hi <= (MaskToWidth(~0ull, w) >> s)) {
          result = {a.lo << s, a.hi << s};
        }
      }
      break;
    }
    case ExprKind::kLShr: {
      if (e->op(1)->IsConst()) {
        uint64_t s = e->op(1)->const_value();
        if (s >= w) {
          result = Interval::Exact(0);
        } else {
          Interval a = ComputeInterval(e->op(0), memo);
          result = {a.lo >> s, a.hi >> s};
        }
      }
      break;
    }
    case ExprKind::kEq: {
      Interval a = ComputeInterval(e->op(0), memo);
      Interval b = ComputeInterval(e->op(1), memo);
      if (a.IsSingleton() && b.IsSingleton()) {
        result = Interval::Exact(a.lo == b.lo ? 1 : 0);
      } else if (a.hi < b.lo || b.hi < a.lo) {
        result = Interval::Exact(0);  // disjoint ranges can never be equal
      } else {
        result = {0, 1};
      }
      break;
    }
    case ExprKind::kUlt: {
      Interval a = ComputeInterval(e->op(0), memo);
      Interval b = ComputeInterval(e->op(1), memo);
      if (a.hi < b.lo) {
        result = Interval::Exact(1);
      } else if (a.lo >= b.hi) {
        result = Interval::Exact(0);
      } else {
        result = {0, 1};
      }
      break;
    }
    case ExprKind::kUle: {
      Interval a = ComputeInterval(e->op(0), memo);
      Interval b = ComputeInterval(e->op(1), memo);
      if (a.hi <= b.lo) {
        result = Interval::Exact(1);
      } else if (a.lo > b.hi) {
        result = Interval::Exact(0);
      } else {
        result = {0, 1};
      }
      break;
    }
    case ExprKind::kIte: {
      Interval c = ComputeInterval(e->op(0), memo);
      Interval t = ComputeInterval(e->op(1), memo);
      Interval f = ComputeInterval(e->op(2), memo);
      if (c.IsSingleton()) {
        result = c.lo != 0 ? t : f;
      } else {
        result = {std::min(t.lo, f.lo), std::max(t.hi, f.hi)};
      }
      break;
    }
    case ExprKind::kExtract: {
      Interval a = ComputeInterval(e->op(0), memo);
      if (e->extract_low() == 0 && a.hi <= MaskToWidth(~0ull, w)) {
        result = a;  // low extract of a small value preserves the range
      }
      break;
    }
    case ExprKind::kConcat: {
      Interval high = ComputeInterval(e->op(0), memo);
      Interval low = ComputeInterval(e->op(1), memo);
      uint8_t low_w = e->op(1)->width();
      uint64_t low_max = MaskToWidth(~0ull, low_w);
      result = {(high.lo << low_w), (high.hi << low_w) | low_max};
      if (high.IsSingleton()) {
        result = {(high.lo << low_w) | low.lo, (high.lo << low_w) | low.hi};
      }
      break;
    }
    case ExprKind::kZExt:
      result = ComputeInterval(e->op(0), memo);
      break;
    case ExprKind::kNot: {
      if (w == 1) {
        Interval a = ComputeInterval(e->op(0), memo);
        if (a.IsSingleton()) {
          result = Interval::Exact(a.lo == 0 ? 1 : 0);
        } else {
          result = {0, 1};
        }
      }
      break;
    }
    default:
      // Sub, signed ops, AShr, SExt, Slt, Sle, SRem, SDiv: full range.
      break;
  }
  memo->emplace(e, result);
  return result;
}

QuickAnswer QuickCheck(ExprRef cond) {
  DDT_CHECK(cond->width() == 1);
  if (cond->IsConst()) {
    return cond->const_value() != 0 ? QuickAnswer::kAlwaysTrue : QuickAnswer::kAlwaysFalse;
  }
  std::unordered_map<ExprRef, Interval> memo;
  Interval iv = ComputeInterval(cond, &memo);
  if (iv.IsSingleton()) {
    return iv.lo != 0 ? QuickAnswer::kAlwaysTrue : QuickAnswer::kAlwaysFalse;
  }
  // Second fast path: bit-level reasoning decides mask/flag conditions the
  // ranges cannot.
  std::unordered_map<ExprRef, KnownBits> kb_memo;
  KnownBits kb = ComputeKnownBits(cond, &kb_memo);
  if (kb.IsExact()) {
    return kb.ExactValue() != 0 ? QuickAnswer::kAlwaysTrue : QuickAnswer::kAlwaysFalse;
  }
  return QuickAnswer::kUnknown;
}

}  // namespace ddt
