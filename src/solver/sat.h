// CDCL SAT solver (MiniSat-style): two-watched-literal propagation, 1UIP
// conflict analysis with clause learning, VSIDS-like activity ordering with
// phase saving, and Luby restarts. This is the back-end the bit-blaster
// targets; DDT uses it the way KLEE uses STP.
#ifndef SRC_SOLVER_SAT_H_
#define SRC_SOLVER_SAT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ddt {

// A literal encodes variable v with polarity: positive = 2v, negated = 2v+1.
using SatLit = uint32_t;

inline SatLit MakeLit(uint32_t var, bool negated) { return (var << 1) | (negated ? 1u : 0u); }
inline uint32_t LitVar(SatLit lit) { return lit >> 1; }
inline bool LitNegated(SatLit lit) { return (lit & 1u) != 0; }
inline SatLit NegateLit(SatLit lit) { return lit ^ 1u; }

enum class SatResult { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver();

  // Allocates a fresh variable; returns its index.
  uint32_t NewVar();
  uint32_t num_vars() const { return static_cast<uint32_t>(assign_.size()); }

  // Adds a clause (disjunction of literals). Empty clause makes the instance
  // trivially unsat. Returns false if the solver is already known-unsat.
  bool AddClause(std::vector<SatLit> lits);
  void AddUnit(SatLit lit) { AddClause({lit}); }
  void AddBinary(SatLit a, SatLit b) { AddClause({a, b}); }
  void AddTernary(SatLit a, SatLit b, SatLit c) { AddClause({a, b, c}); }

  // Solves under the given assumptions. kUnknown only if conflict_budget
  // (when nonzero) is exhausted, `deadline` (when non-null) passes, or
  // `abort` (when non-null) becomes true; deadline and abort are checked at
  // conflicts and periodically at decisions, so overshoot is bounded by one
  // propagation. The abort flag is the campaign supervisor's cooperative
  // cancellation point: a watchdog on another thread sets it and a hung
  // query unwinds within one propagation instead of stalling the pass.
  SatResult Solve(const std::vector<SatLit>& assumptions = {}, uint64_t conflict_budget = 0,
                  const std::chrono::steady_clock::time_point* deadline = nullptr,
                  const std::atomic<bool>* abort = nullptr);

  // Model access after kSat.
  bool ModelValue(uint32_t var) const;

  // True if the last Solve returned kUnknown because of the deadline (as
  // opposed to conflict-budget exhaustion).
  bool hit_deadline() const { return hit_deadline_; }

  // True if the last Solve returned kUnknown because the abort flag fired.
  bool hit_abort() const { return hit_abort_; }

  uint64_t conflicts() const { return conflicts_; }
  uint64_t decisions() const { return decisions_; }
  uint64_t propagations() const { return propagations_; }
  size_t num_clauses() const { return clauses_.size(); }

 private:
  enum : uint8_t { kUndef = 2 };  // assign_ values: 0 = false, 1 = true, 2 = unassigned

  struct Clause {
    std::vector<SatLit> lits;
    bool learned = false;
    double activity = 0.0;
  };

  using ClauseIdx = uint32_t;
  static constexpr ClauseIdx kNoReason = 0xFFFFFFFF;

  bool LitValueIsTrue(SatLit lit) const {
    uint8_t v = assign_[LitVar(lit)];
    return v != kUndef && (v == 1) != LitNegated(lit);
  }
  bool LitValueIsFalse(SatLit lit) const {
    uint8_t v = assign_[LitVar(lit)];
    return v != kUndef && (v == 1) == LitNegated(lit);
  }
  bool LitUnassigned(SatLit lit) const { return assign_[LitVar(lit)] == kUndef; }

  void Enqueue(SatLit lit, ClauseIdx reason);
  // Returns the index of a conflicting clause, or kNoReason if no conflict.
  ClauseIdx Propagate();
  void Analyze(ClauseIdx conflict, std::vector<SatLit>* learned, uint32_t* backtrack_level);
  void Backtrack(uint32_t level);
  void BumpVar(uint32_t var);
  void DecayActivities();
  SatLit PickBranchLit();
  void AttachClause(ClauseIdx idx);

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseIdx>> watches_;  // indexed by literal
  std::vector<uint8_t> assign_;
  std::vector<uint8_t> saved_phase_;
  std::vector<uint32_t> level_;
  std::vector<ClauseIdx> reason_;
  std::vector<SatLit> trail_;
  std::vector<uint32_t> trail_limits_;  // decision level boundaries
  size_t propagate_head_ = 0;

  std::vector<double> activity_;
  double activity_inc_ = 1.0;

  bool known_unsat_ = false;
  bool hit_deadline_ = false;
  bool hit_abort_ = false;
  uint64_t conflicts_ = 0;
  uint64_t decisions_ = 0;
  uint64_t propagations_ = 0;

  std::vector<uint8_t> seen_;  // scratch for Analyze
};

}  // namespace ddt

#endif  // SRC_SOLVER_SAT_H_
