// Solver facade: the engine-facing query interface.
//
// Layered like KLEE's solver chain:
//   1. expression-level constant folding (already done by ExprContext),
//   2. interval quick checks (solver/intervals.h),
//   3. independent-constraint slicing: only constraints transitively sharing
//      variables with the query are sent to SAT,
//   4. query cache keyed on the sliced constraint set,
//   5. bit-blasting + CDCL SAT.
//
// Every SAT model is re-verified with the concrete evaluator before being
// trusted — an end-to-end check on the encoder.
#ifndef SRC_SOLVER_SOLVER_H_
#define SRC_SOLVER_SOLVER_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/solver/shared_cache.h"

namespace ddt {

struct SolverConfig {
  // CDCL conflict budget per query; 0 = unlimited. Exhaustion yields a
  // conservative "maybe" answer.
  uint64_t conflict_budget = 500000;
  // Per-query wall deadline in milliseconds; 0 = unlimited. A query that
  // exceeds it returns the same conservative "maybe" as budget exhaustion
  // (counted in SolverStats::query_timeouts); callers degrade gracefully —
  // branch exploration over-approximates, GetValue falls back to
  // concretization under a partial model.
  uint64_t max_query_ms = 0;
  bool verify_models = true;
  bool enable_cache = true;
  bool enable_slicing = true;
  // Before bit-blasting a satisfiability-only query, evaluate it under the
  // most recent satisfying model; consecutive queries on the same path often
  // share one. Only applies when the caller wants no model back, so the
  // values the engine concretizes with are unaffected.
  bool enable_model_reuse = true;

  // Optional process-wide query cache shared across solver instances (one per
  // fault campaign; non-owning, must outlive the solver). Queries are keyed
  // on a canonical form independent of ExprContext identity, so identical
  // logical queries hit across passes, threads, and — via its on-disk
  // persistence — across runs. Verdict-only queries can be answered from it
  // (cached models are re-verified by the concrete evaluator first);
  // model-requesting queries always fall through to a fresh SAT solve so the
  // values the engine concretizes with are byte-identical cache on or off.
  SharedQueryCache* shared_cache = nullptr;

  // Test hook: collapse every cache fingerprint to one value, forcing hash
  // collisions so the full-key compare paths (per-solver cache entry list,
  // shared-cache chain) are exercised. Never set outside tests.
  bool testing_collide_cache_keys = false;

  // --- Observability (src/obs) — both null by default (kill switch) ---
  // Per-query latency histogram + query counters land here (non-owning).
  obs::MetricsRegistry* metrics = nullptr;
  // SAT wall time is attributed to obs::Phase::kSolver here (non-owning).
  obs::PassProfile* profile = nullptr;
};

struct SolverStats {
  uint64_t queries = 0;
  uint64_t quick_decides = 0;   // answered by interval analysis
  uint64_t cache_hits = 0;
  uint64_t sat_calls = 0;
  uint64_t sat_results = 0;
  uint64_t unsat_results = 0;
  uint64_t unknown_results = 0;
  // Queries abandoned because they hit SolverConfig::max_query_ms (a subset
  // of unknown_results).
  uint64_t query_timeouts = 0;
  // Queries abandoned because the cooperative abort flag fired (also a
  // subset of unknown_results) — the supervisor cancelled this pass.
  uint64_t aborted_queries = 0;
  uint64_t total_conflicts = 0;
  uint64_t total_sat_vars = 0;
  uint64_t total_sat_clauses = 0;
  // Queries answered by re-evaluating under the last satisfying model
  // (SolverConfig::enable_model_reuse), skipping bit-blasting entirely.
  uint64_t model_reuse_hits = 0;
  // --- Shared cross-pass cache (SolverConfig::shared_cache) ---
  // Exact canonical-fingerprint hits answered without a SAT call.
  uint64_t shared_cache_hits = 0;
  // Counterexample fast-path hits: the query was answered from a cached
  // verdict/model for its constraint-set prefix (subset → unsat propagation,
  // or a cached model that re-verified against the superset).
  uint64_t shared_cache_fastpath_hits = 0;
  // Lookups that found nothing usable and fell through to SAT.
  uint64_t shared_cache_misses = 0;
  // Verdicts this solver contributed to the shared store.
  uint64_t shared_cache_stores = 0;
  // Cached models that failed concrete re-verification (stale or remapped
  // against the wrong width set) — treated as misses, never trusted.
  uint64_t shared_cache_verify_failures = 0;
  // Wall time of the slowest single SolveExprs call, in milliseconds.
  double max_query_wall_ms = 0;

  // Folds `other` into this: counters are summed, max_query_wall_ms takes
  // the max. Used to aggregate per-pass stats across a fault campaign.
  void Accumulate(const SolverStats& other);
};

class Solver {
 public:
  Solver(ExprContext* ctx, const SolverConfig& config = SolverConfig());

  // True iff (AND of constraints) AND extra is satisfiable. `extra` may be
  // null (checks the constraint set alone). On SAT with `model` non-null,
  // fills a verified satisfying assignment for all variables in the sliced
  // query. Unknown (budget exhausted) is reported as satisfiable (sound for
  // exploration: we may explore an infeasible path but never drop a feasible
  // one) and counted in stats.
  bool IsSatisfiable(const std::vector<ExprRef>& constraints, ExprRef extra,
                     Assignment* model = nullptr);

  // May/Must queries used at branches. Precondition held by the engine: the
  // constraint set itself is satisfiable.
  bool MayBeTrue(const std::vector<ExprRef>& constraints, ExprRef cond);
  bool MayBeFalse(const std::vector<ExprRef>& constraints, ExprRef cond);
  bool MustBeTrue(const std::vector<ExprRef>& constraints, ExprRef cond);
  bool MustBeFalse(const std::vector<ExprRef>& constraints, ExprRef cond);

  // Picks one feasible concrete value for `expr` under the constraints
  // (random-ish: whatever model the solver lands on). nullopt if the
  // constraint set is unsatisfiable or the budget ran out.
  std::optional<uint64_t> GetValue(const std::vector<ExprRef>& constraints, ExprRef expr);

  // Solves the full constraint set and returns values for every variable it
  // mentions — the "concrete inputs and system events" attached to a bug
  // trace (§3.5). Solves independent components separately and merges.
  bool GetInitialValues(const std::vector<ExprRef>& constraints, Assignment* out);

  const SolverStats& stats() const { return stats_; }
  ExprContext* context() { return ctx_; }

  // Cooperative cancellation: when `flag` (owned by the caller, may be set
  // from another thread) becomes true, in-flight SAT searches unwind at the
  // next conflict/decision poll and later queries degrade immediately to the
  // conservative "maybe" answer — the same graceful path as a query timeout.
  void SetAbortFlag(const std::atomic<bool>* flag) { abort_flag_ = flag; }

 private:
  // Per-solver cache entry. `exprs` is the sorted, deduplicated constraint
  // set the verdict was computed for — the full key. The map is keyed on a
  // hash of that set; entries chain within a bucket and are only trusted
  // after an exact set compare, so a hash collision can never serve a wrong
  // verdict.
  struct CacheEntry {
    std::vector<ExprRef> exprs;
    bool sat = false;
    Assignment model;
  };

  // Returns the subset of constraints transitively sharing variables with
  // `seed_vars`.
  std::vector<ExprRef> Slice(const std::vector<ExprRef>& constraints,
                             const std::vector<uint32_t>& seed_vars) const;

  // Uncached SAT query over an explicit expression list.
  bool SolveExprs(const std::vector<ExprRef>& exprs, Assignment* model, bool* unknown);

  // Sorted + deduplicated copy of `exprs` (the per-solver cache's full key).
  static std::vector<ExprRef> SortedUnique(const std::vector<ExprRef>& exprs);
  uint64_t CacheKey(const std::vector<ExprRef>& sorted_exprs) const;

  // Shared-cache consultation for the filtered query; returns true when the
  // query was answered (verdict in *sat). `extra_at_back` marks that the last
  // element of `filtered` is the branch condition appended to a sliced prefix
  // (enables the counterexample fast path). `out_query` receives the
  // canonical form for a later Store on miss.
  bool SharedCacheDecide(const std::vector<ExprRef>& filtered, bool want_model,
                         bool extra_at_back, CanonicalQuery* out_query, bool* sat);
  // Remaps a canonical model into this context's variable ids and re-verifies
  // it against `exprs` with the concrete evaluator. False = do not trust.
  bool RemapAndVerify(const CanonicalModel& model, const CanonicalQuery& query,
                      const std::vector<ExprRef>& exprs, Assignment* out);

  ExprContext* ctx_;
  SolverConfig config_;
  SolverStats stats_;
  // Registered once at construction (registry lookups take a lock); null when
  // metrics are off, which skips the observe in one branch.
  obs::Histogram* obs_query_ms_ = nullptr;
  const std::atomic<bool>* abort_flag_ = nullptr;
  std::unordered_map<uint64_t, std::vector<CacheEntry>> cache_;
  // Canonical-form renderer for the shared cache (memoizes per-root
  // templates, so it lives with the solver).
  QueryCanonicalizer canonicalizer_;
  Assignment last_model_;         // most recent satisfying assignment
  bool have_last_model_ = false;
};

}  // namespace ddt

#endif  // SRC_SOLVER_SOLVER_H_
