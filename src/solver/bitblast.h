// Tseitin bit-blasting of bitvector expressions into CNF over a SatSolver.
//
// Each expression node lowers to a vector of SAT literals (LSB first). Gate
// outputs are fresh SAT variables constrained by Tseitin clauses. The
// translation is cached per Bitblaster instance, so shared DAG nodes are
// encoded once.
#ifndef SRC_SOLVER_BITBLAST_H_
#define SRC_SOLVER_BITBLAST_H_

#include <unordered_map>
#include <vector>

#include "src/expr/eval.h"
#include "src/expr/expr.h"
#include "src/solver/sat.h"

namespace ddt {

class Bitblaster {
 public:
  explicit Bitblaster(SatSolver* sat);

  // Asserts that the width-1 expression `e` is true.
  void AssertTrue(ExprRef e);

  // Returns the literal vector for `e` (encodes it on first use).
  const std::vector<SatLit>& Encode(ExprRef e);

  // After a kSat result, reads back concrete values for every expression
  // variable that was encoded. Variables never encoded are absent.
  Assignment ExtractModel() const;

  SatLit true_lit() const { return true_lit_; }
  SatLit false_lit() const { return NegateLit(true_lit_); }

 private:
  using Bits = std::vector<SatLit>;

  SatLit FreshLit();
  SatLit ConstLit(bool value) { return value ? true_lit_ : false_lit(); }

  // Gate builders: return output literal constrained by Tseitin clauses.
  SatLit GateAnd(SatLit a, SatLit b);
  SatLit GateOr(SatLit a, SatLit b);
  SatLit GateXor(SatLit a, SatLit b);
  SatLit GateMux(SatLit sel, SatLit if_true, SatLit if_false);
  // Full adder: returns sum, sets *carry_out.
  SatLit GateFullAdder(SatLit a, SatLit b, SatLit carry_in, SatLit* carry_out);
  // N-ary OR of a literal list.
  SatLit GateOrMany(const Bits& lits);
  // Equality over bit vectors -> single literal.
  SatLit GateEq(const Bits& a, const Bits& b);
  // a <u b over bit vectors.
  SatLit GateUlt(const Bits& a, const Bits& b);
  SatLit GateSlt(const Bits& a, const Bits& b);

  Bits Add(const Bits& a, const Bits& b, SatLit carry_in, SatLit* carry_out = nullptr);
  Bits Negate(const Bits& a);
  Bits Mul(const Bits& a, const Bits& b);
  // Unsigned divide with SMT-LIB zero semantics; produces quotient and
  // remainder bit vectors related by fresh-variable constraints.
  void UDivURem(const Bits& a, const Bits& b, Bits* quotient, Bits* remainder);
  Bits Shift(const Bits& value, const Bits& amount, ExprKind kind);
  Bits Mux(SatLit sel, const Bits& if_true, const Bits& if_false);

  Bits EncodeNode(ExprRef e);

  SatSolver* sat_;
  SatLit true_lit_;
  std::unordered_map<ExprRef, Bits> cache_;
  // Expression variable id -> its bit literals (for model extraction).
  std::unordered_map<uint32_t, Bits> var_bits_;
  std::unordered_map<uint32_t, uint8_t> var_width_;
};

}  // namespace ddt

#endif  // SRC_SOLVER_BITBLAST_H_
