// DDT public API.
//
// This is the library's front door, matching the paper's §2 contract: "DDT
// takes as input a binary device driver and outputs a report of found bugs,
// along with execution traces for each bug."
//
//   DdtConfig config;
//   Ddt ddt(config);
//   Result<DdtResult> result = ddt.TestDriver(image, pci_descriptor);
//   for (const Bug& bug : result.value().bugs) { std::cout << bug.Format(); }
//
// Bug objects reference expression storage owned by the Ddt instance; keep
// the instance alive while using the result.
#ifndef SRC_CORE_DDT_H_
#define SRC_CORE_DDT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/annotations/annotation.h"
#include "src/engine/engine.h"
#include "src/kernel/exerciser.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/support/status.h"

namespace ddt {

struct DdtConfig {
  EngineConfig engine;
  // Default dynamic checkers (§3.1.1). Custom checkers can be added through
  // Ddt::AddChecker before TestDriver.
  bool use_default_checkers = true;
  // Standard MiniOS annotation set (§3.4). The ablation benchmark turns this
  // off.
  bool use_standard_annotations = true;
  // Registry contents the guest kernel serves; merged over sane defaults.
  std::map<std::string, uint32_t> registry;
  // Workload override; by default chosen from the driver's class (network vs
  // audio) per §4.3.
  std::optional<std::vector<WorkloadStep>> workload;
  // Checkbochs-style DMA checker (src/checkers/dma_checker.h): validate every
  // buffer address the driver writes into the device's MMIO window against
  // live kernel allocation/mapping state. Opt-in because its reports
  // terminate paths (changing which bugs downstream checkers see), so plain
  // baselines keep historical behavior. Enters the campaign fingerprint.
  bool dma_checker = false;
};

struct DdtResult {
  std::vector<Bug> bugs;
  EngineStats stats;
  // Solver-derived concrete path models (empty unless
  // engine.max_path_seeds > 0) — the fuzz subsystem's seeds.
  std::vector<PathSeed> path_seeds;
  std::vector<CoverageSample> coverage_samples;
  size_t covered_blocks = 0;
  size_t total_blocks = 0;
  SolverStats solver_stats;
  MemStats mem_stats;
  // The run wound down via cooperative cancellation (Engine::RequestAbort —
  // typically the campaign watchdog) rather than finishing on its own
  // budgets. Partial results above are still valid.
  bool aborted = false;

  // Table-2 style report with one row per bug.
  std::string FormatReport(const std::string& driver_name) const;
};

class Ddt {
 public:
  explicit Ddt(const DdtConfig& config = DdtConfig());
  ~Ddt();

  // Additional checkers beyond the default set (§3.1's pluggable checkers).
  void AddChecker(std::unique_ptr<Checker> checker);
  // Extra annotations beyond (or instead of) the standard set.
  void AddAnnotations(const AnnotationSet& annotations);
  // Overrides the device model behind the PCI shell (default: SymbolicDevice;
  // the stress baseline installs a ScriptedDevice).
  void SetDevice(std::unique_ptr<DeviceModel> device);

  // Loads and exercises the driver; returns the bug report. One Ddt instance
  // tests one driver (make a new instance per driver).
  Result<DdtResult> TestDriver(const DriverImage& image, const PciDescriptor& descriptor);

  // The underlying engine (valid after TestDriver; exposes coverage, cfg...).
  Engine& engine();

  // Registry defaults every MiniOS instance starts from.
  static std::map<std::string, uint32_t> DefaultRegistry();

 private:
  DdtConfig config_;
  std::vector<std::unique_ptr<Checker>> extra_checkers_;
  std::vector<AnnotationSet> extra_annotations_;
  std::unique_ptr<DeviceModel> device_override_;
  std::unique_ptr<Engine> engine_;
  bool ran_ = false;
};

// --- Fault-injection campaigns (§3.4 error-path testing) ------------------
//
// A campaign runs the engine multiple times over the same driver: first a
// plain baseline pass, then one pass per FaultPlan generated from the
// baseline's fault-site profile (every single failure point, then escalating
// multi-point combinations). Bugs are merged and deduplicated across passes;
// each Bug carries the plan that exposed it, so ReplayBug reproduces the
// exact failure schedule.

struct FaultCampaignConfig {
  // Base configuration for every pass (the campaign overwrites
  // engine.fault_plan per pass).
  DdtConfig base;
  // Seeds plan generation (escalation combos); independent of engine.seed.
  uint64_t seed = 0xFA117;
  // Cap on total engine passes, including the baseline.
  size_t max_passes = 32;
  // Per class, only the first N occurrences are considered as single-point
  // plans (most init-path cleanup bugs hide in the first few).
  uint32_t max_occurrences_per_class = 8;
  // Rounds of multi-point escalation after the singles (round r combines
  // r + 2 points).
  uint32_t escalation_rounds = 1;
  // --- Hardware fault plane (src/hw/hw_fault.h) ---
  // Append device-level fault plans (surprise removal, removal at an
  // interrupt, sticky error registers, interrupt storms/droughts, dropped
  // doorbell writes) after the kernel-API plans, within the same max_passes
  // budget. Indices are sampled from the baseline's hardware site profile
  // exactly as kernel plans derive from the fault-site profile, so the
  // schedule is deterministic in (config, driver) and enters the campaign
  // fingerprint.
  bool hw_faults = false;
  // Per hardware fault kind, how many trigger indices to sample (spread
  // evenly across the observed extent; the first and last index are always
  // included so late-lifecycle faults — removal during Halt — are covered).
  uint32_t hw_max_points_per_kind = 4;
  // Worker threads for the plan passes. 0 = one per hardware thread;
  // 1 = run passes sequentially on the calling thread (the exact historical
  // behavior). Passes are independent engine+solver instances, and results
  // are merged in plan order, so the merged report is byte-identical for any
  // thread count.
  uint32_t threads = 0;

  // --- Campaign supervisor ---
  // Checkpoint journal (src/core/campaign_journal.h): after each pass a
  // self-contained record is appended and flushed, so a killed campaign
  // loses at most the passes in flight. Empty = no journaling.
  std::string journal_path;
  // Resume a previous campaign from journal_path: completed passes (including
  // the baseline and its fault-site profile) load from the journal, only
  // missing passes execute, and the plan-order merge makes the deterministic
  // report (FormatReport with include_volatile=false) byte-identical to an
  // uninterrupted run. A torn or corrupt trailing record is discarded, not
  // fatal. Requires journal_path; the journal must match this config and
  // driver image (fingerprint check). Thread count and supervisor budgets may
  // differ between the original run and the resume.
  bool resume = false;
  // Watchdog wall budget per pass, in milliseconds; 0 = no watchdog. A pass
  // exceeding it is cooperatively cancelled (Engine::RequestAbort) and
  // treated as a transient failure: retried with doubled budgets, then
  // quarantined. The campaign itself keeps going either way.
  uint64_t max_pass_wall_ms = 0;
  // Transient-failure retries per pass. Attempt k runs with budgets scaled by
  // 2^k (watchdog wall budget always; solver/memory/fuel budgets too) after a
  // deterministic backoff of retry_backoff_ms * 2^(k-1).
  uint32_t max_pass_retries = 2;
  uint64_t retry_backoff_ms = 0;
  // Also treat resource pressure (solver query timeouts or governor
  // evictions) as transient and retry with escalated budgets. If the final
  // attempt is still pressured its degraded-but-valid result is kept.
  bool retry_on_resource_pressure = false;
  // Test/instrumentation hook: called on each pass's Ddt instance (after
  // construction, before TestDriver), e.g. to add a custom checker.
  std::function<void(Ddt&, const FaultPlan&)> configure_pass;

  // --- Shared cross-pass solver cache (src/solver/shared_cache.h) ---
  // One SharedQueryCache is created per campaign and handed to every pass's
  // solver: identical logical queries (canonical fingerprints, independent of
  // each pass's private ExprContext) hit across passes and worker threads.
  // Like the observability knobs, none of this enters the campaign
  // fingerprint or the deterministic report — the cache changes how fast
  // verdicts arrive, never which verdicts (cached models are re-verified by
  // the concrete evaluator, and model-requesting queries always solve
  // fresh), so the deterministic report is byte-identical cache on/off,
  // cold/warm, at any thread count.
  bool shared_cache = false;
  // When non-empty, implies shared_cache and adds on-disk persistence: the
  // cache warm-starts from this file (best-effort: missing/corrupt/
  // version-mismatched files are ignored, never fatal) and is saved back
  // after the campaign, so repeated or resumed campaigns skip the SAT work
  // of previous runs.
  std::string shared_cache_path;
  // Cache capacity (entries are LRU-ish evicted beyond it).
  uint64_t shared_cache_max_bytes = 64ull << 20;

  // --- Observability (src/obs) ---
  // Neither knob enters the campaign fingerprint (a journal resumes fine with
  // either flipped) and neither can change exploration, bug sets, or the
  // deterministic report — everything they produce lands in the *volatile*
  // section or in side outputs.
  //
  // Give each pass a fresh MetricsRegistry, plus one campaign-level registry
  // for the thread pool and journal, and merge every snapshot into
  // FaultCampaignResult::metrics. Off by default (registry lookups cost a
  // little per pass).
  bool collect_metrics = false;
  // Attribute each executed pass's wall time to phases (decode / interpret /
  // solver / checker / journal / merge) and build
  // FaultCampaignResult::profile. On by default: the probes sit at coarse
  // boundaries (a SAT query, a block decode, a journal flush) and stay off
  // the per-instruction path.
  bool collect_profile = true;
};

// One engine pass of a campaign.
struct FaultCampaignPass {
  FaultPlan plan;  // empty for the baseline
  EngineStats stats;
  SolverStats solver_stats;
  size_t bugs_found = 0;  // bugs this pass reported (pre-merge)
  size_t bugs_new = 0;    // of those, how many no earlier pass had found
  // Supervisor outcome.
  uint32_t retries = 0;        // transient-failure retry attempts consumed
  bool quarantined = false;    // permanently failed; excluded from aggregates
  std::string failure;         // why (quarantined passes only)
  bool from_journal = false;   // loaded from the checkpoint journal
};

struct FaultCampaignResult {
  // Merged, deduplicated bugs across all passes (baseline bugs first).
  std::vector<Bug> bugs;
  std::vector<FaultCampaignPass> passes;
  // Aggregate counters across passes.
  uint64_t total_faults_injected = 0;
  double total_wall_ms = 0;  // sum of per-pass engine wall times (CPU-ish)
  // Per-pass engine and solver stats folded together (counters summed,
  // high-water marks maxed) — the campaign-wide totals the report prints.
  EngineStats total_stats;
  SolverStats total_solver_stats;
  // Elapsed wall time for the whole campaign; with threads > 1 this is less
  // than total_wall_ms (the parallel speedup the benchmark measures).
  double campaign_wall_ms = 0;
  uint32_t threads_used = 1;
  // True when the passes ran inline on the calling thread (threads == 1 or a
  // single runnable plan) — no worker pool was spawned. Volatile-report only.
  bool inline_scheduler = true;
  // Search policy the campaign's engines ran with ("coverage-greedy", ...).
  // Recorded in the volatile scheduler line; never in the deterministic part
  // (the policy only reorders exploration, results are policy-independent
  // for the deterministic contract's purposes once a campaign completes).
  std::string searcher_name;
  // Shared-cache tallies for the volatile report and the bench (per-query
  // hit/miss/store counters live in total_solver_stats).
  bool shared_cache_used = false;
  uint64_t shared_cache_entries = 0;
  uint64_t shared_cache_bytes = 0;
  uint64_t shared_cache_evictions = 0;
  uint64_t shared_cache_load_errors = 0;
  uint64_t shared_cache_loaded_entries = 0;
  uint64_t shared_cache_saved_entries = 0;
  // Supervisor tallies.
  uint64_t passes_retried = 0;      // passes that needed >= 1 retry
  uint64_t passes_quarantined = 0;  // passes that failed permanently
  uint64_t passes_loaded = 0;       // passes restored from the journal
  // Fleet (multi-process broker/worker, src/fleet) tallies. All volatile:
  // how many worker processes ran, died, or were replaced never enters the
  // deterministic report — by design it is byte-identical to the in-process
  // scheduler's at any worker count and any crash/reassignment history.
  bool fleet_mode = false;          // result produced by fleet::RunFleetCampaign
  uint32_t fleet_workers = 0;       // configured worker process count
  uint64_t fleet_workers_spawned = 0;    // processes forked, incl. replacements
  uint64_t fleet_workers_lost = 0;       // crashed or heartbeat-timed-out
  uint64_t fleet_workers_rejected = 0;   // HELLO fingerprint/protocol mismatch
  uint64_t fleet_workers_recycled = 0;   // retired after max_leases_per_worker
  uint64_t fleet_leases_reassigned = 0;  // leases re-queued after a worker loss
  uint64_t fleet_results_salvaged = 0;   // passes recovered from a dead
                                         // worker's shard journal
  // Bug objects reference expression storage owned by the per-pass Ddt
  // instances; they are kept alive here so the result is self-contained.
  std::vector<std::shared_ptr<Ddt>> keepalive;
  // Observability outputs (volatile — never part of the deterministic
  // report). `metrics` is the merged snapshot across every per-pass registry
  // plus the campaign-level one (collect_metrics); `profile` has one phase
  // breakdown per executed pass and the fault-site hotness tallies
  // (collect_profile). Journal-restored passes carry no live timing and are
  // absent from `profile`.
  obs::MetricsSnapshot metrics;
  obs::CampaignProfile profile;
  // Per-pass registries/profiles the pass engines hold raw pointers into;
  // kept alive alongside the Ddt instances above.
  std::vector<std::shared_ptr<void>> obs_keepalive;

  // With include_volatile=false the report omits every timing- and
  // environment-dependent line (wall times, slowest-query ms, thread count,
  // journal-restore count) and is byte-identical between an uninterrupted
  // run and a kill-and-resume run at any thread count — the form the resume
  // tests and CI diff.
  std::string FormatReport(const std::string& driver_name, bool include_volatile = true) const;
};

// Runs a full campaign over one driver. Deterministic in (config, driver).
Result<FaultCampaignResult> RunFaultCampaign(const FaultCampaignConfig& config,
                                             const DriverImage& image,
                                             const PciDescriptor& descriptor);

}  // namespace ddt

#endif  // SRC_CORE_DDT_H_
