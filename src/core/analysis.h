// Automated bug analysis (§3.6).
//
// The paper: "One could write tools to automate the analysis and
// classification of bugs found by DDT ... They could provide both
// user-readable messages, like 'driver crashes in low-memory situations,'
// and detailed technical information" — and, given a device specification,
// "one can safely conclude that the observed behavior would not have
// occurred unless the hardware malfunctioned."
//
// AnalyzeBug digests a Bug's evidence (solved inputs with their origins, the
// annotation alternatives taken, the interrupt schedule) into exactly that:
// a one-line user-readable summary, provenance notes for each contributing
// input, and — when a DeviceSpec is supplied — whether the triggering device
// outputs fall outside what the vendor documented.
#ifndef SRC_CORE_ANALYSIS_H_
#define SRC_CORE_ANALYSIS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/engine/bug_report.h"

namespace ddt {

// What the vendor documents a register as returning (per BAR offset).
struct RegisterSpec {
  uint32_t min_value = 0;
  uint32_t max_value = 0xFFFFFFFF;
  uint32_t valid_mask = 0xFFFFFFFF;  // bits that may ever be set

  bool Allows(uint32_t value) const {
    return value >= min_value && value <= max_value && (value & ~valid_mask) == 0;
  }
};

struct DeviceSpec {
  std::map<uint32_t, RegisterSpec> registers;  // keyed by register offset

  // nullptr if the spec says nothing about this offset.
  const RegisterSpec* Find(uint32_t offset) const {
    auto it = registers.find(offset);
    return it == registers.end() ? nullptr : &it->second;
  }
};

struct BugAnalysis {
  // One-line user-readable message.
  std::string summary;
  // Per-input provenance, e.g. "device register +0x04 (read #0) returned
  // 0x2A — outside the documented range".
  std::vector<std::string> provenance;

  // Trigger classification.
  bool interrupt_dependent = false;       // needs a specific interrupt interleaving
  bool allocation_failure_dependent = false;  // needs an out-of-memory situation
  bool registry_dependent = false;        // driven by a registry parameter value
  bool device_input_dependent = false;    // driven by device register reads
  bool request_dependent = false;         // driven by I/O request arguments

  // §3.6 device-specification verdict: every device input that contributes
  // to the bug lies outside the documented behavior, i.e. the bug cannot
  // fire unless the hardware malfunctions. Only meaningful when a spec was
  // supplied and it covers the contributing registers.
  bool only_with_hardware_malfunction = false;
  size_t spec_violations = 0;

  std::string Format() const;
};

BugAnalysis AnalyzeBug(const Bug& bug, const DeviceSpec* spec = nullptr);

}  // namespace ddt

#endif  // SRC_CORE_ANALYSIS_H_
