#include "src/core/coverage_report.h"

#include <algorithm>

#include "src/support/strings.h"

namespace ddt {

CoverageReport BuildCoverageReport(const Cfg& cfg,
                                   const std::unordered_set<uint32_t>& covered,
                                   std::vector<uint32_t> function_starts,
                                   const std::map<uint32_t, std::string>* symbols) {
  CoverageReport report;
  report.total_blocks = cfg.NumBlocks();
  report.covered_blocks = covered.size();

  // Ensure the code base address is a fallback "function" so every block has
  // an owner.
  function_starts.push_back(cfg.base);
  std::sort(function_starts.begin(), function_starts.end());
  function_starts.erase(std::unique(function_starts.begin(), function_starts.end()),
                        function_starts.end());

  std::map<uint32_t, FunctionCoverage> by_start;
  for (uint32_t start : function_starts) {
    FunctionCoverage fn;
    fn.start = start;
    if (symbols != nullptr) {
      auto it = symbols->find(start);
      if (it != symbols->end()) {
        fn.name = it->second;
      }
    }
    if (fn.name.empty()) {
      fn.name = StrFormat("fn_%08x", start);
    }
    by_start.emplace(start, fn);
  }

  for (const auto& [leader, block] : cfg.blocks) {
    auto it = by_start.upper_bound(leader);
    if (it == by_start.begin()) {
      continue;
    }
    --it;
    it->second.blocks += 1;
    if (covered.count(leader) != 0) {
      it->second.covered += 1;
    }
  }

  for (const auto& [start, fn] : by_start) {
    if (fn.blocks > 0) {
      report.functions.push_back(fn);
    }
  }
  return report;
}

std::string CoverageReport::Format(double only_below) const {
  std::string out;
  out += StrFormat("coverage: %zu / %zu basic blocks (%.1f%%)\n", covered_blocks, total_blocks,
                   total_blocks == 0 ? 0.0
                                     : 100.0 * static_cast<double>(covered_blocks) /
                                           static_cast<double>(total_blocks));
  out += StrFormat("%-28s %10s %10s %8s\n", "function", "blocks", "covered", "pct");
  size_t filtered = 0;
  for (const FunctionCoverage& fn : functions) {
    if (fn.Fraction() >= only_below) {
      ++filtered;
      continue;
    }
    out += StrFormat("%-28s %10zu %10zu %7.1f%%\n", fn.name.c_str(), fn.blocks, fn.covered,
                     100.0 * fn.Fraction());
  }
  if (filtered > 0) {
    out += StrFormat("(%zu fully covered function(s) elided)\n", filtered);
  }
  return out;
}

}  // namespace ddt
