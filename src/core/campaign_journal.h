// Campaign checkpoint journal (crash-safe resume for fault campaigns).
//
// A long fault campaign is the one place this reproduction runs for minutes
// at a stretch, and a campaign killed at pass 30 of 32 used to lose
// everything. The journal makes each completed pass durable: after a pass
// merges, a self-contained record — the plan, the per-pass engine/solver
// stats, the serialized bugs (src/core/bug_io.h), and for the baseline the
// fault-site profile every later plan derives from — is appended to an
// append-only JSONL file and flushed. Restarting the campaign with
// `resume = true` loads the completed passes from the journal, executes only
// the missing ones, and merges everything in plan order, so the deterministic
// report is byte-identical to an uninterrupted run.
//
// Format: line 1 is a header naming the format version, the driver, and a
// fingerprint of every plan-determining config knob plus the driver image
// bytes (so a journal cannot silently resume a *different* campaign; thread
// count and supervisor budgets are deliberately excluded — resuming with more
// workers or a longer watchdog is legitimate). Every subsequent line is
//   {"crc":"XXXXXXXX","record":{...flat JSON...}}
// where the CRC-32 covers the record text. A process killed mid-append leaves
// a torn or corrupt final line; resume discards the invalid tail (truncating
// the file back to the valid prefix) rather than failing, because losing one
// pass is recoverable and losing the journal is not.
#ifndef SRC_CORE_CAMPAIGN_JOURNAL_H_
#define SRC_CORE_CAMPAIGN_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/engine/bug_report.h"
#include "src/engine/engine.h"
#include "src/engine/fault_injection.h"
#include "src/obs/metrics.h"
#include "src/solver/solver.h"
#include "src/support/status.h"

namespace ddt {

// One checkpointed campaign pass. `index` is the pass's position in the plan
// order (0 = baseline); records may be appended in completion order by
// parallel workers, so the index — not the line number — is the key.
struct CampaignPassRecord {
  uint64_t index = 0;
  std::string label;               // plan label ("" for the baseline)
  std::vector<FaultPoint> points;  // plan injection points
  std::vector<HwFaultPoint> hw_points;  // device-level injection points
  uint32_t retries = 0;            // supervisor retry attempts consumed
  bool quarantined = false;        // permanently failed; no stats/bugs
  std::string failure;             // failure reason (quarantined passes)
  EngineStats stats;
  SolverStats solver_stats;
  std::vector<Bug> bugs;  // replay-relevant fields only (bug_io round-trip)
  // Baseline only: the fault-site profile plan generation derives from, so a
  // resumed campaign reproduces the exact schedule without re-running pass 0.
  // hw_profile is the hardware-plane counterpart (MMIO/interrupt extents).
  bool has_profile = false;
  FaultSiteProfile profile;
  HwSiteProfile hw_profile;
};

// Flat-JSON payload codec for one pass record — the exact bytes the journal
// stores inside its CRC wrapper. Exposed because the fleet wire protocol
// (src/fleet) ships RESULT payloads in this encoding, so a record produced
// by a worker process, a record checkpointed to a shard journal, and a
// record in the coordinator's main journal are interchangeable byte-for-byte.
std::string EncodeCampaignPassRecord(const CampaignPassRecord& record);
bool DecodeCampaignPassRecord(const std::string& payload, CampaignPassRecord* record);

// Read-only load of every intact record in a journal (valid prefix up to the
// first torn/corrupt line), without truncating or reopening the file. A
// missing file yields an empty list — the fleet coordinator salvages the
// shard journal of a worker that may have died before creating it. A header
// that exists but names a different campaign is an error.
Result<std::vector<CampaignPassRecord>> LoadCampaignJournalRecords(const std::string& path,
                                                                   const std::string& driver,
                                                                   uint64_t fingerprint);

class CampaignJournal {
 public:
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  // Starts a fresh journal at `path`, truncating any existing file, and
  // writes the header. Fails if the path is not writable.
  static Result<std::unique_ptr<CampaignJournal>> Create(const std::string& path,
                                                         const std::string& driver,
                                                         uint64_t fingerprint);

  // Opens an existing journal for resume: validates the header against
  // (driver, fingerprint), loads every intact record into `records` (in file
  // order; callers key by CampaignPassRecord::index), truncates the file back
  // to the valid prefix — discarding a torn or corrupt tail — and reopens for
  // append. Fails if the file is missing, is not a campaign journal, or
  // belongs to a different campaign.
  static Result<std::unique_ptr<CampaignJournal>> OpenForResume(
      const std::string& path, const std::string& driver, uint64_t fingerprint,
      std::vector<CampaignPassRecord>* records);

  // Appends one record and flushes it to the OS before returning. Thread-safe
  // (parallel workers checkpoint passes in completion order).
  Status Append(const CampaignPassRecord& record);

  const std::string& path() const { return path_; }

  // Optional metrics sink (non-owning, null = off): Append publishes its
  // write+flush latency as the `journal.append_ms` histogram and counts
  // records in `journal.appends`. Call before the first Append.
  void SetMetrics(obs::MetricsRegistry* metrics);

 private:
  CampaignJournal(std::FILE* file, std::string path);

  std::mutex mu_;
  std::FILE* file_;  // owned; append mode
  std::string path_;
  obs::Histogram* append_ms_ = nullptr;  // null when metrics are off
  obs::Counter* appends_ = nullptr;
};

}  // namespace ddt

#endif  // SRC_CORE_CAMPAIGN_JOURNAL_H_
