// Bug report serialization: ship the evidence (§3.5).
//
// "DDT's bug report is a collection of traces of the execution paths leading
// to the bugs ... allowing the bug to be reproduced on the developer's or
// consumer's machine." A saved report carries everything guided replay
// needs — bug identity, the solved inputs with their origins, the interrupt
// schedule, the annotation-alternative schedule, the workload trail — plus a
// human-readable rendering of the trace tail. Loading a report on another
// machine (or another process) and calling ReplayBug reproduces the bug.
//
// The format is a line-oriented text format (one report can hold many bugs);
// it deliberately contains no expression pointers, so it is stable across
// processes.
#ifndef SRC_CORE_BUG_IO_H_
#define SRC_CORE_BUG_IO_H_

#include <string>
#include <vector>

#include "src/engine/bug_report.h"
#include "src/support/status.h"

namespace ddt {

// Serializes the replay-relevant fields (traces reduced to a rendered tail).
std::string SerializeBugs(const std::vector<Bug>& bugs);
Result<std::vector<Bug>> DeserializeBugs(const std::string& text);

Status SaveBugsFile(const std::string& path, const std::vector<Bug>& bugs);
Result<std::vector<Bug>> LoadBugsFile(const std::string& path);

}  // namespace ddt

#endif  // SRC_CORE_BUG_IO_H_
