// Per-function coverage reporting.
//
// The engine counts covered basic blocks globally (the Figures 2/3 series);
// this module attributes blocks to functions so a user can see *where*
// exploration got stuck — which entry points, handlers, or helpers were
// never exercised. Function starts come from the binary's static call
// targets plus any externally known roots (entry points, .func symbols).
#ifndef SRC_CORE_COVERAGE_REPORT_H_
#define SRC_CORE_COVERAGE_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/vm/disasm.h"

namespace ddt {

struct FunctionCoverage {
  uint32_t start = 0;
  std::string name;  // symbol if known, else "fn_<addr>"
  size_t blocks = 0;
  size_t covered = 0;

  double Fraction() const {
    return blocks == 0 ? 0.0 : static_cast<double>(covered) / static_cast<double>(blocks);
  }
};

struct CoverageReport {
  size_t total_blocks = 0;
  size_t covered_blocks = 0;
  std::vector<FunctionCoverage> functions;  // sorted by start address

  // Table rendering; functions below `only_below` coverage can be filtered
  // (1.0 shows everything).
  std::string Format(double only_below = 1.01) const;
};

// `function_starts` should include every known function address (call
// targets + entry points + symbols); blocks are attributed to the closest
// preceding start. `symbols` optionally maps addresses to names.
CoverageReport BuildCoverageReport(const Cfg& cfg,
                                   const std::unordered_set<uint32_t>& covered,
                                   std::vector<uint32_t> function_starts,
                                   const std::map<uint32_t, std::string>* symbols = nullptr);

}  // namespace ddt

#endif  // SRC_CORE_COVERAGE_REPORT_H_
