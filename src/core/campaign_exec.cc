#include "src/core/campaign_exec.h"

#include <algorithm>
#include <utility>

#include "src/obs/trace_events.h"
#include "src/support/check.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

std::string BugKey(const Bug& bug) {
  return StrFormat("%d|%s", static_cast<int>(bug.type), bug.title.c_str());
}

}  // namespace

uint64_t CampaignFingerprint(const FaultCampaignConfig& config, const DriverImage& image) {
  uint64_t h = 0xCBF29CE484222325ull;
  auto mix_bytes = [&h](const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;
    }
  };
  auto mix_u64 = [&mix_bytes](uint64_t v) { mix_bytes(&v, sizeof(v)); };
  mix_u64(config.seed);
  mix_u64(config.max_passes);
  mix_u64(config.max_occurrences_per_class);
  mix_u64(config.escalation_rounds);
  // The hardware fault plane and the DMA checker both change the pass
  // schedule or the bug sets passes produce, so they are part of a
  // campaign's identity.
  mix_u64(config.hw_faults ? 1 : 0);
  mix_u64(config.hw_max_points_per_kind);
  mix_u64(config.base.dma_checker ? 1 : 0);
  mix_u64(config.base.engine.seed);
  mix_u64(config.base.engine.max_instructions);
  mix_u64(config.base.engine.max_states);
  // Path-explosion controls change which states exist and when they die, so
  // every knob (and the search policy) is part of a campaign's identity —
  // a journal written under different controls must not resume here.
  const PathCtlConfig& pctl = config.base.engine.pathctl;
  mix_u64(pctl.enabled ? 1 : 0);
  mix_u64(pctl.merge ? 1 : 0);
  mix_u64(pctl.loop_kill ? 1 : 0);
  mix_u64(pctl.backedge_kill_threshold);
  mix_u64(pctl.kill_edges.size());
  for (const EdgeKillRule& rule : pctl.kill_edges) {
    mix_u64(rule.from);
    mix_u64(rule.to);
  }
  mix_u64(static_cast<uint64_t>(config.base.engine.strategy));
  mix_u64(config.base.use_default_checkers ? 1 : 0);
  mix_u64(config.base.use_standard_annotations ? 1 : 0);
  mix_bytes(image.name.data(), image.name.size());
  mix_bytes(image.code.data(), image.code.size());
  return h;
}

Status ValidateCampaignConfig(const FaultCampaignConfig& config) {
  if (config.max_passes == 0) {
    return Status::Error("FaultCampaignConfig.max_passes must be nonzero");
  }
  if (config.max_pass_retries > 16) {
    return Status::Error(
        "FaultCampaignConfig.max_pass_retries is implausibly large (budgets double per attempt; "
        "16 retries already scales them 65536x)");
  }
  if (config.retry_backoff_ms > 60'000) {
    return Status::Error("FaultCampaignConfig.retry_backoff_ms must be at most 60000 (1 minute)");
  }
  if (config.resume && config.journal_path.empty()) {
    return Status::Error("FaultCampaignConfig.resume requires journal_path");
  }
  if (config.hw_faults && config.hw_max_points_per_kind == 0) {
    return Status::Error(
        "FaultCampaignConfig.hw_faults requires hw_max_points_per_kind >= 1 (no hardware fault "
        "plan could ever be generated)");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// PassWatchdog
// ---------------------------------------------------------------------------

PassWatchdog::~PassWatchdog() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

uint64_t PassWatchdog::Arm(std::chrono::steady_clock::time_point deadline,
                           std::shared_ptr<std::atomic<bool>> token) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!thread_.joinable()) {
    thread_ = std::thread([this] { Loop(); });
  }
  uint64_t id = next_id_++;
  armed_.emplace(id, Entry{deadline, std::move(token)});
  cv_.notify_all();
  return id;
}

void PassWatchdog::Disarm(uint64_t id) {
  std::unique_lock<std::mutex> lock(mu_);
  armed_.erase(id);
}

void PassWatchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (armed_.empty()) {
      cv_.wait(lock);
      continue;
    }
    auto now = std::chrono::steady_clock::now();
    auto next = std::chrono::steady_clock::time_point::max();
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (it->second.deadline <= now) {
        it->second.token->store(true, std::memory_order_relaxed);
        it = armed_.erase(it);
      } else {
        next = std::min(next, it->second.deadline);
        ++it;
      }
    }
    if (!armed_.empty()) {
      cv_.wait_until(lock, next);
    }
  }
}

// ---------------------------------------------------------------------------
// CampaignPassExecutor
// ---------------------------------------------------------------------------

CampaignPassExecutor::CampaignPassExecutor(const FaultCampaignConfig& config,
                                           const DriverImage& image,
                                           const PciDescriptor& descriptor,
                                           SharedQueryCache* shared_cache,
                                           obs::MetricsRegistry* campaign_metrics)
    : config_(config),
      image_(image),
      descriptor_(descriptor),
      shared_cache_(shared_cache),
      campaign_metrics_(campaign_metrics) {}

PassOutcome CampaignPassExecutor::Execute(const FaultPlan& plan) {
  PassOutcome out;
  obs::ScopedSpan pass_span("campaign.pass");
  if (obs::Tracer::Enabled()) {
    pass_span.Arg(plan.empty() ? "baseline" : plan.label);
  }
  for (uint32_t attempt = 0;; ++attempt) {
    DdtConfig pass_config = config_.base;
    pass_config.engine.fault_plan = plan;
    pass_config.engine.solver.shared_cache = shared_cache_;
    auto token = std::make_shared<std::atomic<bool>>(false);
    pass_config.engine.abort_token = token;
    if (config_.collect_metrics) {
      out.metrics = std::make_shared<obs::MetricsRegistry>();
      pass_config.engine.metrics = out.metrics.get();
    }
    if (config_.collect_profile) {
      out.profile = std::make_shared<obs::PassProfile>();
      pass_config.engine.profile = out.profile.get();
    }
    if (attempt > 0) {
      // Escalate the budgets that plausibly caused a transient failure.
      uint64_t scale = 1ull << attempt;
      if (pass_config.engine.solver.max_query_ms != 0) {
        pass_config.engine.solver.max_query_ms *= scale;
      }
      if (pass_config.engine.max_state_bytes != 0) {
        pass_config.engine.max_state_bytes *= scale;
      }
      if (pass_config.engine.max_instructions_per_state != 0) {
        pass_config.engine.max_instructions_per_state *= scale;
      }
    }
    out.ddt = std::make_shared<Ddt>(pass_config);
    if (config_.configure_pass != nullptr) {
      config_.configure_pass(*out.ddt, plan);
    }
    uint64_t watch_id = 0;
    if (config_.max_pass_wall_ms != 0) {
      watch_id = watchdog_.Arm(std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(config_.max_pass_wall_ms << attempt),
                               token);
    }
    out.retries = attempt;
    std::string hard_failure;
    std::optional<DdtResult> r;
    try {
      ScopedCheckTrap trap;
      Result<DdtResult> res = out.ddt->TestDriver(image_, descriptor_);
      if (res.ok()) {
        r = res.take();
      } else {
        hard_failure = res.status().message();
      }
    } catch (const CheckFailureError& e) {
      hard_failure = std::string("engine invariant failure: ") + e.what();
    } catch (const std::exception& e) {
      hard_failure = std::string("engine exception: ") + e.what();
    }
    if (watch_id != 0) {
      watchdog_.Disarm(watch_id);
    }
    if (!hard_failure.empty()) {
      // Deterministic failures don't get better with retries: quarantine
      // immediately and drop the partial state.
      out.quarantined = true;
      out.failure = hard_failure;
      out.r.reset();
      out.ddt.reset();
      obs::TraceInstant("campaign.quarantine", "cause", "hard_failure");
      if (campaign_metrics_ != nullptr) {
        campaign_metrics_->counter("campaign.quarantines")->Add(1);
      }
      return out;
    }
    bool timed_out = r->aborted;  // the watchdog fired mid-run
    if (timed_out) {
      obs::TraceInstant("campaign.watchdog_fire");
      if (campaign_metrics_ != nullptr) {
        campaign_metrics_->counter("campaign.watchdog_fires")->Add(1);
      }
    }
    bool pressured = r->solver_stats.query_timeouts > 0 || r->stats.states_evicted > 0;
    if (timed_out || (config_.retry_on_resource_pressure && pressured)) {
      if (attempt < config_.max_pass_retries) {
        obs::TraceInstant("campaign.retry", "cause", timed_out ? "watchdog" : "pressure");
        if (campaign_metrics_ != nullptr) {
          campaign_metrics_->counter("campaign.retries")->Add(1);
        }
        if (config_.retry_backoff_ms != 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(config_.retry_backoff_ms << attempt));
        }
        out.ddt.reset();
        continue;
      }
      if (timed_out) {
        out.quarantined = true;
        out.failure = StrFormat(
            "watchdog: pass exceeded its wall budget (%u attempt%s, base %llu ms)", attempt + 1,
            attempt == 0 ? "" : "s", static_cast<unsigned long long>(config_.max_pass_wall_ms));
        out.r.reset();
        out.ddt.reset();
        obs::TraceInstant("campaign.quarantine", "cause", "watchdog");
        if (campaign_metrics_ != nullptr) {
          campaign_metrics_->counter("campaign.quarantines")->Add(1);
        }
        return out;
      }
      // Still pressured after the final escalation: the result is degraded
      // (over-approximate exploration, evicted states) but valid — keep it.
    }
    out.r = std::move(r);
    return out;
  }
}

// ---------------------------------------------------------------------------
// Record conversion
// ---------------------------------------------------------------------------

CampaignPassRecord MakePassRecord(uint64_t index, const FaultPlan& plan, const PassOutcome& out,
                                  const FaultSiteProfile* profile,
                                  const HwSiteProfile* hw_profile) {
  CampaignPassRecord rec;
  rec.index = index;
  rec.label = plan.label;
  rec.points = plan.points;
  rec.hw_points = plan.hw_points;
  rec.retries = out.retries;
  rec.quarantined = out.quarantined;
  rec.failure = out.failure;
  if (out.r.has_value()) {
    rec.stats = out.r->stats;
    rec.solver_stats = out.r->solver_stats;
    rec.bugs = out.r->bugs;
  }
  if (profile != nullptr) {
    rec.has_profile = true;
    rec.profile = *profile;
  }
  if (hw_profile != nullptr) {
    rec.hw_profile = *hw_profile;
  }
  return rec;
}

PassOutcome OutcomeFromRecord(CampaignPassRecord&& rec, bool restored_from_journal) {
  PassOutcome out;
  out.from_journal = restored_from_journal;
  out.retries = rec.retries;
  out.quarantined = rec.quarantined;
  out.failure = rec.failure;
  out.record = std::move(rec);
  return out;
}

// ---------------------------------------------------------------------------
// CampaignMerger
// ---------------------------------------------------------------------------

void CampaignMerger::Merge(const FaultPlan& plan, PassOutcome& out) {
  FaultCampaignResult& result = *result_;
  {
    // Merge time is attributed to the pass being merged; the profile is
    // snapshotted for the report only after this scope closes.
    obs::ScopedPhase merge_phase(out.profile.get(), obs::Phase::kMerge);
    FaultCampaignPass pass;
    pass.plan = plan;
    pass.retries = out.retries;
    pass.quarantined = out.quarantined;
    pass.failure = out.failure;
    pass.from_journal = out.from_journal;
    if (out.retries > 0) {
      ++result.passes_retried;
    }
    if (out.from_journal) {
      ++result.passes_loaded;
    }
    if (out.quarantined) {
      // A quarantined pass contributes nothing to the aggregates: whatever
      // stats a cancelled run accumulated depend on where the watchdog
      // struck, and folding them in would make the merged report
      // timing-dependent.
      ++result.passes_quarantined;
      result.passes.push_back(std::move(pass));
    } else {
      bool from_record = out.record.has_value();
      const EngineStats& stats = from_record ? out.record->stats : out.r->stats;
      const SolverStats& solver_stats =
          from_record ? out.record->solver_stats : out.r->solver_stats;
      const std::vector<Bug>& bugs = from_record ? out.record->bugs : out.r->bugs;
      pass.stats = stats;
      pass.solver_stats = solver_stats;
      pass.bugs_found = bugs.size();
      for (const Bug& bug : bugs) {
        if (seen_.insert(BugKey(bug)).second) {
          ++pass.bugs_new;
          result.bugs.push_back(bug);
        }
      }
      result.total_faults_injected += stats.faults_injected;
      result.total_wall_ms += stats.wall_ms;
      result.total_stats.Accumulate(stats);
      result.total_solver_stats.Accumulate(solver_stats);
      // Fork-site hotness for the obs profile. Keys are pre-formatted here
      // because obs must not depend on engine types; record-sourced passes
      // contribute too (the table rides in EngineStats through the journal).
      for (const auto& [key, site] : stats.fork_sites) {
        if (site.states_created != 0) {
          result.profile.fork_site_states[StrFormat(
              "pc=%08x fault=%s", key.first, key.second.c_str())] += site.states_created;
        }
      }
      result.passes.push_back(std::move(pass));
    }
  }
  // Observability bookkeeping (volatile outputs only). Record-sourced passes
  // have null sinks: no live timing was recorded for them in this process.
  size_t pass_index = result.passes.size() - 1;
  if (out.metrics != nullptr) {
    result.metrics.Merge(out.metrics->Snapshot());
    result.obs_keepalive.push_back(out.metrics);
  }
  if (out.profile != nullptr) {
    obs::CampaignProfile::PassEntry entry;
    entry.index = pass_index;
    entry.label = plan.empty() ? "baseline" : plan.label;
    entry.quarantined = out.quarantined;
    entry.phases = out.profile->Snapshot();
    entry.wall_ms = static_cast<double>(entry.phases.total_ns) / 1e6;
    result.profile.passes.push_back(std::move(entry));
    result.obs_keepalive.push_back(out.profile);
  }
  if (out.ddt != nullptr) {
    if (out.profile != nullptr || out.metrics != nullptr) {
      // Fault-site hotness: per-class occurrence counts this pass observed.
      const FaultSiteProfile& sites = out.ddt->engine().fault_site_profile();
      for (size_t c = 0; c < kNumFaultClasses; ++c) {
        if (sites.max_occurrences[c] != 0) {
          result.profile.fault_site_occurrences[FaultClassName(static_cast<FaultClass>(c))] +=
              sites.max_occurrences[c];
        }
      }
    }
    // Bugs hold ExprRefs owned by this instance's ExprContext. (Record-
    // sourced passes carry deserialized bugs, which own their storage.)
    result.keepalive.push_back(std::move(out.ddt));
  }
}

}  // namespace ddt
