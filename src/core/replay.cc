#include "src/core/replay.h"

#include "src/support/strings.h"

namespace ddt {

ReplayResult ReplayBug(const DriverImage& image, const PciDescriptor& descriptor, const Bug& bug,
                       const DdtConfig& config) {
  DdtConfig replay_config = config;
  EngineConfig& ec = replay_config.engine;
  ec.guided = true;
  ec.enable_symbolic_interrupts = false;
  ec.forced_interrupt_schedule = bug.interrupt_schedule;
  ec.forced_alternatives = bug.alternatives;
  ec.guided_inputs.clear();
  for (const SolvedInput& input : bug.inputs) {
    ec.guided_inputs[OriginKeyString(input.origin)] = input.value;
  }
  // Re-apply the fault plan that exposed the bug: occurrence counters are
  // deterministic per path, so the same (class, occurrence) points fail at
  // the same calls and the recorded failure schedule reproduces exactly.
  ec.fault_plan = bug.fault_plan;
  // A single concrete path: budgets can be tight. Run the whole path (the
  // target bug may be preceded by non-fatal warnings like lockset races).
  ec.max_states = 4;
  ec.stop_after_first_bug = false;

  ReplayResult result;
  Ddt ddt(replay_config);
  Result<DdtResult> run = ddt.TestDriver(image, descriptor);
  if (!run.ok()) {
    result.detail = "replay failed to load driver: " + run.error();
    return result;
  }
  result.stats = run.value().stats;
  for (const Bug& observed : run.value().bugs) {
    // The replay runs fully concretely, so messages can differ in wording
    // (e.g. "symbolic address can leave all valid regions" becomes "invalid
    // write at 0x..."); the bug identity is (type, detection pc).
    if (observed.type == bug.type && (observed.title == bug.title || observed.pc == bug.pc)) {
      result.reproduced = true;
      result.observed = observed;
      result.observed.trace.clear();  // expression pointers die with `ddt`
      result.observed.inputs.clear();
      result.detail = StrFormat("bug reproduced at pc=%08x", observed.pc);
      return result;
    }
  }
  if (!run.value().bugs.empty()) {
    result.detail = StrFormat("replay hit a different bug: %s",
                              run.value().bugs.front().Row().c_str());
  } else {
    result.detail = "replay completed without reproducing the bug";
  }
  return result;
}

}  // namespace ddt
