// Shared campaign execution substrate.
//
// RunFaultCampaign (the in-process thread-pool scheduler in ddt.cc) and the
// multi-process fleet (src/fleet: a coordinator leasing passes to crash-
// isolated worker processes) run the *same* campaign: the same supervised
// per-pass execution (watchdog cancellation, retry-with-escalation,
// quarantine-on-trap) and the same plan-order merge that makes the
// deterministic report byte-identical regardless of scheduling. This header
// is that common substrate, extracted from ddt.cc so a fleet worker executes
// a pass exactly — to the byte of the resulting journal record — as an
// in-process worker thread would, and the fleet coordinator merges records
// exactly as the in-process scheduler merges live outcomes.
//
// Layering: everything here is core-internal machinery. Library users call
// RunFaultCampaign / fleet::RunFleetCampaign; nothing in this header is
// needed to consume results.
#ifndef SRC_CORE_CAMPAIGN_EXEC_H_
#define SRC_CORE_CAMPAIGN_EXEC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/campaign_journal.h"
#include "src/core/ddt.h"
#include "src/solver/shared_cache.h"

namespace ddt {

// FNV-1a over every input that determines the campaign schedule, plus the
// driver image bytes. A journal carries this fingerprint so a resume cannot
// silently mix passes from a *different* campaign, and a fleet worker's HELLO
// carries it so a coordinator cannot lease passes to a worker configured for
// a different campaign. Thread count, the supervisor budgets (watchdog,
// retries, backoff), the shared-cache knobs, and the observability knobs are
// deliberately excluded: resuming an interrupted campaign with more workers,
// a longer watchdog, or a warm solver cache is legitimate and changes no
// pass's identity.
uint64_t CampaignFingerprint(const FaultCampaignConfig& config, const DriverImage& image);

// Mirrors the PR-1 EngineConfig validation: reject configurations that would
// otherwise fail late (or hang) with a clear message before any pass runs.
Status ValidateCampaignConfig(const FaultCampaignConfig& config);

// Supervisor watchdog: one lazily-started thread tracking the deadline of
// every in-flight pass. When a deadline passes while the pass is still armed,
// the watchdog fires the pass's abort token; the engine's run loop and any
// in-flight SAT query observe it cooperatively and wind down with partial
// (valid) results. This is the only mechanism that can stop a hung pass —
// there is no thread kill anywhere.
class PassWatchdog {
 public:
  PassWatchdog() = default;
  ~PassWatchdog();
  PassWatchdog(const PassWatchdog&) = delete;
  PassWatchdog& operator=(const PassWatchdog&) = delete;

  uint64_t Arm(std::chrono::steady_clock::time_point deadline,
               std::shared_ptr<std::atomic<bool>> token);
  void Disarm(uint64_t id);

 private:
  struct Entry {
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<std::atomic<bool>> token;
  };

  void Loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Entry> armed_;
  uint64_t next_id_ = 1;
  bool stop_ = false;
  std::thread thread_;  // started on first Arm
};

// The outcome of one campaign pass, from whichever source produced it: a
// live supervised execution (r/ddt set), a checkpoint-journal restore
// (record set, from_journal true), or a fleet worker's RESULT record (record
// set, from_journal false — it was executed this run, just in another
// process).
struct PassOutcome {
  std::shared_ptr<Ddt> ddt;    // owns the expression storage bugs reference
  std::optional<DdtResult> r;  // set iff the pass produced a live result
  uint32_t retries = 0;
  bool quarantined = false;
  std::string failure;  // set iff quarantined
  // Set when the pass data came from a serialized record rather than a live
  // run (journal restore or fleet RESULT). `from_journal` additionally marks
  // the record as *restored from a previous campaign* — it feeds the
  // passes_loaded tally; fleet records executed this run do not.
  std::optional<CampaignPassRecord> record;
  bool from_journal = false;
  // Observability sinks the pass's engine wrote into (fresh per attempt, so
  // a retried pass reports only its final attempt). Null when collection is
  // off or the pass came from a record.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  std::shared_ptr<obs::PassProfile> profile;
};

// Executes passes under full supervision: watchdog cancellation, retry with
// doubled budgets and deterministic backoff for transient failures,
// quarantine for permanent ones. DDT_CHECK failures and exceptions inside
// the engine are trapped per-thread and quarantine the pass — one malformed
// guest (or checker bug) must not kill a 30-pass campaign. Thread-safe:
// in-process worker threads share one executor; a fleet worker process owns
// its own.
class CampaignPassExecutor {
 public:
  // All pointers are non-owning and optional (null = feature off). `config`,
  // `image`, and `descriptor` must outlive the executor.
  CampaignPassExecutor(const FaultCampaignConfig& config, const DriverImage& image,
                       const PciDescriptor& descriptor, SharedQueryCache* shared_cache,
                       obs::MetricsRegistry* campaign_metrics);

  PassOutcome Execute(const FaultPlan& plan);

 private:
  const FaultCampaignConfig& config_;
  const DriverImage& image_;
  const PciDescriptor& descriptor_;
  SharedQueryCache* shared_cache_;
  obs::MetricsRegistry* campaign_metrics_;
  PassWatchdog watchdog_;
};

// Builds the checkpoint-journal record for a completed (or quarantined)
// pass. `profile` and `hw_profile` are non-null only for the baseline
// (pass 0), whose fault-site and hardware-site profiles the whole schedule
// derives from.
CampaignPassRecord MakePassRecord(uint64_t index, const FaultPlan& plan, const PassOutcome& out,
                                  const FaultSiteProfile* profile,
                                  const HwSiteProfile* hw_profile = nullptr);

// Wraps a serialized record back into a mergeable outcome.
// `restored_from_journal` distinguishes a resume restore (counted in
// passes_loaded) from a fleet record executed this run (not counted).
PassOutcome OutcomeFromRecord(CampaignPassRecord&& rec, bool restored_from_journal);

// Merges pass outcomes into a FaultCampaignResult in plan order. Bug
// deduplication, aggregate accumulation, and the pass table are functions of
// merge *order* alone, so any scheduler — sequential, thread pool, or
// multi-process fleet — that merges in plan order produces a byte-identical
// deterministic report. Not thread-safe; merging always happens on one
// thread.
class CampaignMerger {
 public:
  explicit CampaignMerger(FaultCampaignResult* result) : result_(result) {}

  void Merge(const FaultPlan& plan, PassOutcome& out);

 private:
  FaultCampaignResult* result_;
  std::set<std::string> seen_;
};

}  // namespace ddt

#endif  // SRC_CORE_CAMPAIGN_EXEC_H_
