// Bug replay (§3.5): re-executes a recorded buggy path, fully concretely.
//
// A Bug carries everything replay needs: the solved concrete inputs (mapped
// back to their origins — hardware read #n, registry parameter, entry
// argument, packet byte), the interrupt schedule (which boundary crossings
// the ISR fired at), and the annotation-alternative schedule (which kernel
// calls "failed"). The replayer runs the same engine in guided mode: no
// symbolic values survive, no forking happens, and the replay is declared
// successful iff the same bug fires again.
#ifndef SRC_CORE_REPLAY_H_
#define SRC_CORE_REPLAY_H_

#include <string>

#include "src/core/ddt.h"

namespace ddt {

struct ReplayResult {
  bool reproduced = false;
  // The bug observed during replay (valid when reproduced).
  Bug observed;
  std::string detail;
  EngineStats stats;
};

// Replays `bug` against the same driver/descriptor/configuration it was
// found with. `config` should be the DdtConfig used for the original run
// (the engine budgets are adjusted internally; symbolic exploration is off).
ReplayResult ReplayBug(const DriverImage& image, const PciDescriptor& descriptor, const Bug& bug,
                       const DdtConfig& config = DdtConfig());

}  // namespace ddt

#endif  // SRC_CORE_REPLAY_H_
