#include "src/core/ddt.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "src/checkers/default_checkers.h"
#include "src/support/check.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace ddt {

Ddt::Ddt(const DdtConfig& config) : config_(config) {}

Ddt::~Ddt() = default;

void Ddt::AddChecker(std::unique_ptr<Checker> checker) {
  extra_checkers_.push_back(std::move(checker));
}

void Ddt::AddAnnotations(const AnnotationSet& annotations) {
  extra_annotations_.push_back(annotations);
}

void Ddt::SetDevice(std::unique_ptr<DeviceModel> device) {
  device_override_ = std::move(device);
}

std::map<std::string, uint32_t> Ddt::DefaultRegistry() {
  return {
      {"MaximumMulticastList", 8},
      {"NetworkAddress", 0x00AABBCC},
      {"LinkSpeed", 100},
      {"TransmitBuffers", 16},
      {"ReceiveBuffers", 16},
      {"Volume", 50},
      {"SampleRate", 44100},
  };
}

Result<DdtResult> Ddt::TestDriver(const DriverImage& image, const PciDescriptor& descriptor) {
  DDT_CHECK_MSG(!ran_, "one Ddt instance tests one driver");
  ran_ = true;

  engine_ = std::make_unique<Engine>(config_.engine);

  if (config_.use_default_checkers) {
    for (auto& checker : MakeDefaultCheckers()) {
      engine_->AddChecker(std::move(checker));
    }
  }
  for (auto& checker : extra_checkers_) {
    engine_->AddChecker(std::move(checker));
  }
  extra_checkers_.clear();

  AnnotationSet annotations;
  if (config_.use_standard_annotations) {
    annotations = AnnotationSet::Standard();
  }
  for (const AnnotationSet& extra : extra_annotations_) {
    annotations.Merge(extra);
  }
  engine_->SetAnnotations(std::move(annotations));

  std::map<std::string, uint32_t> registry = DefaultRegistry();
  for (const auto& [key, value] : config_.registry) {
    registry[key] = value;
  }
  engine_->SetRegistry(std::move(registry));

  std::vector<WorkloadStep> workload =
      config_.workload.has_value() ? *config_.workload
                                   : BuildWorkload(DriverClassFor(image.name));
  engine_->SetWorkload(std::move(workload));

  if (device_override_ != nullptr) {
    engine_->SetDevice(std::move(device_override_));
  }

  Status status = engine_->LoadDriver(image, descriptor);
  if (!status.ok()) {
    return status;
  }
  engine_->Run();

  DdtResult result;
  result.bugs = engine_->bugs();
  result.stats = engine_->stats();
  result.coverage_samples = engine_->coverage_samples();
  result.covered_blocks = engine_->covered_blocks();
  result.total_blocks = engine_->total_blocks();
  result.solver_stats = engine_->solver().stats();
  result.mem_stats = engine_->mem_stats();
  return result;
}

Engine& Ddt::engine() {
  DDT_CHECK_MSG(engine_ != nullptr, "TestDriver not called yet");
  return *engine_;
}

std::string DdtResult::FormatReport(const std::string& driver_name) const {
  std::string out;
  out += StrFormat("=== DDT report for driver '%s' ===\n", driver_name.c_str());
  out += StrFormat("bugs found: %zu\n", bugs.size());
  for (const Bug& bug : bugs) {
    out += "  " + bug.Row() + "\n";
  }
  out += StrFormat(
      "coverage: %zu / %zu basic blocks (%.1f%%)\n", covered_blocks, total_blocks,
      total_blocks == 0 ? 0.0 : 100.0 * static_cast<double>(covered_blocks) /
                                     static_cast<double>(total_blocks));
  out += StrFormat("instructions: %llu, forks: %llu, states: %llu created / %llu peak\n",
                   static_cast<unsigned long long>(stats.instructions),
                   static_cast<unsigned long long>(stats.forks),
                   static_cast<unsigned long long>(stats.states_created),
                   static_cast<unsigned long long>(stats.max_live_states));
  out += StrFormat(
      "solver: %llu queries (%llu quick, %llu cached, %llu model-reuse, %llu SAT calls)\n",
      static_cast<unsigned long long>(solver_stats.queries),
      static_cast<unsigned long long>(solver_stats.quick_decides),
      static_cast<unsigned long long>(solver_stats.cache_hits),
      static_cast<unsigned long long>(solver_stats.model_reuse_hits),
      static_cast<unsigned long long>(solver_stats.sat_calls));
  if (stats.blocks_decoded != 0) {
    out += StrFormat("block cache: %llu blocks decoded, %llu instruction fetch hits\n",
                     static_cast<unsigned long long>(stats.blocks_decoded),
                     static_cast<unsigned long long>(stats.block_cache_hits));
  }
  out += StrFormat("peak state working set: ~%llu KiB across live states\n",
                   static_cast<unsigned long long>(stats.peak_state_bytes / 1024));
  if (stats.faults_injected != 0) {
    out += StrFormat("faults injected: %llu\n",
                     static_cast<unsigned long long>(stats.faults_injected));
  }
  if (solver_stats.query_timeouts != 0 || stats.states_evicted != 0) {
    out += StrFormat("governor: %llu query timeouts, %llu states evicted\n",
                     static_cast<unsigned long long>(solver_stats.query_timeouts),
                     static_cast<unsigned long long>(stats.states_evicted));
  }
  out += StrFormat("wall time: %.1f ms\n", stats.wall_ms);
  return out;
}

// ---------------------------------------------------------------------------
// Fault-injection campaigns (§3.4)
// ---------------------------------------------------------------------------

namespace {

std::string BugKey(const Bug& bug) {
  return StrFormat("%d|%s", static_cast<int>(bug.type), bug.title.c_str());
}

}  // namespace

Result<FaultCampaignResult> RunFaultCampaign(const FaultCampaignConfig& config,
                                             const DriverImage& image,
                                             const PciDescriptor& descriptor) {
  auto campaign_start = std::chrono::steady_clock::now();
  FaultCampaignResult result;
  std::set<std::string> seen;

  // Execution and merging are split so plan passes can run on a worker pool:
  // execute_pass touches only its own engine+solver instance (safe
  // concurrently), merge_pass mutates the shared result and always runs on
  // the calling thread in plan order — so the merged bug list, dedup
  // decisions, and pass table are byte-identical to a sequential run no
  // matter in which order workers finish.
  struct PassOutcome {
    Status status;                // overall pass status (default: ok)
    std::shared_ptr<Ddt> ddt;     // owns the expression storage bugs reference
    std::optional<DdtResult> r;   // set iff status.ok()
  };

  auto execute_pass = [&config, &image, &descriptor](const FaultPlan& plan) -> PassOutcome {
    PassOutcome out;
    DdtConfig pass_config = config.base;
    pass_config.engine.fault_plan = plan;
    out.ddt = std::make_shared<Ddt>(pass_config);
    Result<DdtResult> r = out.ddt->TestDriver(image, descriptor);
    if (!r.ok()) {
      out.status = r.status();
      return out;
    }
    out.r = std::move(r.value());
    return out;
  };

  auto merge_pass = [&result, &seen](const FaultPlan& plan, PassOutcome& out) {
    FaultCampaignPass pass;
    pass.plan = plan;
    pass.stats = out.r->stats;
    pass.solver_stats = out.r->solver_stats;
    pass.bugs_found = out.r->bugs.size();
    for (const Bug& bug : out.r->bugs) {
      if (seen.insert(BugKey(bug)).second) {
        ++pass.bugs_new;
        result.bugs.push_back(bug);
      }
    }
    result.total_faults_injected += out.r->stats.faults_injected;
    result.total_wall_ms += out.r->stats.wall_ms;
    result.total_stats.Accumulate(out.r->stats);
    result.total_solver_stats.Accumulate(out.r->solver_stats);
    result.passes.push_back(std::move(pass));
    // Bugs hold ExprRefs owned by this instance's ExprContext.
    result.keepalive.push_back(std::move(out.ddt));
  };

  // Pass 0: plain baseline, always on the calling thread. Besides its own
  // bugs, it measures the fault-site profile every later plan is generated
  // from, so nothing can overlap with it anyway.
  PassOutcome baseline = execute_pass(FaultPlan{});
  if (!baseline.status.ok()) {
    return baseline.status;
  }
  FaultSiteProfile profile = baseline.ddt->engine().fault_site_profile();
  merge_pass(FaultPlan{}, baseline);

  size_t plan_budget = config.max_passes > 0 ? config.max_passes - 1 : 0;
  std::vector<FaultPlan> plans =
      GenerateCampaignPlans(profile, config.seed, config.max_occurrences_per_class,
                            config.escalation_rounds, plan_budget);

  size_t threads = config.threads == 0 ? ThreadPool::HardwareThreads()
                                       : static_cast<size_t>(config.threads);
  threads = std::max<size_t>(1, std::min(threads, std::max<size_t>(1, plans.size())));
  result.threads_used = static_cast<uint32_t>(threads);

  if (threads == 1) {
    // Sequential: execute+merge inline, stopping at the first failed pass
    // (historical behavior).
    for (const FaultPlan& plan : plans) {
      PassOutcome out = execute_pass(plan);
      if (!out.status.ok()) {
        return out.status;
      }
      merge_pass(plan, out);
    }
  } else {
    // Parallel: outcomes land in pre-sized slots indexed by plan order;
    // failures are surfaced (and bugs merged) in plan order afterwards.
    std::vector<PassOutcome> outcomes(plans.size());
    {
      ThreadPool pool(threads);
      for (size_t i = 0; i < plans.size(); ++i) {
        pool.Submit([&outcomes, &plans, &execute_pass, i] {
          outcomes[i] = execute_pass(plans[i]);
        });
      }
      pool.Wait();
    }
    for (size_t i = 0; i < plans.size(); ++i) {
      if (!outcomes[i].status.ok()) {
        return outcomes[i].status;
      }
      merge_pass(plans[i], outcomes[i]);
    }
  }

  result.campaign_wall_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - campaign_start)
                                .count();
  return result;
}

std::string FaultCampaignResult::FormatReport(const std::string& driver_name) const {
  std::string out;
  out += StrFormat("=== DDT fault campaign for driver '%s' ===\n", driver_name.c_str());
  out += StrFormat("passes: %zu (1 baseline + %zu fault plans)\n", passes.size(),
                   passes.empty() ? 0 : passes.size() - 1);
  out += StrFormat("total faults injected: %llu\n",
                   static_cast<unsigned long long>(total_faults_injected));
  out += StrFormat("merged bugs: %zu\n", bugs.size());
  for (const Bug& bug : bugs) {
    out += "  " + bug.Row();
    if (!bug.fault_plan.empty()) {
      out += StrFormat("  [plan: %s]", bug.fault_plan.ToString().c_str());
    }
    out += "\n";
  }
  for (size_t i = 0; i < passes.size(); ++i) {
    const FaultCampaignPass& pass = passes[i];
    out += StrFormat(
        "  pass %zu: %s -> %zu bugs (%zu new), %llu faults, %.1f ms (slowest query %.1f ms)\n",
        i, pass.plan.empty() ? "baseline" : pass.plan.ToString().c_str(), pass.bugs_found,
        pass.bugs_new, static_cast<unsigned long long>(pass.stats.faults_injected),
        pass.stats.wall_ms, pass.solver_stats.max_query_wall_ms);
  }
  out += StrFormat("aggregate: %llu instructions, %llu forks, %llu states created\n",
                   static_cast<unsigned long long>(total_stats.instructions),
                   static_cast<unsigned long long>(total_stats.forks),
                   static_cast<unsigned long long>(total_stats.states_created));
  out += StrFormat(
      "aggregate solver: %llu queries, %llu SAT calls, %llu model-reuse hits, "
      "slowest query %.1f ms\n",
      static_cast<unsigned long long>(total_solver_stats.queries),
      static_cast<unsigned long long>(total_solver_stats.sat_calls),
      static_cast<unsigned long long>(total_solver_stats.model_reuse_hits),
      total_solver_stats.max_query_wall_ms);
  out += StrFormat("scheduler: %u worker thread%s, campaign wall %.1f ms (passes sum %.1f ms)\n",
                   threads_used, threads_used == 1 ? "" : "s", campaign_wall_ms, total_wall_ms);
  return out;
}

}  // namespace ddt
