#include "src/core/ddt.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "src/checkers/default_checkers.h"
#include "src/checkers/dma_checker.h"
#include "src/core/campaign_exec.h"
#include "src/core/campaign_journal.h"
#include "src/obs/trace_events.h"
#include "src/solver/shared_cache.h"
#include "src/support/check.h"
#include "src/support/log.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace ddt {

Ddt::Ddt(const DdtConfig& config) : config_(config) {}

Ddt::~Ddt() = default;

void Ddt::AddChecker(std::unique_ptr<Checker> checker) {
  extra_checkers_.push_back(std::move(checker));
}

void Ddt::AddAnnotations(const AnnotationSet& annotations) {
  extra_annotations_.push_back(annotations);
}

void Ddt::SetDevice(std::unique_ptr<DeviceModel> device) {
  device_override_ = std::move(device);
}

std::map<std::string, uint32_t> Ddt::DefaultRegistry() {
  return {
      {"MaximumMulticastList", 8},
      {"NetworkAddress", 0x00AABBCC},
      {"LinkSpeed", 100},
      {"TransmitBuffers", 16},
      {"ReceiveBuffers", 16},
      {"Volume", 50},
      {"SampleRate", 44100},
  };
}

Result<DdtResult> Ddt::TestDriver(const DriverImage& image, const PciDescriptor& descriptor) {
  DDT_CHECK_MSG(!ran_, "one Ddt instance tests one driver");
  ran_ = true;

  engine_ = std::make_unique<Engine>(config_.engine);

  if (config_.use_default_checkers) {
    for (auto& checker : MakeDefaultCheckers()) {
      engine_->AddChecker(std::move(checker));
    }
  }
  if (config_.dma_checker) {
    engine_->AddChecker(std::make_unique<DmaChecker>());
  }
  for (auto& checker : extra_checkers_) {
    engine_->AddChecker(std::move(checker));
  }
  extra_checkers_.clear();

  AnnotationSet annotations;
  if (config_.use_standard_annotations) {
    annotations = AnnotationSet::Standard();
  }
  for (const AnnotationSet& extra : extra_annotations_) {
    annotations.Merge(extra);
  }
  engine_->SetAnnotations(std::move(annotations));

  std::map<std::string, uint32_t> registry = DefaultRegistry();
  for (const auto& [key, value] : config_.registry) {
    registry[key] = value;
  }
  engine_->SetRegistry(std::move(registry));

  std::vector<WorkloadStep> workload =
      config_.workload.has_value() ? *config_.workload
                                   : BuildWorkload(DriverClassFor(image.name));
  engine_->SetWorkload(std::move(workload));

  if (device_override_ != nullptr) {
    engine_->SetDevice(std::move(device_override_));
  }

  Status status = engine_->LoadDriver(image, descriptor);
  if (!status.ok()) {
    return status;
  }
  engine_->Run();

  DdtResult result;
  result.bugs = engine_->bugs();
  result.stats = engine_->stats();
  result.path_seeds = engine_->path_seeds();
  result.coverage_samples = engine_->coverage_samples();
  result.covered_blocks = engine_->covered_blocks();
  result.total_blocks = engine_->total_blocks();
  result.solver_stats = engine_->solver().stats();
  result.mem_stats = engine_->mem_stats();
  result.aborted = engine_->AbortRequested();
  return result;
}

Engine& Ddt::engine() {
  DDT_CHECK_MSG(engine_ != nullptr, "TestDriver not called yet");
  return *engine_;
}

std::string DdtResult::FormatReport(const std::string& driver_name) const {
  std::string out;
  out += StrFormat("=== DDT report for driver '%s' ===\n", driver_name.c_str());
  out += StrFormat("bugs found: %zu\n", bugs.size());
  for (const Bug& bug : bugs) {
    out += "  " + bug.Row() + "\n";
  }
  out += StrFormat(
      "coverage: %zu / %zu basic blocks (%.1f%%)\n", covered_blocks, total_blocks,
      total_blocks == 0 ? 0.0 : 100.0 * static_cast<double>(covered_blocks) /
                                     static_cast<double>(total_blocks));
  out += StrFormat("instructions: %llu, forks: %llu, states: %llu created / %llu peak\n",
                   static_cast<unsigned long long>(stats.instructions),
                   static_cast<unsigned long long>(stats.forks),
                   static_cast<unsigned long long>(stats.states_created),
                   static_cast<unsigned long long>(stats.max_live_states));
  out += StrFormat(
      "solver: %llu queries (%llu quick, %llu cached, %llu model-reuse, %llu SAT calls)\n",
      static_cast<unsigned long long>(solver_stats.queries),
      static_cast<unsigned long long>(solver_stats.quick_decides),
      static_cast<unsigned long long>(solver_stats.cache_hits),
      static_cast<unsigned long long>(solver_stats.model_reuse_hits),
      static_cast<unsigned long long>(solver_stats.sat_calls));
  if (solver_stats.shared_cache_hits != 0 || solver_stats.shared_cache_fastpath_hits != 0 ||
      solver_stats.shared_cache_misses != 0) {
    out += StrFormat("shared cache: %llu hits (%llu fastpath), %llu misses, %llu stores\n",
                     static_cast<unsigned long long>(solver_stats.shared_cache_hits),
                     static_cast<unsigned long long>(solver_stats.shared_cache_fastpath_hits),
                     static_cast<unsigned long long>(solver_stats.shared_cache_misses),
                     static_cast<unsigned long long>(solver_stats.shared_cache_stores));
  }
  if (stats.blocks_decoded != 0) {
    out += StrFormat(
        "block cache: %llu blocks decoded, %llu instruction fetch hits, "
        "%llu fallback fetches, %llu hot blocks\n",
        static_cast<unsigned long long>(stats.blocks_decoded),
        static_cast<unsigned long long>(stats.block_cache_hits),
        static_cast<unsigned long long>(stats.block_cache_fallback_fetches),
        static_cast<unsigned long long>(stats.block_cache_hot_blocks));
  }
  if (stats.superblocks_compiled != 0 || stats.superblock_entries != 0) {
    out += StrFormat(
        "superblocks: %llu compiled (%llu ops lowered), %llu entries, %llu chains, "
        "%llu side exits, %llu tier-2 instructions\n",
        static_cast<unsigned long long>(stats.superblocks_compiled),
        static_cast<unsigned long long>(stats.superblock_ops_lowered),
        static_cast<unsigned long long>(stats.superblock_entries),
        static_cast<unsigned long long>(stats.superblock_chains),
        static_cast<unsigned long long>(stats.superblock_side_exits),
        static_cast<unsigned long long>(stats.superblock_instructions));
  }
  out += StrFormat("peak state working set: ~%llu KiB across live states\n",
                   static_cast<unsigned long long>(stats.peak_state_bytes / 1024));
  if (stats.faults_injected != 0) {
    out += StrFormat("faults injected: %llu\n",
                     static_cast<unsigned long long>(stats.faults_injected));
  }
  if (stats.hw_faults_injected != 0) {
    out += StrFormat("hw faults injected: %llu (%llu removals, %llu reads floated, "
                     "%llu writes dropped)\n",
                     static_cast<unsigned long long>(stats.hw_faults_injected),
                     static_cast<unsigned long long>(stats.hw_removals),
                     static_cast<unsigned long long>(stats.hw_reads_floated),
                     static_cast<unsigned long long>(stats.hw_writes_dropped));
  }
  if (solver_stats.query_timeouts != 0 || stats.states_evicted != 0) {
    out += StrFormat("governor: %llu query timeouts, %llu states evicted\n",
                     static_cast<unsigned long long>(solver_stats.query_timeouts),
                     static_cast<unsigned long long>(stats.states_evicted));
  }
  out += StrFormat("wall time: %.1f ms\n", stats.wall_ms);
  return out;
}

// ---------------------------------------------------------------------------
// Fault-injection campaigns (§3.4)
// ---------------------------------------------------------------------------

Result<FaultCampaignResult> RunFaultCampaign(const FaultCampaignConfig& config,
                                             const DriverImage& image,
                                             const PciDescriptor& descriptor) {
  auto campaign_start = std::chrono::steady_clock::now();
  Status valid = ValidateCampaignConfig(config);
  if (!valid.ok()) {
    return valid;
  }

  FaultCampaignResult result;

  // Execution and merging are split so plan passes can run on a worker pool:
  // CampaignPassExecutor::Execute touches only its own engine+solver instance
  // (safe concurrently), CampaignMerger::Merge mutates the shared result and
  // always runs on the calling thread in plan order — so the merged bug list,
  // dedup decisions, and pass table are byte-identical to a sequential run no
  // matter in which order workers finish. The journal is the one shared
  // resource workers touch (appends in completion order, under its mutex);
  // records carry the pass index, so load order never matters. The same
  // executor/merger pair drives the multi-process fleet (src/fleet), which is
  // why they live in campaign_exec.h rather than here.
  CampaignMerger merger(&result);

  // Campaign-level registry for the instruments that outlive any single pass
  // (thread-pool queue depth and busy time, journal flush latency, supervisor
  // event counts). Merged into result.metrics at the end.
  std::shared_ptr<obs::MetricsRegistry> campaign_metrics;
  if (config.collect_metrics) {
    campaign_metrics = std::make_shared<obs::MetricsRegistry>();
  }

  // Cross-pass shared solver cache: one store for every pass (and every
  // worker thread) of this campaign. With a path configured it warm-starts
  // from disk — best-effort, a bad file only bumps a counter — and is saved
  // back after the merge.
  std::shared_ptr<SharedQueryCache> shared_cache;
  if (config.shared_cache || !config.shared_cache_path.empty()) {
    SharedCacheConfig cache_config;
    cache_config.max_bytes = config.shared_cache_max_bytes;
    shared_cache = std::make_shared<SharedQueryCache>(cache_config);
    if (!config.shared_cache_path.empty()) {
      shared_cache->LoadFromFile(config.shared_cache_path);
    }
  }

  // One pass under full supervision (watchdog, retry-with-escalation,
  // quarantine): see CampaignPassExecutor in campaign_exec.h.
  CampaignPassExecutor executor(config, image, descriptor, shared_cache.get(),
                                campaign_metrics.get());

  // Journal setup. Resume loads the completed passes; a fresh journal starts
  // with just the header.
  uint64_t fingerprint = CampaignFingerprint(config, image);
  std::unique_ptr<CampaignJournal> journal;
  std::map<uint64_t, CampaignPassRecord> journaled;  // pass index -> record
  if (config.resume) {
    std::vector<CampaignPassRecord> records;
    Result<std::unique_ptr<CampaignJournal>> opened =
        CampaignJournal::OpenForResume(config.journal_path, image.name, fingerprint, &records);
    if (!opened.ok()) {
      return opened.status();
    }
    journal = opened.take();
    for (CampaignPassRecord& rec : records) {
      journaled.insert_or_assign(rec.index, std::move(rec));
    }
  } else if (!config.journal_path.empty()) {
    Result<std::unique_ptr<CampaignJournal>> created =
        CampaignJournal::Create(config.journal_path, image.name, fingerprint);
    if (!created.ok()) {
      return created.status();
    }
    journal = created.take();
  }
  if (journal != nullptr && campaign_metrics != nullptr) {
    journal->SetMetrics(campaign_metrics.get());
  }

  // Pass 0: plain baseline. Besides its own bugs, it measures the fault-site
  // profile every later plan is generated from — which is why the journal
  // stores the profile: a resume must reproduce the exact schedule without
  // re-running the baseline. A failed baseline fails the whole campaign (and
  // is deliberately not journaled, so a plain rerun retries it).
  FaultSiteProfile profile;
  HwSiteProfile hw_profile;
  auto base_it = journaled.find(0);
  if (base_it != journaled.end() && base_it->second.has_profile &&
      !base_it->second.quarantined) {
    profile = base_it->second.profile;
    hw_profile = base_it->second.hw_profile;
    PassOutcome restored =
        OutcomeFromRecord(std::move(base_it->second), /*restored_from_journal=*/true);
    merger.Merge(FaultPlan{}, restored);
  } else {
    PassOutcome baseline = executor.Execute(FaultPlan{});
    if (baseline.quarantined) {
      return Status::Error("campaign baseline pass failed: " + baseline.failure);
    }
    profile = baseline.ddt->engine().fault_site_profile();
    hw_profile = baseline.ddt->engine().hw_site_profile();
    if (journal != nullptr) {
      obs::ScopedPhase journal_phase(baseline.profile.get(), obs::Phase::kJournal);
      Status appended =
          journal->Append(MakePassRecord(0, FaultPlan{}, baseline, &profile, &hw_profile));
      if (!appended.ok()) {
        return appended;
      }
    }
    merger.Merge(FaultPlan{}, baseline);
  }

  size_t plan_budget = config.max_passes > 0 ? config.max_passes - 1 : 0;
  std::vector<FaultPlan> plans =
      GenerateCampaignPlans(profile, config.seed, config.max_occurrences_per_class,
                            config.escalation_rounds, plan_budget);
  // Hardware fault plans ride the same budget, after the kernel-API plans:
  // the error paths §3.4 targets first are the common case, device-level
  // hostility extends the campaign rather than displacing it.
  if (config.hw_faults && plans.size() < plan_budget) {
    std::vector<FaultPlan> hw_plans = GenerateHwCampaignPlans(
        hw_profile, config.hw_max_points_per_kind, plan_budget - plans.size());
    for (FaultPlan& plan : hw_plans) {
      plans.push_back(std::move(plan));
    }
  }

  // Partition the plans: journaled passes restore instantly, the rest run.
  std::vector<PassOutcome> outcomes(plans.size());
  std::vector<size_t> to_run;
  for (size_t i = 0; i < plans.size(); ++i) {
    auto it = journaled.find(i + 1);
    if (it != journaled.end()) {
      if (it->second.label != plans[i].label) {
        return Status::Error(StrFormat(
            "journal '%s' does not match the campaign schedule: pass %zu is '%s' in the "
            "journal but '%s' in the regenerated plan",
            config.journal_path.c_str(), i + 1, it->second.label.c_str(),
            plans[i].label.c_str()));
      }
      outcomes[i] = OutcomeFromRecord(std::move(it->second), /*restored_from_journal=*/true);
    } else {
      to_run.push_back(i);
    }
  }

  size_t threads = config.threads == 0 ? ThreadPool::HardwareThreads()
                                       : static_cast<size_t>(config.threads);
  threads = std::max<size_t>(1, std::min(threads, std::max<size_t>(1, to_run.size())));
  result.threads_used = static_cast<uint32_t>(threads);
  // threads == 1 covers both the explicit sequential request and the
  // degenerate schedules (zero or one runnable plan): passes run inline on
  // the calling thread and no worker pool is ever spawned — on a single-CPU
  // host pool handoff costs more than it buys (see bench_exec part 2).
  result.inline_scheduler = threads == 1;
  result.searcher_name = SearchStrategyName(config.base.engine.strategy);

  // Checkpointing happens here — from whichever thread finished the pass, in
  // completion order — so a kill loses at most the passes still in flight.
  std::mutex journal_error_mu;
  Status journal_error;
  auto run_one = [&executor, &plans, &outcomes, &journal, &journal_error_mu,
                  &journal_error](size_t i) {
    PassOutcome out = executor.Execute(plans[i]);
    if (journal != nullptr) {
      obs::ScopedPhase journal_phase(out.profile.get(), obs::Phase::kJournal);
      Status appended = journal->Append(MakePassRecord(i + 1, plans[i], out, nullptr));
      if (!appended.ok()) {
        std::unique_lock<std::mutex> lock(journal_error_mu);
        if (journal_error.ok()) {
          journal_error = appended;
        }
      }
    }
    outcomes[i] = std::move(out);
  };

  if (threads == 1) {
    for (size_t i : to_run) {
      run_one(i);
    }
  } else {
    ThreadPool pool(threads);
    if (campaign_metrics != nullptr) {
      pool.SetMetrics(campaign_metrics.get());
    }
    for (size_t i : to_run) {
      pool.Submit([&run_one, i] { run_one(i); });
    }
    pool.Wait();
    // execute_supervised traps everything thrown under it; an exception the
    // pool still captured escaped the supervisor itself (e.g. OOM building a
    // journal record) — surface it instead of merging a silently-lost pass.
    std::vector<std::exception_ptr> errors = pool.TakeExceptions();
    if (!errors.empty()) {
      std::string message = "campaign worker task failed";
      try {
        std::rethrow_exception(errors.front());
      } catch (const std::exception& e) {
        message = StrFormat("campaign worker task failed: %s", e.what());
      } catch (...) {
      }
      return Status::Error(message);
    }
  }
  if (!journal_error.ok()) {
    return journal_error;
  }

  // Merge in plan order: byte-identical no matter which passes were
  // restored, which were executed, or how workers interleaved.
  for (size_t i = 0; i < plans.size(); ++i) {
    merger.Merge(plans[i], outcomes[i]);
  }

  if (shared_cache != nullptr) {
    result.shared_cache_used = true;
    if (!config.shared_cache_path.empty()) {
      Status saved = shared_cache->SaveToFile(config.shared_cache_path);
      if (!saved.ok()) {
        // Persistence is an accelerator, not a result: failing to write the
        // warm-start file must never fail the campaign.
        DDT_LOG_WARN("%s", saved.message().c_str());
      }
    }
    SharedQueryCache::Stats cache_stats = shared_cache->stats();
    result.shared_cache_entries = cache_stats.entries;
    result.shared_cache_bytes = cache_stats.bytes;
    result.shared_cache_evictions = cache_stats.evictions;
    result.shared_cache_load_errors = cache_stats.load_errors;
    result.shared_cache_loaded_entries = cache_stats.loaded_entries;
    result.shared_cache_saved_entries = cache_stats.saved_entries;
    if (campaign_metrics != nullptr) {
      // Store-level instruments; the per-query hit/miss/store/verify
      // counters are published per pass by the engine from SolverStats.
      campaign_metrics->counter("solver.shared_cache.evictions")->Add(cache_stats.evictions);
      campaign_metrics->counter("solver.shared_cache.load_errors")->Add(cache_stats.load_errors);
      campaign_metrics->counter("solver.shared_cache.loaded_entries")
          ->Add(cache_stats.loaded_entries);
      campaign_metrics->counter("solver.shared_cache.saved_entries")
          ->Add(cache_stats.saved_entries);
      campaign_metrics->gauge("solver.shared_cache.entries")
          ->Set(static_cast<int64_t>(cache_stats.entries));
      campaign_metrics->gauge("solver.shared_cache.bytes")
          ->Set(static_cast<int64_t>(cache_stats.bytes));
    }
    // The kept-alive Ddt instances hold solvers whose configs point at the
    // cache; keep it alive as long as they are.
    result.obs_keepalive.push_back(shared_cache);
  }
  if (campaign_metrics != nullptr) {
    result.metrics.Merge(campaign_metrics->Snapshot());
  }
  result.campaign_wall_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - campaign_start)
                                .count();
  return result;
}

std::string FaultCampaignResult::FormatReport(const std::string& driver_name,
                                              bool include_volatile) const {
  // Everything timing- or environment-dependent (wall times, slowest-query
  // ms, thread count, journal-restore count) is gated on include_volatile;
  // the deterministic remainder is byte-identical between an uninterrupted
  // run and a kill-and-resume run at any thread count.
  std::string out;
  out += StrFormat("=== DDT fault campaign for driver '%s' ===\n", driver_name.c_str());
  out += StrFormat("passes: %zu (1 baseline + %zu fault plans)\n", passes.size(),
                   passes.empty() ? 0 : passes.size() - 1);
  out += StrFormat("total faults injected: %llu\n",
                   static_cast<unsigned long long>(total_faults_injected));
  if (total_stats.hw_faults_injected != 0) {
    out += StrFormat("total hw faults injected: %llu (%llu removals)\n",
                     static_cast<unsigned long long>(total_stats.hw_faults_injected),
                     static_cast<unsigned long long>(total_stats.hw_removals));
  }
  out += StrFormat("merged bugs: %zu\n", bugs.size());
  for (const Bug& bug : bugs) {
    out += "  " + bug.Row();
    if (!bug.fault_plan.empty()) {
      out += StrFormat("  [plan: %s]", bug.fault_plan.ToString().c_str());
    }
    out += "\n";
  }
  for (size_t i = 0; i < passes.size(); ++i) {
    const FaultCampaignPass& pass = passes[i];
    std::string label = pass.plan.empty() ? "baseline" : pass.plan.ToString();
    if (pass.quarantined) {
      out += StrFormat("  pass %zu: %s -> QUARANTINED after %u retr%s: %s\n", i, label.c_str(),
                       pass.retries, pass.retries == 1 ? "y" : "ies", pass.failure.c_str());
      continue;
    }
    out += StrFormat("  pass %zu: %s -> %zu bugs (%zu new), %llu faults", i, label.c_str(),
                     pass.bugs_found, pass.bugs_new,
                     static_cast<unsigned long long>(pass.stats.faults_injected));
    if (pass.retries > 0) {
      out += StrFormat(", %u retr%s", pass.retries, pass.retries == 1 ? "y" : "ies");
    }
    if (include_volatile) {
      out += StrFormat(", %.1f ms (slowest query %.1f ms)", pass.stats.wall_ms,
                       pass.solver_stats.max_query_wall_ms);
    }
    out += "\n";
  }
  out += StrFormat("aggregate: %llu instructions, %llu forks, %llu states created\n",
                   static_cast<unsigned long long>(total_stats.instructions),
                   static_cast<unsigned long long>(total_stats.forks),
                   static_cast<unsigned long long>(total_stats.states_created));
  // Only the query count is deterministic: how many of those queries reached
  // SAT (vs being served by the model-reuse fast path or the shared
  // cross-pass cache) depends on cache temperature and thread interleaving,
  // so those counters live in the volatile section.
  out += StrFormat("aggregate solver: %llu queries",
                   static_cast<unsigned long long>(total_solver_stats.queries));
  if (include_volatile) {
    out += StrFormat(", %llu SAT calls, %llu model-reuse hits, slowest query %.1f ms",
                     static_cast<unsigned long long>(total_solver_stats.sat_calls),
                     static_cast<unsigned long long>(total_solver_stats.model_reuse_hits),
                     total_solver_stats.max_query_wall_ms);
  }
  out += "\n";
  if (include_volatile && shared_cache_used) {
    out += StrFormat(
        "shared cache: %llu hits (%llu fastpath), %llu misses, %llu stores, "
        "%llu evictions, %llu entries (~%llu KiB)\n",
        static_cast<unsigned long long>(total_solver_stats.shared_cache_hits),
        static_cast<unsigned long long>(total_solver_stats.shared_cache_fastpath_hits),
        static_cast<unsigned long long>(total_solver_stats.shared_cache_misses),
        static_cast<unsigned long long>(total_solver_stats.shared_cache_stores),
        static_cast<unsigned long long>(shared_cache_evictions),
        static_cast<unsigned long long>(shared_cache_entries),
        static_cast<unsigned long long>(shared_cache_bytes / 1024));
    if (shared_cache_loaded_entries != 0 || shared_cache_saved_entries != 0 ||
        shared_cache_load_errors != 0) {
      out += StrFormat("shared cache disk: %llu loaded, %llu saved, %llu load errors\n",
                       static_cast<unsigned long long>(shared_cache_loaded_entries),
                       static_cast<unsigned long long>(shared_cache_saved_entries),
                       static_cast<unsigned long long>(shared_cache_load_errors));
    }
  }
  // Execution-tier counters are volatile by design: which instructions tier 2
  // retires (vs side-exiting to the interpreter) may shift as superblocks
  // compile at different points across resumed or re-batched runs, even
  // though the architectural results above are byte-identical.
  if (include_volatile && total_stats.blocks_decoded != 0) {
    out += StrFormat(
        "block cache: %llu blocks decoded, %llu instruction fetch hits, "
        "%llu fallback fetches, %llu hot blocks\n",
        static_cast<unsigned long long>(total_stats.blocks_decoded),
        static_cast<unsigned long long>(total_stats.block_cache_hits),
        static_cast<unsigned long long>(total_stats.block_cache_fallback_fetches),
        static_cast<unsigned long long>(total_stats.block_cache_hot_blocks));
  }
  if (include_volatile && total_stats.superblocks_compiled != 0) {
    out += StrFormat(
        "superblocks: %llu compiled (%llu ops lowered), %llu entries, %llu chains, "
        "%llu side exits, %llu tier-2 instructions\n",
        static_cast<unsigned long long>(total_stats.superblocks_compiled),
        static_cast<unsigned long long>(total_stats.superblock_ops_lowered),
        static_cast<unsigned long long>(total_stats.superblock_entries),
        static_cast<unsigned long long>(total_stats.superblock_chains),
        static_cast<unsigned long long>(total_stats.superblock_side_exits),
        static_cast<unsigned long long>(total_stats.superblock_instructions));
  }
  out += StrFormat("supervisor: %llu pass%s retried, %llu quarantined\n",
                   static_cast<unsigned long long>(passes_retried),
                   passes_retried == 1 ? "" : "es",
                   static_cast<unsigned long long>(passes_quarantined));
  if (include_volatile) {
    if (passes_loaded != 0) {
      out += StrFormat("resumed: %llu pass%s restored from journal\n",
                       static_cast<unsigned long long>(passes_loaded),
                       passes_loaded == 1 ? "" : "es");
    }
    const char* searcher = searcher_name.empty() ? "?" : searcher_name.c_str();
    if (fleet_mode) {
      out += StrFormat(
          "scheduler: fleet of %u worker process%s, searcher %s, campaign wall %.1f ms "
          "(passes sum %.1f ms)\n",
          fleet_workers, fleet_workers == 1 ? "" : "es", searcher, campaign_wall_ms,
          total_wall_ms);
      out += StrFormat(
          "fleet: %llu spawned, %llu lost, %llu rejected, %llu recycled, "
          "%llu lease%s reassigned, %llu result%s salvaged\n",
          static_cast<unsigned long long>(fleet_workers_spawned),
          static_cast<unsigned long long>(fleet_workers_lost),
          static_cast<unsigned long long>(fleet_workers_rejected),
          static_cast<unsigned long long>(fleet_workers_recycled),
          static_cast<unsigned long long>(fleet_leases_reassigned),
          fleet_leases_reassigned == 1 ? "" : "s",
          static_cast<unsigned long long>(fleet_results_salvaged),
          fleet_results_salvaged == 1 ? "" : "s");
    } else if (inline_scheduler) {
      out += StrFormat("scheduler: inline on calling thread, searcher %s, campaign wall "
                       "%.1f ms (passes sum %.1f ms)\n",
                       searcher, campaign_wall_ms, total_wall_ms);
    } else {
      out += StrFormat(
          "scheduler: %u worker thread%s, searcher %s, campaign wall %.1f ms "
          "(passes sum %.1f ms)\n",
          threads_used, threads_used == 1 ? "" : "s", searcher, campaign_wall_ms,
          total_wall_ms);
    }
    // Path-explosion control tallies. The fork-site table is printed even
    // when every control is off (the fork profiler is always-on), so a user
    // can see *where* states and dropped forks come from before deciding
    // which control to enable. SAT-call attribution depends on cache
    // temperature across threads, which is why this whole block is volatile.
    if (total_stats.states_merged != 0 || total_stats.loop_kills != 0 ||
        total_stats.edge_kills != 0) {
      out += StrFormat("pathctl: %llu states merged, %llu loop kills, %llu edge kills\n",
                       static_cast<unsigned long long>(total_stats.states_merged),
                       static_cast<unsigned long long>(total_stats.loop_kills),
                       static_cast<unsigned long long>(total_stats.edge_kills));
      for (size_t i = 0; i < total_stats.edge_rule_kills.size(); ++i) {
        out += StrFormat("  edge-kill rule %zu: %llu kill%s\n", i,
                         static_cast<unsigned long long>(total_stats.edge_rule_kills[i]),
                         total_stats.edge_rule_kills[i] == 1 ? "" : "s");
      }
    }
    out += FormatHotForkSites(total_stats.fork_sites, 8);
    if (!profile.empty()) {
      out += profile.FormatTopPasses(5);
      out += profile.FormatHotFaultSites(8);
      out += profile.FormatHotForkSites(8);
    }
  }
  return out;
}

}  // namespace ddt
