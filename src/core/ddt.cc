#include "src/core/ddt.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "src/checkers/default_checkers.h"
#include "src/core/campaign_journal.h"
#include "src/obs/trace_events.h"
#include "src/solver/shared_cache.h"
#include "src/support/check.h"
#include "src/support/log.h"
#include "src/support/strings.h"
#include "src/support/thread_pool.h"

namespace ddt {

Ddt::Ddt(const DdtConfig& config) : config_(config) {}

Ddt::~Ddt() = default;

void Ddt::AddChecker(std::unique_ptr<Checker> checker) {
  extra_checkers_.push_back(std::move(checker));
}

void Ddt::AddAnnotations(const AnnotationSet& annotations) {
  extra_annotations_.push_back(annotations);
}

void Ddt::SetDevice(std::unique_ptr<DeviceModel> device) {
  device_override_ = std::move(device);
}

std::map<std::string, uint32_t> Ddt::DefaultRegistry() {
  return {
      {"MaximumMulticastList", 8},
      {"NetworkAddress", 0x00AABBCC},
      {"LinkSpeed", 100},
      {"TransmitBuffers", 16},
      {"ReceiveBuffers", 16},
      {"Volume", 50},
      {"SampleRate", 44100},
  };
}

Result<DdtResult> Ddt::TestDriver(const DriverImage& image, const PciDescriptor& descriptor) {
  DDT_CHECK_MSG(!ran_, "one Ddt instance tests one driver");
  ran_ = true;

  engine_ = std::make_unique<Engine>(config_.engine);

  if (config_.use_default_checkers) {
    for (auto& checker : MakeDefaultCheckers()) {
      engine_->AddChecker(std::move(checker));
    }
  }
  for (auto& checker : extra_checkers_) {
    engine_->AddChecker(std::move(checker));
  }
  extra_checkers_.clear();

  AnnotationSet annotations;
  if (config_.use_standard_annotations) {
    annotations = AnnotationSet::Standard();
  }
  for (const AnnotationSet& extra : extra_annotations_) {
    annotations.Merge(extra);
  }
  engine_->SetAnnotations(std::move(annotations));

  std::map<std::string, uint32_t> registry = DefaultRegistry();
  for (const auto& [key, value] : config_.registry) {
    registry[key] = value;
  }
  engine_->SetRegistry(std::move(registry));

  std::vector<WorkloadStep> workload =
      config_.workload.has_value() ? *config_.workload
                                   : BuildWorkload(DriverClassFor(image.name));
  engine_->SetWorkload(std::move(workload));

  if (device_override_ != nullptr) {
    engine_->SetDevice(std::move(device_override_));
  }

  Status status = engine_->LoadDriver(image, descriptor);
  if (!status.ok()) {
    return status;
  }
  engine_->Run();

  DdtResult result;
  result.bugs = engine_->bugs();
  result.stats = engine_->stats();
  result.coverage_samples = engine_->coverage_samples();
  result.covered_blocks = engine_->covered_blocks();
  result.total_blocks = engine_->total_blocks();
  result.solver_stats = engine_->solver().stats();
  result.mem_stats = engine_->mem_stats();
  result.aborted = engine_->AbortRequested();
  return result;
}

Engine& Ddt::engine() {
  DDT_CHECK_MSG(engine_ != nullptr, "TestDriver not called yet");
  return *engine_;
}

std::string DdtResult::FormatReport(const std::string& driver_name) const {
  std::string out;
  out += StrFormat("=== DDT report for driver '%s' ===\n", driver_name.c_str());
  out += StrFormat("bugs found: %zu\n", bugs.size());
  for (const Bug& bug : bugs) {
    out += "  " + bug.Row() + "\n";
  }
  out += StrFormat(
      "coverage: %zu / %zu basic blocks (%.1f%%)\n", covered_blocks, total_blocks,
      total_blocks == 0 ? 0.0 : 100.0 * static_cast<double>(covered_blocks) /
                                     static_cast<double>(total_blocks));
  out += StrFormat("instructions: %llu, forks: %llu, states: %llu created / %llu peak\n",
                   static_cast<unsigned long long>(stats.instructions),
                   static_cast<unsigned long long>(stats.forks),
                   static_cast<unsigned long long>(stats.states_created),
                   static_cast<unsigned long long>(stats.max_live_states));
  out += StrFormat(
      "solver: %llu queries (%llu quick, %llu cached, %llu model-reuse, %llu SAT calls)\n",
      static_cast<unsigned long long>(solver_stats.queries),
      static_cast<unsigned long long>(solver_stats.quick_decides),
      static_cast<unsigned long long>(solver_stats.cache_hits),
      static_cast<unsigned long long>(solver_stats.model_reuse_hits),
      static_cast<unsigned long long>(solver_stats.sat_calls));
  if (solver_stats.shared_cache_hits != 0 || solver_stats.shared_cache_fastpath_hits != 0 ||
      solver_stats.shared_cache_misses != 0) {
    out += StrFormat("shared cache: %llu hits (%llu fastpath), %llu misses, %llu stores\n",
                     static_cast<unsigned long long>(solver_stats.shared_cache_hits),
                     static_cast<unsigned long long>(solver_stats.shared_cache_fastpath_hits),
                     static_cast<unsigned long long>(solver_stats.shared_cache_misses),
                     static_cast<unsigned long long>(solver_stats.shared_cache_stores));
  }
  if (stats.blocks_decoded != 0) {
    out += StrFormat("block cache: %llu blocks decoded, %llu instruction fetch hits\n",
                     static_cast<unsigned long long>(stats.blocks_decoded),
                     static_cast<unsigned long long>(stats.block_cache_hits));
  }
  out += StrFormat("peak state working set: ~%llu KiB across live states\n",
                   static_cast<unsigned long long>(stats.peak_state_bytes / 1024));
  if (stats.faults_injected != 0) {
    out += StrFormat("faults injected: %llu\n",
                     static_cast<unsigned long long>(stats.faults_injected));
  }
  if (solver_stats.query_timeouts != 0 || stats.states_evicted != 0) {
    out += StrFormat("governor: %llu query timeouts, %llu states evicted\n",
                     static_cast<unsigned long long>(solver_stats.query_timeouts),
                     static_cast<unsigned long long>(stats.states_evicted));
  }
  out += StrFormat("wall time: %.1f ms\n", stats.wall_ms);
  return out;
}

// ---------------------------------------------------------------------------
// Fault-injection campaigns (§3.4)
// ---------------------------------------------------------------------------

namespace {

std::string BugKey(const Bug& bug) {
  return StrFormat("%d|%s", static_cast<int>(bug.type), bug.title.c_str());
}

// FNV-1a over every input that determines the campaign schedule, plus the
// driver image bytes. A journal carries this fingerprint so a resume cannot
// silently mix passes from a *different* campaign. Thread count, the
// supervisor budgets (watchdog, retries, backoff), and the shared-cache
// knobs are deliberately excluded: resuming an interrupted campaign with
// more workers, a longer watchdog, or a warm solver cache is legitimate and
// changes no pass's identity.
uint64_t CampaignFingerprint(const FaultCampaignConfig& config, const DriverImage& image) {
  uint64_t h = 0xCBF29CE484222325ull;
  auto mix_bytes = [&h](const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 0x100000001B3ull;
    }
  };
  auto mix_u64 = [&mix_bytes](uint64_t v) { mix_bytes(&v, sizeof(v)); };
  mix_u64(config.seed);
  mix_u64(config.max_passes);
  mix_u64(config.max_occurrences_per_class);
  mix_u64(config.escalation_rounds);
  mix_u64(config.base.engine.seed);
  mix_u64(config.base.engine.max_instructions);
  mix_u64(config.base.engine.max_states);
  mix_u64(config.base.use_default_checkers ? 1 : 0);
  mix_u64(config.base.use_standard_annotations ? 1 : 0);
  mix_bytes(image.name.data(), image.name.size());
  mix_bytes(image.code.data(), image.code.size());
  return h;
}

// Mirrors the PR-1 EngineConfig validation: reject configurations that would
// otherwise fail late (or hang) with a clear message before any pass runs.
Status ValidateCampaignConfig(const FaultCampaignConfig& config) {
  if (config.max_passes == 0) {
    return Status::Error("FaultCampaignConfig.max_passes must be nonzero");
  }
  if (config.max_pass_retries > 16) {
    return Status::Error(
        "FaultCampaignConfig.max_pass_retries is implausibly large (budgets double per attempt; "
        "16 retries already scales them 65536x)");
  }
  if (config.retry_backoff_ms > 60'000) {
    return Status::Error("FaultCampaignConfig.retry_backoff_ms must be at most 60000 (1 minute)");
  }
  if (config.resume && config.journal_path.empty()) {
    return Status::Error("FaultCampaignConfig.resume requires journal_path");
  }
  return Status::Ok();
}

// Supervisor watchdog: one lazily-started thread tracking the deadline of
// every in-flight pass. When a deadline passes while the pass is still armed,
// the watchdog fires the pass's abort token; the engine's run loop and any
// in-flight SAT query observe it cooperatively and wind down with partial
// (valid) results. This is the only mechanism that can stop a hung pass —
// there is no thread kill anywhere.
class PassWatchdog {
 public:
  PassWatchdog() = default;
  ~PassWatchdog() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) {
      thread_.join();
    }
  }
  PassWatchdog(const PassWatchdog&) = delete;
  PassWatchdog& operator=(const PassWatchdog&) = delete;

  uint64_t Arm(std::chrono::steady_clock::time_point deadline,
               std::shared_ptr<std::atomic<bool>> token) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!thread_.joinable()) {
      thread_ = std::thread([this] { Loop(); });
    }
    uint64_t id = next_id_++;
    armed_.emplace(id, Entry{deadline, std::move(token)});
    cv_.notify_all();
    return id;
  }

  void Disarm(uint64_t id) {
    std::unique_lock<std::mutex> lock(mu_);
    armed_.erase(id);
  }

 private:
  struct Entry {
    std::chrono::steady_clock::time_point deadline;
    std::shared_ptr<std::atomic<bool>> token;
  };

  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      if (armed_.empty()) {
        cv_.wait(lock);
        continue;
      }
      auto now = std::chrono::steady_clock::now();
      auto next = std::chrono::steady_clock::time_point::max();
      for (auto it = armed_.begin(); it != armed_.end();) {
        if (it->second.deadline <= now) {
          it->second.token->store(true, std::memory_order_relaxed);
          it = armed_.erase(it);
        } else {
          next = std::min(next, it->second.deadline);
          ++it;
        }
      }
      if (!armed_.empty()) {
        cv_.wait_until(lock, next);
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Entry> armed_;
  uint64_t next_id_ = 1;
  bool stop_ = false;
  std::thread thread_;  // started on first Arm
};

}  // namespace

Result<FaultCampaignResult> RunFaultCampaign(const FaultCampaignConfig& config,
                                             const DriverImage& image,
                                             const PciDescriptor& descriptor) {
  auto campaign_start = std::chrono::steady_clock::now();
  Status valid = ValidateCampaignConfig(config);
  if (!valid.ok()) {
    return valid;
  }

  FaultCampaignResult result;
  std::set<std::string> seen;

  // Execution and merging are split so plan passes can run on a worker pool:
  // execute_supervised touches only its own engine+solver instance (safe
  // concurrently), merge_pass mutates the shared result and always runs on
  // the calling thread in plan order — so the merged bug list, dedup
  // decisions, and pass table are byte-identical to a sequential run no
  // matter in which order workers finish. The journal is the one shared
  // resource workers touch (appends in completion order, under its mutex);
  // records carry the pass index, so load order never matters.
  struct PassOutcome {
    std::shared_ptr<Ddt> ddt;    // owns the expression storage bugs reference
    std::optional<DdtResult> r;  // set iff the pass produced a result
    uint32_t retries = 0;
    bool quarantined = false;
    std::string failure;  // set iff quarantined
    bool from_journal = false;
    std::optional<CampaignPassRecord> record;  // set iff from_journal
    // Observability sinks the pass's engine wrote into (fresh per attempt, so
    // a retried pass reports only its final attempt). Null when collection is
    // off or the pass was restored from the journal.
    std::shared_ptr<obs::MetricsRegistry> metrics;
    std::shared_ptr<obs::PassProfile> profile;
  };

  PassWatchdog watchdog;

  // Campaign-level registry for the instruments that outlive any single pass
  // (thread-pool queue depth and busy time, journal flush latency, supervisor
  // event counts). Merged into result.metrics at the end.
  std::shared_ptr<obs::MetricsRegistry> campaign_metrics;
  if (config.collect_metrics) {
    campaign_metrics = std::make_shared<obs::MetricsRegistry>();
  }

  // Cross-pass shared solver cache: one store for every pass (and every
  // worker thread) of this campaign. With a path configured it warm-starts
  // from disk — best-effort, a bad file only bumps a counter — and is saved
  // back after the merge.
  std::shared_ptr<SharedQueryCache> shared_cache;
  if (config.shared_cache || !config.shared_cache_path.empty()) {
    SharedCacheConfig cache_config;
    cache_config.max_bytes = config.shared_cache_max_bytes;
    shared_cache = std::make_shared<SharedQueryCache>(cache_config);
    if (!config.shared_cache_path.empty()) {
      shared_cache->LoadFromFile(config.shared_cache_path);
    }
  }

  // One pass under full supervision: watchdog cancellation, retry with
  // doubled budgets and deterministic backoff for transient failures,
  // quarantine for permanent ones. DDT_CHECK failures and exceptions inside
  // the engine are trapped per-thread and quarantine the pass — one
  // malformed guest (or checker bug) must not kill a 30-pass campaign.
  auto execute_supervised = [&config, &image, &descriptor, &watchdog, &campaign_metrics,
                             &shared_cache](const FaultPlan& plan) -> PassOutcome {
    PassOutcome out;
    obs::ScopedSpan pass_span("campaign.pass");
    if (obs::Tracer::Enabled()) {
      pass_span.Arg(plan.empty() ? "baseline" : plan.label);
    }
    for (uint32_t attempt = 0;; ++attempt) {
      DdtConfig pass_config = config.base;
      pass_config.engine.fault_plan = plan;
      pass_config.engine.solver.shared_cache = shared_cache.get();
      auto token = std::make_shared<std::atomic<bool>>(false);
      pass_config.engine.abort_token = token;
      if (config.collect_metrics) {
        out.metrics = std::make_shared<obs::MetricsRegistry>();
        pass_config.engine.metrics = out.metrics.get();
      }
      if (config.collect_profile) {
        out.profile = std::make_shared<obs::PassProfile>();
        pass_config.engine.profile = out.profile.get();
      }
      if (attempt > 0) {
        // Escalate the budgets that plausibly caused a transient failure.
        uint64_t scale = 1ull << attempt;
        if (pass_config.engine.solver.max_query_ms != 0) {
          pass_config.engine.solver.max_query_ms *= scale;
        }
        if (pass_config.engine.max_state_bytes != 0) {
          pass_config.engine.max_state_bytes *= scale;
        }
        if (pass_config.engine.max_instructions_per_state != 0) {
          pass_config.engine.max_instructions_per_state *= scale;
        }
      }
      out.ddt = std::make_shared<Ddt>(pass_config);
      if (config.configure_pass != nullptr) {
        config.configure_pass(*out.ddt, plan);
      }
      uint64_t watch_id = 0;
      if (config.max_pass_wall_ms != 0) {
        watch_id = watchdog.Arm(std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(config.max_pass_wall_ms
                                                              << attempt),
                                token);
      }
      out.retries = attempt;
      std::string hard_failure;
      std::optional<DdtResult> r;
      try {
        ScopedCheckTrap trap;
        Result<DdtResult> res = out.ddt->TestDriver(image, descriptor);
        if (res.ok()) {
          r = res.take();
        } else {
          hard_failure = res.status().message();
        }
      } catch (const CheckFailureError& e) {
        hard_failure = std::string("engine invariant failure: ") + e.what();
      } catch (const std::exception& e) {
        hard_failure = std::string("engine exception: ") + e.what();
      }
      if (watch_id != 0) {
        watchdog.Disarm(watch_id);
      }
      if (!hard_failure.empty()) {
        // Deterministic failures don't get better with retries: quarantine
        // immediately and drop the partial state.
        out.quarantined = true;
        out.failure = hard_failure;
        out.r.reset();
        out.ddt.reset();
        obs::TraceInstant("campaign.quarantine", "cause", "hard_failure");
        if (campaign_metrics != nullptr) {
          campaign_metrics->counter("campaign.quarantines")->Add(1);
        }
        return out;
      }
      bool timed_out = r->aborted;  // the watchdog fired mid-run
      if (timed_out) {
        obs::TraceInstant("campaign.watchdog_fire");
        if (campaign_metrics != nullptr) {
          campaign_metrics->counter("campaign.watchdog_fires")->Add(1);
        }
      }
      bool pressured =
          r->solver_stats.query_timeouts > 0 || r->stats.states_evicted > 0;
      if (timed_out || (config.retry_on_resource_pressure && pressured)) {
        if (attempt < config.max_pass_retries) {
          obs::TraceInstant("campaign.retry", "cause", timed_out ? "watchdog" : "pressure");
          if (campaign_metrics != nullptr) {
            campaign_metrics->counter("campaign.retries")->Add(1);
          }
          if (config.retry_backoff_ms != 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(config.retry_backoff_ms << attempt));
          }
          out.ddt.reset();
          continue;
        }
        if (timed_out) {
          out.quarantined = true;
          out.failure = StrFormat(
              "watchdog: pass exceeded its wall budget (%u attempt%s, base %llu ms)",
              attempt + 1, attempt == 0 ? "" : "s",
              static_cast<unsigned long long>(config.max_pass_wall_ms));
          out.r.reset();
          out.ddt.reset();
          obs::TraceInstant("campaign.quarantine", "cause", "watchdog");
          if (campaign_metrics != nullptr) {
            campaign_metrics->counter("campaign.quarantines")->Add(1);
          }
          return out;
        }
        // Still pressured after the final escalation: the result is degraded
        // (over-approximate exploration, evicted states) but valid — keep it.
      }
      out.r = std::move(r);
      return out;
    }
  };

  auto merge_pass = [&result, &seen](const FaultPlan& plan, PassOutcome& out) {
    {
      // Merge time is attributed to the pass being merged; the profile is
      // snapshotted for the report only after this scope closes.
      obs::ScopedPhase merge_phase(out.profile.get(), obs::Phase::kMerge);
      FaultCampaignPass pass;
      pass.plan = plan;
      pass.retries = out.retries;
      pass.quarantined = out.quarantined;
      pass.failure = out.failure;
      pass.from_journal = out.from_journal;
      if (out.retries > 0) {
        ++result.passes_retried;
      }
      if (out.from_journal) {
        ++result.passes_loaded;
      }
      if (out.quarantined) {
        // A quarantined pass contributes nothing to the aggregates: whatever
        // stats a cancelled run accumulated depend on where the watchdog
        // struck, and folding them in would make the merged report
        // timing-dependent.
        ++result.passes_quarantined;
        result.passes.push_back(std::move(pass));
      } else {
        const EngineStats& stats = out.from_journal ? out.record->stats : out.r->stats;
        const SolverStats& solver_stats =
            out.from_journal ? out.record->solver_stats : out.r->solver_stats;
        const std::vector<Bug>& bugs = out.from_journal ? out.record->bugs : out.r->bugs;
        pass.stats = stats;
        pass.solver_stats = solver_stats;
        pass.bugs_found = bugs.size();
        for (const Bug& bug : bugs) {
          if (seen.insert(BugKey(bug)).second) {
            ++pass.bugs_new;
            result.bugs.push_back(bug);
          }
        }
        result.total_faults_injected += stats.faults_injected;
        result.total_wall_ms += stats.wall_ms;
        result.total_stats.Accumulate(stats);
        result.total_solver_stats.Accumulate(solver_stats);
        result.passes.push_back(std::move(pass));
      }
    }
    // Observability bookkeeping (volatile outputs only). Journal-restored
    // passes have null sinks: no live timing was recorded for them.
    size_t pass_index = result.passes.size() - 1;
    if (out.metrics != nullptr) {
      result.metrics.Merge(out.metrics->Snapshot());
      result.obs_keepalive.push_back(out.metrics);
    }
    if (out.profile != nullptr) {
      obs::CampaignProfile::PassEntry entry;
      entry.index = pass_index;
      entry.label = plan.empty() ? "baseline" : plan.label;
      entry.quarantined = out.quarantined;
      entry.phases = out.profile->Snapshot();
      entry.wall_ms = static_cast<double>(entry.phases.total_ns) / 1e6;
      result.profile.passes.push_back(std::move(entry));
      result.obs_keepalive.push_back(out.profile);
    }
    if (out.ddt != nullptr) {
      if (out.profile != nullptr || out.metrics != nullptr) {
        // Fault-site hotness: per-class occurrence counts this pass observed.
        const FaultSiteProfile& sites = out.ddt->engine().fault_site_profile();
        for (size_t c = 0; c < kNumFaultClasses; ++c) {
          if (sites.max_occurrences[c] != 0) {
            result.profile.fault_site_occurrences[FaultClassName(static_cast<FaultClass>(c))] +=
                sites.max_occurrences[c];
          }
        }
      }
      // Bugs hold ExprRefs owned by this instance's ExprContext. (Journaled
      // passes carry deserialized bugs, which own their storage.)
      result.keepalive.push_back(std::move(out.ddt));
    }
  };

  auto make_record = [](uint64_t index, const FaultPlan& plan, const PassOutcome& out,
                        const FaultSiteProfile* profile) {
    CampaignPassRecord rec;
    rec.index = index;
    rec.label = plan.label;
    rec.points = plan.points;
    rec.retries = out.retries;
    rec.quarantined = out.quarantined;
    rec.failure = out.failure;
    if (out.r.has_value()) {
      rec.stats = out.r->stats;
      rec.solver_stats = out.r->solver_stats;
      rec.bugs = out.r->bugs;
    }
    if (profile != nullptr) {
      rec.has_profile = true;
      rec.profile = *profile;
    }
    return rec;
  };

  auto outcome_from_record = [](CampaignPassRecord&& rec) {
    PassOutcome out;
    out.from_journal = true;
    out.retries = rec.retries;
    out.quarantined = rec.quarantined;
    out.failure = rec.failure;
    out.record = std::move(rec);
    return out;
  };

  // Journal setup. Resume loads the completed passes; a fresh journal starts
  // with just the header.
  uint64_t fingerprint = CampaignFingerprint(config, image);
  std::unique_ptr<CampaignJournal> journal;
  std::map<uint64_t, CampaignPassRecord> journaled;  // pass index -> record
  if (config.resume) {
    std::vector<CampaignPassRecord> records;
    Result<std::unique_ptr<CampaignJournal>> opened =
        CampaignJournal::OpenForResume(config.journal_path, image.name, fingerprint, &records);
    if (!opened.ok()) {
      return opened.status();
    }
    journal = opened.take();
    for (CampaignPassRecord& rec : records) {
      journaled.insert_or_assign(rec.index, std::move(rec));
    }
  } else if (!config.journal_path.empty()) {
    Result<std::unique_ptr<CampaignJournal>> created =
        CampaignJournal::Create(config.journal_path, image.name, fingerprint);
    if (!created.ok()) {
      return created.status();
    }
    journal = created.take();
  }
  if (journal != nullptr && campaign_metrics != nullptr) {
    journal->SetMetrics(campaign_metrics.get());
  }

  // Pass 0: plain baseline. Besides its own bugs, it measures the fault-site
  // profile every later plan is generated from — which is why the journal
  // stores the profile: a resume must reproduce the exact schedule without
  // re-running the baseline. A failed baseline fails the whole campaign (and
  // is deliberately not journaled, so a plain rerun retries it).
  FaultSiteProfile profile;
  auto base_it = journaled.find(0);
  if (base_it != journaled.end() && base_it->second.has_profile &&
      !base_it->second.quarantined) {
    profile = base_it->second.profile;
    PassOutcome restored = outcome_from_record(std::move(base_it->second));
    merge_pass(FaultPlan{}, restored);
  } else {
    PassOutcome baseline = execute_supervised(FaultPlan{});
    if (baseline.quarantined) {
      return Status::Error("campaign baseline pass failed: " + baseline.failure);
    }
    profile = baseline.ddt->engine().fault_site_profile();
    if (journal != nullptr) {
      obs::ScopedPhase journal_phase(baseline.profile.get(), obs::Phase::kJournal);
      Status appended = journal->Append(make_record(0, FaultPlan{}, baseline, &profile));
      if (!appended.ok()) {
        return appended;
      }
    }
    merge_pass(FaultPlan{}, baseline);
  }

  size_t plan_budget = config.max_passes > 0 ? config.max_passes - 1 : 0;
  std::vector<FaultPlan> plans =
      GenerateCampaignPlans(profile, config.seed, config.max_occurrences_per_class,
                            config.escalation_rounds, plan_budget);

  // Partition the plans: journaled passes restore instantly, the rest run.
  std::vector<PassOutcome> outcomes(plans.size());
  std::vector<size_t> to_run;
  for (size_t i = 0; i < plans.size(); ++i) {
    auto it = journaled.find(i + 1);
    if (it != journaled.end()) {
      if (it->second.label != plans[i].label) {
        return Status::Error(StrFormat(
            "journal '%s' does not match the campaign schedule: pass %zu is '%s' in the "
            "journal but '%s' in the regenerated plan",
            config.journal_path.c_str(), i + 1, it->second.label.c_str(),
            plans[i].label.c_str()));
      }
      outcomes[i] = outcome_from_record(std::move(it->second));
    } else {
      to_run.push_back(i);
    }
  }

  size_t threads = config.threads == 0 ? ThreadPool::HardwareThreads()
                                       : static_cast<size_t>(config.threads);
  threads = std::max<size_t>(1, std::min(threads, std::max<size_t>(1, to_run.size())));
  result.threads_used = static_cast<uint32_t>(threads);
  // threads == 1 covers both the explicit sequential request and the
  // degenerate schedules (zero or one runnable plan): passes run inline on
  // the calling thread and no worker pool is ever spawned — on a single-CPU
  // host pool handoff costs more than it buys (see bench_exec part 2).
  result.inline_scheduler = threads == 1;

  // Checkpointing happens here — from whichever thread finished the pass, in
  // completion order — so a kill loses at most the passes still in flight.
  std::mutex journal_error_mu;
  Status journal_error;
  auto run_one = [&execute_supervised, &plans, &outcomes, &journal, &make_record,
                  &journal_error_mu, &journal_error](size_t i) {
    PassOutcome out = execute_supervised(plans[i]);
    if (journal != nullptr) {
      obs::ScopedPhase journal_phase(out.profile.get(), obs::Phase::kJournal);
      Status appended = journal->Append(make_record(i + 1, plans[i], out, nullptr));
      if (!appended.ok()) {
        std::unique_lock<std::mutex> lock(journal_error_mu);
        if (journal_error.ok()) {
          journal_error = appended;
        }
      }
    }
    outcomes[i] = std::move(out);
  };

  if (threads == 1) {
    for (size_t i : to_run) {
      run_one(i);
    }
  } else {
    ThreadPool pool(threads);
    if (campaign_metrics != nullptr) {
      pool.SetMetrics(campaign_metrics.get());
    }
    for (size_t i : to_run) {
      pool.Submit([&run_one, i] { run_one(i); });
    }
    pool.Wait();
    // execute_supervised traps everything thrown under it; an exception the
    // pool still captured escaped the supervisor itself (e.g. OOM building a
    // journal record) — surface it instead of merging a silently-lost pass.
    std::vector<std::exception_ptr> errors = pool.TakeExceptions();
    if (!errors.empty()) {
      std::string message = "campaign worker task failed";
      try {
        std::rethrow_exception(errors.front());
      } catch (const std::exception& e) {
        message = StrFormat("campaign worker task failed: %s", e.what());
      } catch (...) {
      }
      return Status::Error(message);
    }
  }
  if (!journal_error.ok()) {
    return journal_error;
  }

  // Merge in plan order: byte-identical no matter which passes were
  // restored, which were executed, or how workers interleaved.
  for (size_t i = 0; i < plans.size(); ++i) {
    merge_pass(plans[i], outcomes[i]);
  }

  if (shared_cache != nullptr) {
    result.shared_cache_used = true;
    if (!config.shared_cache_path.empty()) {
      Status saved = shared_cache->SaveToFile(config.shared_cache_path);
      if (!saved.ok()) {
        // Persistence is an accelerator, not a result: failing to write the
        // warm-start file must never fail the campaign.
        DDT_LOG_WARN("%s", saved.message().c_str());
      }
    }
    SharedQueryCache::Stats cache_stats = shared_cache->stats();
    result.shared_cache_entries = cache_stats.entries;
    result.shared_cache_bytes = cache_stats.bytes;
    result.shared_cache_evictions = cache_stats.evictions;
    result.shared_cache_load_errors = cache_stats.load_errors;
    result.shared_cache_loaded_entries = cache_stats.loaded_entries;
    result.shared_cache_saved_entries = cache_stats.saved_entries;
    if (campaign_metrics != nullptr) {
      // Store-level instruments; the per-query hit/miss/store/verify
      // counters are published per pass by the engine from SolverStats.
      campaign_metrics->counter("solver.shared_cache.evictions")->Add(cache_stats.evictions);
      campaign_metrics->counter("solver.shared_cache.load_errors")->Add(cache_stats.load_errors);
      campaign_metrics->counter("solver.shared_cache.loaded_entries")
          ->Add(cache_stats.loaded_entries);
      campaign_metrics->counter("solver.shared_cache.saved_entries")
          ->Add(cache_stats.saved_entries);
      campaign_metrics->gauge("solver.shared_cache.entries")
          ->Set(static_cast<int64_t>(cache_stats.entries));
      campaign_metrics->gauge("solver.shared_cache.bytes")
          ->Set(static_cast<int64_t>(cache_stats.bytes));
    }
    // The kept-alive Ddt instances hold solvers whose configs point at the
    // cache; keep it alive as long as they are.
    result.obs_keepalive.push_back(shared_cache);
  }
  if (campaign_metrics != nullptr) {
    result.metrics.Merge(campaign_metrics->Snapshot());
  }
  result.campaign_wall_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - campaign_start)
                                .count();
  return result;
}

std::string FaultCampaignResult::FormatReport(const std::string& driver_name,
                                              bool include_volatile) const {
  // Everything timing- or environment-dependent (wall times, slowest-query
  // ms, thread count, journal-restore count) is gated on include_volatile;
  // the deterministic remainder is byte-identical between an uninterrupted
  // run and a kill-and-resume run at any thread count.
  std::string out;
  out += StrFormat("=== DDT fault campaign for driver '%s' ===\n", driver_name.c_str());
  out += StrFormat("passes: %zu (1 baseline + %zu fault plans)\n", passes.size(),
                   passes.empty() ? 0 : passes.size() - 1);
  out += StrFormat("total faults injected: %llu\n",
                   static_cast<unsigned long long>(total_faults_injected));
  out += StrFormat("merged bugs: %zu\n", bugs.size());
  for (const Bug& bug : bugs) {
    out += "  " + bug.Row();
    if (!bug.fault_plan.empty()) {
      out += StrFormat("  [plan: %s]", bug.fault_plan.ToString().c_str());
    }
    out += "\n";
  }
  for (size_t i = 0; i < passes.size(); ++i) {
    const FaultCampaignPass& pass = passes[i];
    std::string label = pass.plan.empty() ? "baseline" : pass.plan.ToString();
    if (pass.quarantined) {
      out += StrFormat("  pass %zu: %s -> QUARANTINED after %u retr%s: %s\n", i, label.c_str(),
                       pass.retries, pass.retries == 1 ? "y" : "ies", pass.failure.c_str());
      continue;
    }
    out += StrFormat("  pass %zu: %s -> %zu bugs (%zu new), %llu faults", i, label.c_str(),
                     pass.bugs_found, pass.bugs_new,
                     static_cast<unsigned long long>(pass.stats.faults_injected));
    if (pass.retries > 0) {
      out += StrFormat(", %u retr%s", pass.retries, pass.retries == 1 ? "y" : "ies");
    }
    if (include_volatile) {
      out += StrFormat(", %.1f ms (slowest query %.1f ms)", pass.stats.wall_ms,
                       pass.solver_stats.max_query_wall_ms);
    }
    out += "\n";
  }
  out += StrFormat("aggregate: %llu instructions, %llu forks, %llu states created\n",
                   static_cast<unsigned long long>(total_stats.instructions),
                   static_cast<unsigned long long>(total_stats.forks),
                   static_cast<unsigned long long>(total_stats.states_created));
  // Only the query count is deterministic: how many of those queries reached
  // SAT (vs being served by the model-reuse fast path or the shared
  // cross-pass cache) depends on cache temperature and thread interleaving,
  // so those counters live in the volatile section.
  out += StrFormat("aggregate solver: %llu queries",
                   static_cast<unsigned long long>(total_solver_stats.queries));
  if (include_volatile) {
    out += StrFormat(", %llu SAT calls, %llu model-reuse hits, slowest query %.1f ms",
                     static_cast<unsigned long long>(total_solver_stats.sat_calls),
                     static_cast<unsigned long long>(total_solver_stats.model_reuse_hits),
                     total_solver_stats.max_query_wall_ms);
  }
  out += "\n";
  if (include_volatile && shared_cache_used) {
    out += StrFormat(
        "shared cache: %llu hits (%llu fastpath), %llu misses, %llu stores, "
        "%llu evictions, %llu entries (~%llu KiB)\n",
        static_cast<unsigned long long>(total_solver_stats.shared_cache_hits),
        static_cast<unsigned long long>(total_solver_stats.shared_cache_fastpath_hits),
        static_cast<unsigned long long>(total_solver_stats.shared_cache_misses),
        static_cast<unsigned long long>(total_solver_stats.shared_cache_stores),
        static_cast<unsigned long long>(shared_cache_evictions),
        static_cast<unsigned long long>(shared_cache_entries),
        static_cast<unsigned long long>(shared_cache_bytes / 1024));
    if (shared_cache_loaded_entries != 0 || shared_cache_saved_entries != 0 ||
        shared_cache_load_errors != 0) {
      out += StrFormat("shared cache disk: %llu loaded, %llu saved, %llu load errors\n",
                       static_cast<unsigned long long>(shared_cache_loaded_entries),
                       static_cast<unsigned long long>(shared_cache_saved_entries),
                       static_cast<unsigned long long>(shared_cache_load_errors));
    }
  }
  out += StrFormat("supervisor: %llu pass%s retried, %llu quarantined\n",
                   static_cast<unsigned long long>(passes_retried),
                   passes_retried == 1 ? "" : "es",
                   static_cast<unsigned long long>(passes_quarantined));
  if (include_volatile) {
    if (passes_loaded != 0) {
      out += StrFormat("resumed: %llu pass%s restored from journal\n",
                       static_cast<unsigned long long>(passes_loaded),
                       passes_loaded == 1 ? "" : "es");
    }
    if (inline_scheduler) {
      out += StrFormat("scheduler: inline on calling thread, campaign wall %.1f ms "
                       "(passes sum %.1f ms)\n",
                       campaign_wall_ms, total_wall_ms);
    } else {
      out += StrFormat(
          "scheduler: %u worker thread%s, campaign wall %.1f ms (passes sum %.1f ms)\n",
          threads_used, threads_used == 1 ? "" : "s", campaign_wall_ms, total_wall_ms);
    }
    if (!profile.empty()) {
      out += profile.FormatTopPasses(5);
      out += profile.FormatHotFaultSites(8);
    }
  }
  return out;
}

}  // namespace ddt
