#include "src/core/bug_io.h"

#include <cstdio>

#include "src/support/strings.h"

namespace ddt {

namespace {

// Minimal escaping for the single-line string fields.
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

}  // namespace

std::string SerializeBugs(const std::vector<Bug>& bugs) {
  std::string out = "ddt-bug-report v1\n";
  for (const Bug& bug : bugs) {
    out += "bug\n";
    out += StrFormat("type %d\n", static_cast<int>(bug.type));
    out += "title " + Escape(bug.title) + "\n";
    out += "details " + Escape(bug.details) + "\n";
    out += "driver " + Escape(bug.driver) + "\n";
    out += "checker " + Escape(bug.checker) + "\n";
    out += StrFormat("pc %u\n", bug.pc);
    out += StrFormat("state %llu\n", static_cast<unsigned long long>(bug.state_id));
    out += StrFormat("context %d\n", static_cast<int>(bug.context));
    for (const SolvedInput& input : bug.inputs) {
      out += StrFormat("input %d %llu %llu %u %llu %d %s %s\n",
                       static_cast<int>(input.origin.source),
                       static_cast<unsigned long long>(input.origin.aux),
                       static_cast<unsigned long long>(input.origin.seq), input.width,
                       static_cast<unsigned long long>(input.value), input.proximate ? 1 : 0,
                       Escape(input.var_name).c_str(), Escape(input.origin.label).c_str());
    }
    for (uint32_t crossing : bug.interrupt_schedule) {
      out += StrFormat("interrupt %u\n", crossing);
    }
    for (const auto& [seq, label] : bug.alternatives) {
      out += StrFormat("alternative %u %s\n", seq, Escape(label).c_str());
    }
    for (uint32_t slot : bug.workload_trail) {
      out += StrFormat("workload %u\n", slot);
    }
    if (!bug.fault_plan.label.empty()) {
      out += "fault-label " + Escape(bug.fault_plan.label) + "\n";
    }
    for (const FaultPoint& point : bug.fault_plan.points) {
      out += StrFormat("fault-point %d %u\n", static_cast<int>(point.cls), point.occurrence);
    }
    for (const InjectedFault& fault : bug.fault_schedule) {
      out += StrFormat("fault-injected %d %u %s\n", static_cast<int>(fault.cls), fault.occurrence,
                       Escape(fault.api).c_str());
    }
    for (const HwFaultPoint& point : bug.fault_plan.hw_points) {
      out += StrFormat("hw-fault-point %d %u\n", static_cast<int>(point.kind), point.index);
    }
    for (const InjectedHwFault& fault : bug.hw_fault_schedule) {
      out += StrFormat("hw-fault-injected %d %u\n", static_cast<int>(fault.kind), fault.index);
    }
    out += "trace " + Escape(FormatTrace(bug.trace, 60)) + "\n";
    out += "end\n";
  }
  return out;
}

Result<std::vector<Bug>> DeserializeBugs(const std::string& text) {
  std::vector<Bug> bugs;
  Bug current;
  bool in_bug = false;
  size_t pos = 0;
  bool saw_header = false;

  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() && pos > text.size()) {
      break;
    }
    if (!saw_header) {
      if (line != "ddt-bug-report v1") {
        return Status::Error("bug report: bad header");
      }
      saw_header = true;
      continue;
    }
    if (line == "bug") {
      if (in_bug) {
        return Status::Error("bug report: nested bug");
      }
      in_bug = true;
      current = Bug();
      continue;
    }
    if (line == "end") {
      if (!in_bug) {
        return Status::Error("bug report: stray end");
      }
      bugs.push_back(current);
      in_bug = false;
      continue;
    }
    if (!in_bug || line.empty()) {
      continue;
    }
    size_t space = line.find(' ');
    std::string key = line.substr(0, space);
    std::string value = space == std::string::npos ? "" : line.substr(space + 1);
    if (key == "type") {
      current.type = static_cast<BugType>(std::atoi(value.c_str()));
    } else if (key == "title") {
      current.title = Unescape(value);
    } else if (key == "details") {
      current.details = Unescape(value);
    } else if (key == "driver") {
      current.driver = Unescape(value);
    } else if (key == "checker") {
      current.checker = Unescape(value);
    } else if (key == "pc") {
      current.pc = static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "state") {
      current.state_id = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "context") {
      current.context = static_cast<ExecContextKind>(std::atoi(value.c_str()));
    } else if (key == "input") {
      SolvedInput input;
      int source;
      unsigned long long aux;
      unsigned long long seq;
      unsigned width;
      unsigned long long val;
      int proximate;
      int consumed = 0;
      if (std::sscanf(value.c_str(), "%d %llu %llu %u %llu %d %n", &source, &aux, &seq, &width,
                      &val, &proximate, &consumed) != 6) {
        return Status::Error("bug report: bad input line: " + line);
      }
      input.origin.source = static_cast<VarOrigin::Source>(source);
      input.origin.aux = aux;
      input.origin.seq = seq;
      input.width = static_cast<uint8_t>(width);
      input.value = val;
      input.proximate = proximate != 0;
      std::string rest = value.substr(static_cast<size_t>(consumed));
      size_t sep = rest.find(' ');
      input.var_name = Unescape(rest.substr(0, sep));
      input.origin.label = sep == std::string::npos ? "" : Unescape(rest.substr(sep + 1));
      current.inputs.push_back(input);
    } else if (key == "interrupt") {
      current.interrupt_schedule.push_back(
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10)));
    } else if (key == "alternative") {
      size_t sep = value.find(' ');
      if (sep == std::string::npos) {
        return Status::Error("bug report: bad alternative line");
      }
      current.alternatives.emplace_back(
          static_cast<uint32_t>(std::strtoul(value.substr(0, sep).c_str(), nullptr, 10)),
          Unescape(value.substr(sep + 1)));
    } else if (key == "workload") {
      current.workload_trail.push_back(
          static_cast<uint32_t>(std::strtoul(value.c_str(), nullptr, 10)));
    } else if (key == "fault-label") {
      current.fault_plan.label = Unescape(value);
    } else if (key == "fault-point") {
      int cls;
      unsigned occurrence;
      if (std::sscanf(value.c_str(), "%d %u", &cls, &occurrence) != 2) {
        return Status::Error("bug report: bad fault-point line");
      }
      current.fault_plan.points.push_back(
          FaultPoint{static_cast<FaultClass>(cls), occurrence});
    } else if (key == "fault-injected") {
      int cls;
      unsigned occurrence;
      int consumed = 0;
      if (std::sscanf(value.c_str(), "%d %u %n", &cls, &occurrence, &consumed) != 2) {
        return Status::Error("bug report: bad fault-injected line");
      }
      InjectedFault fault;
      fault.cls = static_cast<FaultClass>(cls);
      fault.occurrence = occurrence;
      fault.api = Unescape(value.substr(static_cast<size_t>(consumed)));
      current.fault_schedule.push_back(fault);
    } else if (key == "hw-fault-point") {
      int kind;
      unsigned index;
      if (std::sscanf(value.c_str(), "%d %u", &kind, &index) != 2 || kind < 0 ||
          kind >= static_cast<int>(kNumHwFaultKinds)) {
        return Status::Error("bug report: bad hw-fault-point line");
      }
      current.fault_plan.hw_points.push_back(
          HwFaultPoint{static_cast<HwFaultKind>(kind), index});
    } else if (key == "hw-fault-injected") {
      int kind;
      unsigned index;
      if (std::sscanf(value.c_str(), "%d %u", &kind, &index) != 2 || kind < 0 ||
          kind >= static_cast<int>(kNumHwFaultKinds)) {
        return Status::Error("bug report: bad hw-fault-injected line");
      }
      InjectedHwFault fault;
      fault.kind = static_cast<HwFaultKind>(kind);
      fault.index = index;
      current.hw_fault_schedule.push_back(fault);
    } else if (key == "trace") {
      // Stored as rendered text; kept in `details` addendum rather than as
      // structured events (expression pointers cannot cross processes).
      current.details += current.details.empty() ? "" : "\n";
      current.details += Unescape(value);
    }
  }
  if (in_bug) {
    return Status::Error("bug report: truncated");
  }
  return bugs;
}

Status SaveBugsFile(const std::string& path, const std::vector<Bug>& bugs) {
  std::string text = SerializeBugs(bugs);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Error("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    return Status::Error("short write: " + path);
  }
  return Status::Ok();
}

Result<std::vector<Bug>> LoadBugsFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Error("cannot open: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::string text(static_cast<size_t>(size > 0 ? size : 0), '\0');
  size_t read = std::fread(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (read != text.size()) {
    return Status::Error("short read: " + path);
  }
  return DeserializeBugs(text);
}

}  // namespace ddt
