#include "src/core/campaign_journal.h"

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string_view>
#include <utility>

#include "src/core/bug_io.h"
#include "src/obs/trace_events.h"
#include "src/support/crc32.h"
#include "src/support/strings.h"

namespace ddt {
namespace {

// ---------------------------------------------------------------------------
// Flat JSON: one object, string keys, values that are strings or numbers.
// This is the whole grammar the journal needs; writer and parser live side by
// side so they cannot drift.
// ---------------------------------------------------------------------------

void AppendJsonString(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04X", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

class JsonWriter {
 public:
  JsonWriter() : out_("{") {}

  void Str(const char* key, std::string_view value) {
    Key(key);
    AppendJsonString(&out_, value);
  }
  void U64(const char* key, uint64_t value) {
    Key(key);
    out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  }
  // %.17g round-trips every double exactly through strtod.
  void Dbl(const char* key, double value) {
    Key(key);
    out_ += StrFormat("%.17g", value);
  }

  std::string Finish() { return out_ + "}"; }

 private:
  void Key(const char* key) {
    if (out_.size() > 1) {
      out_.push_back(',');
    }
    AppendJsonString(&out_, key);
    out_.push_back(':');
  }
  std::string out_;
};

// Parses one flat object into key -> decoded value. Strings are unescaped;
// numbers kept as their raw token (callers strtoull/strtod them). Returns
// false on any malformed input — the caller treats the line as a torn tail.
bool ParseFlatJson(std::string_view text, std::map<std::string, std::string>* out) {
  size_t pos = 0;
  auto skip_ws = [&] {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
  };
  auto parse_string = [&](std::string* value) -> bool {
    if (pos >= text.size() || text[pos] != '"') {
      return false;
    }
    ++pos;
    value->clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        value->push_back(c);
        continue;
      }
      if (pos >= text.size()) {
        return false;
      }
      char esc = text[pos++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          value->push_back(esc);
          break;
        case 'n':
          value->push_back('\n');
          break;
        case 'r':
          value->push_back('\r');
          break;
        case 't':
          value->push_back('\t');
          break;
        case 'b':
          value->push_back('\b');
          break;
        case 'f':
          value->push_back('\f');
          break;
        case 'u': {
          if (pos + 4 > text.size()) {
            return false;
          }
          char* end = nullptr;
          char hex[5] = {text[pos], text[pos + 1], text[pos + 2], text[pos + 3], 0};
          unsigned long code = std::strtoul(hex, &end, 16);
          if (end != hex + 4 || code > 0xFF) {
            return false;  // writer only emits control chars this way
          }
          value->push_back(static_cast<char>(code));
          pos += 4;
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  };

  skip_ws();
  if (pos >= text.size() || text[pos] != '{') {
    return false;
  }
  ++pos;
  skip_ws();
  if (pos < text.size() && text[pos] == '}') {
    ++pos;
  } else {
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) {
        return false;
      }
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') {
        return false;
      }
      ++pos;
      skip_ws();
      std::string value;
      if (pos < text.size() && text[pos] == '"') {
        if (!parse_string(&value)) {
          return false;
        }
      } else {
        size_t start = pos;
        while (pos < text.size() && (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
                                     text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                                     text[pos] == 'e' || text[pos] == 'E')) {
          ++pos;
        }
        if (pos == start) {
          return false;
        }
        value.assign(text.substr(start, pos - start));
      }
      (*out)[key] = std::move(value);
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        break;
      }
      return false;
    }
  }
  skip_ws();
  return pos == text.size();
}

uint64_t GetU64(const std::map<std::string, std::string>& m, const char* key) {
  auto it = m.find(key);
  return it == m.end() ? 0 : std::strtoull(it->second.c_str(), nullptr, 10);
}

double GetDbl(const std::map<std::string, std::string>& m, const char* key) {
  auto it = m.find(key);
  return it == m.end() ? 0.0 : std::strtod(it->second.c_str(), nullptr);
}

std::string GetStr(const std::map<std::string, std::string>& m, const char* key) {
  auto it = m.find(key);
  return it == m.end() ? std::string() : it->second;
}

// ---------------------------------------------------------------------------
// Record encoding
// ---------------------------------------------------------------------------

constexpr char kFormatName[] = "ddt-campaign-journal";
constexpr int kFormatVersion = 1;

std::string PointsToString(const std::vector<FaultPoint>& points) {
  std::string out;
  for (const FaultPoint& p : points) {
    if (!out.empty()) {
      out.push_back(' ');
    }
    out += StrFormat("%d#%u", static_cast<int>(p.cls), p.occurrence);
  }
  return out;
}

bool PointsFromString(const std::string& text, std::vector<FaultPoint>* out) {
  for (std::string_view piece : SplitAny(text, " ")) {
    size_t hash = piece.find('#');
    if (hash == std::string_view::npos) {
      return false;
    }
    int64_t cls = 0;
    int64_t occurrence = 0;
    if (!ParseInt(piece.substr(0, hash), &cls) || !ParseInt(piece.substr(hash + 1), &occurrence) ||
        cls < 0 || cls >= static_cast<int64_t>(kNumFaultClasses) || occurrence < 0) {
      return false;
    }
    out->push_back(FaultPoint{static_cast<FaultClass>(cls), static_cast<uint32_t>(occurrence)});
  }
  return true;
}

std::string HwPointsToString(const std::vector<HwFaultPoint>& points) {
  std::string out;
  for (const HwFaultPoint& p : points) {
    if (!out.empty()) {
      out.push_back(' ');
    }
    out += StrFormat("%d#%u", static_cast<int>(p.kind), p.index);
  }
  return out;
}

bool HwPointsFromString(const std::string& text, std::vector<HwFaultPoint>* out) {
  for (std::string_view piece : SplitAny(text, " ")) {
    size_t hash = piece.find('#');
    if (hash == std::string_view::npos) {
      return false;
    }
    int64_t kind = 0;
    int64_t index = 0;
    if (!ParseInt(piece.substr(0, hash), &kind) || !ParseInt(piece.substr(hash + 1), &index) ||
        kind < 0 || kind >= static_cast<int64_t>(kNumHwFaultKinds) || index < 0) {
      return false;
    }
    out->push_back(HwFaultPoint{static_cast<HwFaultKind>(kind), static_cast<uint32_t>(index)});
  }
  return true;
}

std::string EncodeRecord(const CampaignPassRecord& rec) {
  JsonWriter w;
  w.U64("i", rec.index);
  w.Str("label", rec.label);
  w.Str("points", PointsToString(rec.points));
  w.Str("hw_points", HwPointsToString(rec.hw_points));
  w.U64("retries", rec.retries);
  w.U64("q", rec.quarantined ? 1 : 0);
  w.Str("failure", rec.failure);
  if (rec.has_profile) {
    std::string profile;
    for (size_t i = 0; i < kNumFaultClasses; ++i) {
      if (i != 0) {
        profile.push_back(' ');
      }
      profile += StrFormat("%u", rec.profile.max_occurrences[i]);
    }
    w.Str("profile", profile);
    // Hardware-plane counterpart: the five extent counters hw plan
    // generation derives from.
    w.Str("hw_profile", StrFormat("%u %u %u %u %u", rec.hw_profile.max_mmio_accesses,
                                  rec.hw_profile.max_mmio_reads, rec.hw_profile.max_mmio_writes,
                                  rec.hw_profile.max_crossings, rec.hw_profile.max_interrupts));
  }
  const EngineStats& e = rec.stats;
  w.U64("e_instructions", e.instructions);
  w.U64("e_forks", e.forks);
  w.U64("e_dropped_forks", e.dropped_forks);
  w.U64("e_states_created", e.states_created);
  w.U64("e_states_terminated", e.states_terminated);
  w.U64("e_max_live_states", e.max_live_states);
  w.U64("e_kernel_calls", e.kernel_calls);
  w.U64("e_interrupts_injected", e.interrupts_injected);
  w.U64("e_entry_invocations", e.entry_invocations);
  w.U64("e_concretizations", e.concretizations);
  w.U64("e_concretization_backtracks", e.concretization_backtracks);
  w.U64("e_faults_injected", e.faults_injected);
  // Hardware fault plane counters (absent in older journals; GetU64 defaults
  // them to 0).
  w.U64("e_hw_faults", e.hw_faults_injected);
  w.U64("e_hw_removals", e.hw_removals);
  w.U64("e_hw_sticky", e.hw_sticky_faults);
  w.U64("e_hw_storms", e.hw_irq_storms);
  w.U64("e_hw_suppressed", e.hw_irq_suppressed);
  w.U64("e_hw_doorbells_dropped", e.hw_doorbells_dropped);
  w.U64("e_hw_reads_floated", e.hw_reads_floated);
  w.U64("e_hw_writes_dropped", e.hw_writes_dropped);
  w.U64("e_hw_removal_events", e.hw_removal_events);
  w.U64("e_states_evicted", e.states_evicted);
  w.U64("e_peak_state_bytes", e.peak_state_bytes);
  w.U64("e_blocks_decoded", e.blocks_decoded);
  w.U64("e_block_cache_hits", e.block_cache_hits);
  // Tier counters (absent in older journals; GetU64 defaults them to 0).
  // Volatile-report only, but a fleet worker's RESULT is the coordinator's
  // sole window into its pass, so they ride along.
  w.U64("e_bc_fallback_fetches", e.block_cache_fallback_fetches);
  w.U64("e_bc_hot_blocks", e.block_cache_hot_blocks);
  w.U64("e_sb_compiled", e.superblocks_compiled);
  w.U64("e_sb_ops_lowered", e.superblock_ops_lowered);
  w.U64("e_sb_entries", e.superblock_entries);
  w.U64("e_sb_chains", e.superblock_chains);
  w.U64("e_sb_side_exits", e.superblock_side_exits);
  w.U64("e_sb_instructions", e.superblock_instructions);
  // Path-explosion control counters + fork-profiler table (absent in older
  // journals; GetU64/GetStr default to 0/empty).
  w.U64("e_states_merged", e.states_merged);
  w.U64("e_loop_kills", e.loop_kills);
  w.U64("e_edge_kills", e.edge_kills);
  {
    std::string rule_kills;
    for (size_t i = 0; i < e.edge_rule_kills.size(); ++i) {
      if (i != 0) {
        rule_kills.push_back(' ');
      }
      rule_kills += StrFormat("%llu", static_cast<unsigned long long>(e.edge_rule_kills[i]));
    }
    w.Str("e_edge_rule_kills", rule_kills);
  }
  w.Str("e_fork_sites", EncodeForkSiteTable(e.fork_sites));
  w.Dbl("e_wall_ms", e.wall_ms);
  const SolverStats& s = rec.solver_stats;
  w.U64("s_queries", s.queries);
  w.U64("s_quick_decides", s.quick_decides);
  w.U64("s_cache_hits", s.cache_hits);
  w.U64("s_sat_calls", s.sat_calls);
  w.U64("s_sat_results", s.sat_results);
  w.U64("s_unsat_results", s.unsat_results);
  w.U64("s_unknown_results", s.unknown_results);
  w.U64("s_query_timeouts", s.query_timeouts);
  w.U64("s_aborted_queries", s.aborted_queries);
  w.U64("s_total_conflicts", s.total_conflicts);
  w.U64("s_total_sat_vars", s.total_sat_vars);
  w.U64("s_total_sat_clauses", s.total_sat_clauses);
  w.U64("s_model_reuse_hits", s.model_reuse_hits);
  // Shared-cache counters (absent in v1 journals; GetU64 defaults them to 0).
  // Volatile-report only, but a fleet worker's RESULT is the coordinator's
  // sole window into its pass, so they ride along.
  w.U64("s_sc_hits", s.shared_cache_hits);
  w.U64("s_sc_fastpath", s.shared_cache_fastpath_hits);
  w.U64("s_sc_misses", s.shared_cache_misses);
  w.U64("s_sc_stores", s.shared_cache_stores);
  w.U64("s_sc_verify_failures", s.shared_cache_verify_failures);
  w.Dbl("s_max_query_wall_ms", s.max_query_wall_ms);
  w.Str("bugs", SerializeBugs(rec.bugs));
  return w.Finish();
}

bool DecodeRecord(const std::map<std::string, std::string>& m, CampaignPassRecord* rec) {
  rec->index = GetU64(m, "i");
  rec->label = GetStr(m, "label");
  if (!PointsFromString(GetStr(m, "points"), &rec->points)) {
    return false;
  }
  if (!HwPointsFromString(GetStr(m, "hw_points"), &rec->hw_points)) {
    return false;
  }
  rec->retries = static_cast<uint32_t>(GetU64(m, "retries"));
  rec->quarantined = GetU64(m, "q") != 0;
  rec->failure = GetStr(m, "failure");
  auto profile_it = m.find("profile");
  if (profile_it != m.end()) {
    std::vector<std::string_view> pieces = SplitAny(profile_it->second, " ");
    if (pieces.size() != kNumFaultClasses) {
      return false;
    }
    for (size_t i = 0; i < kNumFaultClasses; ++i) {
      int64_t v = 0;
      if (!ParseInt(pieces[i], &v) || v < 0) {
        return false;
      }
      rec->profile.max_occurrences[i] = static_cast<uint32_t>(v);
    }
    rec->has_profile = true;
    auto hw_it = m.find("hw_profile");
    if (hw_it != m.end()) {
      std::vector<std::string_view> hw_pieces = SplitAny(hw_it->second, " ");
      if (hw_pieces.size() != 5) {
        return false;
      }
      uint32_t* fields[5] = {&rec->hw_profile.max_mmio_accesses, &rec->hw_profile.max_mmio_reads,
                             &rec->hw_profile.max_mmio_writes, &rec->hw_profile.max_crossings,
                             &rec->hw_profile.max_interrupts};
      for (size_t i = 0; i < 5; ++i) {
        int64_t v = 0;
        if (!ParseInt(hw_pieces[i], &v) || v < 0) {
          return false;
        }
        *fields[i] = static_cast<uint32_t>(v);
      }
    }
  }
  EngineStats& e = rec->stats;
  e.instructions = GetU64(m, "e_instructions");
  e.forks = GetU64(m, "e_forks");
  e.dropped_forks = GetU64(m, "e_dropped_forks");
  e.states_created = GetU64(m, "e_states_created");
  e.states_terminated = GetU64(m, "e_states_terminated");
  e.max_live_states = GetU64(m, "e_max_live_states");
  e.kernel_calls = GetU64(m, "e_kernel_calls");
  e.interrupts_injected = GetU64(m, "e_interrupts_injected");
  e.entry_invocations = GetU64(m, "e_entry_invocations");
  e.concretizations = GetU64(m, "e_concretizations");
  e.concretization_backtracks = GetU64(m, "e_concretization_backtracks");
  e.faults_injected = GetU64(m, "e_faults_injected");
  e.hw_faults_injected = GetU64(m, "e_hw_faults");
  e.hw_removals = GetU64(m, "e_hw_removals");
  e.hw_sticky_faults = GetU64(m, "e_hw_sticky");
  e.hw_irq_storms = GetU64(m, "e_hw_storms");
  e.hw_irq_suppressed = GetU64(m, "e_hw_suppressed");
  e.hw_doorbells_dropped = GetU64(m, "e_hw_doorbells_dropped");
  e.hw_reads_floated = GetU64(m, "e_hw_reads_floated");
  e.hw_writes_dropped = GetU64(m, "e_hw_writes_dropped");
  e.hw_removal_events = GetU64(m, "e_hw_removal_events");
  e.states_evicted = GetU64(m, "e_states_evicted");
  e.peak_state_bytes = GetU64(m, "e_peak_state_bytes");
  e.blocks_decoded = GetU64(m, "e_blocks_decoded");
  e.block_cache_hits = GetU64(m, "e_block_cache_hits");
  e.block_cache_fallback_fetches = GetU64(m, "e_bc_fallback_fetches");
  e.block_cache_hot_blocks = GetU64(m, "e_bc_hot_blocks");
  e.superblocks_compiled = GetU64(m, "e_sb_compiled");
  e.superblock_ops_lowered = GetU64(m, "e_sb_ops_lowered");
  e.superblock_entries = GetU64(m, "e_sb_entries");
  e.superblock_chains = GetU64(m, "e_sb_chains");
  e.superblock_side_exits = GetU64(m, "e_sb_side_exits");
  e.superblock_instructions = GetU64(m, "e_sb_instructions");
  e.states_merged = GetU64(m, "e_states_merged");
  e.loop_kills = GetU64(m, "e_loop_kills");
  e.edge_kills = GetU64(m, "e_edge_kills");
  {
    std::string rule_kills = GetStr(m, "e_edge_rule_kills");
    if (!rule_kills.empty()) {
      for (std::string_view piece : SplitAny(rule_kills, " ")) {
        int64_t v = 0;
        if (!ParseInt(piece, &v) || v < 0) {
          return false;
        }
        e.edge_rule_kills.push_back(static_cast<uint64_t>(v));
      }
    }
  }
  e.fork_sites = DecodeForkSiteTable(GetStr(m, "e_fork_sites"));
  e.wall_ms = GetDbl(m, "e_wall_ms");
  SolverStats& s = rec->solver_stats;
  s.queries = GetU64(m, "s_queries");
  s.quick_decides = GetU64(m, "s_quick_decides");
  s.cache_hits = GetU64(m, "s_cache_hits");
  s.sat_calls = GetU64(m, "s_sat_calls");
  s.sat_results = GetU64(m, "s_sat_results");
  s.unsat_results = GetU64(m, "s_unsat_results");
  s.unknown_results = GetU64(m, "s_unknown_results");
  s.query_timeouts = GetU64(m, "s_query_timeouts");
  s.aborted_queries = GetU64(m, "s_aborted_queries");
  s.total_conflicts = GetU64(m, "s_total_conflicts");
  s.total_sat_vars = GetU64(m, "s_total_sat_vars");
  s.total_sat_clauses = GetU64(m, "s_total_sat_clauses");
  s.model_reuse_hits = GetU64(m, "s_model_reuse_hits");
  s.shared_cache_hits = GetU64(m, "s_sc_hits");
  s.shared_cache_fastpath_hits = GetU64(m, "s_sc_fastpath");
  s.shared_cache_misses = GetU64(m, "s_sc_misses");
  s.shared_cache_stores = GetU64(m, "s_sc_stores");
  s.shared_cache_verify_failures = GetU64(m, "s_sc_verify_failures");
  s.max_query_wall_ms = GetDbl(m, "s_max_query_wall_ms");
  Result<std::vector<Bug>> bugs = DeserializeBugs(GetStr(m, "bugs"));
  if (!bugs.ok()) {
    return false;
  }
  rec->bugs = bugs.take();
  return true;
}

// Wraps a record payload into one journal line; the CRC covers exactly the
// payload text, so any torn write or bit flip is detected.
std::string WrapLine(const std::string& payload) {
  return StrFormat("{\"crc\":\"%08X\",\"record\":", Crc32(payload)) + payload + "}\n";
}

// Inverse of WrapLine (without the trailing newline). Returns false unless
// the wrapper parses and the CRC matches.
bool UnwrapLine(std::string_view line, std::string_view* payload) {
  constexpr std::string_view kPrefix = "{\"crc\":\"";
  constexpr size_t kCrcDigits = 8;
  constexpr std::string_view kMid = "\",\"record\":";
  size_t header_len = kPrefix.size() + kCrcDigits + kMid.size();
  if (line.size() < header_len + 2 || line.substr(0, kPrefix.size()) != kPrefix ||
      line.substr(kPrefix.size() + kCrcDigits, kMid.size()) != kMid || line.back() != '}') {
    return false;
  }
  char hex[kCrcDigits + 1] = {};
  std::memcpy(hex, line.data() + kPrefix.size(), kCrcDigits);
  char* end = nullptr;
  uint32_t crc = static_cast<uint32_t>(std::strtoul(hex, &end, 16));
  if (end != hex + kCrcDigits) {
    return false;
  }
  *payload = line.substr(header_len, line.size() - header_len - 1);
  return Crc32(*payload) == crc;
}

std::string EncodeHeader(const std::string& driver, uint64_t fingerprint) {
  JsonWriter w;
  w.Str("format", kFormatName);
  w.U64("v", kFormatVersion);
  w.Str("driver", driver);
  w.Str("fp", StrFormat("%016llX", static_cast<unsigned long long>(fingerprint)));
  return w.Finish() + "\n";
}

// Validates a journal's header line against (driver, fingerprint). On success
// leaves `in` positioned at the first record line.
Status ValidateHeader(std::ifstream& in, const std::string& path, const std::string& driver,
                      uint64_t fingerprint, size_t* header_bytes) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Error(StrFormat("cannot resume: journal '%s' is empty", path.c_str()));
  }
  std::map<std::string, std::string> header;
  if (!ParseFlatJson(line, &header) || GetStr(header, "format") != kFormatName) {
    return Status::Error(
        StrFormat("'%s' is not a DDT campaign journal", path.c_str()));
  }
  if (GetU64(header, "v") != kFormatVersion) {
    return Status::Error(StrFormat("journal '%s' has unsupported version %llu", path.c_str(),
                                   static_cast<unsigned long long>(GetU64(header, "v"))));
  }
  if (GetStr(header, "driver") != driver) {
    return Status::Error(StrFormat("journal '%s' belongs to driver '%s', not '%s'", path.c_str(),
                                   GetStr(header, "driver").c_str(), driver.c_str()));
  }
  std::string expected_fp = StrFormat("%016llX", static_cast<unsigned long long>(fingerprint));
  if (GetStr(header, "fp") != expected_fp) {
    return Status::Error(StrFormat(
        "journal '%s' was written by a campaign with a different configuration or driver image "
        "(fingerprint %s, expected %s)",
        path.c_str(), GetStr(header, "fp").c_str(), expected_fp.c_str()));
  }
  *header_bytes = line.size() + 1;
  return Status::Ok();
}

// Reads the valid record prefix: every intact record extends it; the first
// torn, corrupt, or undecodable line ends it — a crash mid-append is
// expected, not fatal. Returns the byte offset just past the last valid line.
size_t ReadValidRecords(std::ifstream& in, size_t header_bytes,
                        std::vector<CampaignPassRecord>* records) {
  size_t valid_end = header_bytes;
  std::string line;
  while (std::getline(in, line)) {
    bool complete = !in.eof();  // a final line without '\n' is a torn write
    std::string_view payload;
    std::map<std::string, std::string> fields;
    CampaignPassRecord rec;
    if (!complete || !UnwrapLine(line, &payload) || !ParseFlatJson(payload, &fields) ||
        !DecodeRecord(fields, &rec)) {
      break;
    }
    records->push_back(std::move(rec));
    valid_end += line.size() + 1;
  }
  return valid_end;
}

}  // namespace

std::string EncodeCampaignPassRecord(const CampaignPassRecord& record) {
  return EncodeRecord(record);
}

bool DecodeCampaignPassRecord(const std::string& payload, CampaignPassRecord* record) {
  std::map<std::string, std::string> fields;
  return ParseFlatJson(payload, &fields) && DecodeRecord(fields, record);
}

Result<std::vector<CampaignPassRecord>> LoadCampaignJournalRecords(const std::string& path,
                                                                   const std::string& driver,
                                                                   uint64_t fingerprint) {
  std::vector<CampaignPassRecord> records;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return records;  // no shard journal yet — the worker died before pass 1
  }
  size_t header_bytes = 0;
  Status st = ValidateHeader(in, path, driver, fingerprint, &header_bytes);
  if (!st.ok()) {
    return st;
  }
  ReadValidRecords(in, header_bytes, &records);
  return records;
}

CampaignJournal::CampaignJournal(std::FILE* file, std::string path)
    : file_(file), path_(std::move(path)) {}

CampaignJournal::~CampaignJournal() {
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

Result<std::unique_ptr<CampaignJournal>> CampaignJournal::Create(const std::string& path,
                                                                 const std::string& driver,
                                                                 uint64_t fingerprint) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::Error(
        StrFormat("cannot open campaign journal '%s' for writing: %s", path.c_str(),
                  std::strerror(errno)));
  }
  std::string header = EncodeHeader(driver, fingerprint);
  if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
      std::fflush(file) != 0) {
    std::fclose(file);
    return Status::Error(StrFormat("cannot write campaign journal '%s'", path.c_str()));
  }
  return std::unique_ptr<CampaignJournal>(new CampaignJournal(file, path));
}

Result<std::unique_ptr<CampaignJournal>> CampaignJournal::OpenForResume(
    const std::string& path, const std::string& driver, uint64_t fingerprint,
    std::vector<CampaignPassRecord>* records) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(StrFormat(
        "cannot resume: campaign journal '%s' does not exist or is unreadable", path.c_str()));
  }
  size_t header_bytes = 0;
  Status st = ValidateHeader(in, path, driver, fingerprint, &header_bytes);
  if (!st.ok()) {
    return st;
  }
  records->clear();
  size_t valid_end = ReadValidRecords(in, header_bytes, records);
  in.close();

  // Truncate the invalid tail so appended records follow the valid prefix.
  if (::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
    return Status::Error(StrFormat("cannot truncate campaign journal '%s': %s", path.c_str(),
                                   std::strerror(errno)));
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Error(
        StrFormat("cannot open campaign journal '%s' for append: %s", path.c_str(),
                  std::strerror(errno)));
  }
  return std::unique_ptr<CampaignJournal>(new CampaignJournal(file, path));
}

void CampaignJournal::SetMetrics(obs::MetricsRegistry* metrics) {
#ifndef DDT_OBS_DISABLED
  std::unique_lock<std::mutex> lock(mu_);
  if (metrics == nullptr) {
    append_ms_ = nullptr;
    appends_ = nullptr;
    return;
  }
  append_ms_ = metrics->histogram("journal.append_ms", obs::Histogram::LatencyBucketsMs());
  appends_ = metrics->counter("journal.appends");
#endif
}

Status CampaignJournal::Append(const CampaignPassRecord& record) {
  obs::ScopedSpan obs_span("journal.append");
  std::string line = WrapLine(EncodeRecord(record));
  std::unique_lock<std::mutex> lock(mu_);
  std::chrono::steady_clock::time_point start;
  if (append_ms_ != nullptr) {
    start = std::chrono::steady_clock::now();
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() || std::fflush(file_) != 0) {
    return Status::Error(StrFormat("cannot append to campaign journal '%s'", path_.c_str()));
  }
  if (append_ms_ != nullptr) {
    append_ms_->Observe(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    appends_->Add(1);
  }
  return Status::Ok();
}

}  // namespace ddt
