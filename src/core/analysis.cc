#include "src/core/analysis.h"

#include "src/support/strings.h"

namespace ddt {

BugAnalysis AnalyzeBug(const Bug& bug, const DeviceSpec* spec) {
  BugAnalysis analysis;

  analysis.interrupt_dependent = !bug.interrupt_schedule.empty();
  for (const auto& [seq, label] : bug.alternatives) {
    if (label.find("fails") != std::string::npos) {
      analysis.allocation_failure_dependent = true;
      analysis.provenance.push_back(
          StrFormat("kernel call #%u was made to fail (\"%s\")", seq, label.c_str()));
    }
  }

  // Classification keys off the proximate inputs (the variables in the
  // constraints added right before the report) when any are marked; the
  // other inputs shaped the path but are not the cause.
  bool have_proximate = false;
  for (const SolvedInput& input : bug.inputs) {
    have_proximate |= input.proximate;
  }

  size_t device_inputs = 0;
  size_t device_inputs_in_spec = 0;
  for (const SolvedInput& input : bug.inputs) {
    if (have_proximate && !input.proximate) {
      continue;
    }
    switch (input.origin.source) {
      case VarOrigin::Source::kHardwareRead: {
        analysis.device_input_dependent = true;
        ++device_inputs;
        const RegisterSpec* reg =
            spec != nullptr ? spec->Find(static_cast<uint32_t>(input.origin.aux)) : nullptr;
        bool violates = reg != nullptr && !reg->Allows(static_cast<uint32_t>(input.value));
        if (reg != nullptr && !violates) {
          ++device_inputs_in_spec;
        }
        if (violates) {
          ++analysis.spec_violations;
        }
        analysis.provenance.push_back(StrFormat(
            "device register +0x%llx (read #%llu) returned 0x%llx%s",
            static_cast<unsigned long long>(input.origin.aux),
            static_cast<unsigned long long>(input.origin.seq),
            static_cast<unsigned long long>(input.value),
            violates ? " — OUTSIDE the documented range (hardware malfunction)"
                     : (reg != nullptr ? " — within the documented range" : "")));
        break;
      }
      case VarOrigin::Source::kRegistry:
        analysis.registry_dependent = true;
        analysis.provenance.push_back(
            StrFormat("registry parameter '%s' = 0x%llx", input.origin.label.c_str(),
                      static_cast<unsigned long long>(input.value)));
        break;
      case VarOrigin::Source::kEntryArg:
        analysis.request_dependent = true;
        analysis.provenance.push_back(
            StrFormat("I/O request argument '%s' = 0x%llx", input.var_name.c_str(),
                      static_cast<unsigned long long>(input.value)));
        break;
      case VarOrigin::Source::kPacketData:
        analysis.request_dependent = true;
        analysis.provenance.push_back(
            StrFormat("packet payload byte #%llu = 0x%llx",
                      static_cast<unsigned long long>(input.origin.seq),
                      static_cast<unsigned long long>(input.value)));
        break;
      default:
        break;
    }
  }
  if (analysis.interrupt_dependent) {
    std::string crossings;
    for (size_t i = 0; i < bug.interrupt_schedule.size(); ++i) {
      crossings += StrFormat("%s%u", i == 0 ? "" : ", ", bug.interrupt_schedule[i]);
    }
    analysis.provenance.push_back(
        StrFormat("an interrupt must arrive at boundary crossing(s) %s", crossings.c_str()));
  }

  // §3.6: if every contributing device input violates the spec, the bug
  // cannot occur with correctly functioning hardware.
  analysis.only_with_hardware_malfunction =
      spec != nullptr && device_inputs > 0 && analysis.spec_violations == device_inputs;

  // The interrupt is the *cause* only when the bug fired in interrupt
  // context (or is a race); many paths merely happen to have had an ISR
  // injected somewhere earlier.
  bool interrupt_causal =
      analysis.interrupt_dependent &&
      (bug.type == BugType::kRaceCondition || bug.context == ExecContextKind::kIsr ||
       bug.context == ExecContextKind::kDpc || bug.context == ExecContextKind::kTimer);

  // Compose the user-readable one-liner, most specific cause first.
  if (analysis.allocation_failure_dependent) {
    analysis.summary = StrFormat("driver %s in low-memory situations",
                                 bug.type == BugType::kResourceLeak ||
                                         bug.type == BugType::kMemoryLeak
                                     ? "leaks resources"
                                     : "crashes");
  } else if (interrupt_causal) {
    analysis.summary = "bug manifests only under a specific interrupt interleaving";
  } else if (analysis.only_with_hardware_malfunction) {
    analysis.summary = "bug can only occur when the device malfunctions";
  } else if (analysis.registry_dependent) {
    analysis.summary = "bug is triggered by an unchecked registry parameter";
  } else if (analysis.request_dependent) {
    analysis.summary = "bug is triggered by a malformed or unexpected I/O request";
  } else if (analysis.device_input_dependent) {
    analysis.summary =
        device_inputs_in_spec == device_inputs
            ? "bug is triggered by documented device behavior (a genuine driver defect)"
            : "bug is triggered by device register values";
  } else {
    analysis.summary = "bug fires unconditionally on the exercised path";
  }
  return analysis;
}

std::string BugAnalysis::Format() const {
  std::string out = "analysis: " + summary + "\n";
  for (const std::string& line : provenance) {
    out += "  - " + line + "\n";
  }
  if (only_with_hardware_malfunction) {
    out += "  => every contributing device input is outside the device specification;\n";
    out += "     with correct hardware this path is unreachable (see paper section 3.6)\n";
  }
  return out;
}

}  // namespace ddt
