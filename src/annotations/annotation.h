// Lightweight API annotations (§3.4).
//
// Annotations encode developer knowledge about the kernel/driver interface.
// In the paper they are C functions compiled to LLVM bitcode and run inside
// the VM; here they are C++ callbacks with the same capability set (full
// access to guest state through KernelContext plus the ddt_* special API —
// symbolic value creation, state forking/discarding).
//
// The four categories from §3.4.1 map as follows:
//   - concrete-to-symbolic conversion hints: OnReturn rewrites return values
//     and out-parameters with fresh symbolic values, and may return
//     *alternatives* — each alternative forks a state (e.g. "this allocation
//     also could have failed: try the NULL return too").
//   - symbolic-to-concrete conversion hints: OnCall checks argument usage
//     rules and reports/bugchecks when a violating value is feasible.
//   - resource allocation hints: implementations may grant or revoke memory
//     ranges via KernelState::grants.
//   - kernel crash handler hook: installed by the engine itself — every
//     MiniOS bugcheck is intercepted and becomes a DDT bug report.
//
// Annotations only *improve coverage*; DDT runs fine with none registered
// (the ablation benchmark does exactly that).
#ifndef SRC_ANNOTATIONS_ANNOTATION_H_
#define SRC_ANNOTATIONS_ANNOTATION_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel_context.h"

namespace ddt {

// One forked continuation of an annotated call. The primary state continues
// with the implementation's real effects; each alternative is applied to a
// fresh fork (undoing bookkeeping, rewriting the return value, ...).
struct AnnotationAlternative {
  std::string label;
  std::function<void(KernelContext&)> apply;
};

struct AnnotationOutcome {
  std::vector<AnnotationAlternative> alternatives;
};

class ApiAnnotation {
 public:
  virtual ~ApiAnnotation() = default;

  // The annotated function: a kernel API name ("MosReadConfiguration") or an
  // entry point ("entry:QueryInformation").
  virtual std::string function() const = 0;

  // Runs before the call (argument usage rules). For entry points this runs
  // before the driver code, and may rewrite arguments with SetArg.
  virtual void OnCall(KernelContext& kc) {}

  // Runs after the call; may rewrite results and request forked alternatives.
  virtual AnnotationOutcome OnReturn(KernelContext& kc) { return AnnotationOutcome{}; }
};

// Annotation key for entry points.
std::string EntryAnnotationKey(int slot);

class AnnotationSet {
 public:
  void Add(std::shared_ptr<ApiAnnotation> annotation);
  // Adds every annotation of `other` to this set.
  void Merge(const AnnotationSet& other);
  // All annotations registered for `function` (empty vector if none).
  const std::vector<std::shared_ptr<ApiAnnotation>>& For(const std::string& function) const;
  bool empty() const { return by_function_.empty(); }
  size_t size() const;

  // The standard MiniOS annotation set used in the evaluation: registry
  // values symbolic, allocation-failure alternatives for every allocator,
  // symbolic entry-point arguments (with the packet-length soundness
  // constraint from §7), and a symbolic PCI revision.
  static AnnotationSet Standard();

 private:
  std::map<std::string, std::vector<std::shared_ptr<ApiAnnotation>>> by_function_;
};

}  // namespace ddt

#endif  // SRC_ANNOTATIONS_ANNOTATION_H_
