#include "src/annotations/annotation.h"

#include "src/kernel/api.h"
#include "src/support/strings.h"

namespace ddt {

std::string EntryAnnotationKey(int slot) {
  return StrFormat("entry:%s", EntrySlotName(slot));
}

void AnnotationSet::Add(std::shared_ptr<ApiAnnotation> annotation) {
  by_function_[annotation->function()].push_back(std::move(annotation));
}

void AnnotationSet::Merge(const AnnotationSet& other) {
  for (const auto& [function, list] : other.by_function_) {
    auto& target = by_function_[function];
    target.insert(target.end(), list.begin(), list.end());
  }
}

const std::vector<std::shared_ptr<ApiAnnotation>>& AnnotationSet::For(
    const std::string& function) const {
  static const std::vector<std::shared_ptr<ApiAnnotation>> kEmpty;
  auto it = by_function_.find(function);
  return it == by_function_.end() ? kEmpty : it->second;
}

size_t AnnotationSet::size() const {
  size_t total = 0;
  for (const auto& [name, list] : by_function_) {
    total += list.size();
  }
  return total;
}

}  // namespace ddt
