// The standard MiniOS annotation set (AnnotationSet::Standard).
//
// These mirror the annotations the paper's evaluation relied on: symbolic
// registry integers (the worked example in §3.4.1), allocation-failure
// alternatives for every allocator ("a memory allocation function can either
// return a valid pointer or a null pointer, so the annotation would instruct
// DDT to try both"), symbolic entry-point arguments, and a symbolic hardware
// revision in the PCI descriptor (§4.1.4).
#include "src/annotations/annotation.h"
#include "src/kernel/api.h"
#include "src/kernel/kernel_api.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

// --- Concrete-to-symbolic: registry reads -----------------------------------
// The paper's NdisReadConfiguration_return example, transliterated: on a
// successful integer read, replace the concrete IntegerData with a fresh
// non-negative symbolic integer.
class ReadConfigurationSymbolic : public ApiAnnotation {
 public:
  std::string function() const override { return "MosReadConfiguration"; }

  AnnotationOutcome OnReturn(KernelContext& kc) override {
    Value ret = kc.GetReturn();
    if (!ret.IsConcrete() || ret.concrete() != kStatusSuccess) {
      return AnnotationOutcome{};
    }
    uint32_t param_ptr = kc.Concretize(kc.Arg(2), "annotation.param_ptr");
    uint32_t type = kc.ReadGuestU32(param_ptr);
    if (type != 1) {  // integer parameters only
      return AnnotationOutcome{};
    }
    uint32_t name_ptr = kc.Concretize(kc.Arg(1), "annotation.name_ptr");
    std::string name = kc.ReadGuestCString(name_ptr, 64);
    VarOrigin origin;
    origin.source = VarOrigin::Source::kRegistry;
    origin.label = name;
    ExprRef symb = kc.expr()->Var(32, StrFormat("reg_%s", name.c_str()), origin);
    // ddt_discard_state() for negative values, as in the paper's listing:
    // keep only the non-negative half by constraining the path.
    kc.AddConstraint(kc.expr()->Sle(kc.expr()->Const(0, 32), symb));
    kc.WriteGuestValue(param_ptr + 4, Value::Symbolic(symb), 4);
    return AnnotationOutcome{};
  }
};

// --- Concrete-to-symbolic: allocation failure alternatives --------------------
// For pointer-returning allocators: fork an alternative where the call
// returned NULL (and the bookkeeping never happened).
class PointerAllocFailure : public ApiAnnotation {
 public:
  explicit PointerAllocFailure(std::string api) : api_(std::move(api)) {}
  std::string function() const override { return api_; }

  AnnotationOutcome OnReturn(KernelContext& kc) override {
    Value ret = kc.GetReturn();
    if (!ret.IsConcrete() || ret.concrete() == 0) {
      return AnnotationOutcome{};
    }
    uint32_t addr = ret.concrete();
    AnnotationOutcome outcome;
    outcome.alternatives.push_back(AnnotationAlternative{
        StrFormat("%s-fails", api_.c_str()), [addr](KernelContext& alt) {
          alt.kernel().pool.erase(addr);
          alt.SetReturn(Value::Concrete(0));
        }});
    return outcome;
  }

 private:
  std::string api_;
};

// For status-returning allocators with a pointer out-parameter: fork an
// alternative returning STATUS_INSUFFICIENT_RESOURCES.
class StatusAllocFailure : public ApiAnnotation {
 public:
  StatusAllocFailure(std::string api, int out_arg_index, bool scrub_out_param)
      : api_(std::move(api)), out_arg_(out_arg_index), scrub_(scrub_out_param) {}
  std::string function() const override { return api_; }

  AnnotationOutcome OnReturn(KernelContext& kc) override {
    Value ret = kc.GetReturn();
    if (!ret.IsConcrete() || ret.concrete() != kStatusSuccess) {
      return AnnotationOutcome{};
    }
    uint32_t out_ptr = kc.Concretize(kc.Arg(out_arg_), "annotation.out_ptr");
    std::string api = api_;
    bool scrub = scrub_;
    AnnotationOutcome outcome;
    outcome.alternatives.push_back(AnnotationAlternative{
        StrFormat("%s-fails", api_.c_str()), [out_ptr, api, scrub](KernelContext& alt) {
          uint32_t written = alt.ReadGuestU32(out_ptr);
          // Undo whichever bookkeeping this API performed.
          alt.kernel().pool.erase(written);
          alt.kernel().packet_pools.erase(written);
          if (alt.kernel().packets.count(written) != 0) {
            RemoveGrant(alt.kernel(), written);
            alt.kernel().packets.erase(written);
          }
          if (scrub) {
            // The failed call never wrote the out-parameter; restore a null
            // so buggy "use it anyway" paths dereference 0 (detectably).
            alt.WriteGuestU32(out_ptr, 0);
          }
          alt.SetReturn(Value::Concrete(kStatusInsufficientResources));
        }});
    return outcome;
  }

 private:
  std::string api_;
  int out_arg_;
  bool scrub_;
};

// --- Entry-point argument hints ------------------------------------------------
// Makes the OID of Query/SetInformation symbolic: the exerciser issues a
// concrete OID, the annotation widens it to "any OID" so unexpected-request
// paths get explored.
class SymbolicOidAnnotation : public ApiAnnotation {
 public:
  explicit SymbolicOidAnnotation(int slot) : slot_(slot) {}
  std::string function() const override { return EntryAnnotationKey(slot_); }

  void OnCall(KernelContext& kc) override {
    VarOrigin origin;
    origin.source = VarOrigin::Source::kEntryArg;
    origin.label = EntrySlotName(slot_);
    ExprRef oid = kc.expr()->Var(32, StrFormat("oid_%s", EntrySlotName(slot_)), origin);
    kc.SetArg(0, Value::Symbolic(oid));
  }

 private:
  int slot_;
};

// Makes buffer lengths symbolic but *bounded by the concrete original* — the
// soundness requirement called out in §7: "the concrete packet size must be
// replaced by a symbolic value constrained not to be greater than the
// original value, to avoid buffer overflows [being false positives]".
class SymbolicLengthAnnotation : public ApiAnnotation {
 public:
  SymbolicLengthAnnotation(int slot, int len_arg) : slot_(slot), len_arg_(len_arg) {}
  std::string function() const override { return EntryAnnotationKey(slot_); }

  void OnCall(KernelContext& kc) override {
    Value len = kc.Arg(len_arg_);
    if (!len.IsConcrete()) {
      return;
    }
    VarOrigin origin;
    origin.source = VarOrigin::Source::kEntryArg;
    origin.label = StrFormat("%s.len", EntrySlotName(slot_));
    ExprRef sym = kc.expr()->Var(32, StrFormat("len_%s", EntrySlotName(slot_)), origin);
    kc.AddConstraint(kc.expr()->Ule(sym, kc.expr()->Const(len.concrete(), 32)));
    kc.SetArg(len_arg_, Value::Symbolic(sym));
  }

 private:
  int slot_;
  int len_arg_;
};

// Makes the Diag entry's request code symbolic.
class SymbolicDiagAnnotation : public ApiAnnotation {
 public:
  std::string function() const override { return EntryAnnotationKey(kEpDiag); }

  void OnCall(KernelContext& kc) override {
    VarOrigin origin;
    origin.source = VarOrigin::Source::kEntryArg;
    origin.label = "Diag.code";
    kc.SetArg(0, Value::Symbolic(kc.expr()->Var(32, "diag_code", origin)));
  }
};

// Plants symbolic bytes at the head of a Send packet's payload so
// content-dependent paths fork (§3.2: "DDT makes the content of the network
// packet symbolic").
class SymbolicPacketDataAnnotation : public ApiAnnotation {
 public:
  std::string function() const override { return EntryAnnotationKey(kEpSend); }

  void OnCall(KernelContext& kc) override {
    Value pkt = kc.Arg(0);
    if (!pkt.IsConcrete() || pkt.concrete() == 0) {
      return;
    }
    uint32_t payload = kc.ReadGuestU32(pkt.concrete());
    constexpr unsigned kSymbolicHeadBytes = 16;
    for (unsigned i = 0; i < kSymbolicHeadBytes; ++i) {
      VarOrigin origin;
      origin.source = VarOrigin::Source::kPacketData;
      origin.label = "Send.payload";
      origin.seq = i;
      ExprRef byte = kc.expr()->Var(8, StrFormat("pkt_byte_%u", i), origin);
      kc.WriteGuestValue(payload + i, Value::Symbolic(byte), 1);
    }
  }
};

// --- Device descriptor hint (§4.1.4): symbolic hardware revision ---------------
class SymbolicPciRevision : public ApiAnnotation {
 public:
  std::string function() const override { return "MosReadPciConfig"; }

  AnnotationOutcome OnReturn(KernelContext& kc) override {
    uint32_t offset = kc.Concretize(kc.Arg(0), "annotation.pci_offset");
    if (offset != kPciCfgRevision) {
      return AnnotationOutcome{};
    }
    uint32_t out_ptr = kc.Concretize(kc.Arg(1), "annotation.pci_out");
    VarOrigin origin;
    origin.source = VarOrigin::Source::kAnnotation;
    origin.label = "pci_revision";
    ExprRef rev = kc.expr()->Var(8, "pci_revision", origin);
    kc.WriteGuestValue(out_ptr, Value::Symbolic(rev), 1);
    return AnnotationOutcome{};
  }
};

}  // namespace

AnnotationSet AnnotationSet::Standard() {
  AnnotationSet set;
  set.Add(std::make_shared<ReadConfigurationSymbolic>());
  set.Add(std::make_shared<PointerAllocFailure>("MosAllocatePool"));
  set.Add(std::make_shared<PointerAllocFailure>("MosAllocatePoolWithTag"));
  set.Add(std::make_shared<StatusAllocFailure>("MosAllocateMemoryWithTag", 0, true));
  set.Add(std::make_shared<StatusAllocFailure>("MosNewInterruptSync", 0, true));
  set.Add(std::make_shared<StatusAllocFailure>("MosAllocatePacketPool", 0, true));
  set.Add(std::make_shared<StatusAllocFailure>("MosAllocatePacket", 0, true));
  set.Add(std::make_shared<SymbolicOidAnnotation>(kEpQueryInfo));
  set.Add(std::make_shared<SymbolicOidAnnotation>(kEpSetInfo));
  set.Add(std::make_shared<SymbolicLengthAnnotation>(kEpSend, 1));
  set.Add(std::make_shared<SymbolicLengthAnnotation>(kEpWrite, 1));
  set.Add(std::make_shared<SymbolicDiagAnnotation>());
  set.Add(std::make_shared<SymbolicPacketDataAnnotation>());
  set.Add(std::make_shared<SymbolicPciRevision>());
  return set;
}

}  // namespace ddt
