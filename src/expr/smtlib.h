// SMT-LIB2 (QF_BV) export of expressions and constraint sets.
//
// DDT's built-in bit-blasting solver answers all queries internally, but
// path constraints are plain bitvector formulas — exporting them lets users
// cross-check bugs with external solvers (Z3, cvc5, Boolector) or archive
// the exact satisfiability obligation behind a bug's concrete inputs.
//
// The output defines one named term per DAG node (preserving sharing) and
// asserts each constraint, followed by (check-sat) and (get-model).
#ifndef SRC_EXPR_SMTLIB_H_
#define SRC_EXPR_SMTLIB_H_

#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace ddt {

// Renders the conjunction of `constraints` as a self-contained SMT-LIB2
// script. Variable names come from the context's VarInfo (sanitized and
// uniquified by id).
std::string ToSmtLib(const std::vector<ExprRef>& constraints, const ExprContext& ctx);

}  // namespace ddt

#endif  // SRC_EXPR_SMTLIB_H_
