#include "src/expr/eval.h"

#include <algorithm>

#include "src/support/check.h"

namespace ddt {

namespace {

uint64_t EvalImpl(ExprRef e, const Assignment& a, std::unordered_map<ExprRef, uint64_t>* memo) {
  auto it = memo->find(e);
  if (it != memo->end()) {
    return it->second;
  }
  uint8_t w = e->width();
  uint64_t result = 0;
  switch (e->kind()) {
    case ExprKind::kConst:
      result = e->const_value();
      break;
    case ExprKind::kVar:
      result = MaskToWidth(a.Get(e->var_id()), w);
      break;
    case ExprKind::kAdd:
      result = EvalImpl(e->op(0), a, memo) + EvalImpl(e->op(1), a, memo);
      break;
    case ExprKind::kSub:
      result = EvalImpl(e->op(0), a, memo) - EvalImpl(e->op(1), a, memo);
      break;
    case ExprKind::kMul:
      result = EvalImpl(e->op(0), a, memo) * EvalImpl(e->op(1), a, memo);
      break;
    case ExprKind::kUDiv: {
      uint64_t lhs = EvalImpl(e->op(0), a, memo);
      uint64_t rhs = EvalImpl(e->op(1), a, memo);
      result = rhs == 0 ? MaskToWidth(~0ull, w) : lhs / rhs;
      break;
    }
    case ExprKind::kSDiv: {
      int64_t lhs = SignExtend(EvalImpl(e->op(0), a, memo), w);
      int64_t rhs = SignExtend(EvalImpl(e->op(1), a, memo), w);
      if (rhs == 0) {
        result = lhs < 0 ? 1 : MaskToWidth(~0ull, w);
      } else if (lhs == INT64_MIN && rhs == -1) {
        result = static_cast<uint64_t>(lhs);
      } else {
        result = static_cast<uint64_t>(lhs / rhs);
      }
      break;
    }
    case ExprKind::kURem: {
      uint64_t lhs = EvalImpl(e->op(0), a, memo);
      uint64_t rhs = EvalImpl(e->op(1), a, memo);
      result = rhs == 0 ? lhs : lhs % rhs;
      break;
    }
    case ExprKind::kSRem: {
      int64_t lhs = SignExtend(EvalImpl(e->op(0), a, memo), w);
      int64_t rhs = SignExtend(EvalImpl(e->op(1), a, memo), w);
      if (rhs == 0) {
        result = static_cast<uint64_t>(lhs);
      } else if (lhs == INT64_MIN && rhs == -1) {
        result = 0;
      } else {
        result = static_cast<uint64_t>(lhs % rhs);
      }
      break;
    }
    case ExprKind::kAnd:
      result = EvalImpl(e->op(0), a, memo) & EvalImpl(e->op(1), a, memo);
      break;
    case ExprKind::kOr:
      result = EvalImpl(e->op(0), a, memo) | EvalImpl(e->op(1), a, memo);
      break;
    case ExprKind::kXor:
      result = EvalImpl(e->op(0), a, memo) ^ EvalImpl(e->op(1), a, memo);
      break;
    case ExprKind::kNot:
      result = ~EvalImpl(e->op(0), a, memo);
      break;
    case ExprKind::kShl: {
      uint64_t s = EvalImpl(e->op(1), a, memo);
      result = s >= w ? 0 : EvalImpl(e->op(0), a, memo) << s;
      break;
    }
    case ExprKind::kLShr: {
      uint64_t s = EvalImpl(e->op(1), a, memo);
      result = s >= w ? 0 : MaskToWidth(EvalImpl(e->op(0), a, memo), w) >> s;
      break;
    }
    case ExprKind::kAShr: {
      uint64_t s = EvalImpl(e->op(1), a, memo);
      int64_t v = SignExtend(EvalImpl(e->op(0), a, memo), w);
      result = static_cast<uint64_t>(v >> std::min<uint64_t>(s, 63));
      break;
    }
    case ExprKind::kEq:
      result = MaskToWidth(EvalImpl(e->op(0), a, memo), e->op(0)->width()) ==
                       MaskToWidth(EvalImpl(e->op(1), a, memo), e->op(1)->width())
                   ? 1
                   : 0;
      break;
    case ExprKind::kUlt:
      result = MaskToWidth(EvalImpl(e->op(0), a, memo), e->op(0)->width()) <
                       MaskToWidth(EvalImpl(e->op(1), a, memo), e->op(1)->width())
                   ? 1
                   : 0;
      break;
    case ExprKind::kUle:
      result = MaskToWidth(EvalImpl(e->op(0), a, memo), e->op(0)->width()) <=
                       MaskToWidth(EvalImpl(e->op(1), a, memo), e->op(1)->width())
                   ? 1
                   : 0;
      break;
    case ExprKind::kSlt:
      result = SignExtend(EvalImpl(e->op(0), a, memo), e->op(0)->width()) <
                       SignExtend(EvalImpl(e->op(1), a, memo), e->op(1)->width())
                   ? 1
                   : 0;
      break;
    case ExprKind::kSle:
      result = SignExtend(EvalImpl(e->op(0), a, memo), e->op(0)->width()) <=
                       SignExtend(EvalImpl(e->op(1), a, memo), e->op(1)->width())
                   ? 1
                   : 0;
      break;
    case ExprKind::kIte:
      result = EvalImpl(e->op(0), a, memo) != 0 ? EvalImpl(e->op(1), a, memo)
                                                : EvalImpl(e->op(2), a, memo);
      break;
    case ExprKind::kExtract:
      result = MaskToWidth(EvalImpl(e->op(0), a, memo), e->op(0)->width()) >> e->extract_low();
      break;
    case ExprKind::kConcat: {
      uint64_t high = MaskToWidth(EvalImpl(e->op(0), a, memo), e->op(0)->width());
      uint64_t low = MaskToWidth(EvalImpl(e->op(1), a, memo), e->op(1)->width());
      result = (high << e->op(1)->width()) | low;
      break;
    }
    case ExprKind::kZExt:
      result = MaskToWidth(EvalImpl(e->op(0), a, memo), e->op(0)->width());
      break;
    case ExprKind::kSExt:
      result = static_cast<uint64_t>(SignExtend(EvalImpl(e->op(0), a, memo), e->op(0)->width()));
      break;
  }
  result = MaskToWidth(result, w);
  memo->emplace(e, result);
  return result;
}

}  // namespace

uint64_t EvalExpr(ExprRef e, const Assignment& assignment) {
  std::unordered_map<ExprRef, uint64_t> memo;
  return EvalImpl(e, assignment, &memo);
}

bool EvalBool(ExprRef e, const Assignment& assignment) {
  DDT_CHECK(e->width() == 1);
  return EvalExpr(e, assignment) == 1;
}

}  // namespace ddt
