// Concrete evaluation of expression DAGs under a variable assignment.
// Used by the solver to verify models, by the replayer to turn symbolic
// inputs into concrete device/registry values, and by tests as an oracle.
#ifndef SRC_EXPR_EVAL_H_
#define SRC_EXPR_EVAL_H_

#include <cstdint>
#include <unordered_map>

#include "src/expr/expr.h"

namespace ddt {

// Partial map from variable id to concrete value. Unassigned variables
// default to zero (a solver model only mentions variables it had to decide).
class Assignment {
 public:
  void Set(uint32_t var_id, uint64_t value) { values_[var_id] = value; }
  uint64_t Get(uint32_t var_id) const {
    auto it = values_.find(var_id);
    return it == values_.end() ? 0 : it->second;
  }
  bool Has(uint32_t var_id) const { return values_.find(var_id) != values_.end(); }
  size_t size() const { return values_.size(); }
  const std::unordered_map<uint32_t, uint64_t>& values() const { return values_; }

 private:
  std::unordered_map<uint32_t, uint64_t> values_;
};

// Evaluates `e` under `assignment`; result is masked to e->width().
uint64_t EvalExpr(ExprRef e, const Assignment& assignment);

// Convenience: true iff the width-1 expression evaluates to 1.
bool EvalBool(ExprRef e, const Assignment& assignment);

}  // namespace ddt

#endif  // SRC_EXPR_EVAL_H_
