#include "src/expr/expr.h"

#include <algorithm>
#include <functional>

#include "src/support/check.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ull + (seed << 6) + (seed >> 2));
}

bool IsCommutative(ExprKind kind) {
  switch (kind) {
    case ExprKind::kAdd:
    case ExprKind::kMul:
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor:
    case ExprKind::kEq:
      return true;
    default:
      return false;
  }
}

}  // namespace

const char* ExprKindName(ExprKind kind) {
  switch (kind) {
    case ExprKind::kConst:
      return "Const";
    case ExprKind::kVar:
      return "Var";
    case ExprKind::kAdd:
      return "Add";
    case ExprKind::kSub:
      return "Sub";
    case ExprKind::kMul:
      return "Mul";
    case ExprKind::kUDiv:
      return "UDiv";
    case ExprKind::kSDiv:
      return "SDiv";
    case ExprKind::kURem:
      return "URem";
    case ExprKind::kSRem:
      return "SRem";
    case ExprKind::kAnd:
      return "And";
    case ExprKind::kOr:
      return "Or";
    case ExprKind::kXor:
      return "Xor";
    case ExprKind::kNot:
      return "Not";
    case ExprKind::kShl:
      return "Shl";
    case ExprKind::kLShr:
      return "LShr";
    case ExprKind::kAShr:
      return "AShr";
    case ExprKind::kEq:
      return "Eq";
    case ExprKind::kUlt:
      return "Ult";
    case ExprKind::kUle:
      return "Ule";
    case ExprKind::kSlt:
      return "Slt";
    case ExprKind::kSle:
      return "Sle";
    case ExprKind::kIte:
      return "Ite";
    case ExprKind::kExtract:
      return "Extract";
    case ExprKind::kConcat:
      return "Concat";
    case ExprKind::kZExt:
      return "ZExt";
    case ExprKind::kSExt:
      return "SExt";
  }
  return "?";
}

bool Expr::IsTrue() const { return kind_ == ExprKind::kConst && width_ == 1 && aux_ == 1; }
bool Expr::IsFalse() const { return kind_ == ExprKind::kConst && width_ == 1 && aux_ == 0; }

bool ExprContext::ExprPtrEq::operator()(const Expr* a, const Expr* b) const {
  return a->kind_ == b->kind_ && a->width_ == b->width_ && a->aux_ == b->aux_ &&
         a->num_ops_ == b->num_ops_ && a->ops_ == b->ops_;
}

ExprContext::ExprContext() {
  false_ = Const(0, 1);
  true_ = Const(1, 1);
}

ExprRef ExprContext::Intern(ExprKind kind, uint8_t width, uint64_t aux, ExprRef a, ExprRef b,
                            ExprRef c) {
  Expr candidate;
  candidate.kind_ = kind;
  candidate.width_ = width;
  candidate.aux_ = aux;
  candidate.ops_ = {a, b, c};
  candidate.num_ops_ = static_cast<uint8_t>((a != nullptr ? 1 : 0) + (b != nullptr ? 1 : 0) +
                                            (c != nullptr ? 1 : 0));
  size_t h = HashCombine(static_cast<size_t>(kind), width);
  h = HashCombine(h, static_cast<size_t>(aux));
  for (int i = 0; i < candidate.num_ops_; ++i) {
    h = HashCombine(h, reinterpret_cast<size_t>(candidate.ops_[static_cast<size_t>(i)]));
  }
  candidate.hash_ = h;

  auto it = interned_.find(&candidate);
  if (it != interned_.end()) {
    return *it;
  }
  all_.push_back(candidate);
  Expr* stored = &all_.back();
  interned_.insert(stored);
  return stored;
}

ExprRef ExprContext::Const(uint64_t value, uint8_t width) {
  DDT_CHECK(width >= 1 && width <= 64);
  return Intern(ExprKind::kConst, width, MaskToWidth(value, width));
}

ExprRef ExprContext::Var(uint8_t width, const std::string& name, const VarOrigin& origin) {
  DDT_CHECK(width >= 1 && width <= 64);
  uint32_t id = static_cast<uint32_t>(vars_.size());
  vars_.push_back(VarInfo{id, width, name, origin});
  return Intern(ExprKind::kVar, width, id);
}

// --- Arithmetic -------------------------------------------------------------

ExprRef ExprContext::Add(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    return Const(a->const_value() + b->const_value(), w);
  }
  if (IsCommutative(ExprKind::kAdd) && !a->IsConst() && b->IsConst()) {
    std::swap(a, b);  // canonical: constant first
  }
  if (a->IsConst()) {
    if (a->const_value() == 0) {
      return b;
    }
    // (c1 + (c2 + x)) -> ((c1+c2) + x)
    if (b->kind() == ExprKind::kAdd && b->op(0)->IsConst()) {
      return Add(Const(a->const_value() + b->op(0)->const_value(), w), b->op(1));
    }
  }
  return Intern(ExprKind::kAdd, w, 0, a, b);
}

ExprRef ExprContext::Sub(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    return Const(a->const_value() - b->const_value(), w);
  }
  if (a == b) {
    return Const(0, w);
  }
  if (b->IsConst()) {
    if (b->const_value() == 0) {
      return a;
    }
    // x - c -> x + (-c): keeps Add the only additive canonical form.
    return Add(Const(0 - b->const_value(), w), a);
  }
  return Intern(ExprKind::kSub, w, 0, a, b);
}

ExprRef ExprContext::Mul(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    return Const(a->const_value() * b->const_value(), w);
  }
  if (!a->IsConst() && b->IsConst()) {
    std::swap(a, b);
  }
  if (a->IsConst()) {
    if (a->const_value() == 0) {
      return Const(0, w);
    }
    if (a->const_value() == 1) {
      return b;
    }
  }
  return Intern(ExprKind::kMul, w, 0, a, b);
}

ExprRef ExprContext::UDiv(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    uint64_t bv = b->const_value();
    return Const(bv == 0 ? MaskToWidth(~0ull, w) : a->const_value() / bv, w);
  }
  if (b->IsConst() && b->const_value() == 1) {
    return a;
  }
  return Intern(ExprKind::kUDiv, w, 0, a, b);
}

ExprRef ExprContext::SDiv(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    int64_t bv = SignExtend(b->const_value(), w);
    if (bv == 0) {
      // SMT-LIB: sdiv by zero is 1 if dividend negative, else all-ones.
      return Const(SignExtend(a->const_value(), w) < 0 ? 1 : MaskToWidth(~0ull, w), w);
    }
    int64_t av = SignExtend(a->const_value(), w);
    if (av == INT64_MIN && bv == -1) {
      return Const(static_cast<uint64_t>(av), w);
    }
    return Const(static_cast<uint64_t>(av / bv), w);
  }
  if (b->IsConst() && SignExtend(b->const_value(), w) == 1) {
    return a;
  }
  return Intern(ExprKind::kSDiv, w, 0, a, b);
}

ExprRef ExprContext::URem(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    uint64_t bv = b->const_value();
    return Const(bv == 0 ? a->const_value() : a->const_value() % bv, w);
  }
  if (b->IsConst() && b->const_value() == 1) {
    return Const(0, w);
  }
  return Intern(ExprKind::kURem, w, 0, a, b);
}

ExprRef ExprContext::SRem(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    int64_t av = SignExtend(a->const_value(), w);
    int64_t bv = SignExtend(b->const_value(), w);
    if (bv == 0) {
      return a;
    }
    if (av == INT64_MIN && bv == -1) {
      return Const(0, w);
    }
    return Const(static_cast<uint64_t>(av % bv), w);
  }
  return Intern(ExprKind::kSRem, w, 0, a, b);
}

ExprRef ExprContext::Neg(ExprRef a) { return Sub(Const(0, a->width()), a); }

// --- Bitwise ----------------------------------------------------------------

ExprRef ExprContext::And(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    return Const(a->const_value() & b->const_value(), w);
  }
  if (!a->IsConst() && b->IsConst()) {
    std::swap(a, b);
  }
  if (a->IsConst()) {
    if (a->const_value() == 0) {
      return Const(0, w);
    }
    if (a->const_value() == MaskToWidth(~0ull, w)) {
      return b;
    }
  }
  if (a == b) {
    return a;
  }
  return Intern(ExprKind::kAnd, w, 0, a, b);
}

ExprRef ExprContext::Or(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    return Const(a->const_value() | b->const_value(), w);
  }
  if (!a->IsConst() && b->IsConst()) {
    std::swap(a, b);
  }
  if (a->IsConst()) {
    if (a->const_value() == 0) {
      return b;
    }
    if (a->const_value() == MaskToWidth(~0ull, w)) {
      return a;
    }
  }
  if (a == b) {
    return a;
  }
  return Intern(ExprKind::kOr, w, 0, a, b);
}

ExprRef ExprContext::Xor(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  uint8_t w = a->width();
  if (a->IsConst() && b->IsConst()) {
    return Const(a->const_value() ^ b->const_value(), w);
  }
  if (!a->IsConst() && b->IsConst()) {
    std::swap(a, b);
  }
  if (a->IsConst() && a->const_value() == 0) {
    return b;
  }
  if (a == b) {
    return Const(0, w);
  }
  return Intern(ExprKind::kXor, w, 0, a, b);
}

ExprRef ExprContext::Not(ExprRef a) {
  uint8_t w = a->width();
  if (a->IsConst()) {
    return Const(~a->const_value(), w);
  }
  if (a->kind() == ExprKind::kNot) {
    return a->op(0);
  }
  // Push Not through comparison negations where a dual exists: !(a <u b) == b <=u a.
  if (w == 1) {
    switch (a->kind()) {
      case ExprKind::kUlt:
        return Ule(a->op(1), a->op(0));
      case ExprKind::kUle:
        return Ult(a->op(1), a->op(0));
      case ExprKind::kSlt:
        return Sle(a->op(1), a->op(0));
      case ExprKind::kSle:
        return Slt(a->op(1), a->op(0));
      default:
        break;
    }
  }
  return Intern(ExprKind::kNot, w, 0, a);
}

ExprRef ExprContext::Shl(ExprRef a, ExprRef amount) {
  uint8_t w = a->width();
  if (amount->IsConst()) {
    uint64_t s = amount->const_value();
    if (s == 0) {
      return a;
    }
    if (s >= w) {
      return Const(0, w);
    }
    if (a->IsConst()) {
      return Const(a->const_value() << s, w);
    }
  }
  return Intern(ExprKind::kShl, w, 0, a, amount);
}

ExprRef ExprContext::LShr(ExprRef a, ExprRef amount) {
  uint8_t w = a->width();
  if (amount->IsConst()) {
    uint64_t s = amount->const_value();
    if (s == 0) {
      return a;
    }
    if (s >= w) {
      return Const(0, w);
    }
    if (a->IsConst()) {
      return Const(MaskToWidth(a->const_value(), w) >> s, w);
    }
  }
  return Intern(ExprKind::kLShr, w, 0, a, amount);
}

ExprRef ExprContext::AShr(ExprRef a, ExprRef amount) {
  uint8_t w = a->width();
  if (amount->IsConst()) {
    uint64_t s = amount->const_value();
    if (s == 0) {
      return a;
    }
    if (a->IsConst()) {
      int64_t v = SignExtend(a->const_value(), w);
      return Const(static_cast<uint64_t>(v >> std::min<uint64_t>(s, 63)), w);
    }
    if (s >= w) {
      // Result is all sign bits: Ite(sign, ~0, 0).
      ExprRef sign = Extract(a, static_cast<uint32_t>(w - 1), 1);
      return Ite(sign, Const(MaskToWidth(~0ull, w), w), Const(0, w));
    }
  }
  return Intern(ExprKind::kAShr, w, 0, a, amount);
}

// --- Comparisons ------------------------------------------------------------

ExprRef ExprContext::Eq(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  if (a->IsConst() && b->IsConst()) {
    return a->const_value() == b->const_value() ? True() : False();
  }
  if (a == b) {
    return True();
  }
  if (!a->IsConst() && b->IsConst()) {
    std::swap(a, b);
  }
  if (a->IsConst()) {
    // Width-1: Eq(1, x) == x; Eq(0, x) == Not(x).
    if (a->width() == 1) {
      return a->const_value() == 1 ? b : Not(b);
    }
    // Eq(c1, Add(c2, x)) -> Eq(c1 - c2, x): exposes the variable to the
    // solver's fast interval path.
    if (b->kind() == ExprKind::kAdd && b->op(0)->IsConst()) {
      return Eq(Const(a->const_value() - b->op(0)->const_value(), a->width()), b->op(1));
    }
    // Eq(c, ZExt(x)): if c doesn't fit in x's width it's false, else compare narrow.
    if (b->kind() == ExprKind::kZExt) {
      ExprRef inner = b->op(0);
      if (a->const_value() != MaskToWidth(a->const_value(), inner->width())) {
        return False();
      }
      return Eq(Const(a->const_value(), inner->width()), inner);
    }
    // Eq(c, And(mask, x)): bits of c outside the mask can never be produced.
    if (b->kind() == ExprKind::kAnd && b->op(0)->IsConst() &&
        (a->const_value() & ~b->op(0)->const_value() & MaskToWidth(~0ull, a->width())) != 0) {
      return False();
    }
    // Eq(c, Or(bits, x)): bits of `bits` missing from c can never be cleared.
    if (b->kind() == ExprKind::kOr && b->op(0)->IsConst() &&
        (~a->const_value() & b->op(0)->const_value() & MaskToWidth(~0ull, a->width())) != 0) {
      return False();
    }
  }
  return Intern(ExprKind::kEq, 1, 0, a, b);
}

ExprRef ExprContext::Ne(ExprRef a, ExprRef b) { return Not(Eq(a, b)); }

ExprRef ExprContext::Ult(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  if (a->IsConst() && b->IsConst()) {
    return a->const_value() < b->const_value() ? True() : False();
  }
  if (a == b) {
    return False();
  }
  if (b->IsConst() && b->const_value() == 0) {
    return False();  // nothing is < 0 unsigned
  }
  if (a->IsConst() && a->const_value() == MaskToWidth(~0ull, a->width())) {
    return False();  // max is not < anything
  }
  return Intern(ExprKind::kUlt, 1, 0, a, b);
}

ExprRef ExprContext::Ule(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  if (a->IsConst() && b->IsConst()) {
    return a->const_value() <= b->const_value() ? True() : False();
  }
  if (a == b) {
    return True();
  }
  if (a->IsConst() && a->const_value() == 0) {
    return True();
  }
  if (b->IsConst() && b->const_value() == MaskToWidth(~0ull, b->width())) {
    return True();
  }
  return Intern(ExprKind::kUle, 1, 0, a, b);
}

ExprRef ExprContext::Slt(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  if (a->IsConst() && b->IsConst()) {
    return SignExtend(a->const_value(), a->width()) < SignExtend(b->const_value(), b->width())
               ? True()
               : False();
  }
  if (a == b) {
    return False();
  }
  return Intern(ExprKind::kSlt, 1, 0, a, b);
}

ExprRef ExprContext::Sle(ExprRef a, ExprRef b) {
  DDT_CHECK(a->width() == b->width());
  if (a->IsConst() && b->IsConst()) {
    return SignExtend(a->const_value(), a->width()) <= SignExtend(b->const_value(), b->width())
               ? True()
               : False();
  }
  if (a == b) {
    return True();
  }
  return Intern(ExprKind::kSle, 1, 0, a, b);
}

// --- Structural -------------------------------------------------------------

ExprRef ExprContext::Ite(ExprRef cond, ExprRef then_expr, ExprRef else_expr) {
  DDT_CHECK(cond->width() == 1);
  DDT_CHECK(then_expr->width() == else_expr->width());
  if (cond->IsConst()) {
    return cond->const_value() != 0 ? then_expr : else_expr;
  }
  if (then_expr == else_expr) {
    return then_expr;
  }
  // Ite(c, 1, 0) over width 1 == c; Ite(c, 0, 1) == !c.
  if (then_expr->width() == 1 && then_expr->IsConst() && else_expr->IsConst()) {
    if (then_expr->const_value() == 1 && else_expr->const_value() == 0) {
      return cond;
    }
    if (then_expr->const_value() == 0 && else_expr->const_value() == 1) {
      return Not(cond);
    }
  }
  return Intern(ExprKind::kIte, then_expr->width(), 0, cond, then_expr, else_expr);
}

ExprRef ExprContext::Extract(ExprRef a, uint32_t low, uint8_t width) {
  DDT_CHECK(low + width <= a->width());
  if (low == 0 && width == a->width()) {
    return a;
  }
  if (a->IsConst()) {
    return Const(a->const_value() >> low, width);
  }
  if (a->kind() == ExprKind::kExtract) {
    return Extract(a->op(0), a->extract_low() + low, width);
  }
  if (a->kind() == ExprKind::kConcat) {
    ExprRef high = a->op(0);
    ExprRef lo_part = a->op(1);
    uint8_t lo_w = lo_part->width();
    if (low + width <= lo_w) {
      return Extract(lo_part, low, width);
    }
    if (low >= lo_w) {
      return Extract(high, low - lo_w, width);
    }
    // Straddles the seam: build from both halves.
    uint8_t from_low = static_cast<uint8_t>(lo_w - low);
    ExprRef low_bits = Extract(lo_part, low, from_low);
    ExprRef high_bits = Extract(high, 0, static_cast<uint8_t>(width - from_low));
    return Concat(high_bits, low_bits);
  }
  if (a->kind() == ExprKind::kZExt) {
    ExprRef inner = a->op(0);
    if (low + width <= inner->width()) {
      return Extract(inner, low, width);
    }
    if (low >= inner->width()) {
      return Const(0, width);
    }
  }
  return Intern(ExprKind::kExtract, width, low, a);
}

ExprRef ExprContext::Concat(ExprRef high, ExprRef low) {
  uint8_t w = static_cast<uint8_t>(high->width() + low->width());
  DDT_CHECK(w <= 64);
  if (high->IsConst() && low->IsConst()) {
    return Const((high->const_value() << low->width()) | low->const_value(), w);
  }
  if (high->IsConst() && high->const_value() == 0) {
    return ZExt(low, w);
  }
  // Concat(Extract(x, k+n, a), Extract(x, k, n)) -> Extract(x, k, a+n):
  // reassembles words split into bytes by the memory model.
  if (high->kind() == ExprKind::kExtract && low->kind() == ExprKind::kExtract &&
      high->op(0) == low->op(0) && high->extract_low() == low->extract_low() + low->width()) {
    return Extract(high->op(0), low->extract_low(), w);
  }
  // Same pattern where the low part is the full variable.
  if (high->kind() == ExprKind::kExtract && high->op(0) == low && high->extract_low() == low->width() &&
      low->kind() == ExprKind::kVar) {
    return Extract(high->op(0), 0, w);
  }
  return Intern(ExprKind::kConcat, w, 0, high, low);
}

ExprRef ExprContext::ZExt(ExprRef a, uint8_t width) {
  DDT_CHECK(width >= a->width());
  if (width == a->width()) {
    return a;
  }
  if (a->IsConst()) {
    return Const(a->const_value(), width);
  }
  if (a->kind() == ExprKind::kZExt) {
    return ZExt(a->op(0), width);
  }
  return Intern(ExprKind::kZExt, width, 0, a);
}

ExprRef ExprContext::SExt(ExprRef a, uint8_t width) {
  DDT_CHECK(width >= a->width());
  if (width == a->width()) {
    return a;
  }
  if (a->IsConst()) {
    return Const(static_cast<uint64_t>(SignExtend(a->const_value(), a->width())), width);
  }
  return Intern(ExprKind::kSExt, width, 0, a);
}

// --- Utilities --------------------------------------------------------------

namespace {

void CollectVarsImpl(ExprRef e, std::unordered_set<ExprRef>* seen, std::vector<uint32_t>* order,
                     std::unordered_set<uint32_t>* ids) {
  if (!seen->insert(e).second) {
    return;
  }
  if (e->IsVar()) {
    if (ids->insert(e->var_id()).second && order != nullptr) {
      order->push_back(e->var_id());
    }
    return;
  }
  for (int i = 0; i < e->num_ops(); ++i) {
    CollectVarsImpl(e->op(i), seen, order, ids);
  }
}

}  // namespace

void CollectVars(ExprRef e, std::vector<uint32_t>* out) {
  std::unordered_set<ExprRef> seen;
  std::unordered_set<uint32_t> ids;
  CollectVarsImpl(e, &seen, out, &ids);
}

void CollectVars(ExprRef e, std::unordered_set<uint32_t>* out) {
  std::unordered_set<ExprRef> seen;
  CollectVarsImpl(e, &seen, nullptr, out);
}

std::string ExprToString(ExprRef e) {
  switch (e->kind()) {
    case ExprKind::kConst:
      return StrFormat("0x%llx:%u", static_cast<unsigned long long>(e->const_value()),
                       e->width());
    case ExprKind::kVar:
      return StrFormat("v%u:%u", e->var_id(), e->width());
    case ExprKind::kExtract:
      return StrFormat("(Extract[%u+%u] %s)", e->extract_low(), e->width(),
                       ExprToString(e->op(0)).c_str());
    default: {
      std::string out = "(";
      out += ExprKindName(e->kind());
      for (int i = 0; i < e->num_ops(); ++i) {
        out += ' ';
        out += ExprToString(e->op(i));
      }
      out += ')';
      return out;
    }
  }
}

}  // namespace ddt
