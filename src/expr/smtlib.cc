#include "src/expr/smtlib.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "src/support/check.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

class SmtEmitter {
 public:
  explicit SmtEmitter(const ExprContext& ctx) : ctx_(ctx) {}

  std::string Run(const std::vector<ExprRef>& constraints) {
    out_ += "(set-logic QF_BV)\n";
    // Declarations first: collect all variables across constraints.
    std::unordered_set<uint32_t> var_ids;
    for (ExprRef c : constraints) {
      CollectVars(c, &var_ids);
    }
    std::vector<uint32_t> sorted(var_ids.begin(), var_ids.end());
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t id : sorted) {
      const VarInfo& info = ctx_.var_info(id);
      out_ += StrFormat("(declare-const %s (_ BitVec %u))\n", VarName(id).c_str(), info.width);
    }
    for (ExprRef c : constraints) {
      DDT_CHECK(c->width() == 1);
      out_ += StrFormat("(assert (= %s #b1))\n", Emit(c).c_str());
    }
    out_ += "(check-sat)\n(get-model)\n";
    return out_;
  }

 private:
  std::string VarName(uint32_t id) const {
    const VarInfo& info = ctx_.var_info(id);
    std::string sanitized;
    for (char c : info.name) {
      sanitized.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
    }
    return StrFormat("%s_v%u", sanitized.c_str(), id);
  }

  // Returns the name of a define-fun for `e`, emitting definitions for the
  // whole subtree first (DAG sharing becomes term sharing).
  std::string Emit(ExprRef e) {
    auto it = names_.find(e);
    if (it != names_.end()) {
      return it->second;
    }
    std::string body = Body(e);
    std::string name;
    if (e->IsVar() || e->IsConst()) {
      name = body;  // no definition needed for leaves
    } else {
      name = StrFormat("t%zu", names_.size());
      out_ += StrFormat("(define-fun %s () (_ BitVec %u) %s)\n", name.c_str(), e->width(),
                        body.c_str());
    }
    names_.emplace(e, name);
    return name;
  }

  std::string Bool(ExprRef e) {
    // Width-1 term as an SMT Bool.
    return StrFormat("(= %s #b1)", Emit(e).c_str());
  }

  std::string Body(ExprRef e) {
    switch (e->kind()) {
      case ExprKind::kConst:
        return StrFormat("(_ bv%llu %u)", static_cast<unsigned long long>(e->const_value()),
                         e->width());
      case ExprKind::kVar:
        return VarName(e->var_id());
      case ExprKind::kAdd:
        return Binary("bvadd", e);
      case ExprKind::kSub:
        return Binary("bvsub", e);
      case ExprKind::kMul:
        return Binary("bvmul", e);
      case ExprKind::kUDiv:
        return Binary("bvudiv", e);
      case ExprKind::kSDiv:
        return Binary("bvsdiv", e);
      case ExprKind::kURem:
        return Binary("bvurem", e);
      case ExprKind::kSRem:
        return Binary("bvsrem", e);
      case ExprKind::kAnd:
        return Binary("bvand", e);
      case ExprKind::kOr:
        return Binary("bvor", e);
      case ExprKind::kXor:
        return Binary("bvxor", e);
      case ExprKind::kNot:
        return StrFormat("(bvnot %s)", Emit(e->op(0)).c_str());
      case ExprKind::kShl:
        return Binary("bvshl", e);
      case ExprKind::kLShr:
        return Binary("bvlshr", e);
      case ExprKind::kAShr:
        return Binary("bvashr", e);
      case ExprKind::kEq:
        return StrFormat("(ite (= %s %s) #b1 #b0)", Emit(e->op(0)).c_str(),
                         Emit(e->op(1)).c_str());
      case ExprKind::kUlt:
        return Predicate("bvult", e);
      case ExprKind::kUle:
        return Predicate("bvule", e);
      case ExprKind::kSlt:
        return Predicate("bvslt", e);
      case ExprKind::kSle:
        return Predicate("bvsle", e);
      case ExprKind::kIte:
        return StrFormat("(ite %s %s %s)", Bool(e->op(0)).c_str(), Emit(e->op(1)).c_str(),
                         Emit(e->op(2)).c_str());
      case ExprKind::kExtract:
        return StrFormat("((_ extract %u %u) %s)", e->extract_low() + e->width() - 1,
                         e->extract_low(), Emit(e->op(0)).c_str());
      case ExprKind::kConcat:
        return StrFormat("(concat %s %s)", Emit(e->op(0)).c_str(), Emit(e->op(1)).c_str());
      case ExprKind::kZExt:
        return StrFormat("((_ zero_extend %u) %s)", e->width() - e->op(0)->width(),
                         Emit(e->op(0)).c_str());
      case ExprKind::kSExt:
        return StrFormat("((_ sign_extend %u) %s)", e->width() - e->op(0)->width(),
                         Emit(e->op(0)).c_str());
    }
    DDT_UNREACHABLE("bad expr kind");
  }

  std::string Binary(const char* op, ExprRef e) {
    return StrFormat("(%s %s %s)", op, Emit(e->op(0)).c_str(), Emit(e->op(1)).c_str());
  }
  std::string Predicate(const char* op, ExprRef e) {
    return StrFormat("(ite (%s %s %s) #b1 #b0)", op, Emit(e->op(0)).c_str(),
                     Emit(e->op(1)).c_str());
  }

  const ExprContext& ctx_;
  std::string out_;
  std::unordered_map<ExprRef, std::string> names_;
};

}  // namespace

std::string ToSmtLib(const std::vector<ExprRef>& constraints, const ExprContext& ctx) {
  SmtEmitter emitter(ctx);
  return emitter.Run(constraints);
}

}  // namespace ddt
