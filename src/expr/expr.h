// Symbolic bitvector expressions.
//
// This is DDT's analogue of the KLEE expression library: an immutable,
// hash-consed DAG of fixed-width bitvector operations. Every value the guest
// CPU manipulates is either a concrete 32-bit word or a pointer into this
// DAG. Path constraints are width-1 expressions.
//
// Expressions are owned by an ExprContext and live as long as it does;
// ExprRef is a plain pointer. A context is shared by every execution state of
// one engine run, so forked states share structure for free.
#ifndef SRC_EXPR_EXPR_H_
#define SRC_EXPR_EXPR_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace ddt {

enum class ExprKind : uint8_t {
  kConst,
  kVar,
  // Arithmetic (width-preserving, two operands).
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kSDiv,
  kURem,
  kSRem,
  // Bitwise.
  kAnd,
  kOr,
  kXor,
  kNot,   // one operand
  kShl,
  kLShr,
  kAShr,
  // Comparisons (result width 1).
  kEq,
  kUlt,
  kUle,
  kSlt,
  kSle,
  // Structural.
  kIte,      // ops: cond(width 1), then, else
  kExtract,  // aux = low bit index; width = extracted width
  kConcat,   // ops[0] = high part, ops[1] = low part; width = sum
  kZExt,
  kSExt,
};

const char* ExprKindName(ExprKind kind);

class Expr;
using ExprRef = const Expr*;

// Where a symbolic variable came from. Used by trace analysis (§3.6: "on what
// symbolic values did the condition depend, when were they created, why") and
// by the replayer to map solved values back onto concrete device/registry
// inputs.
struct VarOrigin {
  enum class Source : uint8_t {
    kHardwareRead,   // symbolic device register read; aux = BAR offset, seq = read index
    kInterruptSlot,  // reserved for symbolic interrupt timing choices
    kRegistry,       // annotation-injected registry value; label = parameter name
    kEntryArg,       // symbolic entry point argument; label = entry point name
    kPacketData,     // symbolic network packet contents
    kAnnotation,     // generic annotation-created value
    kTest,           // unit tests
  };
  Source source = Source::kTest;
  std::string label;
  uint64_t aux = 0;
  uint64_t seq = 0;
};

struct VarInfo {
  uint32_t id = 0;
  uint8_t width = 0;
  std::string name;
  VarOrigin origin;
};

class Expr {
 public:
  ExprKind kind() const { return kind_; }
  uint8_t width() const { return width_; }
  size_t hash() const { return hash_; }

  bool IsConst() const { return kind_ == ExprKind::kConst; }
  bool IsVar() const { return kind_ == ExprKind::kVar; }
  // True for width-1 constant 1 / 0.
  bool IsTrue() const;
  bool IsFalse() const;

  // Constant value (masked to width). Only valid when IsConst().
  uint64_t const_value() const { return aux_; }
  // Variable id. Only valid when IsVar().
  uint32_t var_id() const { return static_cast<uint32_t>(aux_); }
  // Extract low-bit index. Only valid for kExtract.
  uint32_t extract_low() const { return static_cast<uint32_t>(aux_); }

  int num_ops() const { return num_ops_; }
  ExprRef op(int i) const { return ops_[static_cast<size_t>(i)]; }

 private:
  friend class ExprContext;
  Expr() = default;

  ExprKind kind_ = ExprKind::kConst;
  uint8_t width_ = 0;
  uint8_t num_ops_ = 0;
  uint64_t aux_ = 0;
  std::array<ExprRef, 3> ops_ = {nullptr, nullptr, nullptr};
  size_t hash_ = 0;
};

// Builder + owner of expressions. All construction goes through the context
// so that structurally equal expressions are the same pointer, and so that
// cheap canonicalizations/folds happen exactly once.
class ExprContext {
 public:
  ExprContext();
  ExprContext(const ExprContext&) = delete;
  ExprContext& operator=(const ExprContext&) = delete;

  // --- Leaves ---
  ExprRef Const(uint64_t value, uint8_t width);
  ExprRef True() { return true_; }
  ExprRef False() { return false_; }
  ExprRef Var(uint8_t width, const std::string& name, const VarOrigin& origin = VarOrigin());

  // --- Arithmetic ---
  ExprRef Add(ExprRef a, ExprRef b);
  ExprRef Sub(ExprRef a, ExprRef b);
  ExprRef Mul(ExprRef a, ExprRef b);
  ExprRef UDiv(ExprRef a, ExprRef b);  // SMT-LIB semantics: x/0 == all-ones
  ExprRef SDiv(ExprRef a, ExprRef b);
  ExprRef URem(ExprRef a, ExprRef b);  // x%0 == x
  ExprRef SRem(ExprRef a, ExprRef b);
  ExprRef Neg(ExprRef a);  // two's complement negation

  // --- Bitwise ---
  ExprRef And(ExprRef a, ExprRef b);
  ExprRef Or(ExprRef a, ExprRef b);
  ExprRef Xor(ExprRef a, ExprRef b);
  ExprRef Not(ExprRef a);
  ExprRef Shl(ExprRef a, ExprRef amount);
  ExprRef LShr(ExprRef a, ExprRef amount);
  ExprRef AShr(ExprRef a, ExprRef amount);

  // --- Comparisons (width-1 results) ---
  ExprRef Eq(ExprRef a, ExprRef b);
  ExprRef Ne(ExprRef a, ExprRef b);
  ExprRef Ult(ExprRef a, ExprRef b);
  ExprRef Ule(ExprRef a, ExprRef b);
  ExprRef Ugt(ExprRef a, ExprRef b) { return Ult(b, a); }
  ExprRef Uge(ExprRef a, ExprRef b) { return Ule(b, a); }
  ExprRef Slt(ExprRef a, ExprRef b);
  ExprRef Sle(ExprRef a, ExprRef b);
  ExprRef Sgt(ExprRef a, ExprRef b) { return Slt(b, a); }
  ExprRef Sge(ExprRef a, ExprRef b) { return Sle(b, a); }

  // --- Boolean combinators over width-1 expressions ---
  ExprRef BoolAnd(ExprRef a, ExprRef b) { return And(a, b); }
  ExprRef BoolOr(ExprRef a, ExprRef b) { return Or(a, b); }
  ExprRef BoolNot(ExprRef a) { return Not(a); }

  // --- Structural ---
  ExprRef Ite(ExprRef cond, ExprRef then_expr, ExprRef else_expr);
  ExprRef Extract(ExprRef a, uint32_t low, uint8_t width);
  ExprRef Concat(ExprRef high, ExprRef low);
  ExprRef ZExt(ExprRef a, uint8_t width);
  ExprRef SExt(ExprRef a, uint8_t width);

  // Extracts byte `i` (0 = least significant).
  ExprRef ExtractByte(ExprRef a, uint32_t i) { return Extract(a, i * 8, 8); }

  const VarInfo& var_info(uint32_t id) const { return vars_[id]; }
  uint32_t num_vars() const { return static_cast<uint32_t>(vars_.size()); }
  size_t num_exprs() const { return all_.size(); }

 private:
  ExprRef Intern(ExprKind kind, uint8_t width, uint64_t aux, ExprRef a = nullptr,
                 ExprRef b = nullptr, ExprRef c = nullptr);

  struct ExprPtrHash {
    size_t operator()(const Expr* e) const { return e->hash(); }
  };
  struct ExprPtrEq {
    bool operator()(const Expr* a, const Expr* b) const;
  };

  std::deque<Expr> all_;  // stable addresses
  std::unordered_set<Expr*, ExprPtrHash, ExprPtrEq> interned_;
  std::vector<VarInfo> vars_;
  ExprRef true_ = nullptr;
  ExprRef false_ = nullptr;
};

// Masks `value` to `width` bits.
inline uint64_t MaskToWidth(uint64_t value, uint8_t width) {
  return width >= 64 ? value : (value & ((1ull << width) - 1));
}

// Sign-extends the low `width` bits of `value` to 64 bits.
inline int64_t SignExtend(uint64_t value, uint8_t width) {
  if (width >= 64) {
    return static_cast<int64_t>(value);
  }
  uint64_t sign_bit = 1ull << (width - 1);
  uint64_t masked = MaskToWidth(value, width);
  return static_cast<int64_t>((masked ^ sign_bit) - sign_bit);
}

// Collects the distinct variable ids referenced by `e`, in first-visit order.
void CollectVars(ExprRef e, std::vector<uint32_t>* out);
void CollectVars(ExprRef e, std::unordered_set<uint32_t>* out);

// Human-readable rendering, e.g. "(Add w32 (Var hw0) (Const 0x4))".
std::string ExprToString(ExprRef e);

}  // namespace ddt

#endif  // SRC_EXPR_EXPR_H_
