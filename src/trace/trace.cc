#include "src/trace/trace.h"

#include "src/support/strings.h"

namespace ddt {

const char* TraceEventKindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kExec:
      return "exec";
    case TraceEvent::Kind::kMemRead:
      return "read";
    case TraceEvent::Kind::kMemWrite:
      return "write";
    case TraceEvent::Kind::kBranch:
      return "branch";
    case TraceEvent::Kind::kSymCreate:
      return "sym-create";
    case TraceEvent::Kind::kKCall:
      return "kcall";
    case TraceEvent::Kind::kKRet:
      return "kret";
    case TraceEvent::Kind::kEntryEnter:
      return "entry-enter";
    case TraceEvent::Kind::kEntryExit:
      return "entry-exit";
    case TraceEvent::Kind::kInterrupt:
      return "interrupt";
    case TraceEvent::Kind::kConstraint:
      return "constraint";
    case TraceEvent::Kind::kConcretize:
      return "concretize";
    case TraceEvent::Kind::kBugMark:
      return "BUG";
  }
  return "?";
}

void TraceRecorder::Append(const TraceEvent& event) {
  if (exec_tail_.size() + other_tail_.size() >= max_tail_events_) {
    DropOldestHalf();
  }
  other_exec_before_.push_back(exec_tail_.size());
  other_tail_.push_back(event);
}

void TraceRecorder::DropOldestHalf() {
  const size_t total = exec_tail_.size() + other_tail_.size();
  const size_t half = total / 2;
  // Full event i sits at interleaved position exec_before[i] + i, which is
  // strictly increasing in i, so the oldest-half cut contains exactly the
  // full events whose interleaved position is below `half` — and the rest of
  // the cut is the oldest execs.
  size_t drop_other = 0;
  while (drop_other < other_tail_.size() &&
         other_exec_before_[drop_other] + drop_other < half) {
    ++drop_other;
  }
  const size_t drop_exec = half - drop_other;
  exec_tail_.erase(exec_tail_.begin(),
                   exec_tail_.begin() + static_cast<ptrdiff_t>(drop_exec));
  other_tail_.erase(other_tail_.begin(),
                    other_tail_.begin() + static_cast<ptrdiff_t>(drop_other));
  other_exec_before_.erase(
      other_exec_before_.begin(),
      other_exec_before_.begin() + static_cast<ptrdiff_t>(drop_other));
  // Every surviving full event is newer than the whole cut, so its exec
  // count is at least drop_exec and the rebase cannot underflow.
  for (uint64_t& before : other_exec_before_) {
    before -= drop_exec;
  }
  dropped_ += half;
}

TraceRecorder TraceRecorder::Fork() {
  if (!exec_tail_.empty() || !other_tail_.empty()) {
    auto frozen = std::make_shared<Segment>();
    frozen->exec_pcs = std::move(exec_tail_);
    frozen->events = std::move(other_tail_);
    frozen->exec_before = std::move(other_exec_before_);
    frozen->parent = parent_;
    frozen->dropped = dropped_;
    parent_ = frozen;
    exec_tail_.clear();
    other_tail_.clear();
    other_exec_before_.clear();
  }
  TraceRecorder sibling;
  sibling.parent_ = parent_;
  sibling.dropped_ = dropped_;
  sibling.max_tail_events_ = max_tail_events_;
  return sibling;
}

size_t TraceRecorder::TotalEvents() const {
  size_t total = exec_tail_.size() + other_tail_.size();
  for (const Segment* seg = parent_.get(); seg != nullptr; seg = seg->parent.get()) {
    total += seg->exec_pcs.size() + seg->events.size();
  }
  return total;
}

void TraceRecorder::InterleaveInto(const std::vector<uint32_t>& exec_pcs,
                                   const std::vector<TraceEvent>& events,
                                   const std::vector<uint64_t>& exec_before,
                                   std::vector<TraceEvent>* out) {
  TraceEvent exec;
  exec.kind = TraceEvent::Kind::kExec;
  size_t oi = 0;
  for (size_t j = 0; j < exec_pcs.size(); ++j) {
    while (oi < events.size() && exec_before[oi] <= j) {
      out->push_back(events[oi]);
      ++oi;
    }
    exec.pc = exec_pcs[j];
    out->push_back(exec);
  }
  out->insert(out->end(), events.begin() + static_cast<ptrdiff_t>(oi), events.end());
}

std::vector<TraceEvent> TraceRecorder::Reconstruct() const {
  std::vector<const Segment*> chain;
  for (const Segment* seg = parent_.get(); seg != nullptr; seg = seg->parent.get()) {
    chain.push_back(seg);
  }
  std::vector<TraceEvent> out;
  out.reserve(TotalEvents());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    InterleaveInto((*it)->exec_pcs, (*it)->events, (*it)->exec_before, &out);
  }
  InterleaveInto(exec_tail_, other_tail_, other_exec_before_, &out);
  return out;
}

std::string TraceSymbolizer::Label(uint32_t addr) const {
  auto it = symbols_.upper_bound(addr);
  if (it == symbols_.begin()) {
    return StrFormat("0x%08x", addr);
  }
  --it;
  uint32_t offset = addr - it->first;
  if (offset == 0) {
    return it->second;
  }
  return StrFormat("%s+0x%x", it->second.c_str(), offset);
}

std::string FormatTrace(const std::vector<TraceEvent>& events, size_t max_lines,
                        const TraceSymbolizer* symbolizer) {
  auto pc_label = [&](uint32_t pc) {
    return symbolizer != nullptr ? symbolizer->Label(pc) : StrFormat("%08x", pc);
  };
  std::string out;
  size_t start = events.size() > max_lines ? events.size() - max_lines : 0;
  if (start > 0) {
    out += StrFormat("... (%zu earlier events elided)\n", start);
  }
  for (size_t i = start; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    switch (e.kind) {
      case TraceEvent::Kind::kExec:
        out += StrFormat("  exec  pc=%s\n", pc_label(e.pc).c_str());
        break;
      case TraceEvent::Kind::kMemRead:
      case TraceEvent::Kind::kMemWrite:
        out += StrFormat("  %-5s pc=%s addr=%08x size=%u value=%08x%s\n",
                         TraceEventKindName(e.kind), pc_label(e.pc).c_str(), e.addr, e.size,
                         e.value, e.value_symbolic ? " (symbolic)" : "");
        break;
      case TraceEvent::Kind::kBranch:
        out += StrFormat("  branch pc=%s -> %s%s\n", pc_label(e.pc).c_str(),
                         pc_label(e.a).c_str(), e.b != 0 ? " [forked]" : "");
        break;
      case TraceEvent::Kind::kSymCreate:
        out += StrFormat("  sym-create v%u at pc=%08x\n", e.a, e.pc);
        break;
      case TraceEvent::Kind::kKCall:
        out += StrFormat("  kcall #%u pc=%08x\n", e.a, e.pc);
        break;
      case TraceEvent::Kind::kKRet:
        out += StrFormat("  kret  #%u -> 0x%x\n", e.a, e.b);
        break;
      case TraceEvent::Kind::kEntryEnter:
        out += StrFormat("  >>> entry slot %u\n", e.a);
        break;
      case TraceEvent::Kind::kEntryExit:
        out += StrFormat("  <<< entry slot %u status 0x%x\n", e.a, e.b);
        break;
      case TraceEvent::Kind::kInterrupt:
        out += StrFormat("  *** symbolic interrupt injected (crossing %u)\n", e.a);
        break;
      case TraceEvent::Kind::kConstraint:
        out += StrFormat("  constraint: %s\n",
                         e.expr != nullptr ? ExprToString(e.expr).c_str() : "?");
        break;
      case TraceEvent::Kind::kConcretize:
        out += StrFormat("  concretize -> 0x%x (%s)\n", e.a,
                         e.expr != nullptr ? ExprToString(e.expr).c_str() : "?");
        break;
      case TraceEvent::Kind::kBugMark:
        out += StrFormat("  !!! BUG #%u fired here (pc=%08x)\n", e.a, e.pc);
        break;
    }
  }
  return out;
}

}  // namespace ddt
