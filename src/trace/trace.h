// Execution traces (§3.5).
//
// Every execution state carries a trace: the program counters of executed
// instructions, all memory accesses (address, value, size, read/write,
// whether the value was symbolic), creation of symbolic values, branch
// decisions with a fork flag, kernel API calls/returns, entry-point
// transitions, and injected interrupts. Traces are what makes a DDT bug
// report *replayable evidence* rather than a claim.
//
// Like guest memory, traces fork cheaply: a TraceRecorder is a mutable tail
// over a chain of frozen parent segments, so a fork shares its prefix with
// its sibling. Reconstructing the full trace walks the chain once.
#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/expr/expr.h"

namespace ddt {

struct TraceEvent {
  enum class Kind : uint8_t {
    kExec,          // pc executed
    kMemRead,       // addr/value/size; value_symbolic if the byte(s) were
    kMemWrite,
    kBranch,        // pc = branch site, a = taken target, b = forked (0/1)
    kSymCreate,     // a = variable id
    kKCall,         // a = import index
    kKRet,          // a = import index, b = concrete return (if concrete)
    kEntryEnter,    // a = slot
    kEntryExit,     // a = slot, b = status
    kInterrupt,     // a = boundary-crossing index the ISR was injected at
    kConstraint,    // expr = the added path constraint
    kConcretize,    // a = chosen value; expr = the concretized expression
    kBugMark,       // a = bug index; marks where on the path the bug fired
  };

  Kind kind = Kind::kExec;
  uint32_t pc = 0;
  uint32_t addr = 0;
  uint32_t value = 0;
  uint8_t size = 0;
  bool value_symbolic = false;
  uint32_t a = 0;
  uint32_t b = 0;
  ExprRef expr = nullptr;
};

const char* TraceEventKindName(TraceEvent::Kind kind);

class TraceRecorder {
 public:
  TraceRecorder() = default;

  void Append(const TraceEvent& event);

  // Fast path for the one event kind appended once per retired instruction.
  // A kExec event is nothing but a pc, so it is stored as a bare uint32_t in
  // a vector parallel to the full-event tail; every full event carries a
  // stamp (how many execs preceded it) and Reconstruct() interleaves the two
  // streams back into the exact sequence the slow path would have produced.
  // This is what keeps per-instruction tracing off the execution loop's
  // critical path without changing a single reconstructed byte.
  void AppendExec(uint32_t pc) {
    if (exec_tail_.size() + other_tail_.size() >= max_tail_events_) {
      DropOldestHalf();
    }
    exec_tail_.push_back(pc);
  }

  // Freezes the current tail and returns a sibling recorder sharing the whole
  // prefix. `this` keeps recording into a fresh tail.
  TraceRecorder Fork();

  // Total events on this path (chain + tail).
  size_t TotalEvents() const;

  // Reconstructs the full event sequence, oldest first.
  std::vector<TraceEvent> Reconstruct() const;

  // Caps the number of *local tail* events; on overflow the oldest local
  // events are dropped and dropped_events() counts them. Bug traces "rarely
  // exceed 1 MB" in the paper; the cap keeps worst-case paths bounded.
  void set_max_tail_events(size_t cap) { max_tail_events_ = cap; }
  uint64_t dropped_events() const { return dropped_; }

 private:
  struct Segment {
    std::vector<uint32_t> exec_pcs;
    std::vector<TraceEvent> events;
    // exec_before[i] = how many exec pcs of this segment precede events[i].
    std::vector<uint64_t> exec_before;
    std::shared_ptr<const Segment> parent;
    uint64_t dropped = 0;
  };

  // Drops the oldest half of the *interleaved* tail sequence — the same set
  // the single-vector implementation would drop — keeping recency (the bug
  // site is at the end of a trace). Out-of-line and cold: AppendExec sits on
  // the execution loop's critical path and must stay a branch + push_back.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((cold, noinline))
#endif
  void DropOldestHalf();

  static void InterleaveInto(const std::vector<uint32_t>& exec_pcs,
                             const std::vector<TraceEvent>& events,
                             const std::vector<uint64_t>& exec_before,
                             std::vector<TraceEvent>* out);

  std::shared_ptr<const Segment> parent_;
  std::vector<uint32_t> exec_tail_;
  std::vector<TraceEvent> other_tail_;
  std::vector<uint64_t> other_exec_before_;
  uint64_t dropped_ = 0;
  size_t max_tail_events_ = 1 << 20;
};

// Maps guest addresses to human labels for trace rendering — §3.5: "when
// driver source code is available, DDT-produced execution paths can be
// automatically mapped to source code lines and variables". With an
// assembler symbol table, every pc renders as "symbol+0xoff".
class TraceSymbolizer {
 public:
  // `symbols` maps addresses to names (e.g. AssembledDriver::symbols
  // inverted). Addresses between symbols attribute to the closest preceding
  // one.
  explicit TraceSymbolizer(std::map<uint32_t, std::string> symbols)
      : symbols_(std::move(symbols)) {}

  // "ep_init+0x18", or "0x00010018" if no symbol precedes the address.
  std::string Label(uint32_t addr) const;

 private:
  std::map<uint32_t, std::string> symbols_;
};

// Renders a human-readable listing of a reconstructed trace (bug reports and
// the example binaries use this). With a symbolizer, code addresses are
// rendered as symbol+offset.
std::string FormatTrace(const std::vector<TraceEvent>& events, size_t max_lines = 10000,
                        const TraceSymbolizer* symbolizer = nullptr);

}  // namespace ddt

#endif  // SRC_TRACE_TRACE_H_
