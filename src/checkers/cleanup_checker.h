// Fault-path cleanup verification (§3.4 campaigns).
//
// When a FaultPlan deliberately fails a kernel API call and the entry point
// then (correctly) reports failure, every resource acquired before the
// injected fault must already have been released — the caller will never
// invoke Halt after a failed Initialize. LeakChecker covers the generic
// failed-init checkpoint; this checker runs only on paths where faults were
// actually injected and names the exact failure schedule in its report, so a
// campaign's merged bug list distinguishes "leaks on the ordinary failure
// path" from "leaks only when the n-th allocation fails".
//
// Inert on plain (no-plan) runs by construction: it keys off
// KernelState::faults_injected, which stays empty without an active plan.
#ifndef SRC_CHECKERS_CLEANUP_CHECKER_H_
#define SRC_CHECKERS_CLEANUP_CHECKER_H_

#include "src/engine/checker.h"

namespace ddt {

class CleanupChecker : public Checker {
 public:
  std::string name() const override { return "fault-cleanup"; }
  void OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) override;
};

}  // namespace ddt

#endif  // SRC_CHECKERS_CLEANUP_CHECKER_H_
