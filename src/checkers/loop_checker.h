// Infinite-loop detection (the paper cites path-based infinite-loop
// detection [34] as a VM-level check enabled by symbolic execution;
// Ganapathi et al. attribute 13% of driver crashes to infinite loops).
//
// Two tiers:
//   1. Precise: after a warm-up, the checker periodically fingerprints the
//      machine state (pc + concrete register file + write-set size). If an
//      identical fingerprint recurs within the same driver invocation with
//      no intervening memory writes or kernel calls, the execution is
//      provably periodic — a definite infinite loop, reported as such.
//   2. Heuristic backstop: a very large number of instructions without any
//      kernel/driver boundary crossing (typical of polling loops whose exit
//      depends on device state that never satisfies them).
#ifndef SRC_CHECKERS_LOOP_CHECKER_H_
#define SRC_CHECKERS_LOOP_CHECKER_H_

#include "src/engine/checker.h"

namespace ddt {

class LoopChecker : public Checker {
 public:
  explicit LoopChecker(uint64_t max_steps_without_boundary = 100000,
                       uint64_t fingerprint_warmup = 512)
      : max_steps_(max_steps_without_boundary), warmup_(fingerprint_warmup) {}

  std::string name() const override { return "infinite-loop"; }
  std::unique_ptr<CheckerState> MakeState() const override;
  void OnInstruction(ExecutionState& st, uint32_t pc, CheckerHost& host) override;
  void OnMemAccess(ExecutionState& st, const MemAccessEvent& access, CheckerHost& host) override;
  void OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) override;

 private:
  uint64_t max_steps_;
  uint64_t warmup_;
};

}  // namespace ddt

#endif  // SRC_CHECKERS_LOOP_CHECKER_H_
