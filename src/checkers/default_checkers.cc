#include "src/checkers/default_checkers.h"

#include "src/checkers/cleanup_checker.h"
#include "src/checkers/leak_checker.h"
#include "src/checkers/lock_checker.h"
#include "src/checkers/loop_checker.h"
#include "src/checkers/memory_checker.h"
#include "src/checkers/race_checker.h"

namespace ddt {

std::vector<std::unique_ptr<Checker>> MakeDefaultCheckers() {
  std::vector<std::unique_ptr<Checker>> checkers;
  checkers.push_back(std::make_unique<MemoryChecker>());
  // CleanupChecker must precede LeakChecker: both fire on the same
  // entry-exit event, the first report terminates the path, and the
  // fault-specific report (with its failure schedule) is the one a campaign
  // needs to distinguish from the generic failed-init leak.
  checkers.push_back(std::make_unique<CleanupChecker>());
  checkers.push_back(std::make_unique<LeakChecker>());
  checkers.push_back(std::make_unique<LockChecker>());
  checkers.push_back(std::make_unique<RaceChecker>());
  checkers.push_back(std::make_unique<LoopChecker>());
  return checkers;
}

}  // namespace ddt
