// Resource/memory leak detection (§3.1, "memory leaks and other resource
// leaks" — verified on exit paths, per the resource allocation hints).
//
// Two checkpoints:
//   - a failed Initialize: everything acquired during initialization must
//     have been released on the failure path (the RTL8029/PCNet/Pro1000
//     bug pattern);
//   - Halt (unload): nothing may remain live at all.
//
// Pool memory allocated via the Ex-style APIs reports as a memory leak;
// NDIS-style tagged memory, configuration handles, packets and packet pools
// report as resource leaks (matching Table 2's naming).
#ifndef SRC_CHECKERS_LEAK_CHECKER_H_
#define SRC_CHECKERS_LEAK_CHECKER_H_

#include "src/engine/checker.h"

namespace ddt {

class LeakChecker : public Checker {
 public:
  std::string name() const override { return "resource-leak"; }
  void OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) override;

 private:
  void CheckLeaks(ExecutionState& st, CheckerHost& host, int slot, bool unload);
};

}  // namespace ddt

#endif  // SRC_CHECKERS_LEAK_CHECKER_H_
