// Checkbochs-style DMA checker (the paper cites hardware-level rule checking
// in the virtual machine — Checkbochs — as the model for device-facing
// checks).
//
// Every concrete pointer-sized value the driver writes into the device's
// MMIO window is validated against live kernel allocation/mapping state:
//   - a DMA target inside a pageable grant (a request buffer handed down
//     from user space) is a bug: the device bypasses the MMU and page faults
//     cannot be serviced on its behalf;
//   - a DMA target inside freed pool memory is a bug at programming time;
//   - a DMA target inside live pool memory registers device *ownership* of
//     that register; if the backing allocation is freed while the register
//     still points at it (quiesce write lost to surprise removal or a
//     dropped doorbell), that is the classic free-while-DMA-active bug.
// Writing any other value to a register the device owned releases it.
//
// Opt-in (DdtConfig::dma_checker): the checker changes which paths die early
// (its reports terminate the path), so plain baselines keep it off.
#ifndef SRC_CHECKERS_DMA_CHECKER_H_
#define SRC_CHECKERS_DMA_CHECKER_H_

#include "src/engine/checker.h"

namespace ddt {

class DmaChecker : public Checker {
 public:
  std::string name() const override { return "dma"; }
  std::unique_ptr<CheckerState> MakeState() const override;
  void OnMmioWrite(ExecutionState& st, const MmioWriteEvent& write, CheckerHost& host) override;
  void OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) override;
};

}  // namespace ddt

#endif  // SRC_CHECKERS_DMA_CHECKER_H_
