// VM-level memory access verification (§3.1.1).
//
// On each driver memory access, checks whether the driver has sufficient
// permissions. The accessible regions mirror the paper's list:
//   - dynamically allocated memory and buffers (live pool allocations),
//   - buffers passed to the driver (kernel memory grants: request buffers,
//     packet descriptors/payloads, configuration blocks),
//   - the driver's own image (code read-only, data/bss read-write),
//   - the current driver stack, with accesses below the stack pointer
//     prohibited (an interrupt handler could overwrite them),
//   - hardware-related areas (the MMIO window — dispatched to the device
//     model by the engine before checkers run, so never seen here).
//
// Everything else is a bug: reads are segmentation faults (the null page
// yields "null pointer dereference"), writes are memory corruption.
#ifndef SRC_CHECKERS_MEMORY_CHECKER_H_
#define SRC_CHECKERS_MEMORY_CHECKER_H_

#include "src/engine/checker.h"

namespace ddt {

class MemoryChecker : public Checker {
 public:
  std::string name() const override { return "memory-access"; }
  void OnMemAccess(ExecutionState& st, const MemAccessEvent& access, CheckerHost& host) override;
};

}  // namespace ddt

#endif  // SRC_CHECKERS_MEMORY_CHECKER_H_
