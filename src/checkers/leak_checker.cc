#include "src/checkers/leak_checker.h"

#include "src/engine/execution_state.h"
#include "src/support/strings.h"

namespace ddt {

void LeakChecker::OnKernelEvent(ExecutionState& st, const KernelEvent& event,
                                CheckerHost& host) {
  if (event.kind != KernelEvent::Kind::kEntryExit) {
    return;
  }
  int slot = static_cast<int>(event.a);
  uint32_t status = event.b;
  if (slot == kEpInitialize && status != kStatusSuccess) {
    // Failure path: everything acquired during init must be gone.
    CheckLeaks(st, host, kEpInitialize, /*unload=*/false);
  } else if (slot == kEpHalt) {
    CheckLeaks(st, host, -1, /*unload=*/true);
  }
}

void LeakChecker::CheckLeaks(ExecutionState& st, CheckerHost& host, int slot, bool unload) {
  const KernelState& ks = st.kernel;
  const char* when = unload ? "at driver unload" : "on failed initialization";

  for (const PoolAllocation* alloc : ks.LiveAllocations(slot)) {
    // Interrupt-sync objects and similar kernel-owned helpers are freed by
    // the kernel at teardown; skip kernel-internal tags.
    bool ndis_style = alloc->api == "MosAllocateMemoryWithTag";
    bool kernel_internal = alloc->api == "MosNewInterruptSync";
    if (kernel_internal) {
      continue;
    }
    if (ndis_style) {
      host.ReportBug(st, BugType::kResourceLeak,
                     StrFormat("driver does not free memory allocated with "
                               "MosAllocateMemoryWithTag (tag 0x%x, %u bytes) %s",
                               alloc->tag, alloc->size, when),
                     StrFormat("allocation 0x%x from %s is still live", alloc->addr,
                               alloc->api.c_str()));
    } else {
      host.ReportBug(st, BugType::kMemoryLeak,
                     StrFormat("memory leak %s: %u bytes from %s never freed", when,
                               alloc->size, alloc->api.c_str()),
                     StrFormat("allocation 0x%x (tag 0x%x) is still live", alloc->addr,
                               alloc->tag));
    }
    return;  // one leak report per checkpoint; the path terminates anyway
  }

  for (uint32_t handle : ks.OpenConfigHandles(slot)) {
    host.ReportBug(st, BugType::kResourceLeak,
                   StrFormat("driver does not call MosCloseConfiguration %s", when),
                   StrFormat("configuration handle 0x%x is still open", handle));
    return;
  }

  for (const auto& [desc, packet] : ks.packets) {
    if (packet.alive) {
      host.ReportBug(st, BugType::kResourceLeak,
                     StrFormat("driver does not free allocated packets %s", when),
                     StrFormat("packet 0x%x from pool 0x%x is still outstanding", desc,
                               packet.pool));
      return;
    }
  }
  for (const auto& [handle, pool] : ks.packet_pools) {
    if (pool.alive) {
      host.ReportBug(st, BugType::kResourceLeak,
                     StrFormat("driver does not free its packet pool %s", when),
                     StrFormat("packet pool 0x%x is still live", handle));
      return;
    }
  }
}

}  // namespace ddt
