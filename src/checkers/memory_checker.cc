#include "src/checkers/memory_checker.h"

#include "src/engine/execution_state.h"
#include "src/solver/solver.h"
#include "src/support/strings.h"
#include "src/vm/layout.h"

namespace ddt {

// Note: the *symbolic* address bounds analysis ("can this address expression
// escape every accessible region?") lives in the engine's address-resolution
// path — it must fork (report the escaping case, constrain the surviving
// path in-bounds) which only the engine can do. This checker verifies the
// resolved concrete access.
void MemoryChecker::OnMemAccess(ExecutionState& st, const MemAccessEvent& access,
                                CheckerHost& host) {
  const KernelState& ks = st.kernel;
  uint32_t addr = access.addr;

  auto provenance = [&]() -> std::string {
    if (!access.addr_was_symbolic) {
      return "";
    }
    std::string expr = access.addr_expr != nullptr ? ExprToString(access.addr_expr) : "?";
    if (expr.size() > 160) {
      expr.resize(160);
      expr += "...";
    }
    return StrFormat("; address derived from symbolic data: %s", expr.c_str());
  };

  // Null page: classic null (or near-null) pointer dereference.
  if (addr < kNullGuardEnd) {
    host.ReportBug(st, BugType::kSegfault,
                   StrFormat("null pointer dereference (%s of %u bytes at 0x%x)",
                             access.is_write ? "write" : "read", access.size, addr),
                   StrFormat("access to the unmapped null page%s", provenance().c_str()));
    return;
  }

  // Driver image: code is execute/read-only; data and bss are read-write.
  if (ks.driver.ContainsCode(addr)) {
    if (access.is_write) {
      host.ReportBug(st, BugType::kMemoryCorruption,
                     StrFormat("write to driver code segment at 0x%x", addr),
                     StrFormat("code is mapped read-only%s", provenance().c_str()));
    }
    return;
  }
  if (ks.driver.ContainsData(addr)) {
    return;
  }

  // Driver stack: accesses below the stack pointer are prohibited — an
  // interrupt handler saving context would overwrite them (§3.1.1).
  if (InRange(addr, kDriverStackBottom, kDriverStackTop)) {
    Value sp = st.Reg(kRegSp);
    if (sp.IsConcrete() && addr < sp.concrete()) {
      host.ReportBug(
          st, BugType::kMemoryCorruption,
          StrFormat("%s below the stack pointer (addr 0x%x < sp 0x%x)",
                    access.is_write ? "write" : "read", addr, sp.concrete()),
          "memory below sp can be overwritten by an interrupt handler saving context");
    }
    return;
  }

  // Kernel pool: must hit a live allocation.
  if (InRange(addr, kKernelHeapBase, kKernelHeapLimit)) {
    const PoolAllocation* alloc = ks.FindAllocation(addr);
    if (alloc == nullptr) {
      host.ReportBug(st,
                     access.is_write ? BugType::kMemoryCorruption : BugType::kSegfault,
                     StrFormat("heap %s outside any allocation at 0x%x",
                               access.is_write ? "write" : "read", addr),
                     StrFormat("out-of-bounds pool access%s", provenance().c_str()));
      return;
    }
    if (!alloc->alive) {
      host.ReportBug(st, access.is_write ? BugType::kMemoryCorruption : BugType::kSegfault,
                     StrFormat("use-after-free: %s at 0x%x in freed allocation 0x%x (%s)",
                               access.is_write ? "write" : "read", addr, alloc->addr,
                               alloc->api.c_str()),
                     StrFormat("allocation was freed earlier on this path%s",
                               provenance().c_str()));
      return;
    }
    if (addr + access.size > alloc->addr + alloc->size) {
      host.ReportBug(st, access.is_write ? BugType::kMemoryCorruption : BugType::kSegfault,
                     StrFormat("heap overflow: %u-byte %s at 0x%x overruns allocation "
                               "0x%x (+%u bytes)",
                               access.size, access.is_write ? "write" : "read", addr,
                               alloc->addr, alloc->size),
                     StrFormat("access crosses the allocation's end%s", provenance().c_str()));
    }
    return;
  }

  // Kernel grants (request buffers, packets, parameter blocks). Pageable
  // grants must only be touched at PASSIVE_LEVEL — at DISPATCH or above a
  // page fault cannot be serviced (the paper's "accesses to pageable memory
  // when page faults are not allowed" checker).
  if (const MemoryGrant* grant = ks.FindGrant(addr); grant != nullptr) {
    if (grant->pageable && ks.irql >= Irql::kDispatch) {
      host.ReportBug(st, BugType::kKernelCrash,
                     StrFormat("pageable buffer 0x%x touched at IRQL %s", addr,
                               IrqlName(ks.irql)),
                     "a page fault at raised IRQL bugchecks the machine "
                     "(IRQL_NOT_LESS_OR_EQUAL)");
    }
    return;
  }

  // Anything else is off-limits to the driver.
  host.ReportBug(st, access.is_write ? BugType::kMemoryCorruption : BugType::kSegfault,
                 StrFormat("invalid %s of %u bytes at 0x%x",
                           access.is_write ? "write" : "read", access.size, addr),
                 StrFormat("address is outside every region the driver may access%s",
                           provenance().c_str()));
}

}  // namespace ddt
