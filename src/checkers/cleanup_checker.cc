#include "src/checkers/cleanup_checker.h"

#include "src/engine/execution_state.h"
#include "src/engine/fault_injection.h"
#include "src/support/strings.h"

namespace ddt {

void CleanupChecker::OnKernelEvent(ExecutionState& st, const KernelEvent& event,
                                   CheckerHost& host) {
  if (event.kind != KernelEvent::Kind::kEntryExit) {
    return;
  }
  const KernelState& ks = st.kernel;
  if (ks.faults_injected.empty()) {
    return;  // plain run or fault-free path: LeakChecker's territory
  }
  int slot = static_cast<int>(event.a);
  uint32_t status = event.b;
  if (status == kStatusSuccess) {
    return;  // the driver absorbed the fault; nothing to verify here
  }

  // The entry point reported failure under an injected fault. The kernel
  // will not call back to clean up, so anything acquired during this entry
  // must already be gone.
  std::string schedule = FormatFaultSchedule(ks.faults_injected);

  for (const PoolAllocation* alloc : ks.LiveAllocations(slot)) {
    if (alloc->api == "MosNewInterruptSync") {
      continue;  // kernel-owned helper, freed by the kernel at teardown
    }
    host.ReportBug(st, BugType::kResourceLeak,
                   StrFormat("%s leaks %u bytes from %s when %s fails", EntrySlotName(slot),
                             alloc->size, alloc->api.c_str(), schedule.c_str()),
                   StrFormat("entry returned status 0x%x under injected fault(s) [%s] but "
                             "allocation 0x%x (tag 0x%x) is still live",
                             status, schedule.c_str(), alloc->addr, alloc->tag));
    return;  // one report per checkpoint; the path terminates anyway
  }

  for (uint32_t handle : ks.OpenConfigHandles(slot)) {
    host.ReportBug(st, BugType::kResourceLeak,
                   StrFormat("%s leaks a configuration handle when %s fails",
                             EntrySlotName(slot), schedule.c_str()),
                   StrFormat("entry returned status 0x%x under injected fault(s) [%s] but "
                             "configuration handle 0x%x is still open",
                             status, schedule.c_str(), handle));
    return;
  }

  for (const auto& [desc, packet] : ks.packets) {
    if (packet.alive) {
      host.ReportBug(st, BugType::kResourceLeak,
                     StrFormat("%s leaks a packet when %s fails", EntrySlotName(slot),
                               schedule.c_str()),
                     StrFormat("entry returned status 0x%x under injected fault(s) [%s] but "
                               "packet 0x%x from pool 0x%x is still outstanding",
                               status, schedule.c_str(), desc, packet.pool));
      return;
    }
  }
  for (const auto& [handle, pool] : ks.packet_pools) {
    if (pool.alive) {
      host.ReportBug(st, BugType::kResourceLeak,
                     StrFormat("%s leaks its packet pool when %s fails", EntrySlotName(slot),
                               schedule.c_str()),
                     StrFormat("entry returned status 0x%x under injected fault(s) [%s] but "
                               "packet pool 0x%x is still live",
                               status, schedule.c_str(), handle));
      return;
    }
  }
}

}  // namespace ddt
