// Lockset-based race detection across entry-point and interrupt contexts.
//
// Symbolic interrupts (§3.3) let DDT run the ISR at arbitrary points; this
// checker watches which shared driver state (data segment + heap) each
// context touches and with which spinlocks held. A location written in one
// context and accessed in another with no common lock is a race — this is
// how the non-crashing AudioPCI races ("race condition in the initialization
// routine", "races with interrupts while playing audio") surface without
// needing the interleaving to actually corrupt anything on this run.
#ifndef SRC_CHECKERS_RACE_CHECKER_H_
#define SRC_CHECKERS_RACE_CHECKER_H_

#include "src/engine/checker.h"

namespace ddt {

class RaceChecker : public Checker {
 public:
  std::string name() const override { return "race-lockset"; }
  std::unique_ptr<CheckerState> MakeState() const override;
  void OnMemAccess(ExecutionState& st, const MemAccessEvent& access, CheckerHost& host) override;
};

}  // namespace ddt

#endif  // SRC_CHECKERS_RACE_CHECKER_H_
