// The default checker set (§2: "DDT provides a default set of checkers, and
// this set can be extended with an arbitrary number of other checkers").
#ifndef SRC_CHECKERS_DEFAULT_CHECKERS_H_
#define SRC_CHECKERS_DEFAULT_CHECKERS_H_

#include <memory>
#include <vector>

#include "src/engine/checker.h"

namespace ddt {

// memory-access, resource-leak, spinlock, race-lockset, infinite-loop.
std::vector<std::unique_ptr<Checker>> MakeDefaultCheckers();

}  // namespace ddt

#endif  // SRC_CHECKERS_DEFAULT_CHECKERS_H_
