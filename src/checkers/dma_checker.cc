#include "src/checkers/dma_checker.h"

#include <map>

#include "src/engine/execution_state.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

struct DmaCheckerState : public CheckerState {
  // MMIO register offset -> guest address the device currently owns as a
  // DMA target through that register. std::map keeps report iteration
  // deterministic.
  std::map<uint32_t, uint32_t> owned;

  std::unique_ptr<CheckerState> Clone() const override {
    return std::make_unique<DmaCheckerState>(*this);
  }
};

DmaCheckerState& StateOf(ExecutionState& st) {
  return *static_cast<DmaCheckerState*>(st.checker_state.at("dma").get());
}

}  // namespace

std::unique_ptr<CheckerState> DmaChecker::MakeState() const {
  return std::make_unique<DmaCheckerState>();
}

void DmaChecker::OnMmioWrite(ExecutionState& st, const MmioWriteEvent& write, CheckerHost& host) {
  if (!write.value_concrete || write.size < 4) {
    return;  // not a (whole) pointer; partial-pointer programming is out of scope
  }
  DmaCheckerState& dcs = StateOf(st);
  const KernelState& ks = st.kernel;
  uint32_t target = write.value;

  const MemoryGrant* grant = ks.FindGrant(target);
  if (grant != nullptr && grant->pageable) {
    host.ReportBug(st, BugType::kMemoryCorruption,
                   StrFormat("DMA target in pageable memory: register +0x%x programmed with 0x%x",
                             write.offset, target),
                   StrFormat("the device bypasses the MMU; buffer 0x%x..0x%x is a pageable "
                             "request buffer and may be paged out when the device masters the "
                             "bus (Checkbochs DMA rule)",
                             grant->begin, grant->end));
    return;
  }

  const PoolAllocation* alloc = ks.FindAllocation(target);
  if (alloc != nullptr && !alloc->alive) {
    host.ReportBug(st, BugType::kMemoryCorruption,
                   StrFormat("DMA target in freed memory: register +0x%x programmed with 0x%x",
                             write.offset, target),
                   StrFormat("0x%x lies in pool allocation 0x%x (%u bytes from %s) that was "
                             "already freed when the driver handed it to the device",
                             target, alloc->addr, alloc->size, alloc->api.c_str()));
    return;
  }
  if (alloc != nullptr) {
    dcs.owned[write.offset] = target;  // device owns this buffer from here
    return;
  }
  dcs.owned.erase(write.offset);  // non-pool value: the register was released
}

void DmaChecker::OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) {
  if (event.kind != KernelEvent::Kind::kFree) {
    return;
  }
  DmaCheckerState& dcs = StateOf(st);
  if (dcs.owned.empty()) {
    return;
  }
  const KernelState& ks = st.kernel;
  uint32_t freed = event.a;
  auto it = ks.pool.find(freed);
  if (it == ks.pool.end()) {
    return;
  }
  uint32_t end = freed + it->second.size;
  for (const auto& [offset, target] : dcs.owned) {
    if (target >= freed && target < end) {
      host.ReportBug(
          st, BugType::kMemoryCorruption,
          StrFormat("pool memory freed while the device owns it as a DMA target "
                    "(register +0x%x)",
                    offset),
          StrFormat("allocation 0x%x (%u bytes) freed but MMIO register +0x%x still points at "
                    "0x%x; the device can master the bus into recycled memory (quiesce write "
                    "lost or never issued)",
                    freed, it->second.size, offset, target));
      return;  // one report; the path terminates
    }
  }
}

}  // namespace ddt
