// Spinlock discipline checking beyond the kernel verifier's bugchecks.
//
// The in-guest verifier (kernel module) already bugchecks on the crashing
// misuses: recursive acquisition, releasing an unheld lock, releasing with
// the wrong Dpr variant. This checker covers the non-crashing disciplines
// DDT's path exploration makes visible:
//   - cross-path lock-order inversion (AB/BA deadlock): a *global* lock-order
//     graph accumulates acquisition edges from every explored path; a cycle
//     means two feasible paths can deadlock each other,
//   - out-of-order (non-LIFO) release,
//   - spinlocks still held when an entry point returns ("forgotten release").
#ifndef SRC_CHECKERS_LOCK_CHECKER_H_
#define SRC_CHECKERS_LOCK_CHECKER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/engine/checker.h"

namespace ddt {

class LockChecker : public Checker {
 public:
  std::string name() const override { return "spinlock"; }
  std::unique_ptr<CheckerState> MakeState() const override;
  void OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) override;

 private:
  // Engine-global lock-order graph: edge A -> B means "B acquired while
  // holding A" was observed on some path.
  std::map<uint32_t, std::set<uint32_t>> order_edges_;

  bool PathExists(uint32_t from, uint32_t to) const;
};

}  // namespace ddt

#endif  // SRC_CHECKERS_LOCK_CHECKER_H_
