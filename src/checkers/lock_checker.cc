#include "src/checkers/lock_checker.h"

#include "src/engine/execution_state.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

struct LockCheckerState : public CheckerState {
  std::vector<uint32_t> held_stack;  // LIFO acquisition order (this path)

  std::unique_ptr<CheckerState> Clone() const override {
    return std::make_unique<LockCheckerState>(*this);
  }
};

LockCheckerState& StateOf(ExecutionState& st) {
  auto it = st.checker_state.find("spinlock");
  return *static_cast<LockCheckerState*>(it->second.get());
}

}  // namespace

std::unique_ptr<CheckerState> LockChecker::MakeState() const {
  return std::make_unique<LockCheckerState>();
}

bool LockChecker::PathExists(uint32_t from, uint32_t to) const {
  // DFS over the order graph.
  std::vector<uint32_t> work{from};
  std::set<uint32_t> seen;
  while (!work.empty()) {
    uint32_t node = work.back();
    work.pop_back();
    if (node == to) {
      return true;
    }
    if (!seen.insert(node).second) {
      continue;
    }
    auto it = order_edges_.find(node);
    if (it != order_edges_.end()) {
      for (uint32_t next : it->second) {
        work.push_back(next);
      }
    }
  }
  return false;
}

void LockChecker::OnKernelEvent(ExecutionState& st, const KernelEvent& event,
                                CheckerHost& host) {
  switch (event.kind) {
    case KernelEvent::Kind::kLockAcquire: {
      LockCheckerState& lcs = StateOf(st);
      uint32_t lock = event.a;
      for (uint32_t held : lcs.held_stack) {
        if (held == lock) {
          continue;
        }
        // About to add edge held -> lock. A pre-existing path lock -> held
        // means some other explored path acquires them in the opposite
        // order: AB/BA deadlock.
        if (PathExists(lock, held)) {
          host.ReportBug(
              st, BugType::kDeadlock,
              StrFormat("lock-order inversion between spinlocks 0x%x and 0x%x", held, lock),
              "two feasible paths acquire these locks in opposite orders; concurrent "
              "execution deadlocks");
          return;
        }
        order_edges_[held].insert(lock);
      }
      lcs.held_stack.push_back(lock);
      break;
    }
    case KernelEvent::Kind::kLockRelease: {
      LockCheckerState& lcs = StateOf(st);
      uint32_t lock = event.a;
      if (!lcs.held_stack.empty() && lcs.held_stack.back() != lock) {
        // Held but not top-of-stack: non-LIFO release.
        bool held = false;
        for (uint32_t candidate : lcs.held_stack) {
          held |= candidate == lock;
        }
        if (held) {
          host.ReportBug(st, BugType::kApiMisuse,
                         StrFormat("out-of-order spinlock release: 0x%x released while 0x%x "
                                   "was acquired more recently",
                                   lock, lcs.held_stack.back()),
                         "spinlocks must be released in LIFO order");
          return;
        }
      }
      for (auto it = lcs.held_stack.rbegin(); it != lcs.held_stack.rend(); ++it) {
        if (*it == lock) {
          lcs.held_stack.erase(std::next(it).base());
          break;
        }
      }
      break;
    }
    case KernelEvent::Kind::kEntryExit: {
      LockCheckerState& lcs = StateOf(st);
      if (!lcs.held_stack.empty()) {
        host.ReportBug(st, BugType::kApiMisuse,
                       StrFormat("spinlock 0x%x still held when entry point %s returned",
                                 lcs.held_stack.back(),
                                 EntrySlotName(static_cast<int>(event.a))),
                       "forgotten spinlock release; the CPU stays at DISPATCH forever");
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace ddt
