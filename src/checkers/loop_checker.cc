#include "src/checkers/loop_checker.h"

#include "src/engine/execution_state.h"
#include "src/support/strings.h"

namespace ddt {

namespace {

struct LoopCheckerState : public CheckerState {
  // Fingerprint of the machine state the last time we sampled, and the
  // step count it was taken at.
  uint64_t fingerprint = 0;
  uint64_t fingerprint_step = 0;
  bool fingerprint_valid = false;
  // Set when anything that could change future behavior happened since the
  // fingerprint: a memory write or a kernel call.
  bool dirty_since_fingerprint = true;

  std::unique_ptr<CheckerState> Clone() const override {
    return std::make_unique<LoopCheckerState>(*this);
  }
};

LoopCheckerState& StateOf(ExecutionState& st) {
  return *static_cast<LoopCheckerState*>(st.checker_state.at("infinite-loop").get());
}

uint64_t Fingerprint(const ExecutionState& st, uint32_t pc) {
  uint64_t h = pc;
  for (int r = 0; r < kNumRegisters; ++r) {
    Value v = st.Reg(r);
    uint64_t piece = v.IsConcrete() ? v.concrete()
                                    : reinterpret_cast<uint64_t>(v.symbolic());
    h ^= piece + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

std::unique_ptr<CheckerState> LoopChecker::MakeState() const {
  return std::make_unique<LoopCheckerState>();
}

void LoopChecker::OnMemAccess(ExecutionState& st, const MemAccessEvent& access,
                              CheckerHost& host) {
  if (access.is_write) {
    StateOf(st).dirty_since_fingerprint = true;
  }
}

void LoopChecker::OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) {
  LoopCheckerState& lcs = StateOf(st);
  // Any boundary activity invalidates periodicity reasoning and resets the
  // heuristic clock implicitly (steps_in_frame is engine-maintained).
  lcs.dirty_since_fingerprint = true;
  lcs.fingerprint_valid = false;
}

void LoopChecker::OnInstruction(ExecutionState& st, uint32_t pc, CheckerHost& host) {
  LoopCheckerState& lcs = StateOf(st);

  // Tier 1: precise periodicity detection. Sample every 64 instructions
  // once past the warm-up; a clean (no writes, no kernel calls) recurrence
  // of the same (pc, registers) fingerprint proves the state machine cycled.
  if (st.steps_in_frame >= warmup_ && st.steps_in_frame % 64 == 0) {
    uint64_t fp = Fingerprint(st, pc);
    if (lcs.fingerprint_valid && !lcs.dirty_since_fingerprint && fp == lcs.fingerprint) {
      host.ReportBug(st, BugType::kInfiniteLoop,
                     StrFormat("infinite loop: machine state repeats at pc 0x%08x in %s context",
                               pc, ExecContextName(st.CurrentContext())),
                     StrFormat("identical cpu state recurred after %llu instructions with no "
                               "memory writes or kernel calls in between; the loop can never "
                               "terminate",
                               static_cast<unsigned long long>(st.steps_in_frame -
                                                               lcs.fingerprint_step)));
      return;
    }
    lcs.fingerprint = fp;
    lcs.fingerprint_step = st.steps_in_frame;
    lcs.fingerprint_valid = true;
    lcs.dirty_since_fingerprint = false;
  }

  // Tier 2: heuristic backstop for loops that do write memory (counters) but
  // still never cross the kernel/driver boundary.
  if (st.steps_in_frame >= max_steps_) {
    host.ReportBug(st, BugType::kInfiniteLoop,
                   StrFormat("suspected infinite loop around pc 0x%08x in %s context", pc,
                             ExecContextName(st.CurrentContext())),
                   StrFormat("%llu instructions executed without crossing the kernel/driver "
                             "boundary; likely a polling loop the device never satisfies",
                             static_cast<unsigned long long>(st.steps_in_frame)));
  }
}

}  // namespace ddt
