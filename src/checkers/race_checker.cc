#include "src/checkers/race_checker.h"

#include <map>
#include <set>

#include "src/engine/execution_state.h"
#include "src/support/strings.h"
#include "src/vm/layout.h"

namespace ddt {

namespace {

// Context classes whose interleaving is asynchronous: "task" (entry points)
// vs. "interrupt" (ISR / DPC / timer).
enum class Side : uint8_t { kTask = 0, kInterrupt = 1 };

struct WordAccess {
  bool seen[2] = {false, false};
  bool wrote[2] = {false, false};
  // Intersection of lock sets across all accesses from each side; starts as
  // "universe" until the first access.
  std::set<uint32_t> locks[2];
  bool have_locks[2] = {false, false};
  bool reported = false;
};

struct RaceCheckerState : public CheckerState {
  std::map<uint32_t, WordAccess> words;

  std::unique_ptr<CheckerState> Clone() const override {
    return std::make_unique<RaceCheckerState>(*this);
  }
};

RaceCheckerState& StateOf(ExecutionState& st) {
  auto it = st.checker_state.find("race-lockset");
  return *static_cast<RaceCheckerState*>(it->second.get());
}

std::set<uint32_t> HeldLocks(const ExecutionState& st) {
  std::set<uint32_t> held;
  for (const auto& [addr, lock] : st.kernel.locks) {
    if (lock.held) {
      held.insert(addr);
    }
  }
  return held;
}

}  // namespace

std::unique_ptr<CheckerState> RaceChecker::MakeState() const {
  return std::make_unique<RaceCheckerState>();
}

void RaceChecker::OnMemAccess(ExecutionState& st, const MemAccessEvent& access,
                              CheckerHost& host) {
  // Shared driver state: the data/bss segment and live heap allocations.
  const KernelState& ks = st.kernel;
  bool shared = ks.driver.ContainsData(access.addr) ||
                (InRange(access.addr, kKernelHeapBase, kKernelHeapLimit) &&
                 ks.FindAllocation(access.addr) != nullptr);
  if (!shared) {
    return;
  }
  ExecContextKind ctx = st.CurrentContext();
  if (ctx == ExecContextKind::kNone) {
    return;
  }
  Side side = ctx == ExecContextKind::kEntryPoint ? Side::kTask : Side::kInterrupt;
  size_t s = static_cast<size_t>(side);

  RaceCheckerState& rcs = StateOf(st);
  uint32_t word = access.addr & ~3u;
  WordAccess& wa = rcs.words[word];
  if (wa.reported) {
    return;
  }

  std::set<uint32_t> held = HeldLocks(st);
  wa.seen[s] = true;
  wa.wrote[s] |= access.is_write;
  if (!wa.have_locks[s]) {
    wa.locks[s] = held;
    wa.have_locks[s] = true;
  } else {
    // Lockset algorithm: keep only locks held on *every* access.
    std::set<uint32_t> intersection;
    for (uint32_t lock : wa.locks[s]) {
      if (held.count(lock) != 0) {
        intersection.insert(lock);
      }
    }
    wa.locks[s] = std::move(intersection);
  }

  // Write-write races only: a context reading state another context
  // initializes (adapter fields, register base) is the normal driver idiom;
  // both sides mutating the same word without a common lock is not.
  if (wa.wrote[0] && wa.wrote[1]) {
    std::set<uint32_t> common;
    for (uint32_t lock : wa.locks[0]) {
      if (wa.locks[1].count(lock) != 0) {
        common.insert(lock);
      }
    }
    if (common.empty()) {
      wa.reported = true;
      host.ReportBug(
          st, BugType::kRaceCondition,
          StrFormat("unsynchronized access to shared state 0x%x from %s and interrupt "
                    "context",
                    word, "entry-point"),
          StrFormat("word 0x%x is %s by the entry point and %s by the ISR/DPC with no "
                    "common spinlock held",
                    word, wa.wrote[0] ? "written" : "read", wa.wrote[1] ? "written" : "read"));
    }
  }
}

}  // namespace ddt
