// Path-explosion control (ROADMAP "fork profiler, loop killers, and state
// merging"): the S²E selection-plugin ideas adapted to this engine.
//
// Four cooperating controls, all off by default (PathCtlConfig::enabled):
//
//  1. Fork profiler — every state carries the fork-site PC and fault-site
//     label that spawned it; states created, forks dropped, states evicted,
//     states merged, kill decisions, and SAT calls are attributed to that
//     (pc, fault-site) key in a ForkSiteTable folded into EngineStats. The
//     profiler itself is always on (it is pure accounting and feeds the
//     volatile report baseline); only the suppression controls are gated.
//
//  2. EdgeKiller-style loop/edge suppressor — declarative PC→PC edge kill
//     rules plus a back-edge heuristic (a back-edge taken ≥ threshold times
//     with no coverage novelty since) deterministically terminate redundant
//     polling-loop states.
//
//  3. Coverage-starved searcher (src/engine/searcher.h kCoverageStarved) —
//     deprioritizes states whose next block is already covered.
//
//  4. Diamond state merging — sibling states from one branch fork that
//     reconverge at the static join PC with identical side-effect odometers
//     merge back into one state with ite-merged registers and disjoined
//     constraints (veritesting's dynamic-merge special case).
//
// Everything here is deterministic: tables are ordered maps, rules are
// explicit, and no wall-clock or RNG feeds any decision — reports stay
// byte-identical at any thread/worker count and across kill-and-resume.
#ifndef SRC_ENGINE_PATHCTL_H_
#define SRC_ENGINE_PATHCTL_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ddt {

// One declarative kill rule: any state traversing the (from → to) block edge
// is terminated. Matches decoded-block leader PCs.
struct EdgeKillRule {
  uint32_t from = 0;
  uint32_t to = 0;

  bool operator==(const EdgeKillRule& other) const {
    return from == other.from && to == other.to;
  }
};

// Parses "FROM:TO" with hex (0x-prefixed) or decimal PCs. Returns false on
// malformed input.
bool ParseEdgeKillRule(const std::string& text, EdgeKillRule* out);

struct PathCtlConfig {
  // Master switch for the suppression controls (merge + loop/edge kills).
  // The fork profiler runs regardless.
  bool enabled = false;
  // Diamond state merging at branch-join PCs.
  bool merge = true;
  // Back-edge starvation killer.
  bool loop_kill = true;
  // A back-edge taken this many times with no new block covered anywhere in
  // the run kills the state. High enough that the LoopChecker's
  // suspected-infinite-loop heuristic (100k steps in frame) fires first, so
  // enabling the killer never hides a loop bug.
  uint32_t backedge_kill_threshold = 131072;
  // Explicit edge kill rules (applied even when loop_kill is off).
  std::vector<EdgeKillRule> kill_edges;
};

// Counters attributed to one (fork-site PC, fault-site label) key.
struct ForkSiteStats {
  uint64_t states_created = 0;
  uint64_t dropped_forks = 0;
  uint64_t states_evicted = 0;
  uint64_t sat_calls = 0;
  uint64_t states_merged = 0;
  uint64_t kills = 0;

  bool operator==(const ForkSiteStats& other) const {
    return states_created == other.states_created &&
           dropped_forks == other.dropped_forks &&
           states_evicted == other.states_evicted && sat_calls == other.sat_calls &&
           states_merged == other.states_merged && kills == other.kills;
  }

  void Accumulate(const ForkSiteStats& other);
};

// (fork-site PC, fault-site label). The label is the last injected fault on
// the spawning path as "class#occurrence" ("allocation#0"), or "-" when the
// path had no injected fault yet — it ties path explosion back to the
// campaign's fault schedule. Ordered map: deterministic iteration.
using ForkSiteKey = std::pair<uint32_t, std::string>;
using ForkSiteTable = std::map<ForkSiteKey, ForkSiteStats>;

void AccumulateForkSites(ForkSiteTable* into, const ForkSiteTable& from);

// Ranked hot-fork-sites text for the volatile report: top `n` keys by states
// created (ties by key order), one line each.
std::string FormatHotForkSites(const ForkSiteTable& table, size_t n);

// Journal/fleet transport codec. Entries are space-joined
// "pc:label:created:dropped:evicted:sat:merged:kills" tokens (labels are
// "class#occurrence" names — never contain ':' or spaces). Empty table ↔
// empty string. Decode ignores malformed tokens.
std::string EncodeForkSiteTable(const ForkSiteTable& table);
ForkSiteTable DecodeForkSiteTable(const std::string& text);

}  // namespace ddt

#endif  // SRC_ENGINE_PATHCTL_H_
