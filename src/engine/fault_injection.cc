#include "src/engine/fault_injection.h"

#include <algorithm>
#include <set>

#include "src/support/rng.h"
#include "src/support/strings.h"

namespace ddt {

bool FaultPlan::ShouldFail(FaultClass cls, uint32_t occurrence) const {
  for (const FaultPoint& p : points) {
    if (p.cls == cls && p.occurrence == occurrence) return true;
  }
  return false;
}

bool FaultPlan::ShouldTriggerHw(HwFaultKind kind, uint32_t index) const {
  return HwPointsTrigger(hw_points, kind, index);
}

std::string FaultPlan::ToString() const {
  if (empty()) return "(no injection)";
  std::string out;
  for (const FaultPoint& p : points) {
    if (!out.empty()) out += " + ";
    out += StrFormat("%s#%u", FaultClassName(p.cls), p.occurrence);
  }
  if (!hw_points.empty()) {
    if (!out.empty()) out += " + ";
    out += FormatHwPoints(hw_points);
  }
  if (!label.empty()) out += StrFormat(" [%s]", label.c_str());
  return out;
}

bool FaultSiteProfile::Empty() const {
  for (uint32_t n : max_occurrences) {
    if (n != 0) return false;
  }
  return true;
}

std::vector<FaultPlan> GenerateCampaignPlans(const FaultSiteProfile& profile, uint64_t seed,
                                             uint32_t max_occurrences_per_class,
                                             uint32_t escalation_rounds, size_t max_plans) {
  std::vector<FaultPlan> plans;
  if (profile.Empty() || max_plans == 0) return plans;

  // Effective per-class occurrence counts, capped.
  std::array<uint32_t, kNumFaultClasses> counts = {};
  for (size_t c = 0; c < kNumFaultClasses; ++c) {
    counts[c] = std::min(profile.max_occurrences[c], max_occurrences_per_class);
  }

  // Round 1: every single-point plan, class-major / occurrence-minor. These
  // are the §3.4 staples — "what if the n-th allocation failed".
  for (size_t c = 0; c < kNumFaultClasses && plans.size() < max_plans; ++c) {
    FaultClass cls = static_cast<FaultClass>(c);
    for (uint32_t occ = 0; occ < counts[c] && plans.size() < max_plans; ++occ) {
      FaultPlan plan;
      plan.label = StrFormat("single %s#%u", FaultClassName(cls), occ);
      plan.points.push_back({cls, occ});
      plans.push_back(std::move(plan));
    }
  }

  // Escalation rounds: seed-derived multi-point combinations (round r picks
  // r+2 points). Drivers often survive one failure but trip over a second
  // one on the recovery path. Dedupe against everything emitted so far.
  std::set<std::vector<std::pair<uint8_t, uint32_t>>> seen;
  for (const FaultPlan& p : plans) {
    std::vector<std::pair<uint8_t, uint32_t>> key;
    for (const FaultPoint& pt : p.points) {
      key.emplace_back(static_cast<uint8_t>(pt.cls), pt.occurrence);
    }
    std::sort(key.begin(), key.end());
    seen.insert(key);
  }

  // Classes that actually have eligible sites.
  std::vector<size_t> live_classes;
  for (size_t c = 0; c < kNumFaultClasses; ++c) {
    if (counts[c] != 0) live_classes.push_back(c);
  }

  Rng rng(seed != 0 ? seed : 0xFA117ull);
  for (uint32_t round = 0; round < escalation_rounds && plans.size() < max_plans; ++round) {
    uint32_t points_per_plan = round + 2;
    // A handful of combos per round; determinism comes from the seeded Rng.
    for (uint32_t attempt = 0; attempt < 8 && plans.size() < max_plans; ++attempt) {
      std::vector<std::pair<uint8_t, uint32_t>> key;
      FaultPlan plan;
      for (uint32_t i = 0; i < points_per_plan; ++i) {
        size_t c = live_classes[rng.NextBelow(live_classes.size())];
        uint32_t occ = static_cast<uint32_t>(rng.NextBelow(counts[c]));
        key.emplace_back(static_cast<uint8_t>(c), occ);
      }
      std::sort(key.begin(), key.end());
      key.erase(std::unique(key.begin(), key.end()), key.end());
      if (key.size() < 2) continue;          // collapsed to a single — already covered
      if (!seen.insert(key).second) continue;  // duplicate combo
      for (const auto& [c, occ] : key) {
        plan.points.push_back({static_cast<FaultClass>(c), occ});
      }
      plan.label = StrFormat("escalation r%u", round + 1);
      plans.push_back(std::move(plan));
    }
  }

  return plans;
}

std::vector<FaultPlan> GenerateHwCampaignPlans(const HwSiteProfile& profile,
                                               uint32_t max_points_per_kind, size_t max_plans) {
  std::vector<FaultPlan> plans;
  if (profile.Empty() || max_points_per_kind == 0 || max_plans == 0) return plans;

  // Interaction-stream extent for each fault kind's index space.
  std::array<uint32_t, kNumHwFaultKinds> extents = {};
  extents[static_cast<size_t>(HwFaultKind::kSurpriseRemoval)] = profile.max_mmio_accesses;
  extents[static_cast<size_t>(HwFaultKind::kRemovalAtInterrupt)] = profile.max_interrupts;
  extents[static_cast<size_t>(HwFaultKind::kStickyError)] = profile.max_mmio_reads;
  extents[static_cast<size_t>(HwFaultKind::kIrqStorm)] = profile.max_crossings;
  extents[static_cast<size_t>(HwFaultKind::kIrqDrought)] = profile.max_crossings;
  extents[static_cast<size_t>(HwFaultKind::kDoorbellDrop)] = profile.max_mmio_writes;

  for (size_t k = 0; k < kNumHwFaultKinds && plans.size() < max_plans; ++k) {
    uint32_t extent = extents[k];
    if (extent == 0) continue;
    HwFaultKind kind = static_cast<HwFaultKind>(k);
    // Sample indices evenly across [0, extent): unlike kernel fault classes
    // (where the first few occurrences dominate), device faults are
    // interesting late too — removal during teardown hits different driver
    // code than removal during init — so cover the whole observed range
    // including the very last interaction.
    uint32_t budget = std::min(max_points_per_kind, extent);
    uint32_t prev = UINT32_MAX;
    for (uint32_t i = 0; i < budget && plans.size() < max_plans; ++i) {
      uint32_t index =
          budget == 1 ? 0
                      : static_cast<uint32_t>((static_cast<uint64_t>(i) * (extent - 1)) /
                                              (budget - 1));
      if (index == prev) continue;  // integer rounding collapsed two samples
      prev = index;
      FaultPlan plan;
      plan.label = StrFormat("hw %s#%u", HwFaultKindName(kind), index);
      plan.hw_points.push_back({kind, index});
      plans.push_back(std::move(plan));
    }
  }
  return plans;
}

std::string FormatFaultSchedule(const std::vector<InjectedFault>& faults) {
  std::string out;
  for (const InjectedFault& f : faults) {
    if (!out.empty()) out += ", ";
    out += StrFormat("%s[%s#%u]", f.api.c_str(), FaultClassName(f.cls), f.occurrence);
  }
  return out;
}

}  // namespace ddt
