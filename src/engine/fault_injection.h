// Fault-injection plans (§3.4 error-path campaigns).
//
// Annotations make kernel-API failures *possible* — each allocator return
// forks an alternative where the call failed. A FaultPlan makes failures
// *systematic*: it names (class, occurrence) injection points that MUST fail
// on every path of an engine pass. A campaign (src/core/ddt.h) runs many
// passes with escalating plans generated from the baseline pass's observed
// fault-site profile, merging bugs across passes. Because injection decisions
// key off deterministic per-path occurrence counters (KernelState), recording
// the active plan in a Bug is sufficient to replay the exact failure
// schedule (§3.5).
#ifndef SRC_ENGINE_FAULT_INJECTION_H_
#define SRC_ENGINE_FAULT_INJECTION_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/hw_fault.h"
#include "src/kernel/api.h"

namespace ddt {

// One injection point: the occurrence-th fault-eligible call of this class
// on a path fails.
struct FaultPoint {
  FaultClass cls = FaultClass::kAllocation;
  uint32_t occurrence = 0;

  bool operator==(const FaultPoint& other) const {
    return cls == other.cls && occurrence == other.occurrence;
  }
};

// A deterministic, seed-derived set of injection points driving one engine
// pass. Empty plan = plain run (no injection). Kernel-API points and
// device-level (hardware fault plane) points travel in the same plan so a
// pass — and a bug report — carries one complete failure schedule.
struct FaultPlan {
  // Provenance label shown in reports ("alloc#1", "escalation r2 seed=...").
  std::string label;
  std::vector<FaultPoint> points;
  // Device-level injection points (surprise removal, sticky errors, interrupt
  // storms/droughts, dropped doorbells — see src/hw/hw_fault.h).
  std::vector<HwFaultPoint> hw_points;

  bool empty() const { return points.empty() && hw_points.empty(); }
  bool ShouldFail(FaultClass cls, uint32_t occurrence) const;
  bool ShouldTriggerHw(HwFaultKind kind, uint32_t index) const;
  std::string ToString() const;
};

// Per-class count of fault-eligible call sites observed across all paths of
// a pass (the max occurrence counter any path reached). The campaign uses
// the baseline pass's profile to enumerate single-point plans and to bound
// escalation combos.
struct FaultSiteProfile {
  std::array<uint32_t, kNumFaultClasses> max_occurrences = {};

  bool Empty() const;
};

// Generates the campaign schedule: first every single-point plan (class-major
// order, occurrence capped at `max_occurrences_per_class`), then
// `escalation_rounds` rounds of seed-derived multi-point combinations. The
// result is deterministic in (profile, seed, caps) and truncated to
// `max_plans`.
std::vector<FaultPlan> GenerateCampaignPlans(const FaultSiteProfile& profile, uint64_t seed,
                                             uint32_t max_occurrences_per_class,
                                             uint32_t escalation_rounds, size_t max_plans);

// Generates the hardware-fault leg of the campaign schedule: for each fault
// kind, single-point plans at indices sampled evenly across the baseline
// profile's observed interaction range (so early, mid, and last-interaction
// faults are all covered), at most `max_points_per_kind` per kind. The
// result is deterministic in (profile, caps) and truncated to `max_plans`.
std::vector<FaultPlan> GenerateHwCampaignPlans(const HwSiteProfile& profile,
                                               uint32_t max_points_per_kind, size_t max_plans);

// Human-readable failure schedule ("MosAllocatePoolWithTag[allocation#0], ...").
std::string FormatFaultSchedule(const std::vector<InjectedFault>& faults);

}  // namespace ddt

#endif  // SRC_ENGINE_FAULT_INJECTION_H_
