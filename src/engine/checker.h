// The pluggable dynamic-checker interface (§3.1).
//
// Checkers are DDT's VM-level verification layer: they observe every driver
// memory access, every kernel event, and every state termination, and report
// bugs through the CheckerHost. They keep per-execution-state data in
// CheckerState objects (cloned on fork) and may also keep engine-global data
// in themselves (e.g. the cross-path lock-order graph).
#ifndef SRC_ENGINE_CHECKER_H_
#define SRC_ENGINE_CHECKER_H_

#include <memory>
#include <string>

#include "src/engine/bug_report.h"
#include "src/expr/expr.h"
#include "src/kernel/api.h"

namespace ddt {

class ExecutionState;

// A driver-issued memory access, after address concretization.
struct MemAccessEvent {
  uint32_t pc = 0;
  uint32_t addr = 0;
  unsigned size = 4;
  bool is_write = false;
  bool value_symbolic = false;
  bool addr_was_symbolic = false;  // the address came from a symbolic value
  ExprRef addr_expr = nullptr;     // pre-concretization address expression
};

// A driver write that actually reached the device's MMIO window (BAR-
// relative). Writes the hardware fault plane dropped (removal, doorbell
// drop) are never reported — the device did not see them, so checkers
// validating the driver↔device contract must not either.
struct MmioWriteEvent {
  uint32_t pc = 0;
  uint32_t offset = 0;  // BAR-relative register offset
  unsigned size = 4;
  bool value_concrete = false;
  uint32_t value = 0;  // meaningful only when value_concrete
};

class Solver;

class CheckerHost {
 public:
  virtual ~CheckerHost() = default;
  virtual void ReportBug(ExecutionState& st, BugType type, const std::string& title,
                         const std::string& details) = 0;
  virtual ExprContext* expr() = 0;
  // Constraint solving for checkers that reason about symbolic data (e.g.
  // "can this symbolic address escape every accessible region?").
  virtual Solver& checker_solver() = 0;
};

// Per-execution-state checker data; cloned when the state forks.
class CheckerState {
 public:
  virtual ~CheckerState() = default;
  virtual std::unique_ptr<CheckerState> Clone() const = 0;
};

class Checker {
 public:
  virtual ~Checker() = default;
  virtual std::string name() const = 0;

  // Called when a fresh initial state is created; return per-state data (or
  // nullptr if the checker is stateless per path).
  virtual std::unique_ptr<CheckerState> MakeState() const { return nullptr; }

  // A driver memory access is about to be performed.
  virtual void OnMemAccess(ExecutionState& st, const MemAccessEvent& access, CheckerHost& host) {}

  // The device received a driver write into its MMIO window (Checkbochs-style
  // hardware-level rule hook; the DMA checker keys off this).
  virtual void OnMmioWrite(ExecutionState& st, const MmioWriteEvent& write, CheckerHost& host) {}

  // A kernel event was emitted (API call, lock op, entry transition, ...).
  virtual void OnKernelEvent(ExecutionState& st, const KernelEvent& event, CheckerHost& host) {}

  // One driver instruction is about to execute.
  virtual void OnInstruction(ExecutionState& st, uint32_t pc, CheckerHost& host) {}

  // The state is ending (workload complete / terminated); last chance to
  // flag end-of-life conditions like still-held locks.
  virtual void OnStateEnd(ExecutionState& st, CheckerHost& host) {}
};

}  // namespace ddt

#endif  // SRC_ENGINE_CHECKER_H_
