#include "src/engine/bug_report.h"

#include "src/support/strings.h"

namespace ddt {

const char* BugTypeName(BugType type) {
  switch (type) {
    case BugType::kMemoryCorruption:
      return "Memory corruption";
    case BugType::kSegfault:
      return "Segmentation fault";
    case BugType::kResourceLeak:
      return "Resource leak";
    case BugType::kMemoryLeak:
      return "Memory leak";
    case BugType::kRaceCondition:
      return "Race condition";
    case BugType::kKernelCrash:
      return "Kernel crash";
    case BugType::kDeadlock:
      return "Deadlock";
    case BugType::kApiMisuse:
      return "API misuse";
    case BugType::kInfiniteLoop:
      return "Infinite loop";
  }
  return "?";
}

namespace {

const char* OriginName(VarOrigin::Source source) {
  switch (source) {
    case VarOrigin::Source::kHardwareRead:
      return "hardware-read";
    case VarOrigin::Source::kInterruptSlot:
      return "interrupt";
    case VarOrigin::Source::kRegistry:
      return "registry";
    case VarOrigin::Source::kEntryArg:
      return "entry-arg";
    case VarOrigin::Source::kPacketData:
      return "packet-data";
    case VarOrigin::Source::kAnnotation:
      return "annotation";
    case VarOrigin::Source::kTest:
      return "test";
  }
  return "?";
}

}  // namespace

std::string Bug::Row() const {
  return StrFormat("%-18s | %-18s | %s", driver.c_str(), BugTypeName(type), title.c_str());
}

std::string Bug::Format(size_t trace_lines, const TraceSymbolizer* symbolizer) const {
  std::string out;
  out += StrFormat("BUG [%s] in driver '%s'\n", BugTypeName(type), driver.c_str());
  out += StrFormat("  %s\n", title.c_str());
  if (!details.empty()) {
    out += StrFormat("  details: %s\n", details.c_str());
  }
  out += StrFormat("  detected by: %s at pc=%08x (%s context), state %llu\n", checker.c_str(),
                   pc, ExecContextName(context), static_cast<unsigned long long>(state_id));
  if (!inputs.empty()) {
    out += "  concrete inputs reproducing the bug:\n";
    for (const SolvedInput& input : inputs) {
      out += StrFormat("    %-28s [%s %s seq=%llu] = 0x%llx\n", input.var_name.c_str(),
                       OriginName(input.origin.source), input.origin.label.c_str(),
                       static_cast<unsigned long long>(input.origin.seq),
                       static_cast<unsigned long long>(input.value));
    }
  }
  if (!fault_plan.empty()) {
    out += StrFormat("  fault plan: %s\n", fault_plan.ToString().c_str());
  }
  if (!fault_schedule.empty()) {
    out += StrFormat("  faults injected on path: %s\n",
                     FormatFaultSchedule(fault_schedule).c_str());
  }
  if (!hw_fault_schedule.empty()) {
    out += StrFormat("  hw faults on path: %s\n",
                     FormatHwFaultSchedule(hw_fault_schedule).c_str());
  }
  if (!interrupt_schedule.empty()) {
    out += "  interrupt schedule (boundary crossings): ";
    for (size_t i = 0; i < interrupt_schedule.size(); ++i) {
      out += StrFormat("%s%u", i == 0 ? "" : ", ", interrupt_schedule[i]);
    }
    out += "\n";
  }
  if (!trace.empty()) {
    out += StrFormat("  trace (%zu events, tail):\n", trace.size());
    out += FormatTrace(trace, trace_lines, symbolizer);
  }
  return out;
}

}  // namespace ddt
