#include "src/engine/execution_state.h"

namespace ddt {

int ExecutionState::CurrentEntrySlot() const {
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (it->kind == ExecContextKind::kEntryPoint) {
      return it->entry_slot;
    }
  }
  return -1;
}

std::unique_ptr<ExecutionState> ExecutionState::Clone(uint64_t new_id) {
  auto clone = std::make_unique<ExecutionState>();
  clone->id = new_id;
  clone->parent_id = id;
  clone->depth = depth + 1;
  clone->regs = regs;
  clone->pc = pc;
  clone->mem = mem.Fork();
  clone->kernel = kernel;
  clone->device = device->Clone();
  clone->constraints = constraints;
  clone->concretizations = concretizations;
  clone->trace = trace.Fork();
  clone->interrupt_schedule = interrupt_schedule;
  clone->workload_trail = workload_trail;
  clone->alternatives_taken = alternatives_taken;
  clone->kcall_checkpoints = kcall_checkpoints;  // snapshots are shared
  clone->frames = frames;
  clone->status = status;
  clone->steps = steps;
  clone->steps_in_frame = steps_in_frame;
  clone->origin_fork_pc = origin_fork_pc;
  clone->origin_fault_site = origin_fault_site;
  clone->sibling_group = sibling_group;
  clone->merge_pc = merge_pc;
  clone->merge_prefix_len = merge_prefix_len;
  clone->merge_mem_accesses = merge_mem_accesses;
  clone->merge_kcall_seq = merge_kcall_seq;
  clone->merge_crossings = merge_crossings;
  clone->merge_mmio = merge_mmio;
  clone->merge_interrupts = merge_interrupts;
  clone->merge_alternatives = merge_alternatives;
  clone->merge_concretizations = merge_concretizations;
  clone->merge_frames = merge_frames;
  clone->merge_workload = merge_workload;
  clone->merge_device_reads = merge_device_reads;
  clone->parked = parked;
  clone->prev_leader = prev_leader;
  clone->backedge_counts = backedge_counts;
  clone->novelty_mark = novelty_mark;
  // Derived RNG stream: diverges deterministically from the parent.
  clone->rng = Rng(rng.Next() ^ (new_id * 0x9E3779B97F4A7C15ull));
  for (const auto& [name, state] : checker_state) {
    clone->checker_state.emplace(name, state != nullptr ? state->Clone() : nullptr);
  }
  return clone;
}

}  // namespace ddt
