#include "src/engine/execution_state.h"

namespace ddt {

int ExecutionState::CurrentEntrySlot() const {
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    if (it->kind == ExecContextKind::kEntryPoint) {
      return it->entry_slot;
    }
  }
  return -1;
}

std::unique_ptr<ExecutionState> ExecutionState::Clone(uint64_t new_id) {
  auto clone = std::make_unique<ExecutionState>();
  clone->id = new_id;
  clone->parent_id = id;
  clone->depth = depth + 1;
  clone->regs = regs;
  clone->pc = pc;
  clone->mem = mem.Fork();
  clone->kernel = kernel;
  clone->device = device->Clone();
  clone->constraints = constraints;
  clone->concretizations = concretizations;
  clone->trace = trace.Fork();
  clone->interrupt_schedule = interrupt_schedule;
  clone->workload_trail = workload_trail;
  clone->alternatives_taken = alternatives_taken;
  clone->kcall_checkpoints = kcall_checkpoints;  // snapshots are shared
  clone->frames = frames;
  clone->status = status;
  clone->steps = steps;
  clone->steps_in_frame = steps_in_frame;
  // Derived RNG stream: diverges deterministically from the parent.
  clone->rng = Rng(rng.Next() ^ (new_id * 0x9E3779B97F4A7C15ull));
  for (const auto& [name, state] : checker_state) {
    clone->checker_state.emplace(name, state != nullptr ? state->Clone() : nullptr);
  }
  return clone;
}

}  // namespace ddt
