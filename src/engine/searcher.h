// State-selection strategies (§4.3).
//
// The default is the paper's coverage-greedy heuristic, modeled on EXE: a
// global counter per basic block counts how often it has executed; the next
// state to run is the one whose current block has the smallest counter. This
// naturally starves states stuck in polling loops (their block counters grow
// without bound) and pulls exploration toward unvisited code.
#ifndef SRC_ENGINE_SEARCHER_H_
#define SRC_ENGINE_SEARCHER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/execution_state.h"
#include "src/support/rng.h"

namespace ddt {

enum class SearchStrategy {
  kCoverageGreedy,   // paper default
  kDfs,
  kBfs,
  kRandom,
  // Path-explosion control (src/engine/pathctl.h): prefer states whose next
  // block is *uncovered* (coverage-bitmap novelty, not execution counts);
  // among covered states pick the minimum block-execution count. Fully
  // deterministic — ties break by state order, no RNG.
  kCoverageStarved,
};

const char* SearchStrategyName(SearchStrategy strategy);
// Parses a strategy name ("coverage-greedy", "dfs", "bfs", "random",
// "coverage-starved"). Returns false on an unknown name.
bool ParseSearchStrategy(const std::string& name, SearchStrategy* out);

// Block-execution-count oracle the coverage-greedy searcher consults.
class BlockCountOracle {
 public:
  virtual ~BlockCountOracle() = default;
  // Execution count of the basic block containing `pc` (0 if never run or
  // pc is outside driver code).
  virtual uint64_t BlockCountAt(uint32_t pc) const = 0;
};

class Searcher {
 public:
  virtual ~Searcher() = default;
  // Picks the index of the next state to run. `states` is non-empty and all
  // entries are alive.
  virtual size_t Select(const std::vector<ExecutionState*>& states) = 0;
};

std::unique_ptr<Searcher> MakeSearcher(SearchStrategy strategy, const BlockCountOracle* oracle,
                                       uint64_t seed);

}  // namespace ddt

#endif  // SRC_ENGINE_SEARCHER_H_
